"""Shared configuration for the paper-reproduction benchmarks.

Environment knobs
-----------------
``REPRO_SCALE``   suite scale: ``tiny`` (default), ``bench``, ``full``;
``REPRO_EFFORT``  annealing effort: ``fast`` (default), ``normal``,
                  ``high``;
``REPRO_SEED``    master seed (default 1).

The full three-flow suite (Tables II/III) runs once per session and is
shared by the benches that need it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import Effort
from repro.api import run_suite

SCALE = os.environ.get("REPRO_SCALE", "tiny")
EFFORT = Effort(os.environ.get("REPRO_EFFORT", "fast"))
SEED = int(os.environ.get("REPRO_SEED", "1"))


@pytest.fixture(scope="session")
def suite_result():
    """The three-flow comparison over all eight circuits."""
    return run_suite(scale=SCALE, seed=SEED, effort=EFFORT)


@pytest.fixture(scope="session")
def artifacts_dir():
    path = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(path, exist_ok=True)
    return path


def pedantic(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
