#!/usr/bin/env python
"""Referee benchmark: python reference loops vs numpy array kernels.

Places each requested suite design once (with a fast deterministic
flow, so the placement is shared), then times the referee's four metric
kernels — quadratic stdcell system assembly, HPWL, congestion and the
timing analysis — under both registered backends and verifies that
every report agrees bit-for-bit: the assembled sparse systems (CSR
data/indices and both right-hand sides), the solved cell placements,
the HPWL and congestion reports, the timing reports (WNS/TNS/paths/
worst edge) and full referee rows (``evaluate_placement``) after
rounding.  A fifth phase times the quadratic CG solve: two sequential
``scipy`` solves vs :func:`repro.placement.stdcell.solve_quadratic_xy`
(one paired loop sharing a two-column matvec), with bit-identity of the
solutions folded into the same hard gate.  Results land in
``benchmarks/artifacts/BENCH_referee.json`` so future PRs have a
performance trajectory to compare against.

Gating (the CI contract): **bit-identity is the hard failure** — any
mismatch exits 1 no matter how fast the kernels are.  The speedup gate
takes the best of ``--repeats`` timed repeats per phase (loaded CI
runners inflate means, not minima) and by default only warns when the
numpy backend lands under ``--min-speedup``; pass ``--strict-speedup``
to turn that into exit code 2.

Not collected by pytest (the file is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_referee.py \
        [--scale tiny] [--designs c1,c2] [--flow indeda] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np
from scipy.sparse.linalg import cg

from repro.api.prepared import prepare_suite_design
from repro.api import get_flow
from repro.core.ports import assign_port_positions
from repro.api import evaluate_placement
from repro.metrics import (
    get_backend,
    net_arrays_for,
    stdcell_arrays_for,
    timing_arrays_for,
)
from repro.placement.cluster import clustered_for
from repro.placement.hpwl import hpwl_report
from repro.placement.stdcell import (
    PlacerConfig,
    place_cells,
    solve_quadratic_xy,
)
from repro.routing.congestion import estimate_congestion
from repro.timing.sta import analyze_timing

BACKENDS = ("python", "numpy")
PHASES = ("stdcell", "hpwl", "congestion", "timing")


def _row_key(metrics, digits: int = 9):
    """A FlowMetrics row rounded the way the tables round (and finer)."""
    return (metrics.design, metrics.flow,
            round(metrics.wl_meters, digits),
            round(metrics.grc_percent, digits),
            round(metrics.wns_percent, digits),
            round(metrics.tns, digits))


def _best_of(fn, repeats: int):
    """(best_seconds, last_result) over ``repeats`` timed calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _systems_identical(system_a, system_b) -> bool:
    lap_a, bx_a, by_a = system_a
    lap_b, bx_b, by_b = system_b
    return (lap_a.shape == lap_b.shape
            and np.array_equal(lap_a.indptr, lap_b.indptr)
            and np.array_equal(lap_a.indices, lap_b.indices)
            and np.array_equal(lap_a.data, lap_b.data)
            and np.array_equal(bx_a, bx_b)
            and np.array_equal(by_a, by_b))


def _timing_identical(report_a, report_b) -> bool:
    return (report_a.clock_period == report_b.clock_period
            and report_a.wns == report_b.wns
            and report_a.tns == report_b.tns
            and report_a.n_paths == report_b.n_paths
            and report_a.n_failing == report_b.n_failing
            and report_a.worst_edge == report_b.worst_edge)


def _bench_design(name: str, scale: str, flow: str, seed: int,
                  repeats: int) -> dict:
    prepared = prepare_suite_design(name, scale)
    flat = prepared.flat
    placement = get_flow(flow, seed=seed).place(prepared)
    ports = assign_port_positions(flat.design, placement.die)
    config = PlacerConfig()

    t0 = time.perf_counter()
    arrays = net_arrays_for(flat)
    clustered = clustered_for(flat)
    stdcell_arrays = stdcell_arrays_for(clustered)
    timing_arrays = timing_arrays_for(prepared.gseq, flat)
    compile_seconds = time.perf_counter() - t0

    cells = place_cells(flat, placement, ports, clustered=clustered)

    phase_seconds = {}
    reports = {}
    for backend in BACKENDS:
        resolved = get_backend(backend)
        seconds = {}
        seconds["stdcell"], system = _best_of(
            lambda: resolved.stdcell_system(flat, placement, ports,
                                            config, clustered),
            repeats)
        seconds["hpwl"], wl = _best_of(
            lambda: hpwl_report(flat, placement, cells, ports,
                                backend=backend),
            repeats)
        seconds["congestion"], congestion = _best_of(
            lambda: estimate_congestion(flat, placement, cells, ports,
                                        backend=backend),
            repeats)
        seconds["timing"], timing = _best_of(
            lambda: analyze_timing(flat, prepared.gseq, placement,
                                   cells, ports, backend=backend),
            repeats)
        phase_seconds[backend] = seconds
        reports[backend] = {"system": system, "wl": wl,
                            "congestion": congestion, "timing": timing}

    # CG solver phase: two sequential scipy solves vs the paired loop
    # that shares one two-column matvec per iteration (same Laplacian,
    # both right-hand sides).  Bit-identity feeds the hard gate.
    laplacian, bx, by = reports["numpy"]["system"]
    n = clustered.n_clusters
    x0 = np.full(n, placement.die.center.x)
    y0 = np.full(n, placement.die.center.y)

    def _solve_sequential():
        x, _ = cg(laplacian, bx, x0=x0, rtol=config.cg_tol,
                  maxiter=config.cg_maxiter)
        y, _ = cg(laplacian, by, x0=y0, rtol=config.cg_tol,
                  maxiter=config.cg_maxiter)
        return x, y

    cg_sequential_seconds, (seq_x, seq_y) = _best_of(
        _solve_sequential, repeats)
    cg_paired_seconds, (pair_x, pair_y) = _best_of(
        lambda: solve_quadratic_xy(laplacian, bx, by, x0, y0,
                                   rtol=config.cg_tol,
                                   maxiter=config.cg_maxiter),
        repeats)

    solved = {backend: place_cells(flat, placement, ports,
                                   clustered=clustered, backend=backend)
              for backend in BACKENDS}
    rows = {backend: _row_key(evaluate_placement(
                flat, placement, prepared.gseq, backend=backend))
            for backend in BACKENDS}

    py, np_ = reports["python"], reports["numpy"]
    identical = {
        "stdcell_system": _systems_identical(py["system"], np_["system"]),
        "cell_placement":
            np.array_equal(solved["python"].x, solved["numpy"].x)
            and np.array_equal(solved["python"].y, solved["numpy"].y),
        "hpwl": py["wl"] == np_["wl"],
        "congestion":
            py["congestion"].grc_percent == np_["congestion"].grc_percent
            and py["congestion"].hot_fraction
            == np_["congestion"].hot_fraction,
        "timing": _timing_identical(py["timing"], np_["timing"]),
        "rows": rows["python"] == rows["numpy"],
        "cg_solver": np.array_equal(seq_x, pair_x)
                     and np.array_equal(seq_y, pair_y),
    }

    py_total = sum(phase_seconds["python"].values())
    np_total = sum(phase_seconds["numpy"].values())
    record = {
        "design": name,
        "nets": int(arrays.n_nets),
        "endpoint_rows": int(arrays.n_rows),
        "clusters": int(clustered.n_clusters),
        "pair_entries": int(stdcell_arrays.pair_rows.size),
        "timing_edges": int(timing_arrays.n_edges),
        "timing_levels": int(timing_arrays.n_levels),
        "compile_seconds": round(compile_seconds, 6),
        "python_seconds": round(py_total, 6),
        "numpy_seconds": round(np_total, 6),
        "speedup": round(py_total / np_total, 3) if np_total else 0.0,
        "identical": all(identical.values()),
        "identical_detail": identical,
        "cg_sequential_seconds": round(cg_sequential_seconds, 6),
        "cg_paired_seconds": round(cg_paired_seconds, 6),
        "cg_speedup": round(cg_sequential_seconds / cg_paired_seconds, 3)
                      if cg_paired_seconds else 0.0,
        "wl_meters": round(py["wl"].meters, 9),
        "grc_percent": round(py["congestion"].grc_percent, 9),
        "tns": round(py["timing"].tns, 9),
    }
    for backend in BACKENDS:
        for phase in PHASES:
            record[f"{backend}_{phase}_seconds"] = round(
                phase_seconds[backend][phase], 6)
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--designs", default="c1,c2")
    parser.add_argument("--flow", default="indeda",
                        help="flow that provides the shared placement")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per phase; best one counts")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--strict-speedup", action="store_true",
                        help="exit 2 (instead of warning) when the "
                             "speedup gate misses")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/artifacts/BENCH_referee.json)")
    args = parser.parse_args()

    per_design = []
    all_identical = True
    py_total = np_total = 0.0
    cg_seq_total = cg_pair_total = 0.0
    for name in args.designs.split(","):
        record = _bench_design(name, args.scale, args.flow, args.seed,
                               args.repeats)
        per_design.append(record)
        all_identical = all_identical and record["identical"]
        py_total += record["python_seconds"]
        np_total += record["numpy_seconds"]
        cg_seq_total += record["cg_sequential_seconds"]
        cg_pair_total += record["cg_paired_seconds"]
        print(f"{name}: python {1e3 * record['python_seconds']:8.2f}ms  "
              f"numpy {1e3 * record['numpy_seconds']:8.2f}ms  "
              f"(x{record['speedup']:.1f})  "
              f"identical={record['identical']}")
        for phase in PHASES:
            py_s = record[f"python_{phase}_seconds"]
            np_s = record[f"numpy_{phase}_seconds"]
            ratio = py_s / np_s if np_s else 0.0
            print(f"    {phase:10s} python {1e3 * py_s:8.2f}ms  "
                  f"numpy {1e3 * np_s:8.2f}ms  (x{ratio:.1f})")
        print(f"    {'cg solve':10s} "
              f"seq    {1e3 * record['cg_sequential_seconds']:8.2f}ms  "
              f"paired {1e3 * record['cg_paired_seconds']:8.2f}ms  "
              f"(x{record['cg_speedup']:.2f})")

    speedup = py_total / np_total if np_total else 0.0
    record = {
        "bench": "referee_backends",
        "scale": args.scale,
        "designs": args.designs.split(","),
        "flow": args.flow,
        "seed": args.seed,
        "repeats": args.repeats,
        "phases": list(PHASES),
        "min_speedup": args.min_speedup,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python_seconds": round(py_total, 6),
        "numpy_seconds": round(np_total, 6),
        "speedup": round(speedup, 3),
        "cg_sequential_seconds": round(cg_seq_total, 6),
        "cg_paired_seconds": round(cg_pair_total, 6),
        "cg_speedup": round(cg_seq_total / cg_pair_total, 3)
                      if cg_pair_total else 0.0,
        "results_identical": all_identical,
        "per_design": per_design,
    }
    out = args.out or os.path.join(os.path.dirname(__file__),
                                   "artifacts", "BENCH_referee.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=1)
    print(f"\nreferee ({' + '.join(PHASES)}, best of "
          f"{args.repeats} repeats):")
    print(f"python {1e3 * py_total:8.2f}ms")
    print(f"numpy  {1e3 * np_total:8.2f}ms  (x{speedup:.2f} wall-clock "
          "win)")
    cg_speedup = record["cg_speedup"]
    print(f"cg solve: sequential {1e3 * cg_seq_total:8.2f}ms  paired "
          f"{1e3 * cg_pair_total:8.2f}ms  (x{cg_speedup:.2f})")
    print(f"results identical: {all_identical}")
    print(f"wrote {out}")

    if not all_identical:
        print("FAIL: backends disagree — bit-identity is the hard gate")
        return 1
    if speedup < args.min_speedup:
        message = (f"speedup x{speedup:.2f} under the x"
                   f"{args.min_speedup:.1f} gate")
        if args.strict_speedup:
            print(f"FAIL: {message}")
            return 2
        print(f"WARNING: {message} (soft gate; rerun on an idle "
              "machine or pass --strict-speedup to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
