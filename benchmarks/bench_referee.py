#!/usr/bin/env python
"""Referee benchmark: python reference loops vs numpy array kernels.

Places each requested suite design once (with a fast deterministic
flow, so the placement is shared), then times the referee's metric
kernels — HPWL and congestion — under both registered backends and
verifies that the reports agree bit-for-bit and that full referee rows
(``evaluate_placement``) are identical after rounding.  Results land in
``benchmarks/artifacts/BENCH_referee.json`` so future PRs have a
performance trajectory to compare against; the process exits non-zero
unless the numpy backend is at least ``--min-speedup`` (default 3x)
faster and every report matches.

Not collected by pytest (the file is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_referee.py \
        [--scale tiny] [--designs c1,c2] [--flow indeda] [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.api import get_flow
from repro.api.prepared import prepare_suite_design
from repro.core.ports import assign_port_positions
from repro.eval.flow import evaluate_placement
from repro.metrics import net_arrays_for
from repro.placement.hpwl import hpwl_report
from repro.placement.stdcell import place_cells
from repro.routing.congestion import estimate_congestion

BACKENDS = ("python", "numpy")


def _row_key(metrics, digits: int = 9):
    """A FlowMetrics row rounded the way the tables round (and finer)."""
    return (metrics.design, metrics.flow,
            round(metrics.wl_meters, digits),
            round(metrics.grc_percent, digits),
            round(metrics.wns_percent, digits),
            round(metrics.tns, digits))


def _bench_design(name: str, scale: str, flow: str, seed: int,
                  repeats: int) -> dict:
    prepared = prepare_suite_design(name, scale)
    flat = prepared.flat
    placement = get_flow(flow, seed=seed).place(prepared)
    ports = assign_port_positions(flat.design, placement.die)
    cells = place_cells(flat, placement, ports)

    t0 = time.perf_counter()
    arrays = net_arrays_for(flat)
    compile_seconds = time.perf_counter() - t0

    kernel_seconds = {}
    reports = {}
    for backend in BACKENDS:
        hpwl_s = congestion_s = 0.0
        for _ in range(repeats):
            t0 = time.perf_counter()
            wl = hpwl_report(flat, placement, cells, ports,
                             backend=backend)
            hpwl_s += time.perf_counter() - t0
            t0 = time.perf_counter()
            congestion = estimate_congestion(flat, placement, cells,
                                             ports, backend=backend)
            congestion_s += time.perf_counter() - t0
        kernel_seconds[backend] = (hpwl_s / repeats,
                                   congestion_s / repeats)
        reports[backend] = (wl, congestion)

    rows = {backend: _row_key(evaluate_placement(
                flat, placement, prepared.gseq, backend=backend))
            for backend in BACKENDS}

    py_wl, py_cg = reports["python"]
    np_wl, np_cg = reports["numpy"]
    identical = (py_wl == np_wl
                 and py_cg.grc_percent == np_cg.grc_percent
                 and py_cg.hot_fraction == np_cg.hot_fraction
                 and rows["python"] == rows["numpy"])

    py_total = sum(kernel_seconds["python"])
    np_total = sum(kernel_seconds["numpy"])
    return {
        "design": name,
        "nets": int(arrays.n_nets),
        "endpoint_rows": int(arrays.n_rows),
        "python_hpwl_seconds": round(kernel_seconds["python"][0], 6),
        "python_congestion_seconds": round(kernel_seconds["python"][1], 6),
        "numpy_hpwl_seconds": round(kernel_seconds["numpy"][0], 6),
        "numpy_congestion_seconds": round(kernel_seconds["numpy"][1], 6),
        "compile_seconds": round(compile_seconds, 6),
        "python_seconds": round(py_total, 6),
        "numpy_seconds": round(np_total, 6),
        "speedup": round(py_total / np_total, 3) if np_total else 0.0,
        "identical": identical,
        "wl_meters": round(py_wl.meters, 9),
        "grc_percent": round(py_cg.grc_percent, 9),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--designs", default="c1,c2")
    parser.add_argument("--flow", default="indeda",
                        help="flow that provides the shared placement")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=5,
                        help="referee repetitions per backend")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/artifacts/BENCH_referee.json)")
    args = parser.parse_args()

    per_design = []
    all_identical = True
    py_total = np_total = 0.0
    for name in args.designs.split(","):
        record = _bench_design(name, args.scale, args.flow, args.seed,
                               args.repeats)
        per_design.append(record)
        all_identical = all_identical and record["identical"]
        py_total += record["python_seconds"]
        np_total += record["numpy_seconds"]
        print(f"{name}: python {1e3 * record['python_seconds']:8.2f}ms  "
              f"numpy {1e3 * record['numpy_seconds']:8.2f}ms  "
              f"(x{record['speedup']:.1f})  "
              f"identical={record['identical']}")

    speedup = py_total / np_total if np_total else 0.0
    record = {
        "bench": "referee_backends",
        "scale": args.scale,
        "designs": args.designs.split(","),
        "flow": args.flow,
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python_seconds": round(py_total, 6),
        "numpy_seconds": round(np_total, 6),
        "speedup": round(speedup, 3),
        "results_identical": all_identical,
        "per_design": per_design,
    }
    out = args.out or os.path.join(os.path.dirname(__file__),
                                   "artifacts", "BENCH_referee.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=1)
    print(f"\nreferee (hpwl + congestion, {args.repeats} repeats):")
    print(f"python {1e3 * py_total:8.2f}ms")
    print(f"numpy  {1e3 * np_total:8.2f}ms  (x{speedup:.2f} wall-clock "
          "win)")
    print(f"results identical: {all_identical}")
    print(f"wrote {out}")
    return 0 if all_identical and speedup >= args.min_speedup else 1


if __name__ == "__main__":
    raise SystemExit(main())
