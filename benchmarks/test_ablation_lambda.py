"""Ablation A — λ sensitivity (the paper's best-of-three protocol).

The paper runs HiDaP with λ ∈ {0.2, 0.5, 0.8} and keeps the best
wirelength, implying λ matters per circuit.  The bench sweeps λ on two
circuits, prints the WL series and verifies the best-of-three protocol
is well-founded (the best λ differs from the worst by a measurable
margin, and no single λ dominates by construction).
"""

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.api import prepare_design, run_flow
from repro.gen.designs import suite_specs

LAMBDAS = (0.2, 0.5, 0.8)
CIRCUITS = ("c1", "c8")


def test_ablation_lambda_sweep(benchmark):
    results = {}

    def sweep():
        for name in CIRCUITS:
            spec = next(s for s in suite_specs(SCALE) if s.name == name)
            prepared = prepare_design(spec)
            flat, truth, die_w, die_h = (prepared.flat, prepared.truth,
                                          prepared.die_w, prepared.die_h)
            for lam in LAMBDAS:
                metrics = run_flow(flat, truth, f"hidap-l{lam}", die_w,
                                   die_h, seed=SEED, effort=EFFORT)
                results[(name, lam)] = metrics.wl_meters
        return results

    pedantic(benchmark, sweep)

    print("\nAblation A: WL (m) vs lambda:")
    print(f"{'circuit':8s} " + " ".join(f"l={l:<6}" for l in LAMBDAS)
          + " best")
    for name in CIRCUITS:
        series = [results[(name, lam)] for lam in LAMBDAS]
        best = LAMBDAS[series.index(min(series))]
        print(f"{name:8s} " + " ".join(f"{wl:7.3f}" for wl in series)
              + f"  l={best}")

    for name in CIRCUITS:
        series = [results[(name, lam)] for lam in LAMBDAS]
        assert all(wl > 0 for wl in series)
        # The sweep is meaningful: lambda changes the result.
        assert max(series) > min(series)
