"""Fig. 1 — multi-level block floorplan evolution of a 16-macro design.

The paper's opening example: the first partition finds two blocks of 8
macros and a cell-only block between them (a); each macro block is then
partitioned again (b, c) until all 16 macro positions are fixed with
space left for their standard cells (d).

The bench builds an equivalent design (two 8-macro subsystems joined by
a macro-free switch fabric), runs HiDaP with tracing, prints the ASCII
evolution and asserts the multi-level structure: a top level with two
8-macro blocks, deeper levels that split them, and 16 legally placed
macros at the end.
"""

import random

from benchmarks.conftest import pedantic
from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort
from repro.gen.designs import die_for
from repro.gen.macros import make_macro_library
from repro.gen.patterns import build_memsys, build_xbar
from repro.gen.spec import SubsystemSpec
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.viz.ascii_art import ascii_floorplan


def build_16_macro_design() -> Design:
    """Two 8-macro memory subsystems talking through a cell-only
    crossbar — the paper's Fig. 1 configuration."""
    rng = random.Random(7)
    design = Design("fig1")
    library = make_macro_library(seed=11, data_width=32)
    left = build_memsys(design, SubsystemSpec("memsys", "left", 8, 32,
                                              stages=4, filler_cells=60),
                        library, rng)
    xbar = build_xbar(design, SubsystemSpec("xbar", "mid", 0, 32,
                                            stages=4, filler_cells=120),
                      library, rng)
    right = build_memsys(design, SubsystemSpec("memsys", "right", 8, 32,
                                               stages=4, filler_cells=60),
                         library, rng)
    top = ModuleBuilder("fig1_top")
    top.input("chip_in", 32)
    top.output("chip_out", 32)
    top.wire("a", 32)
    top.wire("b", 32)
    il = top.instance(left, "u_left")
    ix = top.instance(xbar, "u_mid")
    ir = top.instance(right, "u_right")
    top.connect_bus("chip_in", il, "din")
    top.connect_bus("a", il, "dout")
    top.connect_bus("a", ix, "din")
    top.connect_bus("b", ix, "dout")
    top.connect_bus("b", ir, "din")
    top.connect_bus("chip_out", ir, "dout")
    design.add_module(top.build())
    design.set_top("fig1_top")
    return design


def test_fig1_multilevel_evolution(benchmark):
    design = build_16_macro_design()
    die_w, die_h = die_for(design, utilization=0.5)

    def place():
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST,
                                   keep_trace=True))
        return placer.place(design, die_w, die_h)

    placement = pedantic(benchmark, place)

    print(f"\nFig. 1 evolution ({len(placement.traces)} levels, "
          f"die {die_w}x{die_h}):")
    for trace in placement.traces[:4]:
        labels = []
        for name, count in zip(trace.block_names,
                               trace.block_macro_counts):
            short = name.split("/")[-1]
            labels.append(f"{short}({count})" if count else short)
        print(f"  depth {trace.depth} at "
              f"'{trace.level_path or '<top>'}': {', '.join(labels)}")
    print("\nfinal macro placement:")
    rects = [(p.path.split("/")[-1], p.rect)
             for p in placement.macros.values()]
    print(ascii_floorplan(placement.die, rects, width=56))

    # Fig. 1a: the first partition holds two 8-macro blocks.
    top_trace = placement.traces[0]
    counts = sorted(top_trace.block_macro_counts, reverse=True)
    assert counts[0] == 8 and counts[1] == 8
    # Deeper levels split those blocks further.
    assert any(t.depth >= 1 for t in placement.traces)
    # Fig. 1d: all 16 macros legally placed.
    assert len(placement.macros) == 16
    assert placement.macro_overlap_area() == 0.0
    assert placement.macros_inside_die()
