"""Fig. 4 — the block area model: minimum area, target area, shape curve.

The paper's figure shows an 8-macro block: the blue rectangle is the
minimum area a_m (macros + cells), the red rectangle the target area
a_t, and the shape curve Γ the Pareto front of bounding boxes that can
hold some placement of the 8 macros.

The bench regenerates Γ for an 8-macro set, prints the Pareto points
and verifies the curve's defining properties.
"""

from benchmarks.conftest import pedantic
from repro.shapecurve.curve import ShapeCurve
from repro.shapecurve.generation import ShapeGenConfig, curve_for_macros

#: Eight macros like the darker boxes of Fig. 4a (mixed sizes).
MACROS = [(12, 8), (12, 8), (10, 10), (8, 6),
          (8, 6), (14, 6), (6, 6), (10, 8)]


def test_fig4_shape_curve(benchmark):
    curves = [ShapeCurve.for_rect(w, h) for w, h in MACROS]

    def generate():
        return curve_for_macros(curves, ShapeGenConfig(seed=4))

    curve = pedantic(benchmark, generate)

    macro_area = sum(w * h for w, h in MACROS)
    area_min = macro_area + 0.35 * macro_area      # + std cells (a_m)
    area_target = area_min * 1.25                  # + absorbed glue (a_t)
    print(f"\nFig. 4: 8-macro block, macro area={macro_area}, "
          f"a_m={area_min:.0f}, a_t={area_target:.0f}")
    print("shape curve Γ (Pareto points):")
    for w, h in curve.points:
        print(f"  {w:7.2f} x {h:7.2f}  (area {w * h:7.1f}, "
              f"overhead {100 * (w * h / macro_area - 1):4.1f}%)")

    # Γ properties: Pareto (no domination), superset of macro area,
    # reasonable packing overhead at the best point.
    points = curve.points
    assert len(points) >= 3, "a diverse front, not a single box"
    for i, (w1, h1) in enumerate(points):
        for j, (w2, h2) in enumerate(points):
            if i != j:
                assert not (w1 <= w2 and h1 <= h2)
    assert curve.min_area >= macro_area
    assert curve.min_area <= macro_area * 1.45, \
        "slicing packing overhead should stay bounded"
    # The a_t box (as a square) must be feasible: target area gives
    # the macros room.
    side = area_target ** 0.5
    assert curve.feasible(side, side)
