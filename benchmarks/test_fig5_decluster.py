"""Fig. 5 — hierarchical declustering: finding HCB and HCG.

The figure shows a hierarchy cut below a node n: nodes with big area or
macros become blocks (HCB, grey), small macro-free nodes become glue
(HCG).  The bench declusters the top of suite circuit c1 and prints the
cut, then checks the cut's defining properties (it is a proper
partition of the subtree's area, macros only in HCB, glue strictly
small).
"""

import pytest

from benchmarks.conftest import SCALE, pedantic
from repro.core.decluster import decluster
from repro.gen.designs import build_design, suite_specs
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.flatten import flatten

MIN_AREA_FRAC = 0.01
OPEN_AREA_FRAC = 0.40


def test_fig5_hierarchical_declustering(benchmark):
    spec = suite_specs(SCALE)[0]
    design, _truth = build_design(spec)
    flat = flatten(design)
    tree = build_hierarchy(flat)

    def run():
        return decluster(tree.root, flat, MIN_AREA_FRAC, OPEN_AREA_FRAC)

    result = pedantic(benchmark, run)

    total = tree.root.area
    print(f"\nFig. 5: cut of {spec.name} at the top level "
          f"(area {total:.0f}, min_area={MIN_AREA_FRAC:.0%}, "
          f"open_area={OPEN_AREA_FRAC:.0%}):")
    print(f"  HCB ({len(result.blocks)} blocks):")
    for seed in result.blocks:
        print(f"    {seed.name:28s} area={seed.area(flat):9.1f} "
              f"macros={seed.macro_count()}")
    print(f"  HCG ({len(result.glue)} glue nodes, "
          f"{len(result.loose_glue_cells)} loose cells)")

    # Every macro of the subtree lands in exactly one HCB block.
    block_macros = []
    for seed in result.blocks:
        block_macros.extend(seed.macros())
    assert sorted(block_macros) == sorted(tree.root.macros)

    # Glue nodes are small and macro-free.
    for node in result.glue:
        assert node.macro_count == 0
        assert node.area <= MIN_AREA_FRAC * total + 1e-6

    # The cut partitions the area: blocks + glue + loose = subtree.
    covered = sum(seed.area(flat) for seed in result.blocks)
    covered += sum(node.area for node in result.glue)
    covered += sum(flat.cells[i].ctype.area
                   for i in result.loose_glue_cells)
    assert covered == pytest.approx(total, rel=1e-6)
