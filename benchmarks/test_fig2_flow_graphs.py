"""Fig. 2 — block-flow vs macro-flow connection graphs.

The paper's didactic system: four macro blocks A-D communicating through
a standard-cell block X.  Block-flow analysis sees the star pattern
A,B,C,D <-> X (Fig. 2a); macro-flow analysis reveals the chain
A -> B -> C -> D running *through* X (Fig. 2b).

The bench builds that system at netlist level, derives Gdf twice and
asserts exactly those two views.
"""


from benchmarks.conftest import pedantic
from repro.core.dataflow import infer_affinity
from repro.core.decluster import decluster
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.netlist.flatten import flatten
from tests.conftest import make_ram


WIDTH = 16


def _macro_block(design, name, ram):
    b = ModuleBuilder(name)
    b.input("din", WIDTH)
    b.output("dout", WIDTH)
    b.wire("to_m", WIDTH)
    b.wire("from_m", WIDTH)
    b.register_array("in_reg", WIDTH, d="din", q="to_m")
    inst = b.instance(ram, "mem")
    b.connect_bus("to_m", inst, "din")
    b.connect_bus("from_m", inst, "dout")
    b.register_array("out_reg", WIDTH, d="from_m", q="dout")
    module = b.build()
    design.add_module(module)
    return module


def _hub_block(design, name, n_channels):
    """The cell-only block X: every A->B hop passes through it."""
    b = ModuleBuilder(name)
    for k in range(n_channels):
        b.input(f"i{k}", WIDTH)
        b.output(f"o{k}", WIDTH)
        b.wire(f"m{k}", WIDTH)
        b.comb_cloud(f"mix{k}", [f"i{k}"], f"m{k}")
        b.register_array(f"ch{k}", WIDTH, d=f"m{k}", q=f"o{k}")
    module = b.build()
    design.add_module(module)
    return module


def build_fig2_design():
    """A -> X -> B -> X -> C -> X -> D, X being one hub block."""
    design = Design("fig2")
    ram = make_ram("RAMF2", WIDTH, 8.0, 6.0)
    blocks = {}
    for name in "ABCD":
        blocks[name] = _macro_block(design, f"blk_{name}", ram)
    hub = _hub_block(design, "hub", 3)

    top = ModuleBuilder("fig2_top")
    top.input("chip_in", WIDTH)
    top.output("chip_out", WIDTH)
    insts = {name: top.instance(blocks[name], f"u{name}")
             for name in "ABCD"}
    ix = top.instance(hub, "uX")
    wires = {}
    for w in ("a2x", "x2b", "b2x", "x2c", "c2x", "x2d"):
        top.wire(w, WIDTH)
        wires[w] = w
    top.connect_bus("chip_in", insts["A"], "din")
    top.connect_bus("a2x", insts["A"], "dout")
    top.connect_bus("a2x", ix, "i0")
    top.connect_bus("x2b", ix, "o0")
    top.connect_bus("x2b", insts["B"], "din")
    top.connect_bus("b2x", insts["B"], "dout")
    top.connect_bus("b2x", ix, "i1")
    top.connect_bus("x2c", ix, "o1")
    top.connect_bus("x2c", insts["C"], "din")
    top.connect_bus("c2x", insts["C"], "dout")
    top.connect_bus("c2x", ix, "i2")
    top.connect_bus("x2d", ix, "o2")
    top.connect_bus("x2d", insts["D"], "din")
    top.connect_bus("chip_out", insts["D"], "dout")
    design.add_module(top.build())
    design.set_top("fig2_top")
    return design


def test_fig2_block_vs_macro_flow(benchmark):
    design = build_fig2_design()
    flat = flatten(design)
    tree = build_hierarchy(flat)
    gnet = build_gnet(flat)
    gseq = build_gseq(gnet, flat)
    result = decluster(tree.root, flat, 0.005, 0.60)
    names = [s.name for s in result.blocks]
    assert set(names) == {"uA", "uB", "uC", "uD", "uX"}

    def infer():
        return infer_affinity(gseq, result.blocks, [], lam=0.5,
                              latency_k=1.0)

    gdf, _matrix = pedantic(benchmark, infer)

    index = {s.name: i for i, s in enumerate(result.blocks)}
    print("\nFig. 2a block-flow edges (direct physical connections):")
    block_edges = set()
    macro_edges = set()
    for (i, j), edge in sorted(gdf.edges.items()):
        a, b = gdf.nodes[i].name, gdf.nodes[j].name
        if not edge.block_hist.is_empty():
            block_edges.add((a, b))
            print(f"  {a} -> {b}: {dict(edge.block_hist.items())}")
    print("Fig. 2b macro-flow edges (global dataflow):")
    for (i, j), edge in sorted(gdf.edges.items()):
        a, b = gdf.nodes[i].name, gdf.nodes[j].name
        if not edge.macro_hist.is_empty():
            macro_edges.add((a, b))
            print(f"  {a} -> {b}: {dict(edge.macro_hist.items())}")

    # Fig. 2a: block flow is the star around X — every macro block
    # talks to X, none talks directly to another macro block.
    for name in "ABCD":
        assert (f"u{name}", "uX") in block_edges \
            or ("uX", f"u{name}") in block_edges
    for a in "ABCD":
        for b in "ABCD":
            assert (f"u{a}", f"u{b}") not in block_edges

    # Fig. 2b: macro flow reveals the chain A->B->C->D through X.
    assert ("uA", "uB") in macro_edges
    assert ("uB", "uC") in macro_edges
    assert ("uC", "uD") in macro_edges
    assert ("uA", "uD") not in macro_edges      # only via longer latency
