"""Ablation D — the macro-flipping post-pass.

Flipping mirrors each macro inside its fixed footprint to shorten the
nets on its pins (Algorithm 1, line 6).  The bench measures wirelength
with and without the pass: geometry is identical, so any WL difference
is purely pin-orientation, and flipping must never hurt.
"""

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.core import HiDaP, HiDaPConfig
from repro.api import evaluate_placement, prepare_design
from repro.gen.designs import suite_specs

CIRCUITS = ("c1", "c8")


def test_ablation_flipping(benchmark):
    results = {}

    def sweep():
        for name in CIRCUITS:
            spec = next(s for s in suite_specs(SCALE)
                        if s.name == name)
            prepared = prepare_design(spec)
            flat, _truth, die_w, die_h = (prepared.flat, prepared.truth,
                                          prepared.die_w, prepared.die_h)
            for flipping in (False, True):
                config = HiDaPConfig(seed=SEED, flipping=flipping,
                                     effort=EFFORT)
                placement = HiDaP(config).place(flat, die_w, die_h)
                metrics = evaluate_placement(flat, placement)
                results[(name, flipping)] = (placement, metrics)
        return results

    pedantic(benchmark, sweep)

    print("\nAblation D: macro flipping on/off:")
    for name in CIRCUITS:
        off = results[(name, False)][1].wl_meters
        on = results[(name, True)][1].wl_meters
        gain = 100.0 * (off - on) / off
        print(f"  {name}: WL off={off:7.3f}m on={on:7.3f}m "
              f"gain={gain:+5.2f}%")

    for name in CIRCUITS:
        placement_off = results[(name, False)][0]
        placement_on = results[(name, True)][0]
        # Same footprints either way (flipping never moves macros).
        rects_off = sorted((p.rect.x, p.rect.y, p.rect.w, p.rect.h)
                           for p in placement_off.macros.values())
        rects_on = sorted((p.rect.x, p.rect.y, p.rect.w, p.rect.h)
                          for p in placement_on.macros.values())
        assert rects_off == rects_on
        # Flipping must not lengthen the macro-pin nets it optimizes.
        off_m = results[(name, False)][1]
        on_m = results[(name, True)][1]
        assert on_m.wl_meters <= off_m.wl_meters * 1.02
