"""Fig. 7 — dataflow inference: Gseq paths becoming Gdf histograms.

The figure traces how blue (block-flow) and red (macro-flow) paths in
Gseq generate Gdf edges whose histograms bin bits by latency.  The
bench builds a netlist-level equivalent of the figure's structure, runs
the inference and prints/checks the histograms, including the
score(h, k) condensation.
"""

import pytest

from benchmarks.conftest import pedantic
from repro.core.dataflow import infer_affinity
from repro.core.decluster import decluster
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.netlist.flatten import flatten
from repro.viz.ascii_art import ascii_histogram
from tests.conftest import make_ram, make_stage


def build_fig7_design():
    """Block P feeds block Q twice: directly (latency 1, 16 bits) and
    through a two-deep glue pipeline (latency 3, 8 bits)."""
    design = Design("fig7")
    ram = make_ram("RAMF7", 16, 8.0, 6.0)
    p = make_stage("blk_p", 16, ram)
    q = make_stage("blk_q", 16, ram)
    design.add_module(p)
    design.add_module(q)

    top = ModuleBuilder("fig7_top")
    top.input("chip_in", 16)
    top.output("chip_out", 16)
    ip = top.instance(p, "uP")
    iq = top.instance(q, "uQ")
    top.wire("direct", 16)
    top.wire("g1", 8)
    top.wire("g2", 8)
    top.connect_bus("chip_in", ip, "din")
    top.connect_bus("direct", ip, "dout")
    # Direct path: 16 bits at latency 1.
    top.connect_bus("direct", iq, "din")
    # Glue path: 8 of the bits also travel through two glue registers.
    top.register_array("glue_a", 8, d="direct", q="g1")
    top.register_array("glue_b", 8, d="g1", q="g2")
    # The glue lands on Q's input bus upper half... it must not short
    # with the direct bus, so it feeds Q via a second stage input:
    # model it as extra loads on the same input through mixing cells.
    top.wire("side", 16)
    top.comb_cloud("side_mix", ["g2"], "side")
    top.connect_bus("chip_out", iq, "dout")
    design.add_module(top.build())
    design.set_top("fig7_top")
    return design, ("uP", "uQ")


def test_fig7_dataflow_inference(benchmark):
    design, (name_p, name_q) = build_fig7_design()
    flat = flatten(design)
    tree = build_hierarchy(flat)
    gseq = build_gseq(build_gnet(flat), flat)
    result = decluster(tree.root, flat, 0.002, 0.9)
    by_name = {s.name: i for i, s in enumerate(result.blocks)}
    assert name_p in by_name and name_q in by_name

    def infer():
        return infer_affinity(gseq, result.blocks, [], lam=0.5,
                              latency_k=1.0)

    gdf, matrix = pedantic(benchmark, infer)

    ip, iq = by_name[name_p], by_name[name_q]
    edge = gdf.edge(ip, iq)
    assert edge is not None

    print("\nFig. 7: P -> Q block-flow histogram:")
    print(ascii_histogram(dict(edge.block_hist.items())))
    print("P -> Q macro-flow histogram:")
    print(ascii_histogram(dict(edge.macro_hist.items())))
    for k in (0.5, 1.0, 2.0):
        print(f"score(block, k={k}) = {edge.block_hist.score(k):7.2f}   "
              f"score(macro, k={k}) = {edge.macro_hist.score(k):7.2f}")

    # Block flow: the direct 16-bit hop at latency 1.
    assert edge.block_hist.bins.get(1) == 16
    # Macro flow: P's memory reaches Q's memory crossing the register
    # stages (out_reg -> in_reg -> mem = 3 cycles beyond the macro).
    assert edge.macro_hist.bins, "macro flow must discover mem->mem"
    assert min(edge.macro_hist.bins) >= 3
    # score decreases with k (latency decay).
    assert edge.block_hist.score(2.0) <= edge.block_hist.score(0.5)
    # The blended affinity matrix entry combines both flows.
    assert matrix[ip][iq] == pytest.approx(edge.affinity(0.5, 1.0))
