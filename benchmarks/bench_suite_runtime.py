#!/usr/bin/env python
"""Suite-runtime benchmark: serial vs parallel ``run_suite``.

Runs the comparison suite twice — serially and with ``--workers N`` —
verifies the rows are identical, and writes wall-clock numbers to
``benchmarks/artifacts/BENCH_suite.json`` so future PRs have a
performance trajectory to compare against.

Not collected by pytest (the file is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_suite_runtime.py \
        [--scale tiny] [--designs c1,c2] [--flows indeda,handfp] \
        [--effort fast] [--workers 4] [--seed 1]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.api import DEFAULT_FLOWS, run_suite, split_flow_specs
from repro.core.config import Effort


def _rows_key(result):
    return [(r.design, r.flow, r.wl_meters, r.grc_percent,
             r.wns_percent, r.tns, r.wl_norm) for r in result.rows]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--designs", default="c1,c2",
                        help="comma-separated subset ('all' for every "
                             "design)")
    parser.add_argument("--flows", default=",".join(DEFAULT_FLOWS))
    parser.add_argument("--effort", default="fast",
                        choices=("fast", "normal", "high"))
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/artifacts/BENCH_suite.json)")
    args = parser.parse_args()

    designs = (None if args.designs == "all"
               else args.designs.split(","))
    flows = tuple(split_flow_specs(args.flows))
    effort = Effort(args.effort)

    common = dict(scale=args.scale, designs=designs, flows=flows,
                  seed=args.seed, effort=effort)

    print(f"serial run: scale={args.scale} designs={args.designs} "
          f"flows={','.join(flows)} effort={args.effort}")
    t0 = time.perf_counter()
    serial = run_suite(**common)
    serial_seconds = time.perf_counter() - t0

    print(f"parallel run: workers={args.workers}")
    t0 = time.perf_counter()
    parallel = run_suite(workers=args.workers, **common)
    parallel_seconds = time.perf_counter() - t0

    identical = _rows_key(serial) == _rows_key(parallel)
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0

    record = {
        "bench": "suite_runtime",
        "scale": args.scale,
        "designs": args.designs,
        "flows": list(flows),
        "effort": args.effort,
        "seed": args.seed,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "rows": len(serial.rows),
        "rows_identical": identical,
    }

    out = args.out or os.path.join(os.path.dirname(__file__),
                                   "artifacts", "BENCH_suite.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=1)
    print(f"\nserial   {serial_seconds:7.1f}s")
    print(f"parallel {parallel_seconds:7.1f}s  (x{speedup:.2f} with "
          f"{args.workers} workers)")
    print(f"rows identical: {identical}")
    print(f"wrote {out}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
