#!/usr/bin/env python
"""Suite-runtime benchmark: serial vs parallel vs compiled-design store.

Runs the comparison suite four ways — serial, parallel without a
store (every worker recompiles: the legacy baseline), parallel against
a cold :class:`repro.service.CompiledDesignStore` (compile + persist),
and parallel against the now-warm store (memory-mapped load +
shared-memory handoff, zero compile work in workers) — verifies all
four produce bit-identical rows, and writes wall-clock numbers to
``benchmarks/artifacts/BENCH_suite.json`` so future PRs have a
performance trajectory to compare against.

Row identity across all four phases is the hard gate; the warm-store
speedup target (warm parallel >= 1.0x of serial) is a soft gate that
warns on loaded/single-core runners.

Not collected by pytest (the file is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_suite_runtime.py \
        [--scale tiny] [--designs c1,c2] [--flows indeda,handfp] \
        [--effort fast] [--workers 4] [--seed 1]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time

from repro.api import (
    DEFAULT_FLOWS,
    RunOptions,
    run_suite,
    split_flow_specs,
)
from repro.core.config import Effort


def _rows_key(result):
    return [(r.design, r.flow, r.wl_meters, r.grc_percent,
             r.wns_percent, r.tns, r.wl_norm) for r in result.rows]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--designs", default="c1,c2",
                        help="comma-separated subset ('all' for every "
                             "design)")
    parser.add_argument("--flows", default=",".join(DEFAULT_FLOWS))
    parser.add_argument("--effort", default="fast",
                        choices=("fast", "normal", "high"))
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/artifacts/BENCH_suite.json)")
    args = parser.parse_args()

    designs = (None if args.designs == "all"
               else args.designs.split(","))
    flows = tuple(split_flow_specs(args.flows))
    options = RunOptions(seed=args.seed, effort=Effort(args.effort))

    common = dict(scale=args.scale, designs=designs, flows=flows,
                  options=options)
    store_dir = tempfile.mkdtemp(prefix="hidap-bench-store-")
    phases = {}
    results = {}

    def timed(label, **kwargs):
        print(f"{label} run: scale={args.scale} "
              f"designs={args.designs} flows={','.join(flows)} "
              f"effort={args.effort}")
        t0 = time.perf_counter()
        results[label] = run_suite(**common, **kwargs)
        phases[label] = time.perf_counter() - t0

    try:
        timed("serial")
        timed("parallel", workers=args.workers)
        timed("cold_store", workers=args.workers, store=store_dir)
        timed("warm_store", workers=args.workers, store=store_dir)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    baseline = _rows_key(results["serial"])
    identical = all(_rows_key(results[p]) == baseline
                    for p in ("parallel", "cold_store", "warm_store"))
    speedup = (phases["serial"] / phases["parallel"]
               if phases["parallel"] else 0.0)
    warm_speedup = (phases["serial"] / phases["warm_store"]
                    if phases["warm_store"] else 0.0)

    record = {
        "bench": "suite_runtime",
        "scale": args.scale,
        "designs": args.designs,
        "flows": list(flows),
        "effort": args.effort,
        "seed": args.seed,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "serial_seconds": round(phases["serial"], 3),
        "parallel_seconds": round(phases["parallel"], 3),
        "cold_store_seconds": round(phases["cold_store"], 3),
        "warm_store_seconds": round(phases["warm_store"], 3),
        "speedup": round(speedup, 3),
        "warm_store_speedup": round(warm_speedup, 3),
        "rows": len(results["serial"].rows),
        "rows_identical": identical,
    }

    out = args.out or os.path.join(os.path.dirname(__file__),
                                   "artifacts", "BENCH_suite.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=1)
    print(f"\nserial      {phases['serial']:7.1f}s")
    print(f"parallel    {phases['parallel']:7.1f}s  (x{speedup:.2f} "
          f"with {args.workers} workers, no store)")
    print(f"cold store  {phases['cold_store']:7.1f}s  "
          f"(compile + persist)")
    print(f"warm store  {phases['warm_store']:7.1f}s  "
          f"(x{warm_speedup:.2f} vs serial)")
    print(f"rows identical: {identical}")
    if warm_speedup < 1.0:
        print(f"WARNING: warm-store parallel slower than serial "
              f"(x{warm_speedup:.2f}; soft gate — expected on "
              f"loaded/single-core runners)")
    print(f"wrote {out}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
