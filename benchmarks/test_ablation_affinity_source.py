"""Ablation E — dataflow affinity vs hierarchy pseudo-nets.

This is the paper's central claim in miniature: prior hierarchy-aware
floorplanners (e.g. MP-Trees [5]) attract hierarchically-close macros
with pseudo-nets; HiDaP instead infers latency/width *dataflow*
affinity from the array structure.  The bench runs the identical
multi-level machinery with both affinity sources and compares the
referee's wirelength: dataflow must win on circuits whose subsystems
talk across the hierarchy.
"""

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.core import HiDaP, HiDaPConfig
from repro.api import evaluate_placement, prepare_design
from repro.gen.designs import suite_specs

CIRCUITS = ("c1", "c5")


def test_ablation_affinity_source(benchmark):
    results = {}

    def sweep():
        for name in CIRCUITS:
            spec = next(s for s in suite_specs(SCALE)
                        if s.name == name)
            prepared = prepare_design(spec)
            flat, _truth, die_w, die_h = (prepared.flat, prepared.truth,
                                          prepared.die_w, prepared.die_h)
            for mode in ("dataflow", "pseudonet"):
                config = HiDaPConfig(seed=SEED, affinity_mode=mode,
                                     effort=EFFORT)
                placement = HiDaP(config).place(flat, die_w, die_h)
                results[(name, mode)] = evaluate_placement(flat,
                                                           placement)
        return results

    pedantic(benchmark, sweep)

    print("\nAblation E: affinity source (same placer, different "
          "attraction model):")
    wins = 0
    for name in CIRCUITS:
        df = results[(name, "dataflow")]
        pn = results[(name, "pseudonet")]
        gain = 100.0 * (pn.wl_meters - df.wl_meters) / pn.wl_meters
        if df.wl_meters < pn.wl_meters:
            wins += 1
        print(f"  {name}: dataflow WL={df.wl_meters:7.3f}m  "
              f"pseudonet WL={pn.wl_meters:7.3f}m  "
              f"dataflow gain={gain:+5.1f}%")

    for (name, mode), metrics in results.items():
        assert metrics.macro_overlap == 0.0, (name, mode)
    # The paper's thesis: dataflow affinity is the better signal.
    assert wins >= 1, \
        "dataflow affinity should beat hierarchy pseudo-nets somewhere"
