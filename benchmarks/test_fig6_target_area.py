"""Fig. 6 — assigning HCG (glue) area to HCB blocks.

The figure shows glue components being absorbed by the closest block as
a multi-source BFS reaches them.  The bench runs the assignment on
suite circuit c1's top level and checks conservation (no glue area is
lost) and graph locality (each subsystem's internal glue goes to that
subsystem's block).
"""

import pytest

from benchmarks.conftest import SCALE, pedantic
from repro.core.decluster import decluster
from repro.core.target_area import (
    assign_target_areas,
    glue_cells_of,
    scale_targets,
)
from repro.gen.designs import build_design, die_for, suite_specs
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.flatten import flatten


def test_fig6_target_area_assignment(benchmark):
    spec = suite_specs(SCALE)[0]
    design, _truth = build_design(spec)
    flat = flatten(design)
    tree = build_hierarchy(flat)
    gnet = build_gnet(flat)
    result = decluster(tree.root, flat, 0.01, 0.40)

    def run():
        return assign_target_areas(flat, gnet, result)

    absorbed = pedantic(benchmark, run)

    glue_area = sum(flat.cells[i].ctype.area
                    for i in glue_cells_of(result))
    die_w, die_h = die_for(design)
    targets = scale_targets([s.area(flat) for s in result.blocks],
                            absorbed, die_w * die_h)

    print(f"\nFig. 6: glue area {glue_area:.0f} absorbed into "
          f"{len(result.blocks)} blocks:")
    for seed, extra, target in zip(result.blocks, absorbed, targets):
        a_m = seed.area(flat)
        print(f"  {seed.name:28s} a_m={a_m:9.1f} +glue={extra:8.1f} "
              f"-> a_t={target:9.1f}")

    # Conservation: all glue area distributed.
    assert sum(absorbed) == pytest.approx(glue_area, rel=1e-9)
    # Budget: targets fill the die exactly.
    assert sum(targets) == pytest.approx(die_w * die_h, rel=1e-9)
    # Every target covers its block's own area.
    for seed, target in zip(result.blocks, targets):
        assert target >= seed.area(flat) - 1e-6
