"""Fig. 9 — standard-cell density maps for c3 under the three flows,
plus the top-level Gdf block floorplan (Fig. 9d).

The paper's observation: IndEDA and handFP place macros on the walls,
HiDaP finds distributed locations and therefore "shows the smallest
peak cell density near the macros in circuit walls".  We regenerate the
three density rasters, write them as SVGs, and check the peak-density
ordering plus wall-adjacent density specifically.
"""

import os

import numpy as np

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.baselines.handfp import place_handfp
from repro.baselines.indeda import place_indeda
from repro.core import HiDaP, HiDaPConfig
from repro.core.dataflow import infer_affinity
from repro.core.decluster import decluster
from repro.core.ports import assign_port_positions
from repro.api import prepare_design
from repro.gen.designs import suite_specs
from repro.geometry.rect import Rect
from repro.hiergraph.hierarchy import build_hierarchy
from repro.placement.stdcell import place_cells
from repro.viz.density import density_map, density_stats
from repro.viz.dfgraph import svg_dataflow
from repro.viz.svg import svg_density_map


def _near_macro_peak(raster: np.ndarray, macro_rects, die,
                     bins: int) -> float:
    """Peak cell density in the band adjacent to macro footprints.

    This is the quantity the paper's Fig. 9 compares: wall-hugging
    placements squeeze cells into hot ridges alongside the macro rows;
    distributed placements flatten them.
    """
    from scipy.ndimage import binary_dilation
    bw, bh = die.w / bins, die.h / bins
    macro_mask = np.zeros((bins, bins), dtype=bool)
    for r in macro_rects:
        i0 = max(0, int((r.x - die.x) / bw))
        i1 = min(bins - 1, int((r.x2 - die.x - 1e-9) / bw))
        j0 = max(0, int((r.y - die.y) / bh))
        j1 = min(bins - 1, int((r.y2 - die.y - 1e-9) / bh))
        macro_mask[i0:i1 + 1, j0:j1 + 1] = True
    band = binary_dilation(macro_mask, iterations=1) & ~macro_mask
    if not band.any():
        return 0.0
    return float(raster[band].max())


def test_fig9_density_maps(benchmark, artifacts_dir):
    spec = next(s for s in suite_specs(SCALE) if s.name == "c3")
    prepared = prepare_design(spec)
    flat, truth, die_w, die_h = (prepared.flat, prepared.truth,
                                  prepared.die_w, prepared.die_h)
    ports = assign_port_positions(flat.design,
                                  Rect(0, 0, die_w, die_h))

    placements = {}

    def place_all():
        placements["indeda"] = place_indeda(flat, die_w, die_h)
        placements["handfp"] = place_handfp(flat, truth, die_w, die_h)
        placements["hidap"] = HiDaP(
            HiDaPConfig(seed=SEED, lam=0.5, effort=EFFORT)).place(
                flat, die_w, die_h, flow_name="hidap")
        return placements

    pedantic(benchmark, place_all)

    print(f"\nFig. 9: density maps for c3 ({len(flat.cells)} cells, "
          f"{len(flat.macros())} macros)")
    bins = 24
    stats = {}
    for flow, placement in placements.items():
        cells = place_cells(flat, placement, ports)
        raster = density_map(cells, bins=bins)
        macro_rects = [m.rect for m in placement.macros.values()]
        stats[flow] = (density_stats(raster),
                       _near_macro_peak(raster, macro_rects,
                                        placement.die, bins))
        svg = svg_density_map(placement.die, raster, macro_rects)
        path = os.path.join(artifacts_dir, f"fig9_{flow}_density.svg")
        with open(path, "w") as handle:
            handle.write(svg)
        print(f"  {flow:8s} peak={stats[flow][0].peak:7.2f} "
              f"near-macro-peak={stats[flow][1]:7.2f} "
              f"hot={100 * stats[flow][0].hot_fraction:5.1f}%  -> {path}")

    # Fig. 9d: the top-level Gdf block floorplan from HiDaP.
    placement = placements["hidap"]
    tree = build_hierarchy(flat)
    from repro.hiergraph.gnet import build_gnet
    from repro.hiergraph.gseq import build_gseq
    gseq = build_gseq(build_gnet(flat), flat)
    cut = decluster(tree.root, flat, 0.01, 0.40)
    gdf, _ = infer_affinity(gseq, cut.blocks, [], 0.5, 1.0)
    positions = {}
    for i, seed in enumerate(cut.blocks):
        rect = placement.block_rects.get(seed.hier_path() or "")
        if rect is not None:
            positions[i] = rect
    svg = svg_dataflow(gdf, positions, placement.die)
    path = os.path.join(artifacts_dir, "fig9d_gdf_floorplan.svg")
    with open(path, "w") as handle:
        handle.write(svg)
    print(f"  Fig. 9d dataflow floorplan -> {path}")

    # The paper's claim: HiDaP has the smallest peak density near the
    # macro-lined circuit walls.
    assert stats["hidap"][1] <= stats["indeda"][1] + 1e-9
    assert stats["hidap"][1] <= stats["handfp"][1] + 1e-9
