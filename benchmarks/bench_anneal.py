#!/usr/bin/env python
"""Annealing-engine benchmark: incremental vs full cost evaluation.

Places each requested suite design twice with the HiDaP flow — once
with ``HiDaPConfig.incremental=True`` (cached subtree shape curves,
memoized compositions, reused budgeted sub-layouts, transposition
table) and once with full re-evaluation — then verifies the placements
are bit-identical and writes wall-clock and cache-hit statistics to
``benchmarks/artifacts/BENCH_anneal.json`` so future PRs have a
performance trajectory to compare against.  Also micro-benchmarks the
disabled-mode tracer span (the instrumentation the annealer leaves in
its restart loop) against a soft per-span budget — a warning, not a
failure, since shared runners jitter.

Not collected by pytest (the file is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_anneal.py \
        [--scale tiny] [--designs c1,c2] [--effort fast] [--seed 1]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.flatten import flatten


def _placement_key(placement):
    return sorted(
        (idx, (m.rect.x, m.rect.y, m.rect.w, m.rect.h), m.orientation)
        for idx, m in placement.macros.items())


#: Soft ceiling on the disabled tracer's per-span overhead.  A no-op
#: span is one ContextVar read + a shared context manager; anything
#: near a microsecond means real work crept into the disabled path.
NOOP_SPAN_BUDGET_NS = 3000.0


def _noop_span_overhead_ns(iterations: int = 200_000) -> float:
    """Mean ns per enter/exit of a span with tracing disabled.

    This is the exact call shape the annealing loop pays per restart
    (``current_tracer().span(...)`` as a ``with`` block) when no
    tracer is installed — the instrumentation left in hot paths.
    """
    from repro.obs import current_tracer

    start = time.perf_counter()
    for i in range(iterations):
        with current_tracer().span("noop", i=i):
            pass
    return (time.perf_counter() - start) * 1e9 / iterations


def _place(flat, die_w, die_h, seed, effort, incremental):
    config = HiDaPConfig(seed=seed, effort=effort,
                         incremental=incremental)
    placer = HiDaP(config)
    start = time.perf_counter()
    placement = placer.place(flat, die_w, die_h)
    seconds = time.perf_counter() - start
    return (_placement_key(placement), seconds,
            dict(placer.artifacts.eval_counters))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "bench", "full"))
    parser.add_argument("--designs", default="c1,c2",
                        help="comma-separated subset ('all' for every "
                             "design)")
    parser.add_argument("--effort", default="fast",
                        choices=("fast", "normal", "high"))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/artifacts/BENCH_anneal.json)")
    args = parser.parse_args()

    effort = Effort(args.effort)
    specs = {spec.name: spec for spec in suite_specs(args.scale)}
    names = (sorted(specs) if args.designs == "all"
             else args.designs.split(","))

    per_design = []
    all_identical = True
    total_inc = total_full = 0.0
    total_expanded = total_nodes = 0
    for name in names:
        design, _truth = build_design(specs[name])
        die_w, die_h = die_for(design)
        flat = flatten(design)

        inc_key, inc_s, inc_counters = _place(
            flat, die_w, die_h, args.seed, effort, incremental=True)
        full_key, full_s, full_counters = _place(
            flat, die_w, die_h, args.seed, effort, incremental=False)

        identical = inc_key == full_key
        all_identical = all_identical and identical
        total_inc += inc_s
        total_full += full_s
        expanded = inc_counters.get("layout_nodes_expanded", 0)
        nodes = inc_counters.get("layout_nodes_total", 0)
        total_expanded += expanded
        total_nodes += nodes
        ratio = nodes / expanded if expanded else 0.0
        per_design.append({
            "design": name,
            "incremental_seconds": round(inc_s, 3),
            "full_seconds": round(full_s, 3),
            "speedup": round(full_s / inc_s, 3) if inc_s else 0.0,
            "identical": identical,
            "expansion_ratio": round(ratio, 2),
            "counters": inc_counters,
            "full_counters": full_counters,
        })
        print(f"{name}: incremental {inc_s:6.2f}s  full {full_s:6.2f}s "
              f"(x{full_s / inc_s:.2f})  expansions {expanded}/{nodes} "
              f"(x{ratio:.1f} fewer)  identical={identical}")

    overall_ratio = (total_nodes / total_expanded
                     if total_expanded else 0.0)

    noop_ns = _noop_span_overhead_ns()
    noop_ok = noop_ns <= NOOP_SPAN_BUDGET_NS
    print(f"\nno-op tracer span: {noop_ns:.0f} ns/span "
          f"(budget {NOOP_SPAN_BUDGET_NS:.0f} ns)")
    if not noop_ok:
        # Soft gate: loaded shared runners jitter; warn, don't fail.
        print("WARNING: disabled-mode span overhead above budget — "
              "did work creep into the NullTracer path?")

    record = {
        "bench": "anneal_incremental",
        "scale": args.scale,
        "designs": names,
        "effort": args.effort,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "incremental_seconds": round(total_inc, 3),
        "full_seconds": round(total_full, 3),
        "speedup": round(total_full / total_inc, 3) if total_inc else 0.0,
        "layout_nodes_expanded": total_expanded,
        "layout_nodes_total": total_nodes,
        "expansion_ratio": round(overall_ratio, 2),
        "results_identical": all_identical,
        "noop_span_ns": round(noop_ns, 1),
        "noop_span_budget_ns": NOOP_SPAN_BUDGET_NS,
        "noop_span_within_budget": noop_ok,
        "per_design": per_design,
    }

    out = args.out or os.path.join(os.path.dirname(__file__),
                                   "artifacts", "BENCH_anneal.json")
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=1)
    print(f"\nincremental {total_inc:7.2f}s")
    print(f"full        {total_full:7.2f}s  (x{record['speedup']:.2f} "
          "wall-clock win)")
    print(f"layout expansions: {total_expanded} of {total_nodes} "
          f"(x{overall_ratio:.1f} fewer than full evaluation)")
    print(f"results identical: {all_identical}")
    print(f"wrote {out}")
    return 0 if all_identical and overall_ratio >= 3.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
