"""Table II — average WL, WNS and effort for the three flows.

Paper reference (DATE'19, Table II):

    flow     WL      WNS      effort
    IndEDA   1.143   -39.1%   10-30 mins (CPU)
    HiDaP    1.013   -24.6%   0.5-2 hours (CPU)
    handFP   1.000   -17.9%   2-4 weeks (engineers + CPU)

We check the *shape*: IndEDA clearly worse than handFP, HiDaP within a
few percent of handFP, runtimes ordered IndEDA < HiDaP << handFP.
"""

from benchmarks.conftest import pedantic
from repro.api import format_table2, geomean

PAPER = {"indeda": 1.143, "hidap": 1.013, "handfp": 1.000}


def test_table2_summary(suite_result, benchmark):
    rows = suite_result.rows

    def regenerate() -> str:
        return format_table2(rows)

    table = pedantic(benchmark, regenerate)
    print()
    print(table)
    print("\npaper Table II (WL geomean rel. handFP): "
          + ", ".join(f"{k}={v}" for k, v in PAPER.items()))

    wl = {flow: geomean([r.wl_norm for r in rows if r.flow == flow])
          for flow in ("indeda", "hidap", "handfp")}
    runtime = {flow: sum(r.placer_seconds for r in rows
                         if r.flow == flow)
               for flow in ("indeda", "hidap", "handfp")}

    # Shape assertions mirroring the paper's claims.
    assert wl["handfp"] == 1.0
    assert wl["indeda"] > wl["hidap"], \
        "HiDaP must beat the industrial baseline on average"
    assert abs(wl["hidap"] - 1.0) < abs(wl["indeda"] - 1.0), \
        "HiDaP must sit closer to handFP than IndEDA does"
    assert runtime["indeda"] < runtime["hidap"] < runtime["handfp"], \
        "effort ordering: IndEDA < HiDaP << handFP"
