"""Fig. 8 — recursive top-down layout generation with area budgets.

The figure shows a slicing tree whose leaves carry target areas and its
layout in a 3x3-unit budget: the region is recursively split according
to subtree target sums, consuming exactly the assigned area.  The bench
reproduces the example, prints the resulting rectangles and verifies
the budget semantics, including the repair path when a macro would not
fit its share.
"""

import pytest

from benchmarks.conftest import pedantic
from repro.floorplan.blocks import Block
from repro.floorplan.budget import budgeted_layout
from repro.geometry.rect import Rect
from repro.shapecurve.curve import ShapeCurve
from repro.slicing.polish import H, PolishExpression, V
from repro.slicing.tree import annotate_areas, annotate_curves, build_tree
from repro.viz.ascii_art import ascii_floorplan

#: Five leaves with the 3x3 = 9 area units of the figure.
TARGETS = [1.5, 1.5, 3.0, 1.5, 1.5]
EXPRESSION = [0, 1, V, 2, H, 3, 4, V, H]


def test_fig8_budgeted_layout(benchmark):
    blocks = [Block(i, f"leaf{i}", ShapeCurve.trivial(), t, t)
              for i, t in enumerate(TARGETS)]
    region = Rect(0, 0, 3, 3)

    def run():
        expr = PolishExpression(EXPRESSION)
        root = build_tree(expr)
        annotate_curves(root, [b.curve for b in blocks])
        annotate_areas(root, [b.area_min for b in blocks],
                       [b.area_target for b in blocks])
        return budgeted_layout(root, region, blocks)

    report = pedantic(benchmark, run)

    print("\nFig. 8: budgeted layout of "
          f"{' '.join(str(t) for t in EXPRESSION)} in a 3x3 region:")
    for i, rect in sorted(report.leaf_rects.items()):
        print(f"  leaf{i}: a_t={TARGETS[i]} -> "
              f"{rect.w:.2f} x {rect.h:.2f} @ ({rect.x:.2f},{rect.y:.2f})"
              f" area={rect.area:.2f}")
    print(ascii_floorplan(region,
                          [(f"l{i}", r)
                           for i, r in report.leaf_rects.items()],
                          width=36))

    # Every a_t demand is met exactly; the layout is the whole budget.
    for i, target in enumerate(TARGETS):
        assert report.leaf_rects[i].area == pytest.approx(target)
    assert sum(r.area for r in report.leaf_rects.values()) \
        == pytest.approx(region.area)
    assert report.is_legal

    # The paper's illegality example: were leaf 0 a 2x1 macro, its
    # share could not hold it and the budgeting must repair by moving
    # sibling area (tracked as repairs + possibly penalties).
    rigid = [Block(i, f"leaf{i}",
                   ShapeCurve([(2, 1)]) if i == 0
                   else ShapeCurve.trivial(),
                   t, t, macro_count=1 if i == 0 else 0)
             for i, t in enumerate(TARGETS)]
    expr = PolishExpression(EXPRESSION)
    root = build_tree(expr)
    annotate_curves(root, [b.curve for b in rigid])
    annotate_areas(root, [b.area_min for b in rigid],
                   [b.area_target for b in rigid])
    repaired = budgeted_layout(root, region, rigid)
    rect0 = repaired.leaf_rects[0]
    assert rect0.w >= 2 - 1e-9 or rect0.h >= 2 - 1e-9 \
        or repaired.macro_deficit > 0
    print(f"with a 2x1 macro in leaf0: repairs={repaired.repairs}, "
          f"leaf0 gets {rect0.w:.2f}x{rect0.h:.2f}, "
          f"macro_deficit={repaired.macro_deficit:.3f}")
