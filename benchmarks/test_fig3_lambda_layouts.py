"""Fig. 3 — layouts under block-only, macro-only and combined flow.

The paper shows three layouts for the Fig. 2 system: with only block
flow (λ=1) blocks crowd around X without a meaningful order (a); with
only macro flow (λ=0) A-D follow the dataflow chain but X can end up
anywhere (b); the combination produces a chain *and* keeps X central
(c).

We quantify the claim: the combined layout must score well on *both*
criteria — chain monotonicity of A..D and X's centrality — while each
pure setting degrades at least one of them (or ties at best).
"""

import statistics

from benchmarks.conftest import pedantic
from benchmarks.test_fig2_flow_graphs import build_fig2_design
from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort
from repro.gen.designs import die_for
from repro.viz.ascii_art import ascii_floorplan


def _block_centers(placement):
    centers = {}
    for path in ("uA", "uB", "uC", "uD", "uX"):
        rect = placement.block_rects.get(path)
        if rect is not None:
            centers[path] = rect.center
    return centers


def _chain_length(centers):
    """Polyline length A->B->C->D: short = dataflow-ordered layout."""
    chain = ["uA", "uB", "uC", "uD"]
    return sum(centers[a].manhattan(centers[b])
               for a, b in zip(chain, chain[1:]))


def _hub_spread(centers):
    """Mean distance from X to the macro blocks: small = central X."""
    return statistics.mean(centers["uX"].manhattan(centers[k])
                           for k in ("uA", "uB", "uC", "uD"))


def test_fig3_lambda_layouts(benchmark):
    design = build_fig2_design()
    die_w, die_h = die_for(design, utilization=0.5)

    def place(lam):
        config = HiDaPConfig(seed=3, lam=lam, effort=Effort.FAST)
        return HiDaP(config).place(design, die_w, die_h)

    results = {}

    def place_all():
        for lam in (1.0, 0.0, 0.5):
            results[lam] = place(lam)
        return results

    pedantic(benchmark, place_all)

    print()
    scores = {}
    for lam, placement in results.items():
        centers = _block_centers(placement)
        chain = _chain_length(centers)
        hub = _hub_spread(centers)
        scores[lam] = (chain, hub)
        label = {1.0: "(a) block flow only",
                 0.0: "(b) macro flow only",
                 0.5: "(c) combined"}[lam]
        print(f"lambda={lam}: {label}: chain={chain:.1f} "
              f"hub-spread={hub:.1f}")
    placement = results[0.5]
    rects = [(p, placement.block_rects[p])
             for p in ("uA", "uB", "uC", "uD", "uX")
             if p in placement.block_rects]
    print(ascii_floorplan(placement.die, rects, width=48))

    diag = die_w + die_h
    chain_combined, hub_combined = scores[0.5]
    chain_block, hub_block = scores[1.0]
    # The combined layout orders the chain at least as well as
    # block-flow-only (which has no order information).
    assert chain_combined <= chain_block + 0.05 * diag
    # And keeps the hub near the macro blocks (within half the die
    # half-perimeter on average).
    assert hub_combined <= 0.5 * diag
    # All three placements are legal.
    for placement in results.values():
        assert placement.macro_overlap_area() == 0.0
        assert placement.macros_inside_die()
