"""Ablation B — the latency-decay exponent k in score(h, k).

The paper's affinity divides bits by latency^k; k controls how sharply
distant (pipelined) communication is discounted.  The bench compares
k ∈ {0, 1, 2} on one circuit: k=0 treats a 4-cycle path like a direct
wire, large k sees only next-cycle neighbours.
"""

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.core import HiDaP, HiDaPConfig
from repro.api import evaluate_placement, prepare_design
from repro.gen.designs import suite_specs

KS = (0.0, 1.0, 2.0)


def test_ablation_latency_exponent(benchmark):
    spec = next(s for s in suite_specs(SCALE) if s.name == "c1")
    prepared = prepare_design(spec)
    flat, _truth, die_w, die_h = (prepared.flat, prepared.truth,
                                  prepared.die_w, prepared.die_h)

    results = {}

    def sweep():
        for k in KS:
            config = HiDaPConfig(seed=SEED, lam=0.5, latency_k=k,
                                 effort=EFFORT)
            placement = HiDaP(config).place(flat, die_w, die_h)
            results[k] = evaluate_placement(flat, placement)
        return results

    pedantic(benchmark, sweep)

    print("\nAblation B: metrics vs latency exponent k (c1):")
    for k in KS:
        m = results[k]
        print(f"  k={k}: WL={m.wl_meters:7.3f}m GRC={m.grc_percent:6.2f}%"
              f" WNS={m.wns_percent:+6.1f}%")

    for k in KS:
        assert results[k].wl_meters > 0
        assert results[k].macro_overlap == 0.0
    # The exponent changes the affinity landscape measurably.
    wls = [results[k].wl_meters for k in KS]
    assert max(wls) > min(wls)
