"""Table III — per-circuit WL / congestion / timing for the three flows.

Paper reference (DATE'19, Table III), per circuit c1..c8: wirelength in
meters and normalized to handFP, global-routing congestion (GRC %),
WNS as % of the clock period and TNS.  Key shapes we check:

* HiDaP beats IndEDA on wirelength in (nearly) all circuits
  (paper: all but one);
* HiDaP's WNS is no worse than IndEDA's on average;
* HiDaP wins outright against handFP on at least one circuit
  (paper: c3 and c8).
"""

from benchmarks.conftest import SCALE, SEED, EFFORT, pedantic
from repro.api import format_table3, prepare_design, run_flow
from repro.gen.designs import suite_specs

PAPER_NORM_WL = {
    "c1": {"indeda": 1.029, "hidap": 1.046},
    "c2": {"indeda": 1.180, "hidap": 1.045},
    "c3": {"indeda": 1.175, "hidap": 0.918},
    "c4": {"indeda": 1.174, "hidap": 1.054},
    "c5": {"indeda": 1.162, "hidap": 1.038},
    "c6": {"indeda": 1.288, "hidap": 1.058},
    "c7": {"indeda": 1.174, "hidap": 1.007},
    "c8": {"indeda": 0.987, "hidap": 0.944},
}


def test_table3_detail(suite_result, benchmark):
    rows = suite_result.rows

    # The benchmarked unit: regenerating one full circuit row set
    # (workload build + all three referee passes on c1's placements
    # would dominate; we re-run the cheapest full flow end to end).
    def regenerate_one_row():
        spec = suite_specs(SCALE)[0]
        prepared = prepare_design(spec)
        flat, truth, die_w, die_h = (prepared.flat, prepared.truth,
                                      prepared.die_w, prepared.die_h)
        return run_flow(flat, truth, "indeda", die_w, die_h, seed=SEED,
                        effort=EFFORT)

    pedantic(benchmark, regenerate_one_row)

    print()
    print(format_table3(rows, suite_result.design_info))
    print("\npaper normalized WL for reference:")
    for circuit, ref in PAPER_NORM_WL.items():
        print(f"  {circuit}: IndEDA {ref['indeda']:.3f}, "
              f"HiDaP {ref['hidap']:.3f}, handFP 1.000")

    by = {(r.design, r.flow): r for r in rows}
    designs = sorted({r.design for r in rows})

    hidap_beats_indeda = sum(
        1 for d in designs
        if by[(d, "hidap")].wl_meters < by[(d, "indeda")].wl_meters)
    assert hidap_beats_indeda >= len(designs) - 1, \
        "HiDaP must beat IndEDA on WL in all but at most one circuit"

    hidap_beats_handfp = sum(
        1 for d in designs
        if by[(d, "hidap")].wl_norm < 1.0)
    assert hidap_beats_handfp >= 1, \
        "HiDaP should win at least one circuit outright (paper: c3, c8)"

    avg_wns_hidap = sum(by[(d, "hidap")].wns_percent
                        for d in designs) / len(designs)
    avg_wns_indeda = sum(by[(d, "indeda")].wns_percent
                         for d in designs) / len(designs)
    assert avg_wns_hidap >= avg_wns_indeda, \
        "HiDaP must close timing better than IndEDA on average"
