"""Ablation C — declustering thresholds (min_area / open_area).

The paper fixes the two thresholds at 1% / 40% of area(nh) (see
DESIGN.md §3 for the naming discussion).  The bench varies them and
reports the cut granularity and resulting wirelength: tiny min_area
floods the level with small soft blocks; a huge one starves it.
"""

from benchmarks.conftest import EFFORT, SCALE, SEED, pedantic
from repro.core import HiDaP, HiDaPConfig
from repro.core.decluster import decluster
from repro.api import evaluate_placement, prepare_design
from repro.gen.designs import suite_specs
from repro.hiergraph.hierarchy import build_hierarchy

VARIANTS = (
    ("paper (1% / 40%)", 0.01, 0.40),
    ("fine  (0.2% / 40%)", 0.002, 0.40),
    ("coarse (10% / 80%)", 0.10, 0.80),
)


def _cut_sizes(tree, flat, min_frac, open_frac):
    """HCB/HCG totals over the top two hierarchy levels."""
    total_blocks = 0
    total_glue = 0
    top = decluster(tree.root, flat, min_frac, open_frac)
    total_blocks += len(top.blocks)
    total_glue += len(top.glue)
    for seed in top.blocks:
        if seed.is_macro_seed or seed.node.is_leaf:
            continue
        inner = decluster(seed.node, flat, min_frac, open_frac)
        total_blocks += len(inner.blocks)
        total_glue += len(inner.glue)
    return total_blocks, total_glue


def test_ablation_decluster_thresholds(benchmark):
    spec = next(s for s in suite_specs(SCALE) if s.name == "c2")
    prepared = prepare_design(spec)
    flat, _truth, die_w, die_h = (prepared.flat, prepared.truth,
                                  prepared.die_w, prepared.die_h)
    tree = build_hierarchy(flat)

    results = {}

    def sweep():
        for label, min_frac, open_frac in VARIANTS:
            n_blocks, n_glue = _cut_sizes(tree, flat, min_frac,
                                          open_frac)
            config = HiDaPConfig(seed=SEED, min_area_frac=min_frac,
                                 open_area_frac=open_frac,
                                 effort=EFFORT)
            placement = HiDaP(config).place(flat, die_w, die_h)
            metrics = evaluate_placement(flat, placement)
            results[label] = (n_blocks, n_glue, metrics)
        return results

    pedantic(benchmark, sweep)

    print("\nAblation C: declustering thresholds "
          "(c2, top two levels):")
    for label, (n_blocks, n_glue, metrics) in results.items():
        print(f"  {label:20s} HCB={n_blocks:3d} HCG={n_glue:3d} "
              f"WL={metrics.wl_meters:7.3f}m "
              f"GRC={metrics.grc_percent:5.2f}%")

    fine = results["fine  (0.2% / 40%)"][0]
    coarse = results["coarse (10% / 80%)"][0]
    assert fine >= coarse, \
        "a finer min_area must not produce a coarser cut"
    for _label, (_b, _g, metrics) in results.items():
        assert metrics.macro_overlap == 0.0
