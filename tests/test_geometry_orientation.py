"""Tests for the eight macro orientations."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.orientation import (
    FOOTPRINT_PRESERVING,
    SIDE_SWAPPING,
    Orientation,
)

dims = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
fracs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestFootprint:
    def test_preserving_group(self):
        for orient in FOOTPRINT_PRESERVING:
            assert orient.footprint(3, 7) == (3, 7)
            assert not orient.swaps_sides

    def test_swapping_group(self):
        for orient in SIDE_SWAPPING:
            assert orient.footprint(3, 7) == (7, 3)
            assert orient.swaps_sides

    def test_groups_cover_all(self):
        assert set(FOOTPRINT_PRESERVING) | set(SIDE_SWAPPING) \
            == set(Orientation)


class TestPinOffsets:
    def test_identity(self):
        assert Orientation.N.pin_offset(1, 2, 10, 6) == (1, 2)

    def test_mirror_y(self):
        assert Orientation.FN.pin_offset(1, 2, 10, 6) == (9, 2)

    def test_rotate_180(self):
        assert Orientation.S.pin_offset(1, 2, 10, 6) == (9, 4)

    def test_mirror_x(self):
        assert Orientation.FS.pin_offset(1, 2, 10, 6) == (1, 4)

    def test_rotate_cw(self):
        # A pin at the lower-left travels to the upper-left under E.
        assert Orientation.E.pin_offset(0, 0, 10, 6) == (0, 10)

    def test_rotate_ccw(self):
        assert Orientation.W.pin_offset(0, 0, 10, 6) == (6, 0)

    @given(fracs, fracs, dims, dims)
    def test_pin_stays_in_footprint(self, fx, fy, w, h):
        """Transformed pins stay inside the oriented footprint."""
        px, py = fx * w, fy * h
        for orient in Orientation:
            ow, oh = orient.footprint(w, h)
            tx, ty = orient.pin_offset(px, py, w, h)
            assert -1e-6 <= tx <= ow + 1e-6
            assert -1e-6 <= ty <= oh + 1e-6

    @given(fracs, fracs, dims, dims)
    def test_double_mirror_is_identity(self, fx, fy, w, h):
        """FN twice = N: mirroring is an involution."""
        px, py = fx * w, fy * h
        mx, my = Orientation.FN.pin_offset(px, py, w, h)
        rx, ry = Orientation.FN.pin_offset(mx, my, w, h)
        assert rx == pytest.approx(px, abs=1e-9)
        assert ry == pytest.approx(py, abs=1e-9)

    def test_flips_of_preserving(self):
        flips = Orientation.flips_of(Orientation.N)
        assert set(flips) == set(FOOTPRINT_PRESERVING)

    def test_flips_of_swapping(self):
        flips = Orientation.flips_of(Orientation.E)
        assert set(flips) == set(SIDE_SWAPPING)
