"""Tests for JSON serialization round-trips."""

import pytest

from repro.netlist.flatten import flatten
from repro.netlist.jsonio import (
    cell_from_json,
    cell_to_json,
    design_from_json,
    design_to_json,
    load_design,
    save_design,
)
from repro.netlist.stats import design_stats
from tests.conftest import make_ram


class TestCellRoundTrip:
    def test_macro_with_geometry(self):
        ram = make_ram()
        back = cell_from_json(cell_to_json(ram))
        assert back == ram

    def test_flop(self):
        from repro.netlist.cells import DEFAULT_FLOP
        back = cell_from_json(cell_to_json(DEFAULT_FLOP))
        assert back == DEFAULT_FLOP


class TestDesignRoundTrip:
    def test_two_stage(self, two_stage_design):
        data = design_to_json(two_stage_design)
        back = design_from_json(data)
        assert design_stats(back).cells \
            == design_stats(two_stage_design).cells
        assert len(flatten(back).nets) \
            == len(flatten(two_stage_design).nets)

    def test_suite_design(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        back = design_from_json(design_to_json(design))
        orig_stats = design_stats(design)
        new_stats = design_stats(back)
        assert new_stats.cells == orig_stats.cells
        assert new_stats.macros == orig_stats.macros
        assert new_stats.total_area == pytest.approx(orig_stats.total_area)

    def test_file_io(self, two_stage_design, tmp_path):
        path = str(tmp_path / "d.json")
        save_design(two_stage_design, path)
        back = load_design(path)
        assert back.name == two_stage_design.name
        assert back.top.name == "top"
