"""Tests for the referee's array-compiled netlist (NetArrays)."""

import numpy as np
import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Rect
from repro.metrics import compile_net_arrays, net_arrays_for
from repro.metrics.netarrays import (
    KIND_MACRO,
    KIND_PORT,
    KIND_STD,
    locate_endpoints,
)
from repro.netlist.flatten import FlatNet
from repro.placement.stdcell import place_cells


def _place_macros(flat, die, orientation=Orientation.N):
    placement = MacroPlacement(design_name=flat.design.name,
                               flow_name="test", die=die)
    for k, cell in enumerate(flat.macros()):
        placement.macros[cell.index] = PlacedMacro(
            cell.index, cell.path,
            Rect(4.0 + 11.0 * k, 5.0 + 2.5 * k, 6.0, 4.0),
            orientation=orientation)
    return placement


class TestCompile:
    def test_csr_structure_matches_nets(self, two_stage_flat):
        arrays = compile_net_arrays(two_stage_flat)
        assert arrays.n_nets == len(two_stage_flat.nets)
        assert arrays.net_offsets[0] == 0
        assert arrays.net_offsets[-1] == arrays.n_rows
        for net in two_stage_flat.nets:
            lo = arrays.net_offsets[net.index]
            hi = arrays.net_offsets[net.index + 1]
            assert hi - lo == len(net.endpoints) + len(net.top_ports)
            assert (arrays.net_of_row[lo:hi] == net.index).all()

    def test_row_kinds(self, two_stage_flat):
        arrays = compile_net_arrays(two_stage_flat)
        n_macro_rows = n_std_rows = n_port_rows = 0
        for net in two_stage_flat.nets:
            for cell_index, _pin, _bit in net.endpoints:
                if two_stage_flat.cells[cell_index].is_macro:
                    n_macro_rows += 1
                else:
                    n_std_rows += 1
            n_port_rows += len(net.top_ports)
        assert int((arrays.kind == KIND_MACRO).sum()) == n_macro_rows
        assert int((arrays.kind == KIND_STD).sum()) == n_std_rows
        assert int((arrays.kind == KIND_PORT).sum()) == n_port_rows

    def test_macro_slots_cover_connected_macros(self, two_stage_flat):
        arrays = compile_net_arrays(two_stage_flat)
        macro_cells = {c.index for c in two_stage_flat.macros()}
        assert set(arrays.macro_cells.tolist()) <= macro_cells
        # Slot footprints are the as-drawn cell dimensions.
        for slot, cell_index in enumerate(arrays.macro_cells.tolist()):
            ctype = two_stage_flat.cells[cell_index].ctype
            assert arrays.macro_w[slot] == ctype.width
            assert arrays.macro_h[slot] == ctype.height


class TestCaching:
    def test_cached_on_flat(self, two_stage_flat):
        first = net_arrays_for(two_stage_flat)
        assert net_arrays_for(two_stage_flat) is first

    def test_cache_invalidated_by_net_count(self, two_stage_design):
        from repro.netlist.flatten import flatten

        flat = flatten(two_stage_design)
        first = net_arrays_for(flat)
        flat.nets.append(FlatNet(len(flat.nets), "extra",
                                 endpoints=[(0, "d", 0), (1, "d", 0)]))
        second = net_arrays_for(flat)
        assert second is not first
        assert second.n_nets == first.n_nets + 1

    def test_prepared_design_shares_compile(self, two_stage_flat):
        from repro.api.prepared import PreparedDesign

        prepared = PreparedDesign.from_flat(two_stage_flat, 40.0, 40.0)
        assert prepared.net_arrays is net_arrays_for(two_stage_flat)


class TestLocate:
    @pytest.mark.parametrize("orientation", list(Orientation))
    def test_macro_pins_match_reference(self, two_stage_flat,
                                        orientation):
        die = Rect(0, 0, 40, 40)
        placement = _place_macros(two_stage_flat, die, orientation)
        ports = assign_port_positions(two_stage_flat.design, die)
        cells = place_cells(two_stage_flat, placement, ports)
        arrays = net_arrays_for(two_stage_flat)
        x, y, located, macro_located = locate_endpoints(
            arrays, placement, cells, ports)

        row = 0
        for net in two_stage_flat.nets:
            for cell_index, pin, bit in net.endpoints:
                cell = two_stage_flat.cells[cell_index]
                if cell.is_macro:
                    ref = placement.macros[cell_index].pin_position(
                        two_stage_flat, pin, bit)
                    assert located[row] and macro_located[row]
                    assert x[row] == ref.x and y[row] == ref.y
                else:
                    ref = cells.cell_pos(cell_index)
                    assert located[row] == (ref is not None)
                    if ref is not None:
                        assert x[row] == ref.x and y[row] == ref.y
                    assert not macro_located[row]
                row += 1
            for port_name, _bit in net.top_ports:
                ref = ports[port_name]
                assert located[row]
                assert x[row] == ref.x and y[row] == ref.y
                row += 1
        assert row == arrays.n_rows

    def test_unplaced_macro_and_unknown_port_unlocated(self,
                                                       two_stage_flat):
        die = Rect(0, 0, 40, 40)
        placement = _place_macros(two_stage_flat, die)
        dropped = next(iter(placement.macros))
        del placement.macros[dropped]
        ports = assign_port_positions(two_stage_flat.design, die)
        cells = place_cells(two_stage_flat, placement, ports)
        missing_port = next(iter(ports))
        ports = {k: v for k, v in ports.items() if k != missing_port}

        arrays = net_arrays_for(two_stage_flat)
        x, y, located, macro_located = locate_endpoints(
            arrays, placement, cells, ports)
        row = 0
        for net in two_stage_flat.nets:
            for cell_index, _pin, _bit in net.endpoints:
                if cell_index == dropped:
                    assert not located[row]
                    assert not macro_located[row]
                row += 1
            for port_name, _bit in net.top_ports:
                assert located[row] == (port_name != missing_port)
                row += 1
        assert np.isfinite(x).all() and np.isfinite(y).all()
