"""The batched stdcell kernel: compiled arrays, caching, degenerates."""

import numpy as np
import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.api import evaluate_placement
from repro.geometry.rect import Rect
from repro.metrics import (
    compile_stdcell_arrays,
    get_backend,
    stdcell_arrays_for,
)
from repro.metrics.stdcell_kernel import FIXED_MACRO, FIXED_PORT
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.netlist.flatten import flatten
from repro.placement.cluster import cluster_cells, clustered_for
from repro.placement.stdcell import PlacerConfig, place_cells

from tests.conftest import make_ram


def build_macro_only_design() -> Design:
    """Ports wired straight into one macro: zero standard cells."""
    ram = make_ram(width=4)
    top = ModuleBuilder("top")
    top.input("pin", 4)
    top.output("pout", 4)
    inst = top.instance(ram, "mem")
    top.connect_bus("pin", inst, "din")
    top.connect_bus("pout", inst, "dout")
    design = Design("macro_only")
    design.add_module(top.build())
    design.set_top("top")
    return design


class TestCompiledArrays:
    def test_structure_matches_clustered_nets(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        arrays = compile_stdcell_arrays(clustered)
        assert arrays.n_nets == len(clustered.nets)
        assert arrays.n_clusters == clustered.n_clusters
        for index, (eps, macro_eps, port_eps, bits) in \
                enumerate(clustered.nets):
            start, end = arrays.ep_offsets[index:index + 2]
            assert tuple(arrays.eps[start:end]) == eps
            fs, fe = arrays.fixed_offsets[index:index + 2]
            kinds = list(arrays.fixed_kind[fs:fe])
            # Macro candidates first, then ports — the reference
            # ``fixed_pts`` construction order.
            assert kinds == ([FIXED_MACRO] * len(macro_eps)
                             + [FIXED_PORT] * len(port_eps))
            assert arrays.weight[index] == bits
            m = len(eps)
            assert arrays.pair_counts[index] == (m * (m - 1)
                                                 if m >= 2 else 0)

    def test_pair_template_replays_reference_order(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        arrays = compile_stdcell_arrays(clustered)
        rows, cols = [], []
        for eps, _macros, _ports, _bits in clustered.nets:
            eps = list(eps)
            if len(eps) < 2:
                continue
            for a in range(len(eps)):
                for b in range(a + 1, len(eps)):
                    rows += [eps[a], eps[b]]    # add_pair appends (i, j)
                    cols += [eps[b], eps[a]]    # ... and (j, i)
        assert np.array_equal(arrays.pair_rows, np.asarray(rows))
        assert np.array_equal(arrays.pair_cols, np.asarray(cols))

    def test_cache_shared_and_invalidated(self, two_stage_flat):
        clustered = clustered_for(two_stage_flat)
        assert clustered_for(two_stage_flat) is clustered
        arrays = stdcell_arrays_for(clustered)
        assert stdcell_arrays_for(clustered) is arrays

    def test_cell_cluster_array_matches_dict(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        dense = clustered.cell_cluster_array(len(two_stage_flat.cells))
        assert dense is clustered.cell_cluster_array(
            len(two_stage_flat.cells))
        for cell_index in range(len(two_stage_flat.cells)):
            expected = clustered.cluster_of_cell.get(cell_index, -1)
            assert dense[cell_index] == expected


class TestDegenerateInputs:
    """Satellite: zero-stdcell designs and anchor-free nets stay
    harmless and backend-agnostic."""

    @pytest.fixture(scope="class")
    def macro_only(self):
        flat = flatten(build_macro_only_design())
        die = Rect(0.0, 0.0, 30.0, 20.0)
        placement = MacroPlacement(design_name=flat.design.name,
                                   flow_name="degen", die=die)
        macro = flat.macros()[0]
        placement.macros[macro.index] = PlacedMacro(
            macro.index, macro.path,
            Rect(8.0, 6.0, macro.ctype.width, macro.ctype.height))
        ports = assign_port_positions(flat.design, die)
        return flat, placement, ports

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_zero_stdcells_empty_placement(self, macro_only, backend):
        flat, placement, ports = macro_only
        cells = place_cells(flat, placement, ports, backend=backend)
        assert cells.clustered.n_clusters == 0
        assert cells.x.shape == (0,)
        assert cells.cell_pos(0) is None

    def test_zero_stdcells_full_referee_rows_match(self, macro_only):
        flat, placement, ports = macro_only
        rows = {}
        for backend in ("python", "numpy"):
            m = evaluate_placement(flat, placement, backend=backend)
            rows[backend] = (round(m.wl_meters, 12),
                             round(m.grc_percent, 12),
                             round(m.wns_percent, 12),
                             round(m.tns, 12))
        assert rows["python"] == rows["numpy"]

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_unplaced_macros_drop_anchors(self, two_stage_flat, backend):
        # No macros placed at all: every macro anchor candidate drops
        # out and isolated clusters fall back to the die-center guard.
        die = Rect(0.0, 0.0, 60.0, 30.0)
        placement = MacroPlacement(design_name="two_stage",
                                   flow_name="degen", die=die)
        cells = place_cells(two_stage_flat, placement, {},
                            backend=backend)
        assert np.all(np.isfinite(cells.x))
        assert np.all(np.isfinite(cells.y))

    def test_unplaced_macros_systems_identical(self, two_stage_flat):
        die = Rect(0.0, 0.0, 60.0, 30.0)
        placement = MacroPlacement(design_name="two_stage",
                                   flow_name="degen", die=die)
        clustered = clustered_for(two_stage_flat)
        config = PlacerConfig()
        ref = get_backend("python").stdcell_system(
            two_stage_flat, placement, {}, config, clustered)
        new = get_backend("numpy").stdcell_system(
            two_stage_flat, placement, {}, config, clustered)
        assert np.array_equal(ref[0].toarray(), new[0].toarray())
        assert np.array_equal(ref[1], new[1])
        assert np.array_equal(ref[2], new[2])


class TestPairedCgSolver:
    """The paired x/y CG loop is bit-identical to sequential scipy."""

    @pytest.mark.parametrize("name", ["c1", "c2"])
    def test_matches_sequential_scipy_solves(self, name):
        from scipy.sparse.linalg import cg

        from repro.api import get_flow
        from repro.api.prepared import prepare_suite_design
        from repro.placement.stdcell import solve_quadratic_xy

        prepared = prepare_suite_design(name, "tiny")
        flat = prepared.flat
        placement = get_flow("indeda", seed=1).place(prepared)
        ports = assign_port_positions(flat.design, placement.die)
        clustered = clustered_for(flat)
        config = PlacerConfig()
        laplacian, bx, by = get_backend("numpy").stdcell_system(
            flat, placement, ports, config, clustered)
        x0 = np.full(clustered.n_clusters, placement.die.center.x)
        y0 = np.full(clustered.n_clusters, placement.die.center.y)

        ref_x, _ = cg(laplacian, bx, x0=x0, rtol=config.cg_tol,
                      maxiter=config.cg_maxiter)
        ref_y, _ = cg(laplacian, by, x0=y0, rtol=config.cg_tol,
                      maxiter=config.cg_maxiter)
        x, y = solve_quadratic_xy(laplacian, bx, by, x0, y0,
                                  rtol=config.cg_tol,
                                  maxiter=config.cg_maxiter)
        assert np.array_equal(ref_x, x)
        assert np.array_equal(ref_y, y)

    def test_zero_rhs_short_circuits(self):
        from scipy.sparse import identity

        from repro.placement.stdcell import solve_quadratic_xy

        eye = identity(4, format="csr")
        b = np.zeros(4)
        x, y = solve_quadratic_xy(eye, b, np.ones(4), np.ones(4),
                                  np.zeros(4))
        assert np.array_equal(x, np.zeros(4))
        assert np.allclose(y, np.ones(4))
