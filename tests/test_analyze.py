"""repro-analyze self-tests: every REP rule vs known-bad fixtures.

The fixtures under ``tests/analyze_fixtures/`` each violate exactly one
rule (plus a clean file and a suppressed file); the tests run the
analyzer over them with ``context="all"`` so path scoping does not get
in the way, and exercise the suppression table, the baseline round-trip,
the JSON report, the REP004 registry introspection (by deliberately
registering an incomplete backend) and the shared lint configuration.
"""

import json
from pathlib import Path

from tools.analyze import analyze_paths, check_backend, check_registry
from tools.analyze.driver import REPO, main
from tools.analyze.lintrules import load_lint_config
from tools.analyze.reporting import to_json_dict
from tools.analyze.rules import RULES

from repro.metrics import (
    RefereeBackend,
    register_backend,
    unregister_backend,
)

FIXTURES = Path(__file__).resolve().parent / "analyze_fixtures"


def analyze_fixture(name, **kwargs):
    kwargs.setdefault("context", "all")
    kwargs.setdefault("contracts", False)
    return analyze_paths([str(FIXTURES / name)], **kwargs)


def rules_hit(report):
    return {finding.rule for finding in report.findings}


# -- the AST rules, one known-bad fixture each ------------------------------

def test_rep001_flags_global_rng_draws():
    report = analyze_fixture("rep001_bad.py")
    assert rules_hit(report) == {"REP001"}
    # random.random() and np.random.rand(), alias resolved to numpy.
    assert len(report.findings) == 2
    assert any("numpy.random.rand" in finding.message
               for finding in report.findings)


def test_rep002_flags_set_iteration():
    report = analyze_fixture("rep002_bad.py")
    assert rules_hit(report) == {"REP002"}
    # list(pending) and the for loop over the set-comprehension binding.
    assert len(report.findings) == 2


def test_rep003_flags_unordered_reductions():
    report = analyze_fixture("rep003_bad.py")
    assert rules_hit(report) == {"REP003"}
    # sum(...), np.sum(...) and the .sum() method call.
    assert len(report.findings) == 3


def test_rep005_flags_artifact_mutation():
    report = analyze_fixture("rep005_bad.py")
    assert rules_hit(report) == {"REP005"}
    # Attribute assign, subscript store and .append() on a field.
    assert len(report.findings) == 3


def test_rep006_flags_wall_clock_and_env():
    report = analyze_fixture("rep006_bad.py")
    assert rules_hit(report) == {"REP006"}
    # time.time(), os.getenv() and the os.environ read.
    assert len(report.findings) == 3


def test_clean_fixture_has_no_findings():
    report = analyze_fixture("clean.py")
    assert report.ok
    assert not report.findings
    assert not report.suppressed


def test_inline_suppression_and_unused_warning():
    report = analyze_fixture("suppressed.py")
    assert report.ok
    assert [finding.rule for finding in report.suppressed] == ["REP001"]
    assert [(line, code) for _path, line, code
            in report.unused_suppressions] == [(5, "REP003")]


# -- REP004: backend-contract introspection ---------------------------------

class _IncompleteBackend(RefereeBackend):
    """Deliberately missing hpwl/congestion/affinity_distance."""

    name = "rep004-fixture"


def test_rep004_direct_defects_name_the_stub_kernels():
    defects = check_backend(_IncompleteBackend())
    assert len(defects) == 3
    for kernel in ("hpwl", "congestion", "affinity_distance"):
        assert any(kernel in defect for defect in defects)


def test_rep004_registry_flags_a_registered_incomplete_backend():
    register_backend(_IncompleteBackend())
    try:
        findings = check_registry(REPO)
        assert findings, "incomplete backend must produce REP004"
        assert all(finding.rule == "REP004" for finding in findings)
        assert all("rep004-fixture" in finding.message
                   for finding in findings)
    finally:
        unregister_backend("rep004-fixture")


def test_rep004_builtin_registry_is_contract_complete():
    assert check_registry(REPO) == []


# -- the production gate ----------------------------------------------------

def test_src_tree_is_analyzer_clean():
    report = analyze_paths(("src",), context="auto", contracts=True)
    assert report.ok, [finding.location() for finding in report.findings]
    assert not report.unused_suppressions


def test_every_rule_is_registered():
    assert set(RULES) == {"REP001", "REP002", "REP003", "REP004",
                          "REP005", "REP006"}


# -- baseline round-trip through the CLI ------------------------------------

def test_baseline_roundtrip(tmp_path, capsys):
    fixture = str(FIXTURES / "rep001_bad.py")
    baseline = tmp_path / "baseline.json"
    argv = [fixture, "--context", "all", "--no-contracts",
            "--baseline", str(baseline)]

    assert main(argv) == 1          # unbaselined findings gate
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0          # same findings now grandfathered
    capsys.readouterr()

    report = analyze_fixture("rep001_bad.py", baseline_path=baseline)
    assert report.ok
    assert len(report.baselined) == 2


def test_baseline_survives_line_shift(tmp_path):
    source = (FIXTURES / "rep001_bad.py").read_text()
    moved = tmp_path / "moved.py"
    moved.write_text(source)
    baseline = tmp_path / "baseline.json"
    assert main([str(moved), "--context", "all", "--no-contracts",
                 "--baseline", str(baseline), "--write-baseline"]) == 0

    # Content-keyed entries: inserting lines above must not resurface.
    moved.write_text("# shifted\n# shifted again\n" + source)
    report = analyze_paths([str(moved)], context="all", contracts=False,
                           baseline_path=baseline)
    assert report.ok
    assert len(report.baselined) == 2


# -- machine-readable report ------------------------------------------------

def test_json_report_schema(tmp_path):
    out = tmp_path / "report.json"
    assert main([str(FIXTURES / "rep003_bad.py"), "--context", "all",
                 "--no-contracts", "--json", "--json-out",
                 str(out)]) == 1
    data = json.loads(out.read_text())
    assert data["tool"] == "repro-analyze"
    assert data["ok"] is False
    assert data["counts"]["findings"] == 3
    assert set(data["rules"]) == set(RULES)
    first = data["findings"][0]
    assert {"rule", "path", "line", "col", "message"} <= set(first)


def test_to_json_dict_matches_report():
    report = analyze_fixture("clean.py")
    data = to_json_dict(report)
    assert data["ok"] is True
    assert data["findings"] == []


# -- the shared lint configuration ------------------------------------------

def test_lint_config_single_source_of_truth():
    config = load_lint_config()
    assert config.line_length == 88
    assert config.enabled("E501", Path("src/repro/x.py"))
    assert config.enabled("E999", Path("x.py"))       # E9 prefix
    assert config.enabled("F401", Path("src/repro/module.py"))
    assert not config.enabled("F401", Path("src/repro/__init__.py"))
    assert not config.enabled("F841", Path("x.py"))   # not selected
