"""repro-analyze self-tests: every REP rule vs known-bad fixtures.

The fixtures under ``tests/analyze_fixtures/`` each violate exactly one
rule (plus a clean file and a suppressed file); the tests run the
analyzer over them with ``context="all"`` so path scoping does not get
in the way, and exercise the suppression table, the baseline round-trip,
the JSON report, the REP004 registry introspection (by deliberately
registering an incomplete backend) and the shared lint configuration.
"""

import ast
import json
from pathlib import Path

from tools.analyze import analyze_paths, check_backend, check_registry
from tools.analyze.driver import REPO, main
from tools.analyze.effects import ModuleSummary, summarize_module
from tools.analyze.lintrules import load_lint_config
from tools.analyze.reporting import to_json_dict
from tools.analyze.rules import RULES

from repro.metrics import (
    RefereeBackend,
    register_backend,
    unregister_backend,
)

FIXTURES = Path(__file__).resolve().parent / "analyze_fixtures"


def analyze_fixture(name, **kwargs):
    kwargs.setdefault("context", "all")
    kwargs.setdefault("contracts", False)
    return analyze_paths([str(FIXTURES / name)], **kwargs)


def rules_hit(report):
    return {finding.rule for finding in report.findings}


# -- the AST rules, one known-bad fixture each ------------------------------

def test_rep001_flags_global_rng_draws():
    report = analyze_fixture("rep001_bad.py")
    assert rules_hit(report) == {"REP001"}
    # random.random() and np.random.rand(), alias resolved to numpy.
    assert len(report.findings) == 2
    assert any("numpy.random.rand" in finding.message
               for finding in report.findings)


def test_rep002_flags_set_iteration():
    report = analyze_fixture("rep002_bad.py")
    assert rules_hit(report) == {"REP002"}
    # list(pending) and the for loop over the set-comprehension binding.
    assert len(report.findings) == 2


def test_rep003_flags_unordered_reductions():
    report = analyze_fixture("rep003_bad.py")
    assert rules_hit(report) == {"REP003"}
    # sum(...), np.sum(...) and the .sum() method call.
    assert len(report.findings) == 3


def test_rep005_flags_artifact_mutation():
    report = analyze_fixture("rep005_bad.py")
    assert rules_hit(report) == {"REP005"}
    # Attribute assign, subscript store and .append() on a field.
    assert len(report.findings) == 3


def test_rep006_flags_wall_clock_and_env():
    report = analyze_fixture("rep006_bad.py")
    assert rules_hit(report) == {"REP006"}
    # time.time(), os.getenv() and the os.environ read.
    assert len(report.findings) == 3


def test_rep006_obs_clock_bad_flags_direct_reads():
    report = analyze_fixture("obs_clock_bad.py")
    assert rules_hit(report) == {"REP006"}
    # Both direct time.perf_counter() calls.
    assert len(report.findings) == 2


def test_rep006_obs_clock_good_is_clean():
    report = analyze_fixture("obs_clock_good.py")
    assert report.ok
    assert not report.findings


def test_obs_clock_module_is_the_only_clock_reader_in_src():
    """The single-clock invariant behind the REP006 exception.

    Every wall-clock read in ``src/`` must live in
    ``repro/obs/clock.py`` (where the two justified suppressions are);
    instrumentation added anywhere else must call through it.  Checked
    against the analyzer's effect summaries, which canonicalize
    imports, so aliased reads (``from time import perf_counter``)
    cannot slip by.
    """
    src = REPO / "src" / "repro"
    readers = {}
    for path in sorted(src.rglob("*.py")):
        summary = summarize_module(ast.parse(path.read_text()),
                                   str(path))
        reads = [read for function in summary.functions.values()
                 for read in function.clock_reads
                 if read[0].startswith(("time.", "datetime."))]
        if reads:
            readers[path.relative_to(src).as_posix()] = reads
    assert set(readers) == {"obs/clock.py"}, readers


def test_clean_fixture_has_no_findings():
    report = analyze_fixture("clean.py")
    assert report.ok
    assert not report.findings
    assert not report.suppressed


def test_inline_suppression_and_unused_warning():
    report = analyze_fixture("suppressed.py")
    assert report.ok
    assert [finding.rule for finding in report.suppressed] == ["REP001"]
    assert [(line, code) for _path, line, code
            in report.unused_suppressions] == [(5, "REP003")]


# -- REP004: backend-contract introspection ---------------------------------

class _IncompleteBackend(RefereeBackend):
    """Deliberately missing hpwl/congestion/affinity_distance."""

    name = "rep004-fixture"


def test_rep004_direct_defects_name_the_stub_kernels():
    defects = check_backend(_IncompleteBackend())
    assert len(defects) == 3
    for kernel in ("hpwl", "congestion", "affinity_distance"):
        assert any(kernel in defect for defect in defects)


def test_rep004_registry_flags_a_registered_incomplete_backend():
    register_backend(_IncompleteBackend())
    try:
        findings = check_registry(REPO)
        assert findings, "incomplete backend must produce REP004"
        assert all(finding.rule == "REP004" for finding in findings)
        assert all("rep004-fixture" in finding.message
                   for finding in findings)
    finally:
        unregister_backend("rep004-fixture")


def test_rep004_builtin_registry_is_contract_complete():
    assert check_registry(REPO) == []


# -- the production gate ----------------------------------------------------

def test_src_tree_is_analyzer_clean():
    report = analyze_paths(("src",), context="auto", contracts=True)
    assert report.ok, [finding.location() for finding in report.findings]
    assert not report.unused_suppressions


def test_every_rule_is_registered():
    assert set(RULES) == {"REP001", "REP002", "REP003", "REP004",
                          "REP005", "REP006", "REP007", "REP008",
                          "REP009", "REP010", "REP011", "REP012"}


# -- baseline round-trip through the CLI ------------------------------------

def test_baseline_roundtrip(tmp_path, capsys):
    fixture = str(FIXTURES / "rep001_bad.py")
    baseline = tmp_path / "baseline.json"
    argv = [fixture, "--context", "all", "--no-contracts", "--no-cache",
            "--baseline", str(baseline)]

    assert main(argv) == 1          # unbaselined findings gate
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0          # same findings now grandfathered
    capsys.readouterr()

    report = analyze_fixture("rep001_bad.py", baseline_path=baseline)
    assert report.ok
    assert len(report.baselined) == 2


def test_baseline_survives_line_shift(tmp_path):
    source = (FIXTURES / "rep001_bad.py").read_text()
    moved = tmp_path / "moved.py"
    moved.write_text(source)
    baseline = tmp_path / "baseline.json"
    assert main([str(moved), "--context", "all", "--no-contracts",
                 "--no-cache", "--baseline", str(baseline),
                 "--write-baseline"]) == 0

    # Content-keyed entries: inserting lines above must not resurface.
    moved.write_text("# shifted\n# shifted again\n" + source)
    report = analyze_paths([str(moved)], context="all", contracts=False,
                           baseline_path=baseline)
    assert report.ok
    assert len(report.baselined) == 2


# -- machine-readable report ------------------------------------------------

def test_json_report_schema(tmp_path):
    out = tmp_path / "report.json"
    assert main([str(FIXTURES / "rep003_bad.py"), "--context", "all",
                 "--no-contracts", "--no-cache", "--json", "--json-out",
                 str(out)]) == 1
    data = json.loads(out.read_text())
    assert data["tool"] == "repro-analyze"
    assert data["ok"] is False
    assert data["counts"]["findings"] == 3
    assert set(data["rules"]) == set(RULES)
    first = data["findings"][0]
    assert {"rule", "path", "line", "col", "message"} <= set(first)


def test_to_json_dict_matches_report():
    report = analyze_fixture("clean.py")
    data = to_json_dict(report)
    assert data["ok"] is True
    assert data["findings"] == []


# -- the interprocedural rules (REP007-REP009) ------------------------------

def test_rep007_fires_through_a_call_edge():
    # bad.py feeds os.getpid() into helpers.make_rng, which seeds a
    # random.Random one call-graph hop away.
    report = analyze_fixture("interproc_rep007")
    assert rules_hit(report) == {"REP007"}
    finding = report.findings[0]
    assert finding.path.endswith("bad.py")
    assert "make_rng" in finding.message
    assert "helpers.py" in finding.message


def test_rep008_fires_through_a_call_edge():
    # LeakyBackend.hpwl passes its coordinate array to a helper that
    # np.add.at-scatters into it; the finding lands on the helper's
    # mutation with the kernel call chain spelled out.
    report = analyze_fixture("interproc_rep008")
    assert rules_hit(report) == {"REP008"}
    finding = report.findings[0]
    assert finding.path.endswith("helpers.py")
    assert "LeakyBackend.hpwl" in finding.message
    assert "call chain" in finding.message
    assert "'x'" in finding.message      # the kernel parameter


def test_rep009_fires_through_a_call_edge():
    report = analyze_fixture("interproc_rep009")
    assert rules_hit(report) == {"REP009"}
    writes = [finding for finding in report.findings
              if "module-level state" in finding.message]
    assert writes and writes[0].path.endswith("state.py")
    assert "'worker'" in writes[0].message      # the submit payload
    assert "remember" in writes[0].message      # the call chain
    lambdas = [finding for finding in report.findings
               if "lambda" in finding.message]
    assert lambdas and lambdas[0].path.endswith("pool.py")


def test_rep009_treats_initializer_as_payload():
    # The submitted task is clean; the pool's ``initializer=`` callable
    # writes module state one call-graph hop away and must be treated
    # as a worker payload too.
    report = analyze_fixture("interproc_rep009_init")
    assert rules_hit(report) == {"REP009"}
    finding = report.findings[0]
    assert finding.path.endswith("bootstrap.py")
    assert "'init_worker'" in finding.message
    assert "'_CONFIG'" in finding.message


def test_interproc_clean_fixture_is_silent():
    report = analyze_fixture("interproc_clean")
    assert report.ok
    assert not report.findings
    assert not report.suppressed


# -- the resource-lifetime rules (REP010-REP012) ----------------------------

def test_rep010_fires_when_views_outlive_the_handle():
    # attach.load_views returns views built by views.as_view over a
    # local SharedMemory handle nothing keeps alive: the finding lands
    # on the cross-file call site feeding the doomed handle.
    report = analyze_fixture("interproc_rep010")
    assert rules_hit(report) == {"REP010"}
    finding = report.findings[0]
    assert finding.path.endswith("attach.py")
    assert "as_view" in finding.message
    assert "'shm'" in finding.message
    assert "garbage-collected" in finding.message


def test_rep011_flags_unlocked_mutated_and_flipped_views():
    report = analyze_fixture("interproc_rep011")
    assert rules_hit(report) == {"REP011"}
    unlocked = [finding for finding in report.findings
                if "without flags.writeable" in finding.message]
    assert unlocked and unlocked[0].path.endswith("views.py")
    mutated = [finding for finding in report.findings
               if "is mutated via" in finding.message]
    # The mutation lives one call-graph hop away in helpers.scribble.
    assert mutated and mutated[0].path.endswith("helpers.py")
    assert "tasks.py" in mutated[0].message
    flipped = [finding for finding in report.findings
               if "flipped back on" in finding.message]
    # unprotect is reachable from the pool.run submit payload.
    assert flipped and flipped[0].path.endswith("helpers.py")
    assert "worker" in flipped[0].message


def test_rep012_flags_leak_lost_patch_and_releaseless_owner():
    report = analyze_fixture("interproc_rep012")
    assert rules_hit(report) == {"REP012"}
    leaks = [finding for finding in report.findings
             if "not released on every" in finding.message]
    # fetch borrows the handle from seg.open_segment one hop away.
    assert leaks and leaks[0].path.endswith("lease.py")
    patches = [finding for finding in report.findings
               if "monkeypatched" in finding.message]
    assert patches and patches[0].path.endswith("patch.py")
    assert "resource_tracker.register" in patches[0].message
    owners = [finding for finding in report.findings
              if "escapes into" in finding.message]
    assert owners and owners[0].path.endswith("maker.py")
    assert "Box" in owners[0].message


def test_resource_clean_fixture_is_silent():
    # Pin-and-return attach, locked views, finally-restored patch,
    # with-managed executor and try/finally close: zero findings.
    report = analyze_fixture("interproc_res_clean")
    assert report.ok
    assert not report.findings
    assert not report.suppressed


def test_rep010_fires_when_the_shm_pin_is_deleted(tmp_path):
    """The acceptance probe: shm.py minus its pin fails the gate.

    ``_ATTACHED[name] = shm`` is the one line standing between the
    worker-side views and a use-after-unmap; deleting it in a scratch
    copy must produce a REP010 finding, and the intact copy must not.
    """
    source = (REPO / "src" / "repro" / "service" / "shm.py").read_text()
    pin = "    _ATTACHED[name] = shm\n"
    assert pin in source
    scratch = tmp_path / "src" / "repro" / "service"
    scratch.mkdir(parents=True)
    target = scratch / "shm.py"

    target.write_text(source.replace(pin, ""))
    broken = analyze_paths([str(target)], repo=tmp_path,
                           context="all", contracts=False)
    assert "REP010" in rules_hit(broken)

    target.write_text(source)
    intact = analyze_paths([str(target)], repo=tmp_path,
                           context="all", contracts=False)
    assert intact.ok, [finding.location() for finding in intact.findings]


def test_strict_suppressions_turn_stale_noqas_into_findings():
    # suppressed.py carries one used (REP001) and one stale (REP003)
    # noqa; strict mode converts only the stale one into a finding.
    relaxed = analyze_fixture("suppressed.py")
    assert relaxed.ok
    strict = analyze_fixture("suppressed.py", strict_suppressions=True)
    assert not strict.ok
    assert [finding.rule for finding in strict.findings] == ["REP000"]
    assert strict.findings[0].line == 5
    assert "REP003" in strict.findings[0].message


def test_strict_suppressions_cli_flag_gates(tmp_path, capsys):
    fixture = str(FIXTURES / "suppressed.py")
    argv = [fixture, "--context", "all", "--no-contracts", "--no-cache"]
    assert main(argv) == 0
    assert main(argv + ["--strict-suppressions"]) == 1
    capsys.readouterr()


def test_json_report_carries_phase_timings():
    report = analyze_fixture("interproc_rep012")
    data = to_json_dict(report)
    assert set(data["perf"]["phase_seconds"]) == {"parse", "effects",
                                                  "interproc"}
    assert all(seconds >= 0.0
               for seconds in data["perf"]["phase_seconds"].values())


def test_multiline_statement_suppression_matches_span():
    # The noqa sits on the closing-paren line of a 4-line statement;
    # exact-line matching would miss it and then warn it unused.
    report = analyze_fixture("suppressed_multiline.py")
    assert report.ok
    assert [finding.rule for finding in report.suppressed] == ["REP001"]
    assert not report.unused_suppressions


# -- effect summaries and the incremental cache -----------------------------

def test_effect_summary_json_roundtrip():
    source = (FIXTURES / "interproc_rep008" / "helpers.py").read_text()
    summary = summarize_module(ast.parse(source), "helpers.py")
    assert summary.functions["accumulate"].mutations
    rehydrated = ModuleSummary.from_dict(
        json.loads(json.dumps(summary.to_dict())))
    assert rehydrated.to_dict() == summary.to_dict()


def test_cache_roundtrip_serves_identical_findings(tmp_path):
    cache_path = tmp_path / "cache.json"
    cold = analyze_fixture("interproc_rep009", cache_path=cache_path)
    warm = analyze_fixture("interproc_rep009", cache_path=cache_path)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(cold.files)
    assert warm.cache_hits == len(warm.files)
    assert warm.cache_misses == 0
    assert ([finding.to_dict() for finding in warm.findings]
            == [finding.to_dict() for finding in cold.findings])


def test_warm_cli_run_is_byte_identical(tmp_path):
    fixture = str(FIXTURES / "interproc_rep007")
    cache = tmp_path / "cache.json"
    argv = [fixture, "--context", "all", "--no-contracts",
            "--cache", str(cache), "--json"]
    outs = []
    for out in (tmp_path / "cold.json", tmp_path / "warm.json"):
        assert main(argv + ["--json-out", str(out)]) == 1
        outs.append(json.loads(out.read_text()))
    cold, warm = outs
    assert warm["cache"]["hits"] > 0
    assert cold["cache"] == {"enabled": True, "hits": 0,
                             "misses": cold["counts"]["files"]}
    # ``cache`` and ``perf`` are the only run-dependent keys.
    for report in (cold, warm):
        report.pop("cache")
        report.pop("perf")
    assert json.dumps(cold) == json.dumps(warm)


def test_cache_invalidates_on_content_change(tmp_path):
    source = tmp_path / "module.py"
    source.write_text("import random\n\n"
                      "def fresh():\n"
                      "    return random.Random()\n")
    cache_path = tmp_path / "cache.json"
    first = analyze_paths([str(source)], context="all", contracts=False,
                          cache_path=cache_path)
    assert rules_hit(first) == {"REP007"}
    source.write_text("import random\n\n"
                      "def fresh(seed):\n"
                      "    return random.Random(seed)\n")
    second = analyze_paths([str(source)], context="all",
                           contracts=False, cache_path=cache_path)
    assert second.cache_misses == 1 and second.cache_hits == 0
    assert second.ok


# -- the github annotation format -------------------------------------------

def test_github_format_emits_workflow_annotations(capsys):
    assert main([str(FIXTURES / "rep001_bad.py"), "--context", "all",
                 "--no-contracts", "--no-cache",
                 "--format", "github"]) == 1
    output = capsys.readouterr().out
    assert "::error file=" in output
    assert "title=REP001::" in output


# -- the shared lint configuration ------------------------------------------

def test_lint_config_single_source_of_truth():
    config = load_lint_config()
    assert config.line_length == 88
    assert config.enabled("E501", Path("src/repro/x.py"))
    assert config.enabled("E999", Path("x.py"))       # E9 prefix
    assert config.enabled("F401", Path("src/repro/module.py"))
    assert not config.enabled("F401", Path("src/repro/__init__.py"))
    assert not config.enabled("F841", Path("x.py"))   # not selected
