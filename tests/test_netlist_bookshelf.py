"""Tests for Bookshelf (.nodes/.nets/.pl) interchange."""

import io

import pytest

from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.rect import Rect
from repro.netlist.bookshelf import (
    BookshelfError,
    export_bookshelf,
    import_bookshelf,
    parse_nets,
    parse_nodes,
    write_nets,
    write_nodes,
    write_pl,
)
from repro.netlist.flatten import flatten
from repro.netlist.stats import design_stats


class TestExport:
    def test_nodes_file(self, two_stage_flat):
        buf = io.StringIO()
        write_nodes(two_stage_flat, buf)
        text = buf.getvalue()
        assert text.startswith("UCLA nodes 1.0")
        # 34 cells + 16 port-bit terminals (pin[8] + pout[8]).
        assert "NumNodes : 50" in text
        assert "NumTerminals : 18" in text
        assert text.count("terminal") == 18
        # Hierarchical separators are escaped for Bookshelf.
        assert "sa/mem" not in text
        assert "sa__mem" in text
        assert "PORT__pin__0" in text

    def test_nets_file(self, two_stage_flat):
        buf = io.StringIO()
        write_nets(two_stage_flat, buf)
        text = buf.getvalue()
        assert f"NumNets : {len(two_stage_flat.nets)}" in text
        assert "NetDegree" in text
        assert " O\n" in text and " I\n" in text

    def test_pl_with_placement(self, two_stage_flat):
        placement = MacroPlacement("d", "t", Rect(0, 0, 60, 30))
        mem = two_stage_flat.cell_by_path("sa/mem")
        placement.macros[mem.index] = PlacedMacro(
            mem.index, mem.path, Rect(5, 12, 6, 4))
        buf = io.StringIO()
        write_pl(two_stage_flat, placement, buf)
        text = buf.getvalue()
        assert "sa__mem 5 12 : N /FIXED" in text

    def test_export_files(self, two_stage_flat, tmp_path):
        prefix = str(tmp_path / "ts")
        export_bookshelf(two_stage_flat, prefix)
        for suffix in (".nodes", ".nets", ".pl"):
            assert (tmp_path / ("ts" + suffix.lstrip("."))).exists() \
                or (tmp_path / ("ts" + suffix)).exists()


class TestParse:
    def test_parse_nodes(self):
        text = ("UCLA nodes 1.0\n\nNumNodes : 2\nNumTerminals : 1\n"
                "  a 4 2 terminal\n  b 1.5 1\n")
        nodes = parse_nodes(text)
        assert nodes == [("a", 4.0, 2.0, True), ("b", 1.5, 1.0, False)]

    def test_parse_nodes_rejects_garbage(self):
        with pytest.raises(BookshelfError):
            parse_nodes("UCLA nodes 1.0\n???\n")

    def test_parse_nets(self):
        text = ("UCLA nets 1.0\n\nNumNets : 1\nNumPins : 2\n"
                "NetDegree : 2 n0\n  a O\n  b I\n")
        nets = parse_nets(text)
        assert nets == [[("a", "O"), ("b", "I")]]

    def test_parse_nets_requires_header(self):
        with pytest.raises(BookshelfError):
            parse_nets("a O\n")


class TestRoundTrip:
    def test_export_import(self, two_stage_flat, tmp_path):
        prefix = str(tmp_path / "rt")
        export_bookshelf(two_stage_flat, prefix)
        design = import_bookshelf(open(prefix + ".nodes").read(),
                                  open(prefix + ".nets").read(), "rt")
        stats = design_stats(design)
        # 34 real cells + 16 port-stub terminals.
        assert stats.cells == 50
        assert stats.macros == 18
        # Connectivity survives: same number of multi-point nets.
        back = flatten(design)
        assert len(back.nets) == len(two_stage_flat.nets)

    def test_imported_macros_keep_dimensions(self, two_stage_flat,
                                             tmp_path):
        prefix = str(tmp_path / "dim")
        export_bookshelf(two_stage_flat, prefix)
        design = import_bookshelf(open(prefix + ".nodes").read(),
                                  open(prefix + ".nets").read())
        flat = flatten(design)
        dims = sorted((m.ctype.width, m.ctype.height)
                      for m in flat.macros()
                      if not m.path.startswith("PORT__"))
        assert dims == [(6.0, 4.0), (6.0, 4.0)]

    def test_imported_design_placeable_by_baseline(self, two_stage_flat,
                                                   tmp_path):
        """Bookshelf designs are flat: the IndEDA flow handles them."""
        from repro.baselines.indeda import place_indeda
        prefix = str(tmp_path / "pl")
        export_bookshelf(two_stage_flat, prefix)
        design = import_bookshelf(open(prefix + ".nodes").read(),
                                  open(prefix + ".nets").read())
        placement = place_indeda(design, 40.0, 40.0)
        # Real macros plus the port-stub terminals get positions.
        assert len(placement.macros) == 18
        assert placement.macro_overlap_area() == pytest.approx(0.0)
