"""Tests for design statistics."""

import pytest

from repro.netlist.stats import design_stats


class TestDesignStats:
    def test_two_stage_counts(self, two_stage_design):
        stats = design_stats(two_stage_design)
        assert stats.cells == 34
        assert stats.macros == 2
        assert stats.flops == 32
        assert stats.comb == 0

    def test_areas(self, two_stage_design):
        stats = design_stats(two_stage_design)
        assert stats.macro_area == pytest.approx(48.0)
        assert stats.stdcell_area == pytest.approx(32.0)
        assert stats.total_area == pytest.approx(80.0)

    def test_per_module(self, two_stage_design):
        stats = design_stats(two_stage_design)
        stage = stats.per_module["stage_a"]
        assert stage.macros == 1
        assert stage.flops == 16
        assert stage.total_area == pytest.approx(40.0)

    def test_summary_text(self, two_stage_design):
        text = design_stats(two_stage_design).summary()
        assert "34 cells" in text
        assert "2 macros" in text

    def test_shared_definitions_counted_per_instance(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        stats = design_stats(design)
        assert stats.macros == 32
        assert stats.cells > 1000
