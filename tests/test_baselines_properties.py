"""Property-based tests for the baseline packing machinery."""

from hypothesis import given, settings, strategies as st

from repro.baselines.common import pack_perimeter
from repro.geometry.rect import Rect, total_overlap_area

dims_strategy = st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=12.0),
              st.floats(min_value=1.0, max_value=12.0)),
    min_size=1, max_size=24)


class TestPackPerimeterProperties:
    @settings(max_examples=60, deadline=None)
    @given(dims_strategy)
    def test_all_placed_no_overlap(self, dims):
        """Whenever total item area fits comfortably, the packing is
        complete, disjoint and in-die."""
        total_area = sum(w * h for w, h in dims)
        side = max(40.0, (4 * total_area) ** 0.5)
        die = Rect(0, 0, side, side)
        rects = pack_perimeter(die, dims)
        assert len(rects) == len(dims)
        assert all(r is not None for r in rects)
        assert total_overlap_area(rects) < 1e-6
        for rect in rects:
            assert die.contains_rect(rect, tol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(dims_strategy)
    def test_footprints_preserved_up_to_rotation(self, dims):
        die = Rect(0, 0, 200, 200)
        rects = pack_perimeter(die, dims)
        for (w, h), rect in zip(dims, rects):
            assert {round(rect.w, 6), round(rect.h, 6)} \
                == {round(w, 6), round(h, 6)} \
                or (round(rect.w, 6) == round(h, 6)
                    and round(rect.h, 6) == round(w, 6))

    def test_order_determines_positions(self):
        die = Rect(0, 0, 60, 60)
        dims = [(6, 3), (4, 4), (8, 2)]
        a = pack_perimeter(die, dims)
        b = pack_perimeter(die, dims)
        assert a == b
        swapped = pack_perimeter(die, [dims[1], dims[0], dims[2]])
        assert swapped != a
