"""PlacementService, shared-memory handoff, and worker-engine replay.

The load-bearing assertions of the service layer:

* rows are bit-identical serial vs cold-store vs warm-store vs pooled
  vs ``PlacementService.submit`` (c1–c3);
* a warm-store pooled run records **zero** worker-side ``prepare.*``
  compile spans (the whole point of the store + shm handoff);
* job handles observe a consistent queued → running → done/failed
  event order through poll/result/stream_events;
* worker bootstrap replays flow/backend registrations and warns —
  instead of silently skipping — on unpicklable entries.
"""

import pickle

import numpy as np
import pytest

from repro.api import RunOptions, run_suite
from repro.core.config import Effort
from repro.gen.designs import suite_specs
from repro.obs import iter_spans
from repro.service import (
    CompiledDesignStore,
    JobStatus,
    PlacementService,
)
from repro.service import engine
from repro.service.shm import export_entry

DESIGNS = ("c1", "c2", "c3")
FLOWS = ("indeda", "handfp-strip")
OPTS = RunOptions(seed=1, effort=Effort.FAST)
TRACE_OPTS = RunOptions(seed=1, effort=Effort.FAST, trace=True)


def _key_row(metrics):
    """Deterministic FlowMetrics fields (placer_seconds is wall-clock)."""
    return (metrics.design, metrics.flow, metrics.wl_meters,
            metrics.grc_percent, metrics.wns_percent, metrics.tns,
            metrics.wl_norm, metrics.macro_overlap, metrics.lam)


def _key_rows(result):
    return [_key_row(row) for row in result.rows]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("suite-store")


@pytest.fixture(scope="module")
def serial(store_dir):
    return run_suite(scale="tiny", designs=list(DESIGNS), flows=FLOWS,
                     options=OPTS)


@pytest.fixture(scope="module")
def cold_pooled(store_dir, serial):
    # First store run: compiles every design (cold), pool of 2.
    return run_suite(scale="tiny", designs=list(DESIGNS), flows=FLOWS,
                     options=TRACE_OPTS, workers=2, store=store_dir)


@pytest.fixture(scope="module")
def warm_pooled(store_dir, cold_pooled):
    # Second store run: every design loads warm, workers attach shm.
    return run_suite(scale="tiny", designs=list(DESIGNS), flows=FLOWS,
                     options=TRACE_OPTS, workers=2, store=store_dir)


class TestRowIdentity:
    def test_cold_store_matches_serial(self, serial, cold_pooled):
        assert _key_rows(cold_pooled) == _key_rows(serial)

    def test_warm_store_matches_serial(self, serial, warm_pooled):
        assert _key_rows(warm_pooled) == _key_rows(serial)

    def test_submit_matches_serial(self, serial, store_dir):
        rows = []
        with PlacementService(scale="tiny", designs=DESIGNS,
                              store=store_dir, workers=2,
                              options=OPTS) as service:
            handles = [service.submit(design, flow)
                       for design in DESIGNS for flow in FLOWS]
            for handle in handles:
                rows.append(handle.result())
        from repro.api import normalize_to_handfp
        normalize_to_handfp(rows)
        assert [_key_row(r) for r in rows] == _key_rows(serial)

    def test_inline_submit_matches_serial(self, serial, store_dir):
        with PlacementService(scale="tiny", designs=("c1",),
                              store=store_dir,
                              options=OPTS) as service:
            row = service.submit("c1", "indeda").result()
        baseline = next(r for r in serial.rows
                        if r.design == "c1" and r.flow == "indeda")
        assert _key_row(row)[:6] == _key_row(baseline)[:6]


class TestWarmStoreSpans:
    @staticmethod
    def _worker_span_names(result):
        names = set()
        for payload in result.trace[1:]:
            for _depth, span in iter_spans(payload):
                names.add(span["name"])
        return names

    def test_warm_workers_compile_nothing(self, warm_pooled):
        names = self._worker_span_names(warm_pooled)
        assert not any(n.startswith("prepare.") for n in names), names

    def test_warm_workers_attach_shared_memory(self, warm_pooled):
        assert "store.attach" in self._worker_span_names(warm_pooled)

    def test_main_process_saw_store_hits(self, warm_pooled):
        main_names = {span["name"] for _d, span
                      in iter_spans(warm_pooled.trace[0])}
        assert "store.hit" in main_names
        assert "store.miss" not in main_names
        assert {"job.queued", "job.done"} <= main_names

    def test_cold_run_compiled_in_main(self, cold_pooled):
        main_names = {span["name"] for _d, span
                      in iter_spans(cold_pooled.trace[0])}
        assert {"store.miss", "store.compile", "store.save"} \
            <= main_names

    def test_legacy_no_store_workers_still_compile(self):
        # The pre-store behaviour is pinned: without a store, worker
        # processes rebuild and their traces must show it.
        result = run_suite(scale="tiny", designs=["c1"], flows=FLOWS,
                           options=TRACE_OPTS, workers=2)
        assert any(
            span["name"].startswith("prepare.")
            for payload in result.trace[1:]
            for _d, span in iter_spans(payload))


class TestShmHandoff:
    def test_export_materialize_roundtrip(self, store_dir):
        store = CompiledDesignStore(store_dir)
        entry = store.ensure_spec(
            next(s for s in suite_specs("tiny") if s.name == "c1"))
        owner = export_entry(entry)
        try:
            handoff = pickle.loads(pickle.dumps(owner.handoff))
            prepared = handoff.materialize()
            entry_net, _meta = entry.arrays["net"]
            np.testing.assert_array_equal(
                np.asarray(prepared.net_arrays.net_offsets),
                entry_net["net_offsets"])
            assert not prepared.net_arrays.net_offsets.flags.writeable
            handoff.close()
        finally:
            owner.unlink()

    def test_views_survive_handoff_garbage_collection(self, store_dir):
        # numpy views over shm.buf keep the mmap as their base
        # WITHOUT a buffer export, so nothing but the _ATTACHED pin
        # stops GC of the handoff's SharedMemory from unmapping the
        # pages under a cached prepared design.  This exact sequence
        # (materialize, drop the handoff, collect, then run a
        # referee-touching flow) used to segfault the worker.
        import gc

        store = CompiledDesignStore(store_dir)
        entry = store.ensure_spec(
            next(s for s in suite_specs("tiny") if s.name == "c1"))
        owner = export_entry(entry)
        try:
            handoff = pickle.loads(pickle.dumps(owner.handoff))
            prepared = handoff.materialize()
            del handoff
            gc.collect()
            row = engine.execute_cell(prepared, "indeda", OPTS)
            assert row.design == "c1"
        finally:
            from repro.service.shm import _ATTACHED
            pinned = _ATTACHED.pop(owner.handoff.segment, None)
            if pinned is not None:
                pinned.close()
            owner.unlink()

    def test_unlink_is_idempotent(self, store_dir):
        store = CompiledDesignStore(store_dir)
        entry = store.ensure_spec(
            next(s for s in suite_specs("tiny") if s.name == "c1"))
        owner = export_entry(entry)
        owner.unlink()
        owner.unlink()


class TestJobLifecycle:
    def test_event_order_inline(self, store_dir):
        with PlacementService(scale="tiny", designs=("c1",),
                              store=store_dir,
                              options=OPTS) as service:
            handle = service.submit("c1", "indeda")
            assert handle.poll() is JobStatus.DONE
            assert [e.name for e in handle.stream_events()] \
                == ["job.queued", "job.running", "job.done"]
            events = handle.events()
            assert [e.name for e in events] \
                == ["job.queued", "job.running", "job.done"]
            assert events[0].wall <= events[-1].wall

    def test_event_order_pooled(self, store_dir):
        with PlacementService(scale="tiny", designs=("c1",),
                              store=store_dir, workers=2,
                              options=OPTS) as service:
            handle = service.submit("c1", "indeda")
            streamed = [e.name for e in handle.stream_events()]
            assert streamed[0] == "job.queued"
            assert streamed[-1] == "job.done"
            assert "job.running" in streamed
            assert handle.poll() is JobStatus.DONE

    def test_failed_job_raises_and_streams_failed(self):
        with PlacementService(scale="tiny", designs=("c1",),
                              options=OPTS) as service:
            handle = service.submit("c1", "no-such-flow")
            assert handle.poll() is JobStatus.FAILED
            assert [e.name for e in handle.stream_events()][-1] \
                == "job.failed"
            with pytest.raises(Exception, match="no-such-flow"):
                handle.result()

    def test_unknown_design_rejected_at_submit(self):
        with PlacementService(scale="tiny", designs=("c1",),
                              options=OPTS) as service:
            with pytest.raises(ValueError, match="c9"):
                service.submit("c9", "indeda")

    def test_unknown_design_rejected_at_construction(self):
        with pytest.raises(ValueError, match="nope"):
            PlacementService(scale="tiny", designs=("nope",))

    def test_closed_service_rejects_submissions(self):
        service = PlacementService(scale="tiny", designs=("c1",),
                                   options=OPTS)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit("c1", "indeda")

    def test_seed_override_changes_only_that_job(self, store_dir):
        with PlacementService(scale="tiny", designs=("c1",),
                              store=store_dir,
                              options=OPTS) as service:
            default = service.submit("c1", "indeda")
            override = service.submit("c1", "indeda", seed=7)
            assert default.options.seed == 1
            assert override.options.seed == 7


class TestWorkerBootstrap:
    def test_unpicklable_flow_entry_warns(self):
        from repro.api import register_flow, unregister_flow

        register_flow("lambda-flow", lambda **kw: None,
                      description="unpicklable on purpose")
        try:
            with pytest.warns(RuntimeWarning, match="lambda-flow"):
                entries = engine.portable_flow_entries()
            assert "lambda-flow" not in [n for n, _f, _d in entries]
        finally:
            unregister_flow("lambda-flow")

    def test_unpicklable_backend_warns(self):
        from repro.metrics import register_backend, unregister_backend

        class _Unpicklable:
            name = "local-backend"
            uses_net_arrays = False

            def __reduce__(self):
                raise TypeError("not picklable")

        register_backend(_Unpicklable())
        try:
            with pytest.warns(RuntimeWarning, match="local-backend"):
                entries, _default = engine.portable_backend_entries()
            assert "local-backend" not in [b.name for b in entries]
        finally:
            unregister_backend("local-backend")

    def test_default_backend_override_reaches_workers(self):
        from repro.metrics import default_backend_name, set_default_backend

        baseline = default_backend_name()
        set_default_backend("python")
        try:
            _entries, default = engine.portable_backend_entries()
            assert default == "python"
            result = run_suite(scale="tiny", designs=["c1"],
                               flows=("indeda",), options=OPTS,
                               workers=2)
            assert result.rows[0].eval_counters["referee_backend"] \
                == "python"
        finally:
            set_default_backend(baseline)

    def test_init_worker_replays_default_backend(self):
        from repro.metrics import default_backend_name, set_default_backend

        baseline = default_backend_name()
        try:
            engine.init_worker((), (), "python")
            assert default_backend_name() == "python"
        finally:
            set_default_backend(baseline)

    def test_prepared_cache_reused_across_flows(self):
        key = ("tiny", "c1")
        engine._PREPARED_CACHE.pop(key, None)
        first = engine.prepared_for("tiny", "c1")
        second = engine.prepared_for("tiny", "c1")
        assert first is second
        engine._PREPARED_CACHE.pop(key, None)

    def test_one_worker_prepares_once_across_flows(self):
        # Two flows on one design scheduled on a single worker: the
        # first cell's trace shows the rebuild, the second reuses the
        # worker-local prepared cache.  (handfp-strip goes first: it
        # also builds the slicing tree, which indeda never touches.)
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            first = pool.submit(engine.run_cell, "tiny", "c1",
                                "handfp-strip", 1, "fast", None,
                                True).result()
            second = pool.submit(engine.run_cell, "tiny", "c1",
                                 "indeda", 1, "fast", None,
                                 True).result()
        first_names = {s["name"] for _d, s in iter_spans(first[4])}
        second_names = {s["name"] for _d, s in iter_spans(second[4])}
        assert any(n.startswith("prepare.") for n in first_names)
        assert not any(n.startswith("prepare.") for n in second_names)
