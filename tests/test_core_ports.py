"""Tests for deterministic port placement."""


from repro.core.ports import assign_port_positions, port_side
from repro.geometry.rect import Point, Rect


class TestPortPositions:
    def test_on_boundary(self, two_stage_design):
        die = Rect(0, 0, 100, 60)
        positions = assign_port_positions(two_stage_design, die)
        assert set(positions) == {"pin", "pout"}
        for pos in positions.values():
            on_x = pos.x in (die.x, die.x2)
            on_y = pos.y in (die.y, die.y2)
            assert on_x or on_y

    def test_inputs_west_outputs_east(self, two_stage_design):
        die = Rect(0, 0, 100, 60)
        positions = assign_port_positions(two_stage_design, die)
        assert positions["pin"].x < positions["pout"].x

    def test_deterministic(self, two_stage_design):
        die = Rect(0, 0, 100, 60)
        a = assign_port_positions(two_stage_design, die)
        b = assign_port_positions(two_stage_design, die)
        assert a == b

    def test_port_side(self):
        die = Rect(0, 0, 10, 10)
        assert port_side(die, Point(0, 5)) == "W"
        assert port_side(die, Point(10, 5)) == "E"
        assert port_side(die, Point(5, 0)) == "S"
        assert port_side(die, Point(5, 10)) == "N"

    def test_many_ports_spread(self, tiny_c1):
        design, _truth, w, h = tiny_c1
        positions = assign_port_positions(design, Rect(0, 0, w, h))
        assert len(positions) == len(design.top.ports)
        assert len({(p.x, p.y) for p in positions.values()}) \
            == len(positions)
