"""Tests for slicing-tree construction and annotation."""

import pytest

from repro.shapecurve.curve import ShapeCurve
from repro.slicing.polish import H, PolishExpression, V
from repro.slicing.tree import (
    annotate_areas,
    annotate_curves,
    build_tree,
)


class TestBuildTree:
    def test_single_leaf(self):
        root = build_tree(PolishExpression([0]))
        assert root.is_leaf
        assert root.block == 0

    def test_simple_tree(self):
        root = build_tree(PolishExpression([0, 1, V, 2, H]))
        assert root.op == H
        assert root.left.op == V
        assert root.right.block == 2
        assert root.blocks() == [0, 1, 2]

    def test_depth(self):
        chain = build_tree(PolishExpression([0, 1, V, 2, H, 3, V]))
        assert chain.depth() == 4

    def test_invalid_expression_raises(self):
        with pytest.raises(ValueError):
            build_tree(PolishExpression([0, V, 1]))
        with pytest.raises(ValueError):
            build_tree(PolishExpression([0, 1]))


class TestAnnotations:
    def test_areas_sum_up(self):
        root = build_tree(PolishExpression([0, 1, V, 2, H]))
        annotate_areas(root, [1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert root.area_min == 6.0
        assert root.area_target == 9.0
        assert root.left.area_min == 3.0

    def test_curves_compose_by_operator(self):
        # 0 and 1 side by side (V), then 2 stacked on top (H).
        root = build_tree(PolishExpression([0, 1, V, 2, H]))
        curves = [ShapeCurve([(2, 2)]), ShapeCurve([(3, 2)]),
                  ShapeCurve([(4, 1)])]
        composed = annotate_curves(root, curves)
        # V: (2+3, max(2,2)) = (5,2); H: (max(5,4), 2+1) = (5,3).
        assert composed.points == ((5, 3),)

    def test_trivial_leaves_do_not_constrain(self):
        root = build_tree(PolishExpression([0, 1, V]))
        curves = [ShapeCurve.trivial(), ShapeCurve([(3, 2)])]
        composed = annotate_curves(root, curves)
        assert composed.points == ((3, 2),)

    def test_limit_caps_points(self):
        root = build_tree(PolishExpression([0, 1, V]))
        many = ShapeCurve([(i, 40 - i) for i in range(1, 21)])
        composed = annotate_curves(root, [many, many], limit=4)
        assert len(composed) <= 4
