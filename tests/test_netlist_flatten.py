"""Tests for bit-accurate flattening."""

import pytest

from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.cells import DEFAULT_COMB
from repro.netlist.core import Design
from repro.netlist.flatten import flatten, net_driver


class TestFlattenBasics:
    def test_counts(self, two_stage_flat):
        assert len(two_stage_flat.cells) == 34      # 2*(16 flops + 1 macro)
        assert len(two_stage_flat.macros()) == 2
        assert len(two_stage_flat.flops()) == 32

    def test_paths_unique_and_hierarchical(self, two_stage_flat):
        paths = [c.path for c in two_stage_flat.cells]
        assert len(set(paths)) == len(paths)
        assert "sa/mem" in paths
        assert "sb/in_reg[0]" in paths

    def test_module_path(self, two_stage_flat):
        mem = two_stage_flat.cell_by_path("sa/mem")
        assert mem.module_path == "sa"
        assert mem.local_name == "mem"

    def test_areas(self, two_stage_flat):
        assert two_stage_flat.macro_area() == pytest.approx(2 * 24.0)
        assert two_stage_flat.stdcell_area() == pytest.approx(32 * 1.0)

    def test_cross_boundary_nets_union(self, two_stage_flat):
        """Nets driven by sa.out_reg.q reach sb.in_reg.d through the
        top-level 'mid' bus (two hierarchy crossings)."""
        crossing = 0
        for net in two_stage_flat.nets:
            drives = any(
                two_stage_flat.cells[i].path.startswith("sa/out_reg")
                and pin == "q"
                for i, pin, _b in net.endpoints)
            if drives:
                crossing += 1
                assert any(
                    two_stage_flat.cells[i].path.startswith("sb/in_reg")
                    for i, _p, _b in net.endpoints)
        assert crossing == 8        # one net per mid bus bit

    def test_net_drivers(self, two_stage_flat):
        for net in two_stage_flat.nets:
            driver = net_driver(two_stage_flat, net)
            if driver is None:
                # Must be a port-driven net then.
                assert net.top_ports


class TestFlattenEdgeCases:
    def test_dangling_single_endpoint_dropped(self):
        b = ModuleBuilder("m")
        b.input("a", 1).output("z", 1)
        inst = b.instance(DEFAULT_COMB, "g")
        b.connect("a", inst, "a0")
        b.connect("z", inst, "z")
        b.wire("dead", 1)
        b.connect("dead", inst, "a1")       # only one endpoint
        flat = flatten(single_module_design(b))
        names = [n.name for n in flat.nets]
        assert not any("dead" in n for n in names)

    def test_max_fanout_drops_global_nets(self):
        b = ModuleBuilder("m")
        b.input("clk", 1)
        b.input("d", 4).output("q", 4)
        b.register_array("r", 4, d="d", q="q", clk="clk")
        flat_all = flatten(single_module_design(b))
        b2 = ModuleBuilder("m")
        b2.input("clk", 1)
        b2.input("d", 4).output("q", 4)
        b2.register_array("r", 4, d="d", q="q", clk="clk")
        flat_cut = flatten(single_module_design(b2), max_fanout=4)
        assert len(flat_cut.nets) < len(flat_all.nets)

    def test_deep_hierarchy(self):
        leaf_b = ModuleBuilder("leaf")
        leaf_b.input("i", 1).output("o", 1)
        leaf_b.register_array("r", 1, d="i", q="o")
        leaf = leaf_b.build()

        mid_b = ModuleBuilder("mid")
        mid_b.input("i", 1).output("o", 1)
        inst = mid_b.instance(leaf, "l")
        mid_b.connect("i", inst, "i")
        mid_b.connect("o", inst, "o")
        mid = mid_b.build()

        top_b = ModuleBuilder("top")
        top_b.input("i", 1).output("o", 1)
        inst = top_b.instance(mid, "m")
        top_b.connect("i", inst, "i")
        top_b.connect("o", inst, "o")

        design = Design("deep")
        design.add_module(leaf)
        design.add_module(mid)
        design.add_module(top_b.build())
        design.set_top("top")
        flat = flatten(design)
        assert flat.cells[0].path == "m/l/r[0]"
        assert flat.cells[0].module_path == "m/l"
        # Two nets: i -> flop.d and flop.q -> o, each crossing 2 levels.
        assert len(flat.nets) == 2
        for net in flat.nets:
            assert net.top_ports, "port should alias through both levels"

    def test_shared_module_definition(self):
        """One module instantiated twice yields distinct cells."""
        stage_b = ModuleBuilder("s")
        stage_b.input("i", 1).output("o", 1)
        stage_b.register_array("r", 1, d="i", q="o")
        stage = stage_b.build()
        top_b = ModuleBuilder("top")
        top_b.input("i", 1).output("o", 1)
        top_b.wire("w", 1)
        a = top_b.instance(stage, "a")
        bb = top_b.instance(stage, "b")
        top_b.connect("i", a, "i")
        top_b.connect("w", a, "o")
        top_b.connect("w", bb, "i")
        top_b.connect("o", bb, "o")
        design = Design("twice")
        design.add_module(stage)
        design.add_module(top_b.build())
        design.set_top("top")
        flat = flatten(design)
        assert {c.path for c in flat.cells} == {"a/r[0]", "b/r[0]"}
