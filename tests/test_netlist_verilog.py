"""Tests for the structural Verilog writer/parser."""

import pytest

from repro.netlist.cells import DEFAULT_COMB, DEFAULT_FLOP
from repro.netlist.flatten import flatten
from repro.netlist.stats import design_stats
from repro.netlist.verilog import (
    VerilogSyntaxError,
    design_to_verilog,
    parse_verilog,
)

LIB = {"DFF": DEFAULT_FLOP, "COMB2": DEFAULT_COMB}


class TestWriter:
    def test_writes_all_modules(self, two_stage_design):
        text = design_to_verilog(two_stage_design)
        assert text.count("module ") == 3
        assert text.strip().endswith("endmodule")
        # Top module comes last by convention.
        assert text.rfind("module top") > text.rfind("module stage_a")

    def test_escaped_identifiers(self, two_stage_design):
        text = design_to_verilog(two_stage_design)
        assert "\\in_reg[0] " in text


class TestRoundTrip:
    def test_two_stage_roundtrip(self, two_stage_design):
        from tests.conftest import make_ram
        text = design_to_verilog(two_stage_design)
        lib = dict(LIB)
        lib["RAM8"] = make_ram()
        parsed = parse_verilog(text, lib, "rt")
        orig = design_stats(two_stage_design)
        new = design_stats(parsed)
        assert new.cells == orig.cells
        assert new.macros == orig.macros
        # Flat connectivity is preserved bit for bit.
        assert len(flatten(parsed).nets) \
            == len(flatten(two_stage_design).nets)

    def test_suite_design_roundtrip(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        text = design_to_verilog(design)
        lib = design.cell_types()
        parsed = parse_verilog(text, lib, "rt")
        assert design_stats(parsed).cells == design_stats(design).cells
        assert len(flatten(parsed).nets) == len(flatten(design).nets)


class TestParserErrors:
    def test_unknown_reference(self):
        text = "module m (input a);\n  GHOST g (.p(a));\nendmodule"
        with pytest.raises(VerilogSyntaxError, match="unknown reference"):
            parse_verilog(text, LIB)

    def test_undeclared_net(self):
        text = "module m (input a);\n  DFF f (.d(zz));\nendmodule"
        with pytest.raises(VerilogSyntaxError, match="undeclared net"):
            parse_verilog(text, LIB)

    def test_garbage_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_verilog("assign x = y;", LIB)

    def test_empty_input(self):
        with pytest.raises(VerilogSyntaxError):
            parse_verilog("   // just a comment\n", LIB)

    def test_nonzero_lsb_rejected(self):
        text = "module m (input [7:4] a);\nendmodule"
        with pytest.raises(VerilogSyntaxError, match="msb:0"):
            parse_verilog(text, LIB)


class TestParserFeatures:
    def test_bit_and_part_selects(self):
        text = (
            "module m (input [7:0] a, output z);\n"
            "  wire [3:0] w;\n"
            "  COMB2 g0 (.a0(a[3]), .a1(w[1]), .z(z));\n"
            "  COMB2 g1 (.a0(a[7]), .a1(a[0]), .z(w[1]));\n"
            "endmodule")
        design = parse_verilog(text, LIB)
        flat = flatten(design)
        assert len(flat.cells) == 2

    def test_comments_and_whitespace(self):
        text = (
            "// header\n"
            "module m (input a, output z); /* inline */\n"
            "  COMB2 g (.a0(a), .a1(a), .z(z)); // tail\n"
            "endmodule\n")
        design = parse_verilog(text, LIB)
        assert len(list(design.top.leaf_instances())) == 1

    def test_unconnected_pin(self):
        text = ("module m (input a, output z);\n"
                "  COMB2 g (.a0(a), .a1(), .z(z));\n"
                "endmodule")
        design = parse_verilog(text, LIB)
        assert len(flatten(design).cells) == 1

    def test_explicit_top_selection(self):
        text = ("module a (input x);\nendmodule\n"
                "module b (input y);\nendmodule")
        design = parse_verilog(text, LIB, top="a")
        assert design.top.name == "a"
