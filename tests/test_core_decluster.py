"""Tests for hierarchical declustering (Algorithm 3)."""

import pytest

from repro.core.decluster import decluster, open_single_block
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.netlist.flatten import flatten
from tests.conftest import make_ram, make_stage


def build_mixed_design():
    """top
        - big_glue   (large, no macros; should be OPENED)
            - glue_a (small)     -> HCG
            - glue_b (small)     -> HCG
        - macro_sub  (macros)    -> HCB
        - tiny_glue  (small)     -> HCG
    """
    ram = make_ram()

    def glue_module(name, width, cells):
        b = ModuleBuilder(name)
        b.input("i", width).output("o", width)
        b.comb_cloud("c", ["i"], "o", n_cells=cells)
        return b.build()

    glue_a = glue_module("glue_a", 8, 40)
    glue_b = glue_module("glue_b", 8, 40)
    big = ModuleBuilder("big_glue")
    big.input("i", 8).output("o", 8)
    big.wire("m", 8)
    ia = big.instance(glue_a, "ga")
    ib = big.instance(glue_b, "gb")
    big.connect_bus("i", ia, "i")
    big.connect_bus("m", ia, "o")
    big.connect_bus("m", ib, "i")
    big.connect_bus("o", ib, "o")

    macro_sub = make_stage("macro_sub", 8, ram)
    tiny = glue_module("tiny_glue", 8, 4)

    top = ModuleBuilder("top")
    top.input("pin", 8).output("pout", 8)
    top.wire("w1", 8)
    top.wire("w2", 8)
    i1 = top.instance(big.build(), "big")
    i2 = top.instance(macro_sub, "ms")
    i3 = top.instance(tiny, "tg")
    top.connect_bus("pin", i1, "i")
    top.connect_bus("w1", i1, "o")
    top.connect_bus("w1", i2, "din")
    top.connect_bus("w2", i2, "dout")
    top.connect_bus("w2", i3, "i")
    top.connect_bus("pout", i3, "o")

    design = Design("mixed")
    for mod in (glue_a, glue_b, top.module.instances["big"].ref,
                macro_sub, tiny):
        design.add_module(mod)
    design.add_module(top.build())
    design.set_top("top")
    return design


@pytest.fixture(scope="module")
def mixed():
    design = build_mixed_design()
    flat = flatten(design)
    tree = build_hierarchy(flat)
    return flat, tree


class TestDecluster:
    def test_macro_node_becomes_block(self, mixed):
        flat, tree = mixed
        result = decluster(tree.root, flat, min_area_frac=0.05,
                           open_area_frac=0.40)
        block_names = {b.name for b in result.blocks}
        assert "ms" in block_names

    def test_big_glue_opened(self, mixed):
        flat, tree = mixed
        result = decluster(tree.root, flat, min_area_frac=0.05,
                           open_area_frac=0.40)
        names = {b.name for b in result.blocks}
        glue_names = {g.path for g in result.glue}
        # big_glue itself never appears; its children do (as HCG or HCB
        # depending on their size vs min_area).
        assert "big" not in names
        assert "big" not in glue_names
        assert ("big/ga" in names | glue_names)

    def test_small_nodes_are_glue(self, mixed):
        flat, tree = mixed
        # tg is ~5.2% of the area: below an 8% threshold it is glue.
        result = decluster(tree.root, flat, min_area_frac=0.08,
                           open_area_frac=0.40)
        assert any(g.path == "tg" for g in result.glue)

    def test_midsize_glue_free_node_is_soft_block(self, mixed):
        flat, tree = mixed
        # With a tiny min_area, the opened big_glue children become
        # soft blocks rather than glue.
        result = decluster(tree.root, flat, min_area_frac=0.001,
                           open_area_frac=0.40)
        names = {b.name for b in result.blocks}
        assert "big/ga" in names
        assert "big/gb" in names

    def test_direct_macros_become_pseudo_blocks(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        sa = tree.node("sa")
        result = decluster(sa, two_stage_flat, 0.01, 0.40)
        macro_seeds = [b for b in result.blocks if b.is_macro_seed]
        assert len(macro_seeds) == 1
        assert macro_seeds[0].name == "sa/mem"
        assert macro_seeds[0].macro_count() == 1

    def test_loose_glue_collected(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        sa = tree.node("sa")
        result = decluster(sa, two_stage_flat, 0.01, 0.40)
        # sa's 16 flops (8-bit in_reg + out_reg) are direct cells of an
        # opened node -> loose glue.
        assert len(result.loose_glue_cells) == 16

    def test_seed_accessors(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        result = decluster(tree.root, two_stage_flat, 0.01, 0.40)
        for seed in result.blocks:
            assert seed.area(two_stage_flat) > 0
            assert seed.macro_count() >= 0
            assert isinstance(seed.macros(), list)


class TestOpenSingleBlock:
    def test_descends_through_wrapper(self):
        """A top that only wraps one subsystem declusters through it."""
        ram = make_ram()
        inner = make_stage("inner", 8, ram)
        wrapper = ModuleBuilder("wrap")
        wrapper.input("i", 8).output("o", 8)
        inst = wrapper.instance(inner, "u")
        wrapper.connect_bus("i", inst, "din")
        wrapper.connect_bus("o", inst, "dout")
        top = ModuleBuilder("top")
        top.input("i", 8).output("o", 8)
        wi = top.instance(wrapper.build(), "w")
        top.connect_bus("i", wi, "i")
        top.connect_bus("o", wi, "o")
        design = Design("wrapped")
        design.add_module(inner)
        design.add_module(top.module.instances["w"].ref)
        design.add_module(top.build())
        design.set_top("top")
        flat = flatten(design)
        tree = build_hierarchy(flat)
        result = open_single_block(tree.root, flat, 0.01, 0.40)
        # Descended past 'w' and into 'w/u', exposing the macro.
        assert any(b.is_macro_seed for b in result.blocks)
