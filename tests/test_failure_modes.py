"""Failure injection: malformed inputs must fail loudly and early."""

import pytest

from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort
from repro.floorplan.blocks import Block
from repro.geometry.rect import Rect
from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.core import Design, Module
from repro.netlist.jsonio import design_from_json
from repro.shapecurve.curve import ShapeCurve


class TestNetlistFailures:
    def test_design_without_top(self):
        design = Design("d")
        design.add_module(Module("m"))
        with pytest.raises(ValueError, match="top module not set"):
            _ = design.top

    def test_truncated_json(self):
        with pytest.raises(KeyError):
            design_from_json({"name": "x"})

    def test_json_with_unknown_ref(self):
        data = {
            "name": "x", "top": "m", "library": [],
            "modules": [{
                "name": "m", "ports": [],
                "instances": [["i", "GHOST"]], "nets": []}],
        }
        with pytest.raises(KeyError):
            design_from_json(data)


class TestBlockFailures:
    def test_negative_min_area(self):
        with pytest.raises(ValueError):
            Block(0, "b", ShapeCurve.trivial(), -1.0, 5.0)

    def test_target_below_min_clamped(self):
        block = Block(0, "b", ShapeCurve.trivial(), 10.0, 5.0)
        assert block.area_target == 10.0


class TestPlacerEdgeCases:
    def test_design_without_macros(self):
        """A macro-free design places trivially (nothing to do)."""
        b = ModuleBuilder("m")
        b.input("a", 4)
        b.output("z", 4)
        b.wire("w", 4)
        b.comb_cloud("c", ["a"], "w")
        b.register_array("r", 4, d="w", q="z")
        design = single_module_design(b)
        placement = HiDaP(HiDaPConfig(seed=0, effort=Effort.FAST)).place(
            design, 20.0, 20.0)
        assert placement.macros == {}
        assert placement.die == Rect(0, 0, 20, 20)

    def test_single_macro_design(self):
        from tests.conftest import make_ram, make_stage
        stage = make_stage("solo", 8, make_ram())
        design = Design("solo_design", top=stage)
        placement = HiDaP(HiDaPConfig(seed=0, effort=Effort.FAST)).place(
            design, 30.0, 30.0)
        assert len(placement.macros) == 1
        assert placement.macros_inside_die()

    def test_tight_die_still_places(self):
        """A die barely larger than the macros stays legal."""
        from tests.conftest import build_two_stage_design
        design = build_two_stage_design()
        # Two 6x4 macros = 48 area; cells add 32; die 10x10 = 100.
        placement = HiDaP(HiDaPConfig(seed=1, effort=Effort.FAST)).place(
            design, 10.0, 10.0)
        assert len(placement.macros) == 2
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_overfull_die_reports_overlap_not_crash(self):
        """A die smaller than the macro area cannot be legal, but the
        flow must finish and report the violation measurably."""
        from tests.conftest import build_two_stage_design
        design = build_two_stage_design()
        placement = HiDaP(HiDaPConfig(seed=1, effort=Effort.FAST)).place(
            design, 7.0, 7.0)      # macros alone need 48 > 49*relaxed
        assert len(placement.macros) == 2
        # Either overlapping or out of die: quantifiable, not hidden.
        illegal = (placement.macro_overlap_area() > 0
                   or not placement.macros_inside_die())
        assert illegal


class TestConfigFailures:
    def test_bad_effort_string(self):
        with pytest.raises(ValueError):
            Effort("turbo")

    def test_layout_config_seeds_differ_by_level(self):
        config = HiDaPConfig(seed=3)
        a = config.layout_config(1).anneal.seed
        b = config.layout_config(2).anneal.seed
        assert a != b
