"""The levelized timing kernel: compiled arrays, levels, degenerates."""

import numpy as np
import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.rect import Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import Gseq, SeqKind, SeqNode, build_gseq
from repro.metrics import compile_timing_arrays, timing_arrays_for
from repro.placement.stdcell import place_cells
from repro.timing.sta import analyze_timing, analyze_timing_reference


def _gseq_for(flat):
    return build_gseq(build_gnet(flat), flat)


def _assert_reports_identical(flat, gseq, placement, cells, ports,
                              **kwargs):
    ref = analyze_timing_reference(flat, gseq, placement, cells, ports,
                                   **kwargs)
    new = analyze_timing(flat, gseq, placement, cells, ports,
                         backend="numpy", **kwargs)
    assert (ref.clock_period, ref.wns, ref.tns, ref.n_paths,
            ref.n_failing, ref.worst_edge) \
        == (new.clock_period, new.wns, new.tns, new.n_paths,
            new.n_failing, new.worst_edge)
    return new


def _hand_gseq(nodes, edges):
    """A Gseq built directly from (nodes, edge dict) for edge cases."""
    succ = [[] for _ in nodes]
    pred = [[] for _ in nodes]
    for (u, v) in sorted(edges):
        succ[u].append(v)
        pred[v].append(u)
    return Gseq(nodes=nodes, succ=succ, pred=pred, edge_bits=dict(edges))


class TestCompiledArrays:
    def test_edges_follow_reference_visit_order(self, two_stage_flat):
        gseq = _gseq_for(two_stage_flat)
        arrays = compile_timing_arrays(gseq, two_stage_flat)
        expected = list(gseq.edge_bits)
        assert [(int(u), int(v))
                for u, v in zip(arrays.edge_u, arrays.edge_v)] == expected

    def test_levels_monotone_on_dag(self, two_stage_flat):
        gseq = _gseq_for(two_stage_flat)
        arrays = compile_timing_arrays(gseq, two_stage_flat)
        # The two-stage pipeline is acyclic: every edge climbs levels.
        for u, v in gseq.edge_bits:
            assert arrays.node_level[u] < arrays.node_level[v]
        assert arrays.n_levels >= 1
        covered = np.sort(np.concatenate(arrays.level_edges))
        assert np.array_equal(covered, np.arange(arrays.n_edges))

    def test_cache_on_gseq(self, two_stage_flat):
        gseq = _gseq_for(two_stage_flat)
        arrays = timing_arrays_for(gseq, two_stage_flat)
        assert timing_arrays_for(gseq, two_stage_flat) is arrays


class TestDegenerateGraphs:
    """Satellite: zero-edge, single-level and cyclic graphs behave the
    same on both backends."""

    @pytest.fixture(scope="class")
    def context(self, two_stage_flat):
        die = Rect(0.0, 0.0, 60.0, 30.0)
        placement = MacroPlacement(design_name="two_stage",
                                   flow_name="degen", die=die)
        for cell in two_stage_flat.macros():
            placement.macros[cell.index] = PlacedMacro(
                cell.index, cell.path,
                Rect(5.0, 5.0, cell.ctype.width, cell.ctype.height))
        ports = assign_port_positions(two_stage_flat.design, die)
        cells = place_cells(two_stage_flat, placement, ports)
        return placement, cells, ports

    def test_zero_edges(self, two_stage_flat, context):
        placement, cells, ports = context
        gseq = _hand_gseq([SeqNode(0, SeqKind.PORT, "pin", 8, "")], {})
        arrays = compile_timing_arrays(gseq, two_stage_flat)
        assert arrays.n_levels == 0
        report = _assert_reports_identical(two_stage_flat, gseq,
                                           placement, cells, ports)
        assert report.n_paths == 0
        assert report.wns == 0.0
        assert report.tns == 0.0
        assert report.worst_edge is None

    def test_single_level_graph(self, two_stage_flat, context):
        placement, cells, ports = context
        macro = two_stage_flat.macros()[0]
        nodes = [SeqNode(0, SeqKind.PORT, "pin", 8, ""),
                 SeqNode(1, SeqKind.MACRO, macro.path, 8, "sa",
                         cells=[macro.index])]
        gseq = _hand_gseq(nodes, {(0, 1): 8})
        arrays = compile_timing_arrays(gseq, two_stage_flat)
        assert arrays.n_levels == 1
        report = _assert_reports_identical(two_stage_flat, gseq,
                                           placement, cells, ports)
        assert report.n_paths == 1
        assert report.worst_edge == ("pin", macro.path)

    def test_cyclic_graph_levelizes_and_matches(self, two_stage_flat,
                                                context):
        placement, cells, ports = context
        macros = two_stage_flat.macros()
        nodes = [SeqNode(0, SeqKind.MACRO, macros[0].path, 8, "sa",
                         cells=[macros[0].index]),
                 SeqNode(1, SeqKind.MACRO, macros[1].path, 8, "sb",
                         cells=[macros[1].index])]
        gseq = _hand_gseq(nodes, {(0, 1): 8, (1, 0): 8})
        arrays = compile_timing_arrays(gseq, two_stage_flat)
        # Both nodes sit on the cycle: parked in one shared level.
        assert arrays.n_levels == 1
        report = _assert_reports_identical(two_stage_flat, gseq,
                                           placement, cells, ports)
        assert report.n_paths == 2

    def test_unlocated_endpoints_skipped(self, two_stage_flat, context):
        _placement, cells, ports = context
        # Empty placement: macro nodes unlocated, their edges dropped.
        die = Rect(0.0, 0.0, 60.0, 30.0)
        empty = MacroPlacement(design_name="two_stage",
                               flow_name="degen", die=die)
        gseq = _gseq_for(two_stage_flat)
        report = _assert_reports_identical(two_stage_flat, gseq, empty,
                                           cells, ports)
        full = analyze_timing_reference(two_stage_flat, gseq,
                                        _placement, cells, ports)
        assert report.n_paths < full.n_paths

    def test_unknown_ports_skipped(self, two_stage_flat, context):
        placement, cells, _ports = context
        gseq = _gseq_for(two_stage_flat)
        report = _assert_reports_identical(two_stage_flat, gseq,
                                           placement, cells, {})
        full = analyze_timing_reference(two_stage_flat, gseq, placement,
                                        cells, _ports)
        assert report.n_paths <= full.n_paths

    def test_tight_clock_failing_paths_identical(self, two_stage_flat,
                                                 context):
        placement, cells, ports = context
        gseq = _gseq_for(two_stage_flat)
        report = _assert_reports_identical(two_stage_flat, gseq,
                                           placement, cells, ports,
                                           clock_period=1e-6)
        assert report.n_failing == report.n_paths > 0
        assert report.tns < 0
