"""Shared fixtures: small deterministic designs used across the suite."""

from __future__ import annotations

import pytest

from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.builder import ModuleBuilder
from repro.netlist.cells import (
    Direction,
    PinGeometry,
    PortDef,
    Side,
    macro_cell,
)
from repro.netlist.core import Design
from repro.netlist.flatten import flatten


def make_ram(name: str = "RAM8", width: int = 8, w: float = 6.0,
             h: float = 4.0):
    """A small macro used by hand-built test designs.

    Pin geometry matches the generator's convention: data in on the
    west edge, data out on the east edge.
    """
    return macro_cell(name, w, h, [
        PortDef("din", Direction.IN, width),
        PortDef("dout", Direction.OUT, width),
    ], pin_geometry={"din": PinGeometry(Side.WEST, 0.5),
                     "dout": PinGeometry(Side.EAST, 0.5)})


def make_stage(name: str, width: int = 8, ram=None):
    """in_reg -> macro -> out_reg, the minimal dataflow stage."""
    if ram is None:
        ram = make_ram(width=width)
    b = ModuleBuilder(name)
    b.input("din", width)
    b.output("dout", width)
    b.wire("to_ram", width)
    b.wire("from_ram", width)
    b.register_array("in_reg", width, d="din", q="to_ram")
    inst = b.instance(ram, "mem")
    b.connect_bus("to_ram", inst, "din")
    b.connect_bus("from_ram", inst, "dout")
    b.register_array("out_reg", width, d="from_ram", q="dout")
    return b.build()


def build_two_stage_design(width: int = 8) -> Design:
    """Two macro stages chained between chip ports."""
    ram = make_ram(width=width)
    sa = make_stage("stage_a", width, ram)
    sb = make_stage("stage_b", width, ram)
    top = ModuleBuilder("top")
    top.input("pin", width)
    top.output("pout", width)
    top.wire("mid", width)
    ia = top.instance(sa, "sa")
    ib = top.instance(sb, "sb")
    top.connect_bus("pin", ia, "din")
    top.connect_bus("mid", ia, "dout")
    top.connect_bus("mid", ib, "din")
    top.connect_bus("pout", ib, "dout")
    design = Design("two_stage")
    design.add_module(sa)
    design.add_module(sb)
    design.add_module(top.build())
    design.set_top("top")
    return design


@pytest.fixture(scope="session")
def two_stage_design():
    return build_two_stage_design()


@pytest.fixture(scope="session")
def two_stage_flat(two_stage_design):
    return flatten(two_stage_design)


@pytest.fixture(scope="session")
def tiny_c1():
    """The smallest suite design, built once per session."""
    spec = suite_specs("tiny")[0]
    design, truth = build_design(spec)
    die_w, die_h = die_for(design)
    return design, truth, die_w, die_h


@pytest.fixture(scope="session")
def tiny_c1_flat(tiny_c1):
    design, _truth, _w, _h = tiny_c1
    return flatten(design)
