"""Tests for the hierarchy pseudo-net affinity alternative."""

import pytest

from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort
from repro.core.dataflow import TerminalSpec
from repro.core.decluster import BlockSeed, decluster
from repro.core.pseudonets import (
    hierarchy_distance,
    pseudonet_affinity,
)
from repro.geometry.rect import Point
from repro.hiergraph.hierarchy import build_hierarchy


class TestHierarchyDistance:
    def test_same_node(self):
        assert hierarchy_distance("a/b", "a/b") == 0

    def test_siblings(self):
        assert hierarchy_distance("a/x", "a/y") == 2

    def test_parent_child(self):
        assert hierarchy_distance("a", "a/b") == 1

    def test_unrelated(self):
        assert hierarchy_distance("a/x", "b/y") == 4

    def test_root(self):
        assert hierarchy_distance("", "a/b") == 2


class TestPseudonetAffinity:
    def seeds(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        return decluster(tree.root, two_stage_flat, 0.01, 0.40).blocks

    def test_matrix_shape(self, two_stage_flat):
        seeds = self.seeds(two_stage_flat)
        terms = [TerminalSpec("pin", Point(0, 0), [])]
        matrix = pseudonet_affinity(seeds, terms)
        assert len(matrix) == len(seeds) + 1

    def test_symmetric_nonnegative(self, two_stage_flat):
        seeds = self.seeds(two_stage_flat)
        matrix = pseudonet_affinity(seeds, [])
        n = len(seeds)
        for i in range(n):
            assert matrix[i][i] == 0.0
            for j in range(n):
                assert matrix[i][j] == matrix[j][i] >= 0

    def test_closer_means_stronger(self):
        near_a = BlockSeed(name="sub/x", node=None, macro_cell=0)
        near_b = BlockSeed(name="sub/y", macro_cell=1)
        far = BlockSeed(name="other/deep/z", macro_cell=2)
        matrix = pseudonet_affinity([near_a, near_b, far], [])
        assert matrix[0][1] > matrix[0][2]


class TestPlacerIntegration:
    def test_pseudonet_mode_places_legally(self, tiny_c1):
        design, _truth, die_w, die_h = tiny_c1
        config = HiDaPConfig(seed=1, affinity_mode="pseudonet",
                             effort=Effort.FAST)
        placement = HiDaP(config).place(design, die_w, die_h)
        assert len(placement.macros) == 32
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_modes_differ(self, tiny_c1):
        design, _truth, die_w, die_h = tiny_c1
        a = HiDaP(HiDaPConfig(seed=1, affinity_mode="dataflow",
                              effort=Effort.FAST)).place(
            design, die_w, die_h)
        b = HiDaP(HiDaPConfig(seed=1, affinity_mode="pseudonet",
                              effort=Effort.FAST)).place(
            design, die_w, die_h)
        ra = sorted((p.rect.x, p.rect.y) for p in a.macros.values())
        rb = sorted((p.rect.x, p.rect.y) for p in b.macros.values())
        assert ra != rb

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="affinity mode"):
            HiDaPConfig(affinity_mode="vibes")
