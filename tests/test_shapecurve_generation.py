"""Tests for SA-based shape-curve generation (S_Γ)."""


from repro.shapecurve.curve import ShapeCurve
from repro.shapecurve.generation import (
    ShapeGenConfig,
    curve_for_macros,
    generate_shape_curves,
)


def macro_curves(*dims):
    return [ShapeCurve.for_rect(w, h) for w, h in dims]


class TestCurveForMacros:
    def test_empty(self):
        assert curve_for_macros([]).is_trivial

    def test_trivial_inputs_ignored(self):
        curves = [ShapeCurve.trivial(), ShapeCurve.for_rect(2, 3)]
        result = curve_for_macros(curves)
        assert result.feasible(3, 2)

    def test_single_macro_gets_rotations(self):
        result = curve_for_macros(macro_curves((2, 6)))
        assert result.feasible(2, 6)
        assert result.feasible(6, 2)

    def test_area_lower_bound(self):
        dims = [(4, 2), (3, 3), (2, 2)]
        result = curve_for_macros(macro_curves(*dims))
        total = sum(w * h for w, h in dims)
        assert result.min_area >= total - 1e-9

    def test_contains_row_and_column_extremes(self):
        """The deterministic row/column seeds guarantee elongated
        shapes exist on the curve."""
        result = curve_for_macros(macro_curves((4, 2), (4, 2), (4, 2)))
        # A single row: widths add with the short side up.
        assert result.feasible(12.1, 2.1)
        # A single column.
        assert result.feasible(4.1, 6.1)

    def test_deterministic(self):
        dims = [(5, 3), (2, 7), (4, 4), (1, 9)]
        config = ShapeGenConfig(seed=42)
        a = curve_for_macros(macro_curves(*dims), config)
        b = curve_for_macros(macro_curves(*dims), ShapeGenConfig(seed=42))
        assert a == b

    def test_large_group_chunks(self):
        """Groups beyond max_leaves are composed hierarchically."""
        config = ShapeGenConfig(seed=0, max_leaves=4)
        curves = macro_curves(*[(2, 2)] * 9)
        result = curve_for_macros(curves, config)
        assert not result.is_trivial
        assert result.min_area >= 9 * 4 - 1e-9


class TestGenerateShapeCurves:
    def test_tree_walk(self):
        """Bottom-up S_Γ over a small dict tree."""
        children = {"root": ["a", "b"], "a": [], "b": []}
        own = {"root": [], "a": macro_curves((2, 2)),
               "b": macro_curves((3, 1))}
        curves = generate_shape_curves(
            "root", children_of=lambda n: children[n],
            own_macro_curves_of=lambda n: own[n])
        assert set(curves) == {"root", "a", "b"}
        assert curves["a"].feasible(2, 2)
        assert curves["root"].min_area >= 4 + 3 - 1e-9

    def test_macro_free_subtree_is_trivial(self):
        children = {"root": ["glue"], "glue": []}
        own = {"root": [], "glue": []}
        curves = generate_shape_curves(
            "root", children_of=lambda n: children[n],
            own_macro_curves_of=lambda n: own[n])
        assert curves["root"].is_trivial
        assert curves["glue"].is_trivial
