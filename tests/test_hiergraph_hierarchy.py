"""Tests for the hierarchy tree HT."""

import pytest

from repro.hiergraph.hierarchy import build_hierarchy


class TestHierarchy:
    def test_structure(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        assert tree.root.module_name == "top"
        assert {c.path for c in tree.root.children} == {"sa", "sb"}
        assert len(tree) == 3

    def test_aggregates(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        root = tree.root
        assert root.macro_count == 2
        assert root.cell_count == 34
        assert root.area == pytest.approx(80.0)
        sa = tree.node("sa")
        assert sa.macro_count == 1
        assert sa.stdcell_area == pytest.approx(16.0)
        assert sa.macro_area == pytest.approx(24.0)

    def test_own_vs_subtree_macros(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        root = tree.root
        assert root.own_macros == []
        assert len(root.macros) == 2
        sa = tree.node("sa")
        assert len(sa.own_macros) == 1
        assert sa.macros == sa.own_macros

    def test_node_of_cell(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        mem = two_stage_flat.cell_by_path("sa/mem")
        assert tree.node_of_cell(mem).path == "sa"

    def test_walk_preorder(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        paths = [n.path for n in tree.root.walk()]
        assert paths[0] == ""
        assert set(paths) == {"", "sa", "sb"}

    def test_subtree_cells(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        cells = list(tree.node("sa").subtree_cells())
        assert len(cells) == 17

    def test_suite_depth(self, tiny_c1_flat):
        tree = build_hierarchy(tiny_c1_flat)
        depths = {}
        for node in tree.root.walk():
            depth = node.path.count("/") + (1 if node.path else 0)
            depths[depth] = depths.get(depth, 0) + 1
        # top -> subsystems -> stages/banks: at least 3 levels.
        assert max(depths) >= 2
        # Area aggregation is conservative.
        child_sum = sum(c.area for c in tree.root.children)
        own = sum(tiny_c1_flat.cells[i].ctype.area
                  for i in tree.root.own_cells)
        assert tree.root.area == pytest.approx(child_sum + own)
