"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (["gen", "c1"], ["place", "c1"], ["suite"],
                     ["info", "c1"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_gen_writes_json(self, tmp_path, capsys):
        out = str(tmp_path / "c1.json")
        verilog = str(tmp_path / "c1.v")
        assert main(["gen", "c1", "--scale", "tiny", "--out", out,
                     "--verilog", verilog]) == 0
        data = json.loads(open(out).read())
        assert data["name"] == "c1"
        assert "module" in open(verilog).read()

    def test_info_runs(self, capsys):
        assert main(["info", "c1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "32 macros" in out
        assert "Gseq" in out

    def test_info_on_json(self, tmp_path, capsys):
        out = str(tmp_path / "d.json")
        main(["gen", "c1", "--scale", "tiny", "--out", out])
        assert main(["info", out]) == 0

    def test_place_hidap(self, tmp_path, capsys):
        out = str(tmp_path / "placement.json")
        svg = str(tmp_path / "fp.svg")
        assert main(["place", "c1", "--scale", "tiny", "--flow",
                     "hidap", "--effort", "fast", "--out", out,
                     "--svg", svg]) == 0
        data = json.loads(open(out).read())
        assert data["flow"] == "hidap"
        assert len(data["macros"]) == 32
        assert open(svg).read().startswith("<svg")

    def test_place_unknown_suite_design(self):
        with pytest.raises(SystemExit):
            main(["place", "c99", "--scale", "tiny"])

    def test_place_indeda(self, capsys):
        assert main(["place", "c1", "--scale", "tiny", "--flow",
                     "indeda"]) == 0
        assert "indeda" in capsys.readouterr().out

    def test_suite_subset_flows(self, capsys):
        assert main(["suite", "--scale", "tiny", "--designs", "c1",
                     "--flows", "indeda,handfp-strip",
                     "--effort", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "c1" in out
