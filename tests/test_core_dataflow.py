"""Tests for per-level dataflow inference."""

import pytest

from repro.core.dataflow import TerminalSpec, infer_affinity, seq_nodes_for_seeds
from repro.core.decluster import decluster
from repro.geometry.rect import Point
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def two_stage_ctx(two_stage_flat):
    gnet = build_gnet(two_stage_flat)
    gseq = build_gseq(gnet, two_stage_flat)
    tree = build_hierarchy(two_stage_flat)
    return two_stage_flat, gnet, gseq, tree


class TestSeqNodeClaims:
    def test_subtree_blocks_claim_members(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        members = seq_nodes_for_seeds(gseq, result.blocks)
        by_name = {s.name: m for s, m in zip(result.blocks, members)}
        sa_names = {gseq.nodes[i].name for i in by_name["sa"]}
        assert sa_names == {"sa/in_reg", "sa/mem", "sa/out_reg"}

    def test_claims_disjoint(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        members = seq_nodes_for_seeds(gseq, result.blocks)
        seen = set()
        for group in members:
            assert not (seen & set(group))
            seen.update(group)

    def test_macro_seed_claims_only_its_macro(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        sa = tree.node("sa")
        result = decluster(sa, flat, 0.01, 0.40)
        members = seq_nodes_for_seeds(gseq, result.blocks)
        macro_groups = [m for s, m in zip(result.blocks, members)
                        if s.is_macro_seed]
        assert len(macro_groups) == 1
        assert [gseq.nodes[i].name for i in macro_groups[0]] == ["sa/mem"]

    def test_ports_never_claimed_by_blocks(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        members = seq_nodes_for_seeds(gseq, result.blocks)
        port_ids = {p.index for p in gseq.ports()}
        for group in members:
            assert not (port_ids & set(group))


class TestInferAffinity:
    def test_chain_affinity(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        terms = [
            TerminalSpec("pin", Point(0, 0),
                         [gseq.node_by_name("pin").index]),
            TerminalSpec("pout", Point(10, 0),
                         [gseq.node_by_name("pout").index]),
        ]
        gdf, matrix = infer_affinity(gseq, result.blocks, terms,
                                     lam=0.5, latency_k=1.0)
        names = [s.name for s in result.blocks]
        ia, ib = names.index("sa"), names.index("sb")
        n = len(result.blocks)
        # sa <-> sb must attract; pin attracts sa; pout attracts sb.
        assert matrix[ia][ib] + matrix[ib][ia] > 0
        assert matrix[ia][n + 0] + matrix[n + 0][ia] > 0
        assert matrix[ib][n + 1] + matrix[n + 1][ib] > 0
        # No pin attraction for sb at latency <= its distance... the
        # wrong-way edge must be zero (pout does not feed sa).
        assert matrix[n + 1][ia] + matrix[ia][n + 1] == 0

    def test_lambda_extremes_differ(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        _gdf, block_only = infer_affinity(gseq, result.blocks, [],
                                          lam=1.0, latency_k=1.0)
        _gdf, macro_only = infer_affinity(gseq, result.blocks, [],
                                          lam=0.0, latency_k=1.0)
        assert block_only != macro_only

    def test_matrix_size_includes_terminals(self, two_stage_ctx):
        flat, _gnet, gseq, tree = two_stage_ctx
        result = decluster(tree.root, flat, 0.01, 0.40)
        terms = [TerminalSpec("pin", Point(0, 0),
                              [gseq.node_by_name("pin").index])]
        _gdf, matrix = infer_affinity(gseq, result.blocks, terms,
                                      lam=0.5, latency_k=1.0)
        assert len(matrix) == len(result.blocks) + 1
