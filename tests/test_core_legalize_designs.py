"""Legalized placements must be legal on every bundled design.

Regression lock for the c3 repair first observed in PR 1: with the
legalize stage on (the default), the HiDaP placement of every suite
design c1..c5 must have zero macro-macro overlap area and no macro
protruding from the die.  Before the legalizer, rare layouts (tiny c3)
violated both.
"""

from __future__ import annotations

import pytest

from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.flatten import flatten

_SPECS = {spec.name: spec for spec in suite_specs("tiny")}

#: Designs the issue calls out; c3 is the one that historically broke.
DESIGNS = ("c1", "c2", "c3", "c4", "c5")


@pytest.fixture(scope="module", params=DESIGNS)
def legalized_placement(request):
    spec = _SPECS[request.param]
    design, _truth = build_design(spec)
    die_w, die_h = die_for(design)
    config = HiDaPConfig(seed=1, effort=Effort.FAST, legalize=True)
    placement = HiDaP(config).place(flatten(design), die_w, die_h)
    return request.param, placement


def test_no_macro_overlap(legalized_placement):
    name, placement = legalized_placement
    overlap = placement.macro_overlap_area()
    assert overlap == pytest.approx(0.0, abs=1e-6), \
        f"{name}: legalized placement has {overlap:.3f} units^2 of " \
        "macro-macro overlap"


def test_no_die_protrusion(legalized_placement):
    name, placement = legalized_placement
    die = placement.die
    for idx, macro in placement.macros.items():
        assert die.contains_rect(macro.rect, tol=1e-6), \
            f"{name}: macro {macro.path or idx} at {macro.rect} " \
            f"protrudes from die {die}"


def test_all_macros_placed(legalized_placement):
    name, placement = legalized_placement
    flat = flatten(build_design(_SPECS[name])[0])
    assert len(placement.macros) == len(flat.macros())
