"""Tests for the synthetic design generator."""

import pytest

from repro.gen.designs import build_design, die_for, suite_specs
from repro.gen.macros import make_macro_library
from repro.netlist.stats import design_stats
from repro.netlist.validate import validate_design

PAPER_MACROS = {"c1": 32, "c2": 100, "c3": 94, "c4": 122,
                "c5": 133, "c6": 90, "c7": 108, "c8": 37}


class TestSuiteSpecs:
    def test_eight_designs(self):
        specs = suite_specs("tiny")
        assert [s.name for s in specs] == [f"c{i}" for i in range(1, 9)]

    def test_macro_counts_match_paper(self):
        for spec in suite_specs("tiny"):
            assert spec.total_macros == PAPER_MACROS[spec.name]

    def test_scales_differ_in_cells_not_macros(self):
        tiny = {s.name: s for s in suite_specs("tiny")}
        full = {s.name: s for s in suite_specs("full")}
        strictly_bigger = 0
        for name in tiny:
            assert tiny[name].total_macros == full[name].total_macros
            tiny_fill = sum(x.filler_cells
                            for x in tiny[name].subsystems)
            full_fill = sum(x.filler_cells
                            for x in full[name].subsystems)
            assert full_fill >= tiny_fill
            if full_fill > tiny_fill:
                strictly_bigger += 1
        # Small designs may bottom out at their structural size, but
        # most of the suite must actually scale.
        assert strictly_bigger >= 6

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            suite_specs("huge")


class TestBuildDesign:
    def test_macro_count_exact(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        assert design_stats(design).macros == 32

    def test_validates_clean(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        errors = [i for i in validate_design(design)
                  if i.severity == "error"]
        assert not errors

    def test_deterministic(self):
        spec = suite_specs("tiny")[0]
        a, _ = build_design(spec)
        b, _ = build_design(spec)
        from repro.netlist.verilog import design_to_verilog
        assert design_to_verilog(a) == design_to_verilog(b)

    def test_ground_truth_covers_all_macros(self, tiny_c1, tiny_c1_flat):
        _design, truth, _w, _h = tiny_c1
        claimed = set()
        for paths in truth.subsystem_macros.values():
            claimed.update(paths)
        assert claimed == {m.path for m in tiny_c1_flat.macros()}

    def test_order_matches_subsystems(self, tiny_c1):
        design, truth, _w, _h = tiny_c1
        top_instances = {i.name for i in design.top.module_instances()}
        assert set(truth.order) == top_instances

    def test_all_patterns_buildable(self):
        """c4 exercises pipeline, memsys, dsp and xbar together."""
        spec = next(s for s in suite_specs("tiny") if s.name == "c4")
        design, truth = build_design(spec)
        stats = design_stats(design)
        assert stats.macros == PAPER_MACROS["c4"]
        errors = [i for i in validate_design(design)
                  if i.severity == "error"]
        assert not errors

    def test_die_sizing(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        w, h = die_for(design, utilization=0.5)
        stats = design_stats(design)
        assert w * h == pytest.approx(stats.total_area / 0.5, rel=0.01)

    def test_macro_area_dominates(self, tiny_c1):
        """The paper targets designs dominated by macro blocks."""
        design, _truth, _w, _h = tiny_c1
        stats = design_stats(design)
        assert stats.macro_area > stats.stdcell_area


class TestMacroLibrary:
    def test_deterministic(self):
        a = make_macro_library(7, 64)
        b = make_macro_library(7, 64)
        assert set(a.cells) == set(b.cells)
        for name in a.cells:
            assert a.cells[name] == b.cells[name]

    def test_unique_names_across_seeds(self):
        a = make_macro_library(1, 64)
        b = make_macro_library(2, 64)
        assert not (set(a.cells) & set(b.cells))

    def test_sampling_deterministic(self):
        import random
        lib = make_macro_library(3, 32)
        seq_a = [lib.sample(random.Random(5)).name for _ in range(4)]
        seq_b = [lib.sample(random.Random(5)).name for _ in range(4)]
        assert seq_a == seq_b

    def test_macro_ports(self):
        lib = make_macro_library(3, 32)
        for cell in lib.cells.values():
            assert cell.port("din").width == 32
            assert cell.port("dout").width == 32
            assert cell.is_macro
