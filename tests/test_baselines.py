"""Tests for the IndEDA and handFP baseline flows."""

import pytest

from repro.baselines.common import (
    macro_affinity_matrix,
    pack_perimeter,
)
from repro.baselines.handfp import place_handfp
from repro.baselines.indeda import place_indeda
from repro.geometry.rect import Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq


class TestPackPerimeter:
    def test_all_placed_disjoint(self):
        die = Rect(0, 0, 40, 40)
        dims = [(6, 3)] * 10
        rects = pack_perimeter(die, dims)
        assert len(rects) == 10
        from repro.geometry.rect import total_overlap_area
        assert total_overlap_area(rects) == pytest.approx(0.0)
        for rect in rects:
            assert die.contains_rect(rect, tol=1e-6)

    def test_items_touch_walls_first_ring(self):
        die = Rect(0, 0, 100, 100)
        dims = [(8, 4)] * 6
        rects = pack_perimeter(die, dims)
        for rect in rects:
            on_wall = (rect.x == 0 or rect.y == 0
                       or rect.x2 == 100 or rect.y2 == 100)
            assert on_wall

    def test_long_side_along_wall(self):
        die = Rect(0, 0, 100, 100)
        rects = pack_perimeter(die, [(10, 3)])
        # West wall: depth (x-extent) is the short side.
        assert rects[0].w == 3
        assert rects[0].h == 10

    def test_second_ring_when_full(self):
        die = Rect(0, 0, 20, 20)
        dims = [(6, 2)] * 14          # perimeter fits ~12
        rects = pack_perimeter(die, dims)
        assert len(rects) == 14
        assert all(r is not None for r in rects)
        from repro.geometry.rect import total_overlap_area
        assert total_overlap_area(rects) < 1e-6


class TestMacroAffinity:
    def test_matrix_shape_and_names(self, two_stage_flat):
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        cells, matrix, ports = macro_affinity_matrix(
            gseq, two_stage_flat, lam=0.5, latency_k=1.0)
        assert len(cells) == 2
        assert set(ports) == {"pin", "pout"}
        assert len(matrix) == 4
        # Macro flow connects the two memories (latency 3 path).
        assert matrix[0][1] + matrix[1][0] > 0


class TestIndEDA:
    def test_legal_placement(self, tiny_c1_flat, tiny_c1):
        _design, _truth, die_w, die_h = tiny_c1
        placement = place_indeda(tiny_c1_flat, die_w, die_h)
        assert len(placement.macros) == 32
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_macros_on_walls(self, tiny_c1_flat, tiny_c1):
        """The signature industrial behaviour: macros hug the die
        boundary (paper Fig. 9a)."""
        _design, _truth, die_w, die_h = tiny_c1
        placement = place_indeda(tiny_c1_flat, die_w, die_h)
        on_wall = 0
        for placed in placement.macros.values():
            rect = placed.rect
            if (rect.x < 1e-6 or rect.y < 1e-6
                    or rect.x2 > die_w - 1e-6 or rect.y2 > die_h - 1e-6):
                on_wall += 1
        assert on_wall >= len(placement.macros) * 0.5

    def test_deterministic(self, tiny_c1_flat, tiny_c1):
        _design, _truth, die_w, die_h = tiny_c1
        a = place_indeda(tiny_c1_flat, die_w, die_h)
        b = place_indeda(tiny_c1_flat, die_w, die_h)
        assert {i: p.rect for i, p in a.macros.items()} \
            == {i: p.rect for i, p in b.macros.items()}


class TestHandFP:
    def test_legal_placement(self, tiny_c1_flat, tiny_c1):
        _design, truth, die_w, die_h = tiny_c1
        placement = place_handfp(tiny_c1_flat, truth, die_w, die_h)
        assert len(placement.macros) == 32
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_strips_follow_ground_truth_order(self, tiny_c1_flat,
                                              tiny_c1):
        _design, truth, die_w, die_h = tiny_c1
        placement = place_handfp(tiny_c1_flat, truth, die_w, die_h)
        # Strip rects are recorded per subsystem, ordered left→right.
        xs = [placement.block_rects[name].x for name in truth.order]
        assert xs == sorted(xs)

    def test_macros_in_their_strips(self, tiny_c1_flat, tiny_c1):
        _design, truth, die_w, die_h = tiny_c1
        placement = place_handfp(tiny_c1_flat, truth, die_w, die_h)
        for inst_name in truth.order:
            strip = placement.block_rects[inst_name]
            for path in truth.subsystem_macros[inst_name]:
                cell = tiny_c1_flat.cell_by_path(path)
                placed = placement.macros[cell.index]
                assert strip.contains_rect(placed.rect, tol=1e-6)
