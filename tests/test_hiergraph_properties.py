"""Property-based tests of Gseq construction over random pipelines."""

from hypothesis import given, settings, strategies as st

from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.flatten import flatten


def build_pipeline(widths, with_clouds):
    """A register pipeline r0 -> r1 -> ... with optional comb clouds."""
    b = ModuleBuilder("pipe")
    max_w = max(widths)
    b.input("din", max_w)
    b.output("dout", max_w)
    current = "din"
    current_w = max_w
    for i, width in enumerate(widths):
        reg_in = current
        if with_clouds:
            cloud = f"c{i}"
            b.wire(cloud, width)
            b.comb_cloud(f"cloud{i}", [current], cloud)
            reg_in = cloud
        out = f"w{i}" if i < len(widths) - 1 else "dout"
        if out != "dout":
            b.wire(out, width)
        if reg_in == current and current_w < width:
            # Narrower upstream bus: drive through a cloud instead.
            cloud = f"pad{i}"
            b.wire(cloud, width)
            b.comb_cloud(f"padc{i}", [current], cloud)
            reg_in = cloud
        if out == "dout" and width < max_w:
            # Keep the final connection width-safe via a cloud.
            mid = f"fin{i}"
            b.wire(mid, width)
            b.register_array(f"r{i}", width, d=reg_in, q=mid)
            b.comb_cloud("out_cloud", [mid], "dout")
        else:
            b.register_array(f"r{i}", width, d=reg_in, q=out)
        current = out
        current_w = width
    return single_module_design(b)


widths_strategy = st.lists(st.integers(min_value=2, max_value=24),
                           min_size=2, max_size=6)


class TestGseqProperties:
    @settings(max_examples=40, deadline=None)
    @given(widths_strategy, st.booleans())
    def test_pipeline_structure_recovered(self, widths, with_clouds):
        design = build_pipeline(widths, with_clouds)
        flat = flatten(design)
        gseq = build_gseq(build_gnet(flat), flat, min_bits=1)

        # One register cluster per stage, with the declared width.
        regs = {node.name: node for node in gseq.registers()}
        assert len(regs) == len(widths)
        for i, width in enumerate(widths):
            assert regs[f"r{i}"].bits == width

        # Edges run strictly forward along the pipeline.
        for (u, v), bits in gseq.edge_bits.items():
            nu, nv = gseq.nodes[u], gseq.nodes[v]
            if nu.name.startswith("r") and nv.name.startswith("r"):
                assert int(nu.name[1:]) < int(nv.name[1:])
            # Edge width never exceeds either endpoint's bitwidth
            # (comb clouds cannot widen a bus).
            assert bits <= max(nu.bits, nv.bits)

    @settings(max_examples=20, deadline=None)
    @given(widths_strategy)
    def test_threshold_monotone(self, widths):
        """Raising min_bits never increases the node count."""
        design = build_pipeline(widths, with_clouds=False)
        flat = flatten(design)
        gnet = build_gnet(flat)
        sizes = [build_gseq(gnet, flat, min_bits=m).n_nodes
                 for m in (1, 4, 16)]
        assert sizes == sorted(sizes, reverse=True)
