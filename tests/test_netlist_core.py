"""Tests for the hierarchical netlist data model."""

import pytest

from repro.netlist.cells import DEFAULT_FLOP, Direction
from repro.netlist.core import Conn, Design, Module, Net


class TestNet:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            Net("n", 0)

    def test_connect_slice_bounds(self):
        net = Net("n", 8)
        net.connect("i", "p", width=4, net_lsb=4)
        with pytest.raises(ValueError):
            net.connect("i", "p", width=4, net_lsb=5)

    def test_conn_bit_ranges(self):
        conn = Conn("i", "p", width=3, net_lsb=2, pin_lsb=1)
        assert list(conn.net_bits()) == [2, 3, 4]
        assert list(conn.pin_bits()) == [1, 2, 3]


class TestModule:
    def test_port_creates_net(self):
        m = Module("m")
        m.add_port("din", Direction.IN, 8)
        assert "din" in m.nets
        assert m.nets["din"].width == 8

    def test_duplicate_port_rejected(self):
        m = Module("m")
        m.add_port("p", Direction.IN)
        with pytest.raises(ValueError):
            m.add_port("p", Direction.OUT)

    def test_net_redeclaration(self):
        m = Module("m")
        m.add_net("w", 4)
        assert m.add_net("w", 4) is m.nets["w"]
        with pytest.raises(ValueError):
            m.add_net("w", 8)

    def test_duplicate_instance_rejected(self):
        m = Module("m")
        m.add_instance("i", DEFAULT_FLOP)
        with pytest.raises(ValueError):
            m.add_instance("i", DEFAULT_FLOP)

    def test_leaf_and_module_instances(self):
        inner = Module("inner")
        outer = Module("outer")
        outer.add_instance("leaf", DEFAULT_FLOP)
        outer.add_instance("sub", inner)
        assert [i.name for i in outer.leaf_instances()] == ["leaf"]
        assert [i.name for i in outer.module_instances()] == ["sub"]
        assert outer.instances["sub"].ref_name == "inner"

    def test_port_lookup_error(self):
        m = Module("m")
        with pytest.raises(KeyError):
            m.port("nope")


class TestDesign:
    def test_top_management(self):
        d = Design("d")
        m = Module("m")
        d.add_module(m)
        with pytest.raises(ValueError):
            _ = d.top
        d.set_top("m")
        assert d.top is m

    def test_unknown_top_rejected(self):
        d = Design("d")
        with pytest.raises(KeyError):
            d.set_top("ghost")

    def test_duplicate_module_rejected(self):
        d = Design("d")
        d.add_module(Module("m"))
        with pytest.raises(ValueError):
            d.add_module(Module("m"))

    def test_cell_types_collects_leaves(self):
        d = Design("d")
        m = Module("m")
        m.add_instance("f", DEFAULT_FLOP)
        d.add_module(m)
        d.set_top("m")
        assert set(d.cell_types()) == {"DFF"}
