"""Tests for Polish expressions and the Wong-Liu moves."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.slicing.moves import (
    Move,
    move_chain_invert,
    move_operand_operator_swap,
    move_operand_swap,
    perturb,
)
from repro.slicing.polish import H, PolishExpression, V, is_operator


class TestPolishExpression:
    def test_initial_is_valid(self):
        for n in range(1, 12):
            expr = PolishExpression.initial(n)
            assert expr.is_valid()
            assert expr.n_blocks == n

    def test_initial_shuffled(self):
        rng = random.Random(3)
        expr = PolishExpression.initial(6, rng)
        assert expr.is_valid()
        assert sorted(expr.operands()) == list(range(6))

    def test_initial_rejects_zero(self):
        with pytest.raises(ValueError):
            PolishExpression.initial(0)

    def test_validity_checks(self):
        assert PolishExpression([0]).is_valid()
        assert PolishExpression([0, 1, V]).is_valid()
        assert not PolishExpression([0, V, 1]).is_valid()   # balloting
        assert not PolishExpression([0, 1]).is_valid()      # no operator
        assert not PolishExpression([0, 1, V, V]).is_valid()
        # Normalization: consecutive identical operators are invalid.
        assert not PolishExpression([0, 1, 2, V, V]).is_valid()
        assert PolishExpression([0, 1, 2, V, H]).is_valid()

    def test_operand_helpers(self):
        expr = PolishExpression([0, 1, V, 2, H])
        assert expr.operands() == [0, 1, 2]
        assert expr.operand_positions() == [0, 1, 3]
        assert expr.operator_positions() == [2, 4]

    def test_operator_chains(self):
        expr = PolishExpression([0, 1, 2, V, H, 3, V])
        assert expr.operator_chains() == [(3, 4), (6, 6)]

    def test_copy_is_independent(self):
        expr = PolishExpression([0, 1, V])
        clone = expr.copy()
        clone.tokens[2] = H
        assert expr.tokens[2] == V


class TestMoves:
    def test_m1_swaps_adjacent_operands(self):
        expr = PolishExpression([0, 1, V, 2, H])
        rng = random.Random(0)
        before = expr.operands()
        move_operand_swap(expr, rng)
        after = expr.operands()
        assert sorted(before) == sorted(after)
        assert before != after
        assert expr.is_valid()

    def test_m2_inverts_chain(self):
        expr = PolishExpression([0, 1, V, 2, H])
        rng = random.Random(0)
        ops_before = [t for t in expr.tokens if is_operator(t)]
        move_chain_invert(expr, rng)
        ops_after = [t for t in expr.tokens if is_operator(t)]
        assert ops_before != ops_after
        assert expr.is_valid()

    def test_m3_preserves_validity(self):
        rng = random.Random(7)
        expr = PolishExpression([0, 1, V, 2, H, 3, V])
        for _ in range(50):
            result = move_operand_operator_swap(expr, rng)
            assert expr.is_valid()
            if result is not None:
                assert result[0] == "M3"

    def test_single_block_cannot_perturb(self):
        with pytest.raises(ValueError):
            perturb(PolishExpression([0]), random.Random(0))

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=10_000))
    def test_moves_report_changed_positions(self, n_blocks, seed):
        """Property: ``move.positions`` covers every token that
        changed (incremental evaluators rely on this to know which
        subtrees survived)."""
        rng = random.Random(seed)
        expr = PolishExpression.initial(n_blocks, rng)
        for _ in range(20):
            before = list(expr.tokens)
            move = perturb(expr, rng)
            assert isinstance(move, Move)
            changed = {i for i, (a, b)
                       in enumerate(zip(before, expr.tokens)) if a != b}
            assert changed <= set(move.positions)
            assert list(move.positions) == sorted(move.positions)
            assert move.lo == move.positions[0]
            assert move.hi == move.positions[-1]

    @settings(max_examples=60)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=60))
    def test_random_walks_stay_valid(self, n_blocks, seed, steps):
        """Property: any sequence of perturbations keeps the expression
        a valid normalized Polish expression over the same blocks."""
        rng = random.Random(seed)
        expr = PolishExpression.initial(n_blocks, rng)
        for _ in range(steps):
            perturb(expr, rng)
            assert expr.is_valid()
        assert sorted(expr.operands()) == list(range(n_blocks))
