"""Extra coverage for table formatting and normalization edge cases."""

import pytest

from repro.api import FlowMetrics
from repro.eval.tables import (
    format_table2,
    format_table3,
    geomean,
    normalize_to_handfp,
)


def _row(design, flow, wl, seconds=1.0):
    return FlowMetrics(design=design, flow=flow, wl_meters=wl,
                       grc_percent=2.0, wns_percent=-3.0, tns=-1.0,
                       placer_seconds=seconds)


class TestNormalizationEdgeCases:
    def test_missing_handfp_yields_zero_norm(self):
        rows = [_row("c1", "indeda", 2.0), _row("c1", "hidap", 1.5)]
        normalize_to_handfp(rows)
        assert all(r.wl_norm == 0.0 for r in rows)

    def test_multiple_designs_independent(self):
        rows = [_row("c1", "handfp", 1.0), _row("c1", "hidap", 2.0),
                _row("c2", "handfp", 4.0), _row("c2", "hidap", 2.0)]
        normalize_to_handfp(rows)
        norms = {(r.design, r.flow): r.wl_norm for r in rows}
        assert norms[("c1", "hidap")] == pytest.approx(2.0)
        assert norms[("c2", "hidap")] == pytest.approx(0.5)


class TestTableFormatting:
    def test_table2_skips_missing_flows(self):
        rows = [_row("c1", "hidap", 1.0), _row("c1", "handfp", 1.0)]
        normalize_to_handfp(rows)
        text = format_table2(rows)
        assert "hidap" in text
        assert "indeda" not in text.replace("IndEDA", "")

    def test_table2_without_handfp_uses_meters(self):
        rows = [_row("c1", "hidap", 1.5)]
        normalize_to_handfp(rows)
        text = format_table2(rows)
        assert "1.500" in text

    def test_table3_preserves_design_order(self):
        rows = []
        for design in ("c3", "c1", "c2"):
            rows.append(_row(design, "handfp", 1.0))
        normalize_to_handfp(rows)
        text = format_table3(rows)
        # First-seen order, not alphabetical.
        assert text.index("c3") < text.index("c1") < text.index("c2")

    def test_row_format(self):
        row = _row("c1", "hidap", 1.234)
        row.wl_norm = 1.1
        text = row.row()
        assert "c1" in text
        assert "1.234" in text
        assert "1.100" in text


class TestGeomeanMore:
    def test_single_value(self):
        assert geomean([3.7]) == pytest.approx(3.7)

    def test_scale_invariance(self):
        a = geomean([1.0, 2.0, 4.0])
        b = geomean([10.0, 20.0, 40.0])
        assert b == pytest.approx(10.0 * a)

    def test_less_outlier_sensitive_than_mean(self):
        values = [1.0, 1.0, 1.0, 10.0]
        arith = sum(values) / len(values)
        assert geomean(values) < arith
