"""Tests for standard-cell clustering, quadratic placement and HPWL."""

import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.rect import Point, Rect
from repro.placement.cluster import cluster_cells
from repro.placement.hpwl import hpwl_report
from repro.placement.stdcell import place_cells


@pytest.fixture(scope="module")
def manual_placement(two_stage_flat):
    placement = MacroPlacement("two_stage", "test", Rect(0, 0, 60, 30))
    placement.block_rects[""] = placement.die
    placement.block_rects["sa"] = Rect(0, 0, 30, 30)
    placement.block_rects["sb"] = Rect(30, 0, 30, 30)
    mem_a = two_stage_flat.cell_by_path("sa/mem")
    mem_b = two_stage_flat.cell_by_path("sb/mem")
    placement.macros[mem_a.index] = PlacedMacro(
        mem_a.index, mem_a.path, Rect(5, 12, 6, 4))
    placement.macros[mem_b.index] = PlacedMacro(
        mem_b.index, mem_b.path, Rect(45, 12, 6, 4))
    return placement


@pytest.fixture(scope="module")
def placed_cells(two_stage_flat, manual_placement, two_stage_design):
    ports = assign_port_positions(two_stage_design,
                                  manual_placement.die)
    cells = place_cells(two_stage_flat, manual_placement, ports)
    return cells, ports


class TestClustering:
    def test_every_stdcell_clustered(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        stdcells = [c.index for c in two_stage_flat.cells
                    if not c.is_macro]
        assert set(clustered.cluster_of_cell) == set(stdcells)

    def test_register_arrays_one_cluster(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        names = {c.name for c in clustered.clusters}
        assert "sa:in_reg" in names
        in_reg = next(c for c in clustered.clusters
                      if c.name == "sa:in_reg")
        assert len(in_reg.cells) == 8
        assert in_reg.area == pytest.approx(8.0)

    def test_area_conserved(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        assert clustered.total_area() \
            == pytest.approx(two_stage_flat.stdcell_area())

    def test_nets_projected(self, two_stage_flat):
        clustered = cluster_cells(two_stage_flat)
        assert clustered.nets
        for cluster_eps, macro_eps, port_eps, weight in clustered.nets:
            assert weight >= 1
            assert len(cluster_eps) + len(macro_eps) + len(port_eps) >= 2

    def test_parallel_bits_collapse(self, two_stage_flat):
        """The 8 bit-nets between in_reg and mem collapse to weight 8."""
        clustered = cluster_cells(two_stage_flat)
        mem_a = two_stage_flat.cell_by_path("sa/mem").index
        in_reg = next(c.index for c in clustered.clusters
                      if c.name == "sa:in_reg")
        weights = [w for ceps, meps, peps, w in clustered.nets
                   if ceps == (in_reg,) and meps == (mem_a,)]
        assert weights and max(weights) == 8


class TestPlaceCells:
    def test_all_inside_die(self, placed_cells, manual_placement):
        cells, _ports = placed_cells
        die = manual_placement.die
        for i in range(cells.clustered.n_clusters):
            pos = cells.cluster_pos(i)
            assert die.contains_point(pos, tol=1e-6)

    def test_locality_follows_macros(self, placed_cells,
                                     two_stage_flat):
        """sa clusters place nearer sa's macro than sb's."""
        cells, _ports = placed_cells
        mem_a = Point(8, 14)
        mem_b = Point(48, 14)
        sa_clusters = [c for c in cells.clustered.clusters
                       if c.module_path == "sa"]
        assert sa_clusters
        for cluster in sa_clusters:
            pos = cells.cluster_pos(cluster.index)
            assert pos.manhattan(mem_a) <= pos.manhattan(mem_b)

    def test_cell_pos_for_macro_is_none(self, placed_cells,
                                        two_stage_flat):
        cells, _ports = placed_cells
        mem = two_stage_flat.cell_by_path("sa/mem")
        assert cells.cell_pos(mem.index) is None

    def test_deterministic(self, two_stage_flat, manual_placement,
                           two_stage_design):
        ports = assign_port_positions(two_stage_design,
                                      manual_placement.die)
        a = place_cells(two_stage_flat, manual_placement, ports)
        b = place_cells(two_stage_flat, manual_placement, ports)
        assert (a.x == b.x).all()
        assert (a.y == b.y).all()


class TestHpwl:
    def test_positive_and_finite(self, placed_cells, two_stage_flat,
                                 manual_placement):
        cells, ports = placed_cells
        report = hpwl_report(two_stage_flat, manual_placement, cells,
                             ports)
        assert report.total_units > 0
        assert report.n_nets > 0
        assert report.macro_net_units > 0
        assert report.macro_net_units <= report.total_units
        assert report.meters == pytest.approx(report.total_units / 1e6)

    def test_hand_computed_two_point_net(self):
        """A single net between one macro pin and one port."""
        from repro.netlist.builder import ModuleBuilder, \
            single_module_design
        from repro.netlist.flatten import flatten
        from tests.conftest import make_ram
        ram = make_ram(width=1, w=4.0, h=2.0)
        b = ModuleBuilder("m")
        b.input("a", 1)
        b.output("z", 1)
        inst = b.instance(ram, "mem")
        b.connect("a", inst, "din")
        b.connect("z", inst, "dout")
        flat = flatten(single_module_design(b))
        placement = MacroPlacement("m", "test", Rect(0, 0, 20, 10))
        mem = flat.cell_by_path("mem")
        placement.macros[mem.index] = PlacedMacro(
            mem.index, "mem", Rect(8, 4, 4, 2))
        cells = place_cells(flat, placement, {})
        ports = {"a": Point(0, 0), "z": Point(20, 10)}
        report = hpwl_report(flat, placement, cells, ports)
        # net a: port (0,0) to din pin at (8, 5): HPWL 13
        # net z: dout pin at (12, 5) to port (20,10): HPWL 13
        assert report.total_units == pytest.approx(26.0)

    def test_worse_placement_longer_wl(self, two_stage_flat,
                                       two_stage_design):
        """Swapping the two macros against the dataflow lengthens WL."""
        die = Rect(0, 0, 60, 30)
        ports = assign_port_positions(two_stage_design, die)

        def wl(ax, bx):
            placement = MacroPlacement("two_stage", "t", die)
            placement.block_rects[""] = die
            mem_a = two_stage_flat.cell_by_path("sa/mem")
            mem_b = two_stage_flat.cell_by_path("sb/mem")
            placement.macros[mem_a.index] = PlacedMacro(
                mem_a.index, mem_a.path, Rect(ax, 13, 6, 4))
            placement.macros[mem_b.index] = PlacedMacro(
                mem_b.index, mem_b.path, Rect(bx, 13, 6, 4))
            cells = place_cells(two_stage_flat, placement, ports)
            return hpwl_report(two_stage_flat, placement, cells,
                               ports).total_units

        # pin is on the west wall: sa's macro west is the good order.
        assert wl(5, 45) < wl(45, 5)
