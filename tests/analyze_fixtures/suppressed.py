"""Fixture: a finding silenced by noqa, plus an unused suppression."""

import random

LIMIT = len("abc")  # repro: noqa[REP003] matches nothing: unused


def jitter():
    return random.random()  # repro: noqa[REP001] fixture-only draw
