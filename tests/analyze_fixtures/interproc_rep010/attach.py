"""Known-bad: the views outlive the local SharedMemory handle.

``load_views`` returns only the views; nothing keeps ``shm`` alive,
so the attachment is garbage-collected and the mapping unmapped under
the views the caller still holds.
"""

from multiprocessing import shared_memory

from .views import as_view


def load_views(name):
    shm = shared_memory.SharedMemory(name=name)
    views = as_view(shm)
    return views
