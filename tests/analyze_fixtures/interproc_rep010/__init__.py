"""REP010 fixture package: views escape while the handle dies."""
