"""Helper building read-only views over a caller-owned segment."""

import numpy as np


def as_view(shm):
    view = np.ndarray((4,), dtype=np.float64, buffer=shm.buf)
    view.flags.writeable = False
    return view
