"""With-managed executor and a picklable payload."""

from concurrent.futures import ProcessPoolExecutor


def task(n):
    return n + 1


def run_jobs():
    with ProcessPoolExecutor() as pool:
        future = pool.submit(task, 1)
    return future.result()
