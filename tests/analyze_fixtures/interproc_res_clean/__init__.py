"""Clean resource fixtures: every REP010-REP012 idiom done right."""
