"""The sanctioned pin-and-return attach idiom."""

from multiprocessing import shared_memory

_PINS = {}


def attach(name):
    shm = _PINS.get(name)
    if shm is not None:
        return shm
    shm = shared_memory.SharedMemory(name=name)
    _PINS[name] = shm
    return shm
