"""Tracker patch restored in a finally; handle closed after use."""

from multiprocessing import resource_tracker, shared_memory


def _noop(*args, **kwargs):
    return None


def quiet_attach(name):
    original = resource_tracker.register
    resource_tracker.register = _noop
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    shm.close()
    return name
