"""Acquire/release balanced through try/finally."""

from multiprocessing import shared_memory


def copy_bytes(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        data = bytes(shm.buf[:4])
    finally:
        shm.close()
    return data
