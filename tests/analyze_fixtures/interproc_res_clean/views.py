"""Views over a pinned attachment, locked before they escape."""

import numpy as np

from .attach import attach


def mapped(name):
    shm = attach(name)
    view = np.ndarray((4,), dtype=np.float64, buffer=shm.buf)
    view.flags.writeable = False
    return view
