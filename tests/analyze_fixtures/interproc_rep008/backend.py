"""Known-bad backend: a kernel mutates its argument one hop away."""

from repro.metrics import RefereeBackend

from .helpers import accumulate


class LeakyBackend(RefereeBackend):
    name = "leaky"

    def hpwl(self, arrays, x, y):
        # Passes the caller's coordinate array into a helper that
        # scatters into it in place.
        return accumulate(x, arrays, y)
