"""REP008 fixture package: kernel mutates an array via a helper."""
