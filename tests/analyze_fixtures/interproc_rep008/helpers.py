"""Helper that scatters into whatever buffer it is handed."""

import numpy as np


def accumulate(buffer, indices, values):
    # Mutates its argument: fine for a private scratch array, fatal
    # when a kernel passes its input through.
    np.add.at(buffer, indices, values)
    return buffer
