"""Fixture: noqa anchored on a later line of a multi-line statement."""

import numpy as np

values = np.random.rand(
    3,
    2,
)  # repro: noqa[REP001] fixture: suppression rides the closing paren
