"""Executor payload reaching a writeability flip."""

from .helpers import unprotect


def worker(data):
    return unprotect(data)
