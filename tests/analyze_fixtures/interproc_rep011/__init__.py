"""REP011 fixture package: writable and mutated shared views."""
