"""Known-bad: a locked shared view is mutated one hop away."""

import numpy as np

from .helpers import scribble


def refresh(shm):
    view = np.ndarray((4,), dtype=np.float64, buffer=shm.buf)
    view.flags.writeable = False
    scribble(view)
    return view
