"""Service-style entry submitting the flipping worker."""

from concurrent.futures import ProcessPoolExecutor

from .workers import worker


def run(data):
    with ProcessPoolExecutor() as pool:
        future = pool.submit(worker, data)
    return future
