"""Known-bad: a shared view escapes without being locked read-only."""

import numpy as np


def expose(shm):
    view = np.ndarray((4,), dtype=np.float64, buffer=shm.buf)
    return view
