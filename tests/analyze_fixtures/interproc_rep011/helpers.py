"""Helpers that write through whatever array they are handed."""


def scribble(a):
    a[0] = 1.0
    return a


def unprotect(data):
    data.flags.writeable = True
    return data
