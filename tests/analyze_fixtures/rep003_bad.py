"""Fixture: REP003 — unordered float reductions in kernel code."""

import numpy as np


def total_length(spans, weights):
    return sum(spans) + np.sum(weights) + weights.sum()
