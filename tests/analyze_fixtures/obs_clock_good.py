"""The same kernel timed through the sanctioned obs clock (clean).

``perf_seconds`` is not a ``time.*`` read at the call site, so REP006
stays quiet here while still guarding the clock module itself — its
two suppressed reads are the only ones in ``src/``.
"""

from repro.obs.clock import perf_seconds


def kernel_with_stopwatch(values):
    start = perf_seconds()
    total = 0.0
    for value in values:
        total += value
    return total, perf_seconds() - start
