"""Known-bad: submitted worker reaches a module-state write."""

from concurrent.futures import ProcessPoolExecutor

from .state import remember


def worker(key, value):
    return remember(key, value)


def run(jobs):
    results = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, key, value)
                   for key, value in jobs]
        futures.append(pool.submit(lambda: None))
        results = [f.result() for f in futures]
    return results
