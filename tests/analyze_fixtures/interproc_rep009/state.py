"""Module-level mutable state a worker must never touch."""

_SEEN = {}


def remember(key, value):
    _SEEN[key] = value
    return value
