"""REP009 fixture package: worker writes module state via a helper."""
