"""A kernel timing itself with direct clock reads (REP006 must flag).

The sanctioned pattern is ``repro.obs.clock.perf_seconds`` — see the
``obs_clock_good.py`` twin of this fixture.
"""

import time


def kernel_with_stopwatch(values):
    start = time.perf_counter()
    total = 0.0
    for value in values:
        total += value
    return total, time.perf_counter() - start
