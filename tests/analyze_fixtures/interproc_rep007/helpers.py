"""Helper constructing an RNG from whatever its caller hands it."""

import random


def make_rng(value):
    # The parameter is not seed-named: provenance is the caller's
    # responsibility, which is exactly what REP007 propagates.
    return random.Random(value)
