"""Known-bad: a non-seed value flows into the RNG one hop away."""

import os

from .helpers import make_rng


def shuffle_ids(ids):
    rng = make_rng(os.getpid())
    rng.shuffle(ids)
    return ids
