"""REP007 fixture package: RNG seeded across a call-graph hop."""
