"""Pure kernel: the helper only ever mutates a function-local copy."""

import numpy as np

from repro.metrics import RefereeBackend


def accumulate(buffer, indices, values):
    np.add.at(buffer, indices, values)
    return buffer


class PureBackend(RefereeBackend):
    name = "pure"

    def hpwl(self, arrays, x, y):
        scratch = np.zeros_like(np.asarray(x, dtype=float))
        return accumulate(scratch, arrays, y)
