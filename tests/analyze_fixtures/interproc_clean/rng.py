"""Seed-provenant RNG construction across a call-graph hop."""

import random


def make_rng(seed):
    return random.Random(seed)


def shuffle_ids(ids, seed):
    rng = make_rng(seed * 2 + 1)
    rng.shuffle(ids)
    return ids


def default_stream(ids):
    return shuffle_ids(ids, 7)
