"""Process-safe worker: pure function of its arguments."""

from concurrent.futures import ProcessPoolExecutor


def worker(key, value):
    return key, value * 2


def run(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, key, value)
                   for key, value in jobs]
        return [f.result() for f in futures]
