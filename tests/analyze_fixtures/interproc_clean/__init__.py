"""Clean fixture package: the same three patterns done safely."""
