"""Fixture: REP001 — draws from process-global RNG state."""

import random

import numpy as np


def jitter(scale):
    noise = random.random() * scale
    return noise + np.random.rand()
