"""Fixture: REP005 — mutating a frozen artifact record."""


def sneak_results(artifacts, placement):
    artifacts.placement = placement
    artifacts.curves["extra"] = None
    artifacts.flipped_macros.append(3)
