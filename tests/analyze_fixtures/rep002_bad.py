"""Fixture: REP002 — iteration over unordered sets."""


def first_three(names):
    pending = {name.strip() for name in names}
    ordered = list(pending)
    for name in pending:
        ordered.append(name)
    return ordered[:3]
