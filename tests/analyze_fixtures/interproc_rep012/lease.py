"""Known-bad: the borrowed handle is dropped without a close."""

from .seg import open_segment


def fetch(name):
    shm = open_segment(name)
    data = bytes(shm.buf[:8])
    return data
