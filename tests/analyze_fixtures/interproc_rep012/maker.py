"""Known-bad: an owning handle escapes into a releaseless class."""

from multiprocessing import shared_memory

from .holder import Box


def pack():
    shm = shared_memory.SharedMemory(create=True, size=64)
    return Box(shm)
