"""A handle box with no way to ever release the handle."""


class Box:
    def __init__(self, shm):
        self.shm = shm
