"""Helper handing an unpinned handle to its caller."""

from multiprocessing import shared_memory


def open_segment(name):
    shm = shared_memory.SharedMemory(name=name)
    return shm
