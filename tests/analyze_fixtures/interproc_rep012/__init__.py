"""REP012 fixture package: leaks, lost patches, releaseless owners."""
