"""Known-bad: the tracker monkeypatch is never restored."""

from multiprocessing import resource_tracker


def _noop(*args, **kwargs):
    return None


def disable_tracking():
    resource_tracker.register = _noop
