"""Fixture: REP006 — wall-clock and environment reads."""

import os
import time


def cost_scale():
    noise = time.time()
    budget = os.getenv("REPRO_BUDGET", "0")
    return noise + float(budget) + len(os.environ)
