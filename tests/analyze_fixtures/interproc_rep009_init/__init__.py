"""REP009 fixture package: pool initializer writes module state."""
