"""Known-bad: the pool ``initializer=`` reaches a module-state write.

The submitted payload itself is clean; the finding must come from the
initializer, which runs inside every worker process before any task.
"""

from concurrent.futures import ProcessPoolExecutor

from .bootstrap import init_worker


def compute(value):
    return value * 2


def run(jobs):
    with ProcessPoolExecutor(initializer=init_worker,
                             initargs=(jobs,)) as pool:
        futures = [pool.submit(compute, job) for job in jobs]
        return [future.result() for future in futures]
