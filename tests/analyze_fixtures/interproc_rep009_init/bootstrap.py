"""Worker bootstrap helper that caches into module state."""

_CONFIG = {}


def init_worker(jobs):
    _CONFIG["jobs"] = list(jobs)
