"""Fixture: no findings — seeded RNG, ordered iteration, int counts."""

import random


def shuffled(items, seed):
    rng = random.Random(seed)
    ordered = sorted(items)
    rng.shuffle(ordered)
    return ordered


def count_rows(matrix):
    return int(matrix.sum())
