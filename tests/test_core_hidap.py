"""End-to-end tests of the HiDaP flow (Algorithms 1 and 2)."""

import pytest

from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort


@pytest.fixture(scope="module")
def placed_tiny_c1(tiny_c1):
    design, _truth, die_w, die_h = tiny_c1
    placer = HiDaP(HiDaPConfig(seed=1, effort=Effort.FAST,
                               keep_trace=True))
    placement = placer.place(design, die_w, die_h)
    return placer, placement


class TestEndToEnd:
    def test_all_macros_placed(self, placed_tiny_c1):
        placer, placement = placed_tiny_c1
        assert len(placement.macros) == len(placer.flat.macros()) == 32

    def test_macros_inside_die(self, placed_tiny_c1):
        _placer, placement = placed_tiny_c1
        assert placement.macros_inside_die()

    def test_no_overlaps(self, placed_tiny_c1):
        _placer, placement = placed_tiny_c1
        assert placement.macro_overlap_area() == pytest.approx(0.0)

    def test_two_stage_design(self, two_stage_design):
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST))
        placement = placer.place(two_stage_design, 40.0, 40.0)
        assert len(placement.macros) == 2
        assert placement.macro_overlap_area() == 0.0
        assert placement.macros_inside_die()

    def test_deterministic(self, two_stage_design):
        def run():
            placer = HiDaP(HiDaPConfig(seed=5, effort=Effort.FAST))
            placement = placer.place(two_stage_design, 40.0, 40.0)
            return {i: (p.rect, p.orientation)
                    for i, p in placement.macros.items()}
        assert run() == run()

    def test_seed_changes_result(self, tiny_c1):
        design, _truth, die_w, die_h = tiny_c1
        a = HiDaP(HiDaPConfig(seed=1, effort=Effort.FAST)).place(
            design, die_w, die_h)
        b = HiDaP(HiDaPConfig(seed=99, effort=Effort.FAST)).place(
            design, die_w, die_h)
        ra = sorted((p.rect.x, p.rect.y) for p in a.macros.values())
        rb = sorted((p.rect.x, p.rect.y) for p in b.macros.values())
        assert ra != rb

    def test_traces_recorded(self, placed_tiny_c1):
        _placer, placement = placed_tiny_c1
        assert placement.traces
        depths = {t.depth for t in placement.traces}
        assert 0 in depths
        assert max(depths) >= 1
        for trace in placement.traces:
            assert len(trace.block_rects) == len(trace.block_names)

    def test_block_rects_recorded(self, placed_tiny_c1):
        placer, placement = placed_tiny_c1
        assert "" in placement.block_rects
        # Subsystem rects exist for all three c1 subsystems.
        subsystems = [c.path for c in placer.tree.root.children]
        for path in subsystems:
            assert path in placement.block_rects

    def test_artifacts_exposed(self, placed_tiny_c1):
        placer, _placement = placed_tiny_c1
        assert placer.gseq is not None
        assert placer.curves is not None
        assert placer.port_positions
        assert not placer.curves[""].is_trivial     # root holds macros

    def test_region_of_cell_fallback(self, placed_tiny_c1):
        placer, placement = placed_tiny_c1
        # Any cell resolves to some recorded region inside the die.
        for cell in placer.flat.cells[:50]:
            region = placement.region_of_cell(placer.flat, cell.index)
            assert placement.die.contains_rect(region, tol=1e-6)


class TestConfigValidation:
    def test_lambda_range(self):
        with pytest.raises(ValueError):
            HiDaPConfig(lam=1.5)

    def test_k_range(self):
        with pytest.raises(ValueError):
            HiDaPConfig(latency_k=-1)

    def test_area_fracs(self):
        with pytest.raises(ValueError):
            HiDaPConfig(min_area_frac=0.0)
        with pytest.raises(ValueError):
            HiDaPConfig(open_area_frac=1.5)

    def test_effort_multipliers(self):
        assert Effort.FAST.multiplier < Effort.NORMAL.multiplier \
            < Effort.HIGH.multiplier
