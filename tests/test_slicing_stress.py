"""Stress tests: larger slicing instances stay correct and bounded."""

import random
import time

import pytest

from repro.floorplan.blocks import Block
from repro.floorplan.engine import LayoutConfig, LayoutProblem, generate_layout
from repro.geometry.rect import Rect, total_overlap_area
from repro.shapecurve.curve import ShapeCurve
from repro.slicing.anneal import AnnealConfig
from repro.slicing.moves import perturb
from repro.slicing.polish import PolishExpression


class TestLargeExpressions:
    def test_long_walk_on_40_blocks(self):
        rng = random.Random(11)
        expr = PolishExpression.initial(40, rng)
        for _ in range(2000):
            perturb(expr, rng)
        assert expr.is_valid()
        assert sorted(expr.operands()) == list(range(40))

    def test_layout_with_24_mixed_blocks(self):
        rng = random.Random(5)
        blocks = []
        for i in range(24):
            if i % 3 == 0:
                w = 4 + rng.random() * 8
                h = 4 + rng.random() * 8
                curve = ShapeCurve.for_rect(round(w, 1), round(h, 1))
                area = curve.min_area
                blocks.append(Block(i, f"m{i}", curve, area,
                                    area * 1.4, 1))
            else:
                area = 30 + rng.random() * 60
                blocks.append(Block(i, f"s{i}", ShapeCurve.trivial(),
                                    area, area * 1.3))
        total = sum(b.area_target for b in blocks)
        side = (total * 1.05) ** 0.5
        aff = [[0.0] * 24 for _ in range(24)]
        for i in range(23):
            aff[i][i + 1] = aff[i + 1][i] = 8.0
        problem = LayoutProblem(Rect(0, 0, side, side), blocks, aff)
        config = LayoutConfig(seed=2, anneal=AnnealConfig(
            seed=2, moves_per_block=80, max_moves=3000,
            moves_per_temperature=30, restarts=1))
        start = time.perf_counter()
        result = generate_layout(problem, config)
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, "layout generation must stay fast"
        assert len(result.rects) == 24
        assert total_overlap_area(result.rects.values()) \
            == pytest.approx(0.0, abs=1e-6)
        # Macro feasibility: every macro block's rect fits its curve,
        # or the report owns up to the violation.
        for block in blocks:
            if block.has_macros:
                rect = result.rects[block.index]
                assert block.curve.feasible(rect.w, rect.h) \
                    or result.report.macro_deficit > 0
