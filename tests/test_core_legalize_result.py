"""Tests for the legalizer and placement serialization."""

import pytest

from repro.core.legalize import legalize_macros
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Rect


def placement_with(rects, die=Rect(0, 0, 100, 100)):
    placement = MacroPlacement("d", "t", die)
    for i, rect in enumerate(rects):
        placement.macros[i] = PlacedMacro(i, f"m{i}", rect)
    return placement


class TestLegalize:
    def test_already_legal_untouched(self):
        placement = placement_with([Rect(0, 0, 10, 10),
                                    Rect(20, 0, 10, 10)])
        moved = legalize_macros(placement)
        assert moved == 0
        assert placement.macros[0].rect == Rect(0, 0, 10, 10)

    def test_resolves_overlap(self):
        placement = placement_with([Rect(0, 0, 10, 10),
                                    Rect(5, 0, 10, 10)])
        legalize_macros(placement)
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_clamps_outside_die(self):
        placement = placement_with([Rect(-5, 95, 10, 10)])
        moved = legalize_macros(placement)
        assert moved == 1
        assert placement.macros_inside_die()

    def test_many_overlaps_converge(self):
        rects = [Rect(i * 2.0, i * 1.5, 12, 9) for i in range(8)]
        placement = placement_with(rects)
        legalize_macros(placement)
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()

    def test_footprints_preserved(self):
        placement = placement_with([Rect(0, 0, 10, 6), Rect(3, 2, 8, 8)])
        legalize_macros(placement)
        dims = sorted((p.rect.w, p.rect.h)
                      for p in placement.macros.values())
        assert dims == [(8, 8), (10, 6)]


class TestPlacementJson:
    def test_roundtrip(self):
        placement = placement_with([Rect(1, 2, 3, 4), Rect(10, 0, 5, 5)])
        placement.macros[0].orientation = Orientation.FS
        placement.block_rects["sub"] = Rect(0, 0, 50, 50)
        placement.runtime_seconds = 2.5
        back = MacroPlacement.from_json(placement.to_json())
        assert back.design_name == "d"
        assert back.die == placement.die
        assert back.macros[0].rect == Rect(1, 2, 3, 4)
        assert back.macros[0].orientation is Orientation.FS
        assert back.block_rects["sub"] == Rect(0, 0, 50, 50)
        assert back.runtime_seconds == 2.5

    def test_json_serializable(self):
        import json
        placement = placement_with([Rect(0, 0, 1, 1)])
        text = json.dumps(placement.to_json())
        assert "m0" in text
