"""Tests for the evaluation harness and table formatting."""

import pytest

from repro.core.config import Effort
from repro.api import FlowMetrics, run_flow
from repro.eval.tables import (
    format_table2,
    format_table3,
    geomean,
    normalize_to_handfp,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


def _row(design, flow, wl):
    return FlowMetrics(design=design, flow=flow, wl_meters=wl,
                       grc_percent=1.0, wns_percent=-5.0, tns=-10.0,
                       placer_seconds=1.0)


class TestNormalization:
    def test_normalize_to_handfp(self):
        rows = [_row("c1", "indeda", 2.0), _row("c1", "handfp", 1.6),
                _row("c1", "hidap", 1.8)]
        normalize_to_handfp(rows)
        by_flow = {r.flow: r.wl_norm for r in rows}
        assert by_flow["handfp"] == pytest.approx(1.0)
        assert by_flow["indeda"] == pytest.approx(1.25)
        assert by_flow["hidap"] == pytest.approx(1.125)


class TestTables:
    def make_rows(self):
        rows = []
        for design, wls in (("c1", (2.0, 1.7, 1.6)),
                            ("c2", (3.0, 2.4, 2.5))):
            for flow, wl in zip(("indeda", "hidap", "handfp"), wls):
                rows.append(_row(design, flow, wl))
        normalize_to_handfp(rows)
        return rows

    def test_table2_contains_flows(self):
        text = format_table2(self.make_rows())
        assert "indeda" in text
        assert "hidap" in text
        assert "handfp" in text
        assert "Table II" in text

    def test_table3_lists_circuits(self):
        text = format_table3(self.make_rows(), {"c1": "info string"})
        assert "c1" in text and "c2" in text
        assert "info string" in text
        # handFP rows are normalized to 1.000.
        assert "1.000" in text


class TestRunFlow:
    @pytest.fixture(scope="class")
    def ctx(self, tiny_c1, tiny_c1_flat):
        _design, truth, die_w, die_h = tiny_c1
        return tiny_c1_flat, truth, die_w, die_h

    def test_indeda_flow(self, ctx):
        flat, truth, w, h = ctx
        metrics = run_flow(flat, truth, "indeda", w, h)
        assert metrics.flow == "indeda"
        assert metrics.wl_meters > 0
        assert metrics.macro_overlap == pytest.approx(0.0)

    def test_hidap_single_lambda(self, ctx):
        flat, truth, w, h = ctx
        metrics = run_flow(flat, truth, "hidap-l0.5", w, h, seed=1,
                           effort=Effort.FAST)
        assert metrics.lam == 0.5
        assert metrics.wl_meters > 0

    def test_handfp_strip_flow(self, ctx):
        flat, truth, w, h = ctx
        metrics = run_flow(flat, truth, "handfp-strip", w, h)
        assert metrics.flow == "handfp"
        assert metrics.wl_meters > 0

    def test_unknown_flow_rejected(self, ctx):
        flat, truth, w, h = ctx
        with pytest.raises(ValueError):
            run_flow(flat, truth, "magic", w, h)

    def test_handfp_requires_truth(self, ctx):
        flat, _truth, w, h = ctx
        with pytest.raises(ValueError):
            run_flow(flat, None, "handfp", w, h)
