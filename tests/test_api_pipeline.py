"""Tests for the staged pipeline, observers and RunArtifacts."""

import pytest

from repro.api import (
    HIDAP_STAGES,
    Pipeline,
    PipelineObserver,
    PreparedDesign,
    RunArtifacts,
    Stage,
    build_hidap_pipeline,
    get_flow,
)
from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.geometry.rect import Rect


class Recorder(PipelineObserver):
    def __init__(self):
        self.events = []

    def on_stage_start(self, stage, artifacts):
        self.events.append(("start", stage.name))

    def on_stage_end(self, stage, artifacts, seconds):
        assert seconds >= 0.0
        self.events.append(("end", stage.name))


class TestPipelineStructure:
    def test_hidap_stage_order(self):
        pipeline = build_hidap_pipeline()
        assert pipeline.stage_names() == HIDAP_STAGES
        assert HIDAP_STAGES == ("flatten", "graphs", "shape-curves",
                                "floorplan", "flip", "legalize")

    def test_duplicate_stage_names_rejected(self):
        noop = Stage("s", lambda artifacts: None)
        with pytest.raises(ValueError):
            Pipeline([noop, Stage("s", lambda artifacts: None)])

    def test_require_placement_before_run(self):
        artifacts = RunArtifacts(die=Rect(0, 0, 10, 10))
        with pytest.raises(RuntimeError):
            artifacts.require_placement()


class TestPipelineRun:
    @pytest.fixture(scope="class")
    def run(self, two_stage_design):
        recorder = Recorder()
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST),
                       observers=[recorder])
        placement = placer.place(two_stage_design, 40.0, 40.0)
        return placer, placement, recorder

    def test_observer_sees_every_stage_in_order(self, run):
        _placer, _placement, recorder = run
        expected = []
        for name in HIDAP_STAGES:
            expected += [("start", name), ("end", name)]
        assert recorder.events == expected

    def test_artifacts_fully_populated(self, run):
        placer, placement, _recorder = run
        artifacts = placer.artifacts
        assert artifacts.flat is not None
        assert artifacts.tree is not None
        assert artifacts.gnet is not None
        assert artifacts.gseq is not None
        assert artifacts.curves
        assert artifacts.port_positions
        assert artifacts.placement is placement

    def test_stage_timings_recorded(self, run):
        placer, _placement, _recorder = run
        assert set(placer.artifacts.stage_seconds) == set(HIDAP_STAGES)
        assert placer.artifacts.total_seconds >= 0.0

    def test_legacy_attributes_view_artifacts(self, run):
        placer, _placement, _recorder = run
        assert placer.flat is placer.artifacts.flat
        assert placer.tree is placer.artifacts.tree
        assert placer.gnet is placer.artifacts.gnet
        assert placer.gseq is placer.artifacts.gseq
        assert placer.curves is placer.artifacts.curves
        assert placer.port_positions is placer.artifacts.port_positions

    def test_legacy_attributes_none_before_any_run(self):
        placer = HiDaP()
        assert placer.artifacts is None
        assert placer.flat is None
        assert placer.gseq is None

    def test_placement_is_legal(self, run):
        _placer, placement, _recorder = run
        assert placement.macro_overlap_area() == pytest.approx(0.0)
        assert placement.macros_inside_die()


class TestPreparedCaching:
    def test_lazy_structures_cached(self, two_stage_design):
        prepared = PreparedDesign(design=two_stage_design, die_w=40.0,
                                  die_h=40.0)
        assert prepared.flat is prepared.flat
        assert prepared.gnet is prepared.gnet
        assert prepared.gseq is prepared.gseq
        assert prepared.tree is prepared.tree

    def test_flow_reuses_prepared_graphs(self, two_stage_design):
        prepared = PreparedDesign(design=two_stage_design, die_w=40.0,
                                  die_h=40.0)
        gnet, gseq, tree = prepared.gnet, prepared.gseq, prepared.tree
        flow = get_flow("hidap", seed=2, effort=Effort.FAST)
        flow.place(prepared)
        # The graphs stage skipped reconstruction: same objects.
        # (Reach through the flow's last placer run via a fresh HiDaP.)
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST))
        placer.place(prepared.flat, 40.0, 40.0, gnet=gnet, gseq=gseq,
                     tree=tree)
        assert placer.gnet is gnet
        assert placer.gseq is gseq
        assert placer.tree is tree

    def test_pipeline_skips_preset_flat(self, two_stage_flat):
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST))
        placer.place(two_stage_flat, 40.0, 40.0)
        assert placer.flat is two_stage_flat


class TestLegalizeStage:
    def test_legal_placement_untouched(self, two_stage_design):
        """On an already-legal layout the safety net moves nothing."""
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST))
        placement = placer.place(two_stage_design, 40.0, 40.0)
        assert placer.artifacts.legalizer_moves == 0
        assert placement.macro_overlap_area() == pytest.approx(0.0)

    def test_gate_disables_stage(self, two_stage_design):
        placer = HiDaP(HiDaPConfig(seed=2, effort=Effort.FAST,
                                   legalize=False))
        placer.place(two_stage_design, 40.0, 40.0)
        assert placer.artifacts.legalizer_moves == 0
        assert "legalize" in placer.artifacts.stage_seconds


class TestBest3ConfigKwargs:
    def test_extra_config_carried_into_sweep(self):
        import dataclasses

        from repro.api import get_flow
        flow = get_flow("hidap-best3:flipping=false,min_bits=4")
        assert flow.config.flipping is False
        assert flow.config.min_bits == 4
        # The sweep varies only λ over the stored config.
        for lam in flow.lambdas:
            config = dataclasses.replace(flow.config, lam=lam)
            assert config.flipping is False
            assert config.min_bits == 4
            assert config.lam == lam
