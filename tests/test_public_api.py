"""Public API surface checks: imports, exports, metadata."""

import importlib
import subprocess
import sys

import pytest

class TestTopLevelExports:
    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_subpackages_importable(self):
        for package in ("geometry", "netlist", "hiergraph", "shapecurve",
                        "slicing", "floorplan", "core", "placement",
                        "routing", "timing", "baselines", "gen", "eval",
                        "viz", "metrics"):
            module = importlib.import_module(f"repro.{package}")
            assert module.__doc__, f"repro.{package} needs a docstring"

    def test_package_alls_resolve(self):
        for package in ("netlist", "hiergraph", "shapecurve", "slicing",
                        "floorplan", "core", "placement", "routing",
                        "timing", "baselines", "gen", "eval", "viz",
                        "geometry", "metrics"):
            module = importlib.import_module(f"repro.{package}")
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"repro.{package}.{name}"


#: The frozen repro.api surface.  Additions belong here deliberately;
#: removals/renames are breaking changes and must ship a shim.
EXPECTED_API = {
    # flows / registry
    "BaseFlow", "FlowError", "HandFPFlow", "HandFPStripFlow",
    "HiDaPBest3Flow", "HiDaPFlow", "IndEDAFlow", "Placer",
    "UnknownFlowError", "available_flows", "flow_descriptions",
    "get_flow", "parse_flow_spec", "register_builtin_flows",
    "register_flow", "split_flow_specs", "unregister_flow",
    # pipeline / artifacts
    "HIDAP_STAGES", "Pipeline", "PipelineObserver", "RunArtifacts",
    "Stage", "build_hidap_pipeline",
    # prepared designs
    "PreparedDesign", "prepare_design", "prepare_suite_design",
    # single runs + knobs
    "Effort", "FlowMetrics", "HIDAP_LAMBDAS", "RunOptions",
    "evaluate_placement", "run_flow",
    # suite
    "DEFAULT_FLOWS", "SuiteResult", "run_suite",
    # tables
    "format_table2", "format_table3", "geomean",
    "normalize_to_handfp",
    # placement service
    "CompiledDesignStore", "JobEvent", "JobHandle", "JobStatus",
    "PlacementService", "store_version",
}


class TestApiSurface:
    def test_api_all_is_frozen(self):
        import repro.api
        assert set(repro.api.__all__) == EXPECTED_API

    def test_api_exports_resolve(self):
        import repro.api
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_service_exports_are_lazy_but_canonical(self):
        import repro.api
        import repro.service
        assert repro.api.PlacementService \
            is repro.service.PlacementService
        assert repro.api.CompiledDesignStore \
            is repro.service.CompiledDesignStore

    def test_unknown_api_attribute_raises(self):
        import repro.api
        with pytest.raises(AttributeError):
            repro.api.not_a_real_export

    def test_import_is_deprecation_free(self):
        # Importing the public surface must not trip the repro.eval
        # shims.
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro, repro.api, repro.service"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestDocstrings:
    def test_key_entry_points_documented(self):
        from repro import HiDaP, HiDaPConfig, build_design, run_suite
        for obj in (HiDaP, HiDaPConfig, build_design, run_suite):
            assert obj.__doc__ and len(obj.__doc__) > 20

    def test_core_methods_documented(self):
        from repro.core.hidap import HiDaP
        assert HiDaP.place.__doc__
        from repro.floorplan.engine import generate_layout
        assert generate_layout.__doc__
        from repro.hiergraph.gdf import build_gdf
        assert build_gdf.__doc__
