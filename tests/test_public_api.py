"""Public API surface checks: imports, exports, metadata."""

import importlib



class TestTopLevelExports:
    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_subpackages_importable(self):
        for package in ("geometry", "netlist", "hiergraph", "shapecurve",
                        "slicing", "floorplan", "core", "placement",
                        "routing", "timing", "baselines", "gen", "eval",
                        "viz", "metrics"):
            module = importlib.import_module(f"repro.{package}")
            assert module.__doc__, f"repro.{package} needs a docstring"

    def test_package_alls_resolve(self):
        for package in ("netlist", "hiergraph", "shapecurve", "slicing",
                        "floorplan", "core", "placement", "routing",
                        "timing", "baselines", "gen", "eval", "viz",
                        "geometry", "metrics"):
            module = importlib.import_module(f"repro.{package}")
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"repro.{package}.{name}"


class TestDocstrings:
    def test_key_entry_points_documented(self):
        from repro import HiDaP, HiDaPConfig, build_design, run_suite
        for obj in (HiDaP, HiDaPConfig, build_design, run_suite):
            assert obj.__doc__ and len(obj.__doc__) > 20

    def test_core_methods_documented(self):
        from repro.core.hidap import HiDaP
        assert HiDaP.place.__doc__
        from repro.floorplan.engine import generate_layout
        assert generate_layout.__doc__
        from repro.hiergraph.gdf import build_gdf
        assert build_gdf.__doc__
