"""Tests for visualization helpers."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.hiergraph.gdf import Gdf, GdfEdge, GdfNode
from repro.hiergraph.histogram import LatencyHistogram
from repro.viz.ascii_art import ascii_floorplan, ascii_histogram
from repro.viz.density import density_map, density_stats
from repro.viz.dfgraph import gdf_to_dot, svg_dataflow
from repro.viz.svg import svg_density_map, svg_floorplan


def small_gdf():
    nodes = [GdfNode(0, "A", "block", [0]), GdfNode(1, "B", "block", [1]),
             GdfNode(2, "pin", "port", [2])]
    edge = GdfEdge(0, 1, LatencyHistogram({1: 16}),
                   LatencyHistogram({2: 8}))
    edge2 = GdfEdge(2, 0, LatencyHistogram({1: 8}), LatencyHistogram())
    return Gdf(nodes=nodes, edges={(0, 1): edge, (2, 0): edge2},
               group_of_seq={})


class TestAscii:
    def test_floorplan_renders(self):
        die = Rect(0, 0, 100, 50)
        art = ascii_floorplan(die, [("blk", Rect(10, 10, 30, 20))],
                              width=40)
        lines = art.splitlines()
        assert lines[0].startswith("+")
        assert any("b" in line for line in lines)
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_histogram(self):
        text = ascii_histogram({1: 32, 3: 8})
        assert "lat   1" in text
        assert text.count("\n") == 1

    def test_empty_histogram(self):
        assert ascii_histogram({}) == "(empty)"


class TestSvg:
    def test_floorplan_well_formed(self):
        die = Rect(0, 0, 100, 50)
        svg = svg_floorplan(die, [("sub/a", Rect(0, 0, 10, 10)),
                                  ("sub/b", Rect(20, 0, 10, 10))])
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 3          # die + 2 blocks

    def test_density_map_svg(self):
        die = Rect(0, 0, 10, 10)
        raster = np.random.RandomState(0).rand(4, 4)
        svg = svg_density_map(die, raster, [Rect(0, 0, 2, 2)])
        assert svg.count("<rect") == 17         # 16 bins + 1 macro

    def test_dataflow_svg(self):
        gdf = small_gdf()
        positions = {0: Rect(0, 0, 20, 20), 1: Rect(30, 0, 20, 20)}
        svg = svg_dataflow(gdf, positions, Rect(0, 0, 60, 30))
        assert "<line" in svg
        assert svg.count("<rect") >= 3


class TestDot:
    def test_gdf_to_dot(self):
        dot = gdf_to_dot(small_gdf())
        assert dot.startswith("digraph")
        assert "n0 -> n1" in dot
        assert '"A"' in dot and '"pin"' in dot

    def test_min_affinity_filter(self):
        dot = gdf_to_dot(small_gdf(), min_affinity=1e9)
        assert "->" not in dot


class TestDensity:
    def make_cells(self, two_stage_flat):
        from repro.core.ports import assign_port_positions
        from repro.core.result import MacroPlacement, PlacedMacro
        from repro.placement.stdcell import place_cells
        die = Rect(0, 0, 60, 30)
        placement = MacroPlacement("two_stage", "t", die)
        placement.block_rects[""] = die
        mem = two_stage_flat.cell_by_path("sa/mem")
        placement.macros[mem.index] = PlacedMacro(
            mem.index, mem.path, Rect(5, 12, 6, 4))
        mem_b = two_stage_flat.cell_by_path("sb/mem")
        placement.macros[mem_b.index] = PlacedMacro(
            mem_b.index, mem_b.path, Rect(45, 12, 6, 4))
        return place_cells(two_stage_flat, placement, {})

    def test_density_conserves_area(self, two_stage_flat):
        cells = self.make_cells(two_stage_flat)
        raster = density_map(cells, bins=8)
        bin_area = (60 / 8) * (30 / 8)
        assert raster.sum() * bin_area \
            == pytest.approx(two_stage_flat.stdcell_area())

    def test_density_stats(self, two_stage_flat):
        cells = self.make_cells(two_stage_flat)
        stats = density_stats(density_map(cells, bins=8))
        assert stats.peak >= stats.mean >= 0
        assert 0 <= stats.hot_fraction <= 1
