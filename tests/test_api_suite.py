"""Tests for the parallel suite runner: determinism vs serial."""

import pytest

from repro.api import run_suite
from repro.cli import main
from repro.core.config import Effort

#: Cheap deterministic flows (no annealing) keep this test fast.
FLOWS = ("indeda", "handfp-strip")


def _key_rows(result):
    """The deterministic fields of every row, in order."""
    return [(r.design, r.flow, r.wl_meters, r.grc_percent,
             r.wns_percent, r.tns, r.wl_norm, r.macro_overlap, r.lam)
            for r in result.rows]


class TestParallelSuite:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_suite(scale="tiny", designs=["c1", "c2"],
                         flows=FLOWS, effort=Effort.FAST)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_suite(scale="tiny", designs=["c1", "c2"],
                         flows=FLOWS, effort=Effort.FAST, workers=2)

    def test_row_for_row_identical(self, serial, parallel):
        assert _key_rows(parallel) == _key_rows(serial)

    def test_row_order_is_design_then_flow(self, serial):
        assert [(r.design, r.flow) for r in serial.rows] == [
            ("c1", "indeda"), ("c1", "handfp"),
            ("c2", "indeda"), ("c2", "handfp")]

    def test_design_info_matches(self, serial, parallel):
        assert parallel.design_info == serial.design_info
        assert "cells" in serial.design_info["c1"]

    def test_workers_one_is_serial(self, serial):
        one = run_suite(scale="tiny", designs=["c1", "c2"],
                        flows=FLOWS, effort=Effort.FAST, workers=1)
        assert _key_rows(one) == _key_rows(serial)

    def test_normalization_applied(self, serial):
        handfp = [r for r in serial.rows if r.flow == "handfp"]
        assert all(r.wl_norm == pytest.approx(1.0) for r in handfp)


class SuiteParallelFlow:
    """Module-level so worker processes can unpickle it."""

    name = "suite-parallel"

    def __new__(cls, *args, **kwargs):
        from repro.api import IndEDAFlow
        return IndEDAFlow(*args, **kwargs)


class TestForeignFlowInWorkers:
    def test_registered_flow_runs_under_workers(self):
        from repro.api import register_flow, unregister_flow

        register_flow("suite-parallel", SuiteParallelFlow,
                      overwrite=True)
        try:
            result = run_suite(scale="tiny", designs=["c1"],
                               flows=("suite-parallel", "handfp-strip"),
                               effort=Effort.FAST, workers=2)
        finally:
            unregister_flow("suite-parallel")
        assert [(r.design, r.flow) for r in result.rows] == [
            ("c1", "indeda"), ("c1", "handfp")]


class TestFlowLabels:
    def test_third_party_hidap_prefix_keeps_its_label(self):
        """Only builtin hidap variants collapse to the \"hidap\" row
        label; a foreign flow named hidap-* keeps its own name."""
        from repro.api import IndEDAFlow, register_flow, unregister_flow

        class HidapMine(IndEDAFlow):
            name = "hidap-mine"

        register_flow("hidap-mine", HidapMine, overwrite=True)
        try:
            result = run_suite(scale="tiny", designs=["c1"],
                               flows=("hidap-mine", "handfp-strip"),
                               effort=Effort.FAST)
        finally:
            unregister_flow("hidap-mine")
        # IndEDA's placement labels rows "indeda"; the point is the
        # runner must NOT overwrite it with "hidap".
        assert [r.flow for r in result.rows] == ["indeda", "handfp"]


class TestPortableEntries:
    def test_builtin_under_custom_name_is_shipped(self):
        from repro.api import HiDaPFlow, register_flow, unregister_flow
        from repro.api.suite import _portable_flow_entries

        register_flow("fast-hidap", HiDaPFlow, overwrite=True)
        try:
            names = [n for n, _f, _d in _portable_flow_entries()]
            assert "fast-hidap" in names
            assert "hidap" not in names       # true builtins skipped
        finally:
            unregister_flow("fast-hidap")


class TestRunFlowGseqCompat:
    def test_foreign_gseq_is_referee_only(self, two_stage_flat):
        """A gseq passed to run_flow must not leak into placement
        (pre-registry behaviour: flows rebuilt their own graphs)."""
        from repro.api import run_flow
        from repro.hiergraph.gnet import build_gnet
        from repro.hiergraph.gseq import build_gseq

        foreign = build_gseq(build_gnet(two_stage_flat),
                             two_stage_flat, min_bits=8)
        plain = run_flow(two_stage_flat, None, "hidap", 40.0, 40.0,
                         seed=2, effort=Effort.FAST)
        with_gseq = run_flow(two_stage_flat, None, "hidap", 40.0, 40.0,
                             seed=2, effort=Effort.FAST, gseq=foreign)
        assert with_gseq.wl_meters == plain.wl_meters


class TestSuiteCli:
    def test_suite_with_workers(self, capsys):
        assert main(["suite", "--scale", "tiny", "--designs", "c1",
                     "--flows", "indeda,handfp-strip",
                     "--effort", "fast", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out

    def test_suite_unknown_flow_reported(self, capsys):
        assert main(["suite", "--scale", "tiny", "--designs", "c1",
                     "--flows", "nosuch"]) == 2
        assert "unknown flow" in capsys.readouterr().err
