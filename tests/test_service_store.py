"""CompiledDesignStore: keys, versioning, mmap loads, materialize."""

import numpy as np
import pytest

from repro.api import RunOptions, prepare_design
from repro.core.config import Effort
from repro.gen.designs import suite_specs
from repro.obs import Tracer, iter_spans, use_tracer
from repro.service import CompiledDesignStore, store_version
from repro.service import store as store_mod
from repro.service.store import (
    _restore_compile_caches,
    _strip_compile_caches,
    compile_prepared,
)


def _spec(name="c1"):
    return next(s for s in suite_specs("tiny") if s.name == name)


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    store = CompiledDesignStore(tmp_path_factory.mktemp("store"))
    entry = store.ensure_spec(_spec())
    return store, entry


class TestKeys:
    def test_spec_key_is_stable(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        assert store.key_for_spec(_spec()) == store.key_for_spec(_spec())

    def test_different_specs_get_different_keys(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        assert store.key_for_spec(_spec("c1")) \
            != store.key_for_spec(_spec("c2"))

    def test_min_bits_is_part_of_the_key(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        assert store.key_for_spec(_spec(), min_bits=2) \
            != store.key_for_spec(_spec(), min_bits=3)

    def test_version_salt_invalidates_keys(self, tmp_path,
                                           monkeypatch):
        store = CompiledDesignStore(tmp_path)
        before = store.key_for_spec(_spec())
        monkeypatch.setattr(store_mod, "_STORE_VERSION_CACHE",
                            "different-compiler-sources")
        assert store.key_for_spec(_spec()) != before
        # ...and an entry written under the old salt is unreachable.
        assert store.load(store.key_for_spec(_spec())) is None

    def test_design_key_matches_content(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        a = prepare_design(_spec())
        b = prepare_design(_spec())
        assert store.key_for_design(a.design) \
            == store.key_for_design(b.design)

    def test_store_version_is_a_digest(self):
        assert len(store_version()) == 64
        assert store_version() == store_version()


class TestRoundTrip:
    def test_cold_ensure_compiles_and_saves(self, warm_store):
        store, entry = warm_store
        assert (entry.path / "meta.json").exists()
        assert (entry.path / "prepared.pkl").exists()
        assert entry.design_name == "c1"

    def test_warm_load_is_memory_mapped(self, warm_store):
        store, _entry = warm_store
        entry = store.load(store.key_for_spec(_spec()))
        assert entry is not None
        buffers, _meta = entry.arrays["net"]
        assert all(isinstance(a, np.memmap) for a in buffers.values())
        assert all(not a.flags.writeable for a in buffers.values())

    def test_loaded_arrays_equal_fresh_compile(self, warm_store):
        store, _ = warm_store
        entry = store.load(store.key_for_spec(_spec()))
        fresh = prepare_design(_spec())
        compile_prepared(fresh)
        net_buffers, _ = entry.arrays["net"]
        np.testing.assert_array_equal(
            net_buffers["net_offsets"],
            np.asarray(fresh.net_arrays.net_offsets))
        tim_buffers, _ = entry.arrays["tim"]
        np.testing.assert_array_equal(
            tim_buffers["edge_u"],
            np.asarray(fresh.timing_arrays.edge_u))

    def test_materialize_rows_match_fresh(self, warm_store):
        from repro.service.engine import execute_cell

        store, entry = warm_store
        opts = RunOptions(seed=1, effort=Effort.FAST)
        warm_row = execute_cell(entry.materialize(), "indeda", opts)
        fresh_row = execute_cell(prepare_design(_spec()), "indeda",
                                 opts)
        assert (warm_row.wl_meters, warm_row.grc_percent,
                warm_row.wns_percent, warm_row.tns) \
            == (fresh_row.wl_meters, fresh_row.grc_percent,
                fresh_row.wns_percent, fresh_row.tns)

    def test_save_does_not_perturb_caller_caches(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        prepared = prepare_design(_spec("c2"))
        compile_prepared(prepared)
        before = prepared.flat._net_arrays
        store.ensure_prepared(prepared)
        assert prepared.flat._net_arrays is before
        assert prepared.net_arrays is before[1]

    def test_strip_restore_is_lossless(self):
        prepared = prepare_design(_spec())
        compile_prepared(prepared)
        net = prepared.flat._net_arrays
        stripped = _strip_compile_caches(prepared)
        assert not hasattr(prepared.flat, "_net_arrays")
        _restore_compile_caches(prepared, stripped)
        assert prepared.flat._net_arrays is net


class TestSpans:
    def test_miss_then_hit_spans(self, tmp_path):
        store = CompiledDesignStore(tmp_path)
        tracer = Tracer("test")
        with use_tracer(tracer):
            store.ensure_spec(_spec())
        names = [s["name"] for _d, s in iter_spans(tracer.payload())]
        assert "store.miss" in names
        assert "store.compile" in names
        assert "store.save" in names
        assert "store.hit" not in names

        tracer = Tracer("test")
        with use_tracer(tracer):
            store.ensure_spec(_spec())
        names = [s["name"] for _d, s in iter_spans(tracer.payload())]
        assert "store.hit" in names
        assert "store.miss" not in names
        # A warm hit compiles nothing.
        assert not any(n.startswith("prepare.") for n in names)

    def test_warm_materialize_has_no_prepare_spans(self, warm_store):
        store, _ = warm_store
        entry = store.load(store.key_for_spec(_spec()))
        tracer = Tracer("test")
        with use_tracer(tracer):
            prepared = entry.materialize()
            prepared.net_arrays
            prepared.stdcell_arrays
            prepared.timing_arrays
        names = [s["name"] for _d, s in iter_spans(tracer.payload())]
        assert not any(n.startswith("prepare.") for n in names), names
