"""Unit + property tests for rectangles and points."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.rect import (
    Point,
    Rect,
    bounding_box,
    total_overlap_area,
)

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                   allow_infinity=False)
sides = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                  allow_infinity=False)
rects = st.builds(Rect, coords, coords, sides, sides)


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_euclidean(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1, 2).translated(2, -1) == Point(3, 1)

    @given(coords, coords, coords, coords)
    def test_manhattan_symmetric(self, x0, y0, x1, y1):
        a, b = Point(x0, y0), Point(x1, y1)
        assert a.manhattan(b) == pytest.approx(b.manhattan(a))

    @given(coords, coords, coords, coords)
    def test_manhattan_dominates_euclidean(self, x0, y0, x1, y1):
        a, b = Point(x0, y0), Point(x1, y1)
        assert a.manhattan(b) >= a.euclidean(b) - 1e-6


class TestRect:
    def test_basic_properties(self):
        r = Rect(1, 2, 3, 4)
        assert r.x2 == 4
        assert r.y2 == 6
        assert r.area == 12
        assert r.center == Point(2.5, 4.0)
        assert r.aspect_ratio == pytest.approx(4 / 3)

    def test_negative_sides_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)
        with pytest.raises(ValueError):
            Rect(0, 0, 5, -0.1)

    def test_zero_width_aspect(self):
        assert Rect(0, 0, 0, 5).aspect_ratio == math.inf

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(5, 5))
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(10.1, 5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 3, 3))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(8, 8, 3, 3))

    def test_overlap_detection(self):
        a = Rect(0, 0, 4, 4)
        assert a.overlaps(Rect(2, 2, 4, 4))
        assert not a.overlaps(Rect(4, 0, 4, 4))      # edge touch
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 1, 4, 4)
        inter = a.intersection(b)
        assert inter == Rect(2, 1, 2, 3)
        assert a.intersection(Rect(10, 10, 1, 1)).area == 0

    def test_union_bbox(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 1, 1)
        assert a.union_bbox(b) == Rect(0, 0, 6, 6)

    def test_translated_and_inset(self):
        r = Rect(0, 0, 10, 8).translated(2, 3)
        assert r == Rect(2, 3, 10, 8)
        assert r.inset(1) == Rect(3, 4, 8, 6)
        assert r.inset(100).area == 0          # clamped at zero

    def test_corners(self):
        c = Rect(0, 0, 2, 3).corners()
        assert c == (Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3))

    @given(rects, rects)
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter.area > 0:
            assert a.contains_rect(inter, tol=1e-6)
            assert b.contains_rect(inter, tol=1e-6)

    @given(rects, rects)
    def test_union_contains_both(self, a, b):
        u = a.union_bbox(b)
        assert u.contains_rect(a, tol=1e-6)
        assert u.contains_rect(b, tol=1e-6)

    @given(rects, rects)
    def test_overlap_iff_positive_intersection(self, a, b):
        if a.overlaps(b):
            assert a.intersection(b).area > 0


class TestHelpers:
    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(4, 5, 2, 2)])
        assert box == Rect(0, 0, 6, 7)

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_total_overlap_area(self):
        rects = [Rect(0, 0, 4, 4), Rect(2, 0, 4, 4), Rect(100, 0, 1, 1)]
        assert total_overlap_area(rects) == pytest.approx(8.0)

    def test_total_overlap_area_disjoint(self):
        rects = [Rect(0, 0, 1, 1), Rect(2, 0, 1, 1)]
        assert total_overlap_area(rects) == 0.0
