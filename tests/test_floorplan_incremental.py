"""Incremental vs full cost evaluation must be bit-identical.

The incremental engine (transposition table + cached subtree
annotations + reused budgeted sub-layouts) is a pure speedup: under a
fixed seed it must return exactly the layouts, expressions and costs of
full re-evaluation.  These tests lock that in at the layout-engine
level on problems derived from two generated suite designs, and at the
whole-flow level on the smallest suite design.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.floorplan.blocks import Block
from repro.floorplan.engine import LayoutConfig, LayoutProblem, generate_layout
from repro.gen.designs import build_design, suite_specs
from repro.geometry.rect import Rect
from repro.netlist.flatten import flatten
from repro.shapecurve.curve import ShapeCurve
from repro.shapecurve.generation import ShapeGenConfig, curve_for_macros
from repro.slicing.tree import EvalStats


def _problem_from_design(spec_index: int, n_blocks: int = 8
                         ) -> LayoutProblem:
    """A layout problem over the first macros of a generated design."""
    spec = suite_specs("tiny")[spec_index]
    design, _truth = build_design(spec)
    flat = flatten(design)
    macros = flat.macros()[:n_blocks]
    assert len(macros) == n_blocks
    blocks = []
    for i, cell in enumerate(macros):
        ctype = cell.ctype
        area = ctype.width * ctype.height
        blocks.append(Block(
            index=i, name=f"m{i}",
            curve=ShapeCurve.for_rect(ctype.width, ctype.height),
            area_min=area, area_target=area * 1.25))
    rng = random.Random(spec_index)
    n = len(blocks)
    affinity = [[0.0] * n for _ in range(n)]
    for _ in range(3 * n):
        i, j = rng.randrange(n), rng.randrange(n)
        if i != j:
            affinity[i][j] += rng.uniform(0.1, 2.0)
    side = (sum(b.area_target for b in blocks) * 1.35) ** 0.5
    return LayoutProblem(region=Rect(0.0, 0.0, side, side),
                         blocks=blocks, affinity=affinity)


class TestEngineEquivalence:
    @pytest.mark.parametrize("spec_index", [0, 1])   # c1, c2
    def test_identical_best_and_cost(self, spec_index):
        problem = _problem_from_design(spec_index)
        inc = generate_layout(problem,
                              LayoutConfig(seed=3, incremental=True))
        full = generate_layout(problem,
                               LayoutConfig(seed=3, incremental=False))
        assert inc.expression == full.expression
        assert inc.cost == full.cost
        assert inc.penalty == full.penalty
        assert inc.rects == full.rects

    def test_incremental_actually_reuses(self):
        problem = _problem_from_design(0)
        result = generate_layout(problem,
                                 LayoutConfig(seed=3, incremental=True))
        stats = result.stats
        assert stats is not None
        assert stats.cost_evals > 0
        assert stats.layout_nodes_expanded < stats.layout_nodes_total
        assert stats.subtree_hits > 0
        assert stats.expansion_ratio > 1.0

    def test_full_eval_expands_everything(self):
        problem = _problem_from_design(0)
        result = generate_layout(problem,
                                 LayoutConfig(seed=3, incremental=False))
        stats = result.stats
        assert stats.layout_nodes_expanded == stats.layout_nodes_total
        assert stats.cost_cache_hits == 0

    def test_layout_cache_requires_signatures(self):
        """An unsigned tree must be rejected, not silently collide on
        the shared None cache key."""
        from repro.floorplan.budget import LayoutCache, budgeted_layout
        from repro.slicing.polish import PolishExpression
        from repro.slicing.tree import (annotate_areas, annotate_curves,
                                        build_tree)
        problem = _problem_from_design(0, n_blocks=3)
        root = build_tree(PolishExpression([0, 1, "V", 2, "H"]))
        annotate_curves(root, [b.curve for b in problem.blocks])
        annotate_areas(root, [b.area_min for b in problem.blocks],
                       [b.area_target for b in problem.blocks])
        with pytest.raises(ValueError, match="signatures"):
            budgeted_layout(root, problem.region, problem.blocks,
                            cache=LayoutCache())


class TestShapeGenEquivalence:
    def test_curve_for_macros_identical(self):
        rng = random.Random(11)
        curves = [ShapeCurve.for_rect(rng.uniform(2, 9), rng.uniform(2, 9))
                  for _ in range(7)]
        inc = curve_for_macros(curves,
                               ShapeGenConfig(seed=5, incremental=True))
        full = curve_for_macros(curves,
                                ShapeGenConfig(seed=5, incremental=False))
        assert inc.points == full.points

    def test_stats_accumulate(self):
        rng = random.Random(11)
        curves = [ShapeCurve.for_rect(rng.uniform(2, 9), rng.uniform(2, 9))
                  for _ in range(6)]
        stats = EvalStats()
        curve_for_macros(curves, ShapeGenConfig(seed=5), stats=stats)
        assert stats.cost_evals > 0
        assert stats.subtree_hits > 0
        assert (stats.curve_compose_hits
                + stats.curve_compose_misses) > 0


class TestFlowEquivalence:
    def test_hidap_placements_identical(self, tiny_c1, tiny_c1_flat):
        _design, _truth, die_w, die_h = tiny_c1

        def run(incremental):
            config = HiDaPConfig(seed=1, effort=Effort.FAST,
                                 incremental=incremental)
            placer = HiDaP(config)
            placement = placer.place(tiny_c1_flat, die_w, die_h)
            key = sorted(
                (idx, (m.rect.x, m.rect.y, m.rect.w, m.rect.h),
                 m.orientation)
                for idx, m in placement.macros.items())
            return key, placer.artifacts.eval_counters

        inc_key, inc_counters = run(True)
        full_key, full_counters = run(False)
        assert inc_key == full_key
        # Both ran the same search...
        assert inc_counters["cost_evals"] == full_counters["cost_evals"]
        # ...but the incremental one expanded far fewer layout nodes.
        assert inc_counters["layout_nodes_expanded"] * 2 \
            < full_counters["layout_nodes_expanded"]
        assert full_counters["layout_nodes_expanded"] \
            == full_counters["layout_nodes_total"]
