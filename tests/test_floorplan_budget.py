"""Tests for top-down area budgeting (Sect. IV-E / Fig. 8)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.blocks import Block
from repro.floorplan.budget import budgeted_layout
from repro.geometry.rect import Rect, total_overlap_area
from repro.shapecurve.curve import ShapeCurve
from repro.slicing.moves import perturb
from repro.slicing.polish import H, PolishExpression, V
from repro.slicing.tree import annotate_areas, annotate_curves, build_tree


def soft_blocks(targets):
    return [Block(i, f"b{i}", ShapeCurve.trivial(), t, t)
            for i, t in enumerate(targets)]


def layout_for(expr_tokens, blocks, region):
    expr = PolishExpression(expr_tokens)
    root = build_tree(expr)
    annotate_curves(root, [b.curve for b in blocks])
    annotate_areas(root, [b.area_min for b in blocks],
                   [b.area_target for b in blocks])
    return budgeted_layout(root, region, blocks)


class TestFig8Example:
    def test_paper_example(self):
        """Fig. 8: five leaves with targets in a 3x3 budget; areas are
        met exactly and the layout tiles the region."""
        targets = [1.5, 1.5, 3.0, 1.5, 1.5]
        blocks = soft_blocks(targets)
        report = layout_for([0, 1, V, 2, H, 3, 4, V, H], blocks,
                            Rect(0, 0, 3, 3))
        assert report.is_legal
        for i, target in enumerate(targets):
            assert report.leaf_rects[i].area == pytest.approx(target)
        assert sum(r.area for r in report.leaf_rects.values()) \
            == pytest.approx(9.0)


class TestBudgetInvariants:
    def test_exact_tiling(self):
        blocks = soft_blocks([2, 4, 6, 8])
        region = Rect(5, 7, 10, 2)
        report = layout_for([0, 1, V, 2, H, 3, V], blocks, region)
        assert sum(r.area for r in report.leaf_rects.values()) \
            == pytest.approx(region.area)
        assert total_overlap_area(report.leaf_rects.values()) \
            == pytest.approx(0.0)
        for rect in report.leaf_rects.values():
            assert region.contains_rect(rect, tol=1e-6)

    def test_macro_repair_moves_area(self):
        """A block whose macro needs width gets it from its sibling."""
        macro_curve = ShapeCurve([(6, 2)])      # rigid 6x2 macro
        blocks = [Block(0, "m", macro_curve, 12, 12, 1),
                  Block(1, "soft", ShapeCurve.trivial(), 12, 12)]
        # Region 8 wide, 3 tall: equal split would give each 4 width;
        # the macro needs 6.
        report = layout_for([0, 1, V], blocks, Rect(0, 0, 8, 3))
        assert report.leaf_rects[0].w >= 6 - 1e-9
        assert report.repairs >= 1
        assert report.macro_deficit == 0.0
        # The soft sibling yielded area below its target.
        assert report.target_deficit > 0 or report.min_deficit > 0

    def test_infeasible_reports_macro_deficit(self):
        macro_curve = ShapeCurve([(6, 6)])
        blocks = [Block(0, "m", macro_curve, 36, 36, 1)]
        report = layout_for([0], blocks, Rect(0, 0, 4, 4))
        assert report.macro_deficit > 0
        assert not report.is_legal

    def test_severity_classification(self):
        """Shrinking below a_t but above a_m is a target violation
        only; below a_m adds a min violation."""
        blocks = [Block(0, "a", ShapeCurve.trivial(), area_min=4,
                        area_target=8),
                  Block(1, "b", ShapeCurve.trivial(), area_min=4,
                        area_target=8)]
        # Region area 12 < sum targets 16 but > sum minima 8.
        report = layout_for([0, 1, V], blocks, Rect(0, 0, 6, 2))
        assert report.target_deficit > 0
        assert report.min_deficit == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=1000))
    def test_random_trees_tile_exactly(self, n_blocks, seed):
        """Property: any slicing structure over soft blocks tiles the
        region with zero overlap and exact area budget."""
        rng = random.Random(seed)
        targets = [1.0 + rng.random() * 9.0 for _ in range(n_blocks)]
        blocks = soft_blocks(targets)
        expr = PolishExpression.initial(n_blocks, rng)
        for _ in range(rng.randrange(8)):
            perturb(expr, rng)
        region = Rect(0, 0, 10 + rng.random() * 20, 5 + rng.random() * 20)
        root = build_tree(expr)
        annotate_curves(root, [b.curve for b in blocks])
        annotate_areas(root, [b.area_min for b in blocks],
                       [b.area_target for b in blocks])
        report = budgeted_layout(root, region, blocks)
        assert len(report.leaf_rects) == n_blocks
        assert sum(r.area for r in report.leaf_rects.values()) \
            == pytest.approx(region.area, rel=1e-6)
        assert total_overlap_area(report.leaf_rects.values()) \
            == pytest.approx(0.0, abs=1e-6)
        # Target areas are proportional shares: with equal scaling each
        # block's share is its target / sum * region area.
        scale = region.area / sum(targets)
        for i, target in enumerate(targets):
            assert report.leaf_rects[i].area \
                == pytest.approx(target * scale, rel=1e-6)
