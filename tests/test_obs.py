"""Unit tests for repro.obs: tracer, registry, sinks, observer safety."""

import json
import logging

import pytest

from repro.api import Pipeline, PipelineObserver, RunArtifacts, Stage
from repro.geometry.rect import Rect
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    current_tracer,
    render_summary,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)

from tools.trace_summary import load_spans, summarize


# -- metrics registry -------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("n")
        reg.counter("n", 4)
        assert reg.counters["n"] == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 2.5)
        assert reg.gauges["g"] == 2.5

    def test_observe_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            reg.observe("h", value)
        assert reg.histograms["h"] == [3, 6.0, 1.0, 3.0]

    def test_absorb_roundtrips_eval_counters(self):
        legacy = {"cost_evals": 120, "referee_backend": "numpy",
                  "subtree_hits": 7}
        reg = MetricsRegistry()
        reg.absorb(legacy)
        assert reg.as_eval_counters() == legacy

    def test_absorb_twice_sums_numerics(self):
        reg = MetricsRegistry()
        reg.absorb({"cost_evals": 10})
        reg.absorb({"cost_evals": 5})
        assert reg.as_eval_counters()["cost_evals"] == 15

    def test_merge_folds_worker_payload(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", 1)
        a.observe("h", 2.0)
        b.counter("n", 2)
        b.observe("h", 5.0)
        a.merge(b.to_dict())
        assert a.counters["n"] == 3
        assert a.histograms["h"] == [2, 7.0, 2.0, 5.0]

    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("n")
        NULL_REGISTRY.gauge("g", 1)
        NULL_REGISTRY.observe("h", 1)
        NULL_REGISTRY.absorb({"x": 1})
        assert NULL_REGISTRY.counters == {}
        assert NULL_REGISTRY.as_eval_counters() == {}


# -- tracer -----------------------------------------------------------------

class TestTracer:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            with tracer.span("b", k=1):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.roots] == ["a"]
        children = tracer.roots[0].children
        assert [s.name for s in children] == ["b", "c"]
        assert children[0].attrs == {"k": 1}
        assert all(s.t1 >= s.t0 for s in [tracer.roots[0]] + children)

    def test_exception_annotates_and_closes_span(self):
        tracer = Tracer("t")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.roots[0].attrs["error"] == "ValueError"
        assert not tracer._stack

    def test_payload_is_json_serializable(self):
        tracer = Tracer("t")
        with tracer.span("a", design="c1"):
            tracer.event("tick", n=1)
        tracer.metrics.counter("n")
        payload = json.loads(json.dumps(tracer.payload()))
        assert payload["label"] == "t"
        assert payload["spans"][0]["name"] == "a"
        assert payload["events"][0]["name"] == "tick"
        assert payload["metrics"]["counters"] == {"n": 1}

    def test_default_tracer_is_the_shared_noop(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("anything", k=1)
        assert span is NULL_TRACER.span("other")
        with span as entered:
            assert entered is span
        assert NULL_TRACER.metrics is NULL_REGISTRY

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer("t")
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer("inner")
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER


# -- sinks ------------------------------------------------------------------

def _sample_payloads():
    tracer = Tracer("main")
    with tracer.span("outer", design="c1"):
        with tracer.span("inner"):
            pass
        tracer.event("mark", n=2)
    tracer.metrics.counter("cost_evals", 3)
    worker = Tracer("worker-1")
    worker.pid = tracer.pid + 1
    with use_tracer(worker):
        with worker.span("outer"):
            pass
    return [tracer.payload(), worker.payload()]


class TestSinks:
    def test_chrome_trace_structure(self):
        doc = chrome_trace(_sample_payloads())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in meta} == {"main", "worker-1"}
        assert {e["name"] for e in spans} == {"outer", "inner"}
        assert len({e["pid"] for e in spans}) == 2
        assert instants[0]["name"] == "mark"
        # Wall-anchored ts: children start at/after their parent.
        outer = next(e for e in spans if e["name"] == "outer")
        inner = next(e for e in spans if e["name"] == "inner")
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_write_chrome_trace_loads_back(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, _sample_payloads())
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, _sample_payloads())
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        kinds = {row["kind"] for row in rows}
        assert kinds == {"process", "span", "event", "metrics"}
        span_rows = [r for r in rows if r["kind"] == "span"]
        assert {r["depth"] for r in span_rows} == {0, 1}

    def test_render_summary_tree_and_counters(self):
        text = render_summary(_sample_payloads())
        assert "2 process(es)" in text
        assert "outer x2" in text       # merged across processes
        assert "  " in text             # child indentation
        assert "cost_evals = 3" in text

    def test_trace_summary_tool_reads_both_formats(self, tmp_path):
        payloads = _sample_payloads()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        write_chrome_trace(chrome, payloads)
        write_jsonl(jsonl, payloads)
        for path in (chrome, jsonl):
            agg = summarize(load_spans(str(path)))
            assert agg["outer"][1] == 2         # count
            assert len(agg["outer"][3]) == 2    # distinct pids


# -- pipeline observer exception safety -------------------------------------

class _FailingObserver(PipelineObserver):
    def on_stage_start(self, stage, artifacts):
        raise RuntimeError("observer exploded")


class TestObserverSafety:
    def _pipeline(self, observer):
        ran = []
        return ran, Pipeline([Stage("s", lambda a: ran.append("s"))],
                             observers=[observer])

    def test_failing_observer_does_not_abort_the_run(self, caplog):
        ran, pipeline = self._pipeline(_FailingObserver())
        with caplog.at_level(logging.WARNING, "repro.api.pipeline"):
            pipeline.run(RunArtifacts(die=Rect(0, 0, 1, 1)))
        assert ran == ["s"]
        assert any("observer" in rec.message.lower()
                   for rec in caplog.records)

    def test_failure_is_recorded_as_a_trace_event(self):
        tracer = Tracer("t")
        _ran, pipeline = self._pipeline(_FailingObserver())
        with use_tracer(tracer):
            pipeline.run(RunArtifacts(die=Rect(0, 0, 1, 1)))
        errors = [e for e in tracer.events
                  if e["name"] == "observer.error"]
        assert errors
        assert errors[0]["attrs"]["observer"] == "_FailingObserver"

    def test_healthy_observers_still_called_after_a_failure(self):
        calls = []

        class Healthy(PipelineObserver):
            def on_stage_start(self, stage, artifacts):
                calls.append(stage.name)

        pipeline = Pipeline([Stage("s", lambda a: None)],
                            observers=[_FailingObserver(), Healthy()])
        pipeline.run(RunArtifacts(die=Rect(0, 0, 1, 1)))
        assert calls == ["s"]


# -- CLI surface ------------------------------------------------------------

class TestCliTrace:
    def test_place_trace_and_verbose(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["place", "c1", "--scale", "tiny",
                     "--flow", "indeda", "--effort", "fast",
                     "--trace", str(out), "--verbose"]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "prepare.flat" in names
        text = capsys.readouterr().out
        assert "trace:" in text         # the summary footer
        assert str(out) in text

    def test_suite_trace_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["suite", "--scale", "tiny", "--designs", "c1",
                     "--flows", "indeda,handfp-strip",
                     "--effort", "fast", "--trace", str(out),
                     "--verbose"]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "suite.task" in names
        assert "referee" in names
        text = capsys.readouterr().out
        assert "suite.task" in text     # the --verbose footer
