"""RunOptions, the legacy-keyword shims, and the repro.eval shims."""

import json
import warnings

import pytest

from repro.api import RunOptions, run_flow, run_suite
from repro.api.run import resolve_options
from repro.core.config import Effort
from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.flatten import flatten


def _flat_and_die(name="c1"):
    spec = next(s for s in suite_specs("tiny") if s.name == name)
    design, truth = build_design(spec)
    die_w, die_h = die_for(design)
    return flatten(design), truth, die_w, die_h


class TestRunOptions:
    def test_defaults(self):
        opts = RunOptions()
        assert opts.seed == 1
        assert opts.effort is Effort.NORMAL
        assert opts.referee_backend is None
        assert opts.trace is None
        assert not opts.tracing
        assert opts.trace_path is None

    def test_coercion(self):
        opts = RunOptions(seed="3", effort="fast")
        assert opts.seed == 3
        assert opts.effort is Effort.FAST

    def test_trace_spellings(self, tmp_path):
        assert not RunOptions(trace=False).tracing
        assert RunOptions(trace=True).tracing
        assert RunOptions(trace=True).trace_path is None
        path_opts = RunOptions(trace=str(tmp_path / "t.json"))
        assert path_opts.tracing
        assert path_opts.trace_path == tmp_path / "t.json"
        assert RunOptions(trace=tmp_path / "t.json").trace_path \
            == tmp_path / "t.json"

    def test_frozen(self):
        with pytest.raises(Exception):
            RunOptions().seed = 2


class TestResolveOptions:
    def test_no_legacy_kwargs_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = resolve_options(RunOptions(seed=5))
        assert opts.seed == 5

    def test_legacy_kwargs_warn_and_override(self):
        base = RunOptions(seed=5, effort=Effort.HIGH)
        with pytest.warns(DeprecationWarning, match="seed"):
            opts = resolve_options(base, seed=9)
        assert opts.seed == 9
        assert opts.effort is Effort.HIGH    # untouched fields survive

    def test_warning_names_every_keyword(self):
        with pytest.warns(DeprecationWarning,
                          match="effort, referee_backend, seed"):
            resolve_options(None, seed=1, effort=Effort.FAST,
                            referee_backend="python")


class TestEntryPointShims:
    def test_run_flow_accepts_options(self):
        flat, truth, die_w, die_h = _flat_and_die()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            metrics = run_flow(flat, truth, "indeda", die_w, die_h,
                               options=RunOptions(seed=1,
                                                  effort=Effort.FAST))
        assert metrics.design == "c1"

    def test_run_flow_legacy_kwargs_warn_but_match(self):
        flat, truth, die_w, die_h = _flat_and_die()
        opts_row = run_flow(flat, truth, "indeda", die_w, die_h,
                            options=RunOptions(seed=1,
                                               effort=Effort.FAST))
        with pytest.warns(DeprecationWarning):
            legacy_row = run_flow(flat, truth, "indeda", die_w, die_h,
                                  seed=1, effort=Effort.FAST)
        assert (legacy_row.wl_meters, legacy_row.tns) \
            == (opts_row.wl_meters, opts_row.tns)

    def test_run_suite_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="effort"):
            run_suite(scale="tiny", designs=["c1"], flows=("indeda",),
                      effort=Effort.FAST)

    def test_trace_path_writes_chrome_trace(self, tmp_path):
        flat, truth, die_w, die_h = _flat_and_die()
        out = tmp_path / "flow_trace.json"
        metrics = run_flow(
            flat, truth, "indeda", die_w, die_h,
            options=RunOptions(seed=1, effort=Effort.FAST,
                               trace=out))
        assert metrics.trace, "payloads must ride on the row"
        events = json.loads(out.read_text())["traceEvents"]
        assert events

    def test_suite_trace_path_writes_chrome_trace(self, tmp_path):
        out = tmp_path / "suite_trace.json"
        result = run_suite(
            scale="tiny", designs=["c1"], flows=("indeda",),
            options=RunOptions(seed=1, effort=Effort.FAST, trace=out))
        assert result.trace
        assert json.loads(out.read_text())["traceEvents"]


class TestEvalShims:
    def test_eval_flow_names_warn_and_match(self):
        import repro.api.run as run_mod
        import repro.eval.flow as shim

        for name in ("FlowMetrics", "HIDAP_LAMBDAS",
                     "evaluate_placement", "run_flow"):
            with pytest.warns(DeprecationWarning, match=name):
                value = getattr(shim, name)
            assert value is getattr(run_mod, name)

    def test_eval_suite_names_warn_and_match(self):
        import repro.api.suite as suite_mod
        import repro.eval.suite as shim

        for name in ("DEFAULT_FLOWS", "SuiteResult", "run_suite"):
            with pytest.warns(DeprecationWarning, match=name):
                value = getattr(shim, name)
            assert value is getattr(suite_mod, name)

    def test_eval_suite_prepare_design_keeps_tuple_shape(self):
        import repro.eval.suite as shim

        with pytest.warns(DeprecationWarning, match="prepare_design"):
            legacy = shim.prepare_design
        spec = next(s for s in suite_specs("tiny")
                    if s.name == "c1")
        flat, truth, die_w, die_h = legacy(spec)
        assert flat.design.name == "c1"
        assert die_w > 0 and die_h > 0

    def test_unknown_shim_attribute_raises(self):
        import repro.eval.flow as shim

        with pytest.raises(AttributeError):
            shim.does_not_exist

    def test_repro_eval_package_is_warning_free(self):
        # The package re-exports through repro.api, not the shims.
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro.eval; repro.eval.run_flow; "
             "repro.eval.run_suite"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
