"""Tests for shape curves: Pareto pruning, queries, composition."""

import pytest
from hypothesis import given, strategies as st

from repro.shapecurve.curve import (
    ComposeCache,
    ShapeCurve,
    _downsample,
    compose_many,
)

sides = st.floats(min_value=0.5, max_value=200.0, allow_nan=False)
points = st.lists(st.tuples(sides, sides), min_size=1, max_size=12)


class TestConstruction:
    def test_pareto_pruning(self):
        curve = ShapeCurve([(4, 4), (2, 8), (8, 2), (5, 5)])
        assert (5, 5) not in curve.points          # dominated by (4,4)
        assert set(curve.points) == {(2, 8), (4, 4), (8, 2)}

    def test_points_sorted_by_width(self):
        curve = ShapeCurve([(8, 2), (2, 8), (4, 4)])
        widths = [w for w, _h in curve.points]
        assert widths == sorted(widths)

    def test_trivial(self):
        assert ShapeCurve.trivial().is_trivial
        assert ShapeCurve.trivial().feasible(0.001, 0.001)

    def test_for_rect_rotatable(self):
        curve = ShapeCurve.for_rect(4, 2)
        assert set(curve.points) == {(4, 2), (2, 4)}

    def test_for_rect_square(self):
        assert ShapeCurve.for_rect(3, 3).points == ((3, 3),)

    def test_for_rect_fixed(self):
        assert ShapeCurve.for_rect(4, 2, rotatable=False).points \
            == ((4, 2),)

    def test_equality_and_hash(self):
        a = ShapeCurve([(2, 8), (4, 4)])
        b = ShapeCurve([(4, 4), (2, 8), (5, 5)])
        assert a == b
        assert hash(a) == hash(b)


class TestQueries:
    curve = ShapeCurve([(2, 8), (4, 4), (8, 2)])

    def test_feasible(self):
        assert self.curve.feasible(4, 4)
        assert self.curve.feasible(100, 2)
        assert not self.curve.feasible(3, 3)
        assert not self.curve.feasible(1, 100)

    def test_min_height_for_width(self):
        assert self.curve.min_height_for_width(4) == 4
        assert self.curve.min_height_for_width(5) == 4
        assert self.curve.min_height_for_width(8) == 2
        assert self.curve.min_height_for_width(1) is None

    def test_min_width_for_height(self):
        assert self.curve.min_width_for_height(4) == 4
        assert self.curve.min_width_for_height(1) is None

    def test_extremes(self):
        assert self.curve.min_width == 2
        assert self.curve.min_height == 2
        assert self.curve.min_area == 16
        assert self.curve.min_area_point() in {(2, 8), (4, 4), (8, 2)}

    def test_best_point_for(self):
        assert self.curve.best_point_for(4.5, 4.5) == (4, 4)
        assert self.curve.best_point_for(1, 1) is None

    def test_trivial_queries(self):
        trivial = ShapeCurve.trivial()
        assert trivial.min_height_for_width(1) == 0.0
        assert trivial.min_area == 0.0
        assert trivial.min_area_point() is None


class TestTransforms:
    def test_transposed(self):
        curve = ShapeCurve([(2, 8)])
        assert curve.transposed().points == ((8, 2),)

    def test_with_rotations(self):
        curve = ShapeCurve([(2, 8)]).with_rotations()
        assert set(curve.points) == {(2, 8), (8, 2)}

    def test_inflated_area(self):
        curve = ShapeCurve([(4, 4)]).inflated(1.21)
        w, h = curve.points[0]
        assert w * h == pytest.approx(16 * 1.21)

    def test_inflated_rejects_negative(self):
        with pytest.raises(ValueError):
            ShapeCurve([(4, 4)]).inflated(-1)


class TestComposition:
    def test_horizontal_adds_width(self):
        a = ShapeCurve([(2, 3)])
        b = ShapeCurve([(4, 1)])
        c = a.compose_horizontal(b)
        assert c.points == ((6, 3),)

    def test_vertical_adds_height(self):
        a = ShapeCurve([(2, 3)])
        b = ShapeCurve([(4, 1)])
        c = a.compose_vertical(b)
        assert c.points == ((4, 4),)

    def test_trivial_identity(self):
        a = ShapeCurve([(2, 3)])
        assert a.compose_horizontal(ShapeCurve.trivial()) == a
        assert ShapeCurve.trivial().compose_vertical(a) == a

    def test_compose_many(self):
        curves = [ShapeCurve([(1, 1)])] * 3
        row = compose_many(curves, horizontal=True)
        col = compose_many(curves, horizontal=False)
        assert row.points == ((3, 1),)
        assert col.points == ((1, 3),)

    @given(points, points)
    def test_composition_area_superadditive(self, pa, pb):
        """Composed min area >= sum of component min areas."""
        a, b = ShapeCurve(pa), ShapeCurve(pb)
        for composed in (a.compose_horizontal(b), a.compose_vertical(b)):
            assert composed.min_area >= a.min_area + b.min_area - 1e-6

    @given(points, points)
    def test_composition_feasibility_sound(self, pa, pb):
        """Every composed point really holds both components side by
        side / stacked."""
        a, b = ShapeCurve(pa), ShapeCurve(pb)
        for w, h in a.compose_horizontal(b).points:
            # There must be a split w = wa + wb with both feasible.
            ok = any(a.feasible(wa, h) and b.feasible(w - wa, h)
                     for wa, _ha in a.points if wa <= w + 1e-9)
            assert ok

    @given(points)
    def test_pareto_invariant(self, pts):
        """No curve point dominates another."""
        curve = ShapeCurve(pts)
        for i, (w1, h1) in enumerate(curve.points):
            for j, (w2, h2) in enumerate(curve.points):
                if i != j:
                    assert not (w1 <= w2 and h1 <= h2)


def _front(n):
    """A strict Pareto front of n points."""
    return [(float(i + 1), float(n - i)) for i in range(n)]


class TestDownsample:
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=2, max_value=60))
    def test_exact_count(self, n, limit):
        """A thinned front has exactly min(limit, n) distinct points.

        The historical ``round(i*step)`` sampling could pick an index
        twice (e.g. n=5, limit=4 picks index 1 for both i=1 and i=2)
        and silently return fewer points, dropping knee points on small
        fronts."""
        out = _downsample(_front(n), limit)
        assert len(out) == min(limit, n)
        assert len(set(out)) == len(out)

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=60))
    def test_keeps_extremes_and_order(self, n, limit):
        front = _front(n)
        out = _downsample(front, limit)
        assert out[0] == front[0]
        if limit > 1:
            assert out[-1] == front[-1]
        assert out == sorted(out)          # still width-sorted
        assert set(out) <= set(front)      # a subset, no new points

    def test_regression_duplicate_round_indices(self):
        # Small fronts are where round() index collisions dropped
        # points; check them exhaustively instead of cherry-picking.
        for n in range(2, 20):
            for limit in range(2, n):
                out = _downsample(_front(n), limit)
                assert len(out) == limit, (n, limit)


class TestComposeCache:
    def test_hit_returns_identical_curve(self):
        cache = ComposeCache()
        a = ShapeCurve([(2, 3), (3, 2)])
        b = ShapeCurve([(4, 1)])
        first = cache.compose(a, b, horizontal=True)
        second = cache.compose(a, b, horizontal=True)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert first == a.compose_horizontal(b)

    def test_direction_and_limit_are_part_of_the_key(self):
        cache = ComposeCache()
        a = ShapeCurve([(2, 3), (3, 2)])
        b = ShapeCurve([(4, 1), (1, 4)])
        h = cache.compose(a, b, horizontal=True)
        v = cache.compose(a, b, horizontal=False)
        assert cache.misses == 2
        assert h == a.compose_horizontal(b)
        assert v == a.compose_vertical(b)

    def test_bounded_store_clears(self):
        cache = ComposeCache(max_entries=2)
        curves = [ShapeCurve([(i + 1.0, 9.0 - i)]) for i in range(4)]
        for c in curves:
            cache.compose(c, curves[0], horizontal=True)
        assert len(cache) <= 2
        # Results stay correct after the clear.
        out = cache.compose(curves[3], curves[0], horizontal=True)
        assert out == curves[3].compose_horizontal(curves[0])
