"""Tracing must never change results — only record them.

The contract ISSUE 8 pins down: placements, Table III rows, and RNG
streams are bit-identical with tracing on or off, serially or across
worker processes.  Span *timings* are wall-clock and excluded from
every comparison here.
"""

import pytest

from repro.api import prepare_suite_design, run_suite
from repro.core.config import Effort
from repro.api import run_flow
from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.flatten import flatten
from repro.obs import Tracer, iter_spans, use_tracer

DESIGNS = ("c1", "c2", "c3")
FLOWS = ("indeda", "handfp-strip")


def _placement_key(placement):
    return sorted(
        (path, (m.rect.x, m.rect.y, m.rect.w, m.rect.h), m.orientation)
        for path, m in placement.macros.items())


def _key_row(metrics):
    """Deterministic FlowMetrics fields (placer_seconds is wall-clock)."""
    return (metrics.design, metrics.flow, metrics.wl_meters,
            metrics.grc_percent, metrics.wns_percent, metrics.tns,
            metrics.wl_norm, metrics.macro_overlap, metrics.lam)


def _key_rows(result):
    return [_key_row(row) for row in result.rows]


def _flat_and_die(name):
    spec = next(s for s in suite_specs("tiny") if s.name == name)
    design, truth = build_design(spec)
    die_w, die_h = die_for(design)
    return flatten(design), truth, die_w, die_h


class TestPlacementBitIdentity:
    @pytest.mark.parametrize("name", DESIGNS)
    def test_traced_placement_is_bit_identical(self, name):
        prepared = prepare_suite_design(name, "tiny")
        from repro.api import get_flow

        baseline = get_flow("hidap", seed=1,
                            effort=Effort.FAST).place(prepared)

        tracer = Tracer("test")
        with use_tracer(tracer):
            traced = get_flow("hidap", seed=1,
                              effort=Effort.FAST).place(prepared)

        assert _placement_key(traced) == _placement_key(baseline)
        assert tracer.roots, "tracing was active but recorded nothing"
        names = {span["name"]
                 for _d, span in iter_spans(tracer.payload())}
        assert "place" in names
        assert any(n.startswith("restart[") for n in names)

    @pytest.mark.parametrize("name", DESIGNS)
    def test_traced_run_flow_rows_match(self, name):
        flat, truth, die_w, die_h = _flat_and_die(name)
        plain = run_flow(flat, truth, "indeda", die_w, die_h,
                         seed=1, effort=Effort.FAST)
        traced = run_flow(flat, truth, "indeda", die_w, die_h,
                          seed=1, effort=Effort.FAST, trace=True)
        assert _key_row(traced) == _key_row(plain)
        payloads = traced.trace
        assert payloads and payloads[0]["spans"]
        names = {span["name"] for payload in payloads
                 for _d, span in iter_spans(payload)}
        assert {"flow.place", "referee", "referee.hpwl"} <= names


class TestSuiteTraceParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_suite(scale="tiny", designs=["c1", "c2"],
                         flows=list(FLOWS), effort=Effort.FAST,
                         trace=True)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_suite(scale="tiny", designs=["c1", "c2"],
                         flows=list(FLOWS), effort=Effort.FAST,
                         workers=2, trace=True)

    @pytest.fixture(scope="class")
    def untraced(self):
        return run_suite(scale="tiny", designs=["c1", "c2"],
                         flows=list(FLOWS), effort=Effort.FAST)

    def test_traced_rows_match_untraced(self, serial, untraced):
        assert _key_rows(serial) == _key_rows(untraced)

    def test_serial_and_parallel_rows_match(self, serial, parallel):
        assert _key_rows(serial) == _key_rows(parallel)

    @staticmethod
    def _task_attrs(result):
        """(design, flow) multiset of suite.task spans, any process."""
        attrs = []
        for payload in result.trace:
            for _depth, span in iter_spans(payload):
                if span["name"] == "suite.task":
                    attrs.append((span["attrs"]["design"],
                                  span["attrs"]["flow"]))
        return sorted(attrs)

    def test_serial_and_parallel_trace_same_tasks(self, serial,
                                                  parallel):
        expected = sorted((d, f) for d in ("c1", "c2") for f in FLOWS)
        assert self._task_attrs(serial) == expected
        assert self._task_attrs(parallel) == expected

    def test_parallel_trace_covers_worker_processes(self, parallel):
        assert len(parallel.trace) >= 3   # main + 2 worker payloads
        worker_pids = {p["pid"] for p in parallel.trace[1:]}
        assert parallel.trace[0]["pid"] not in worker_pids
        # Workers recompile PreparedDesign state; their traces must
        # show it (the ROADMAP 0.956x-scaling evidence).
        for payload in parallel.trace[1:]:
            names = {span["name"]
                     for _d, span in iter_spans(payload)}
            assert any(n.startswith("prepare.") for n in names), (
                f"worker payload {payload['label']} has no prepare "
                f"spans: {sorted(names)}")

    def test_untraced_suite_has_no_trace_payload(self, untraced):
        assert untraced.trace is None
