"""Tests for Gseq construction: collapse, clustering, thresholding."""


from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.flatten import flatten


def gseq_of(design, min_bits=1):
    flat = flatten(design)
    return build_gseq(build_gnet(flat), flat, min_bits=min_bits), flat


class TestClustering:
    def test_register_arrays_clustered(self, two_stage_flat):
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        regs = gseq.registers()
        names = {r.name for r in regs}
        assert "sa/in_reg" in names
        assert all(r.bits == 8 for r in regs)
        assert len(regs) == 4

    def test_macros_individual(self, two_stage_flat):
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        macros = gseq.macros()
        assert {m.name for m in macros} == {"sa/mem", "sb/mem"}
        assert all(m.bits == 8 for m in macros)   # dout width

    def test_ports_multibit(self, two_stage_flat):
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        ports = {p.name: p.bits for p in gseq.ports()}
        assert ports == {"pin": 8, "pout": 8}


class TestCombCollapse:
    def test_comb_path_creates_edge(self):
        b = ModuleBuilder("m")
        b.input("a", 4).output("z", 4)
        b.wire("w1", 4)
        b.wire("w2", 4)
        b.register_array("src", 4, d="a", q="w1")
        b.comb_cloud("cloud", ["w1"], "w2")
        b.register_array("dst", 4, d="w2", q="z")
        gseq, _flat = gseq_of(single_module_design(b))
        src = gseq.node_by_name("src")
        dst = gseq.node_by_name("dst")
        assert (src.index, dst.index) in gseq.edge_bits
        # All 4 bits travel.
        assert gseq.edge_bits[(src.index, dst.index)] == 4

    def test_direct_flop_to_flop_edge(self):
        b = ModuleBuilder("m")
        b.input("a", 2).output("z", 2)
        b.wire("w", 2)
        b.register_array("r0", 2, d="a", q="w")
        b.register_array("r1", 2, d="w", q="z")
        gseq, _flat = gseq_of(single_module_design(b))
        r0 = gseq.node_by_name("r0")
        r1 = gseq.node_by_name("r1")
        assert (r0.index, r1.index) in gseq.edge_bits

    def test_no_edge_through_registers(self):
        """Collapse stops at sequential elements: r0 -> r2 must not
        appear when r1 sits between them."""
        b = ModuleBuilder("m")
        b.input("a", 2).output("z", 2)
        b.wire("w0", 2)
        b.wire("w1", 2)
        b.register_array("r0", 2, d="a", q="w0")
        b.register_array("r1", 2, d="w0", q="w1")
        b.register_array("r2", 2, d="w1", q="z")
        gseq, _flat = gseq_of(single_module_design(b))
        r0 = gseq.node_by_name("r0")
        r2 = gseq.node_by_name("r2")
        assert (r0.index, r2.index) not in gseq.edge_bits

    def test_macro_edge_width_uses_destinations(self, two_stage_flat):
        """A macro is one Gnet vertex; its outgoing edge width must
        still reflect the full bus width."""
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        mem = gseq.node_by_name("sa/mem")
        out = gseq.node_by_name("sa/out_reg")
        assert gseq.edge_bits[(mem.index, out.index)] == 8


class TestThreshold:
    def test_narrow_registers_dropped(self):
        b = ModuleBuilder("m")
        b.input("a", 8).output("z", 8)
        b.wire("w", 8)
        b.input("c", 1)
        b.wire("cw", 1)
        b.register_array("wide", 8, d="a", q="w")
        b.register_array("narrow", 1, d="c", q="cw")
        b.register_array("wide2", 8, d="w", q="z")
        design = single_module_design(b)
        gseq_all, _ = gseq_of(design, min_bits=1)
        assert any(n.name == "narrow" for n in gseq_all.nodes)
        gseq_cut, _ = gseq_of(design, min_bits=4)
        assert not any(n.name == "narrow" for n in gseq_cut.nodes)
        # Macros and ports survive any threshold.
        assert len(gseq_cut.ports()) == len(gseq_all.ports())

    def test_indices_contiguous_after_filter(self):
        b = ModuleBuilder("m")
        b.input("a", 8).output("z", 8)
        b.wire("w", 8)
        b.input("c", 1)
        b.wire("cw", 1)
        b.register_array("wide", 8, d="a", q="w")
        b.register_array("narrow", 1, d="c", q="cw")
        b.register_array("wide2", 8, d="w", q="z")
        gseq, _ = gseq_of(single_module_design(b), min_bits=4)
        for i, node in enumerate(gseq.nodes):
            assert node.index == i
        for u, v in gseq.edge_bits:
            assert 0 <= u < gseq.n_nodes
            assert 0 <= v < gseq.n_nodes
