"""Tests for latency/width histograms and score(h, k)."""

import pytest
from hypothesis import given, strategies as st

from repro.hiergraph.histogram import LatencyHistogram


class TestHistogram:
    def test_add_and_total(self):
        hist = LatencyHistogram()
        hist.add(1, 16)
        hist.add(2, 8)
        hist.add(1, 4)
        assert hist.total_bits == 28
        assert hist.bins == {1: 20, 2: 8}

    def test_add_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.add(0, 4)
        with pytest.raises(ValueError):
            hist.add(1, -1)

    def test_zero_bits_ignored(self):
        hist = LatencyHistogram()
        hist.add(3, 0)
        assert hist.is_empty()

    def test_score_formula(self):
        """score = sum bits_i / latency_i^k (paper Sect. IV-D)."""
        hist = LatencyHistogram({1: 32, 2: 16, 4: 8})
        assert hist.score(k=0) == pytest.approx(56.0)
        assert hist.score(k=1) == pytest.approx(32 + 8 + 2)
        assert hist.score(k=2) == pytest.approx(32 + 4 + 0.5)

    def test_merge(self):
        a = LatencyHistogram({1: 4})
        b = LatencyHistogram({1: 2, 3: 6})
        a.merge(b)
        assert a.bins == {1: 6, 3: 6}

    def test_min_latency(self):
        assert LatencyHistogram({3: 1, 2: 1}).min_latency == 2
        assert LatencyHistogram().min_latency == 0

    def test_copy_independent(self):
        a = LatencyHistogram({1: 1})
        b = a.copy()
        b.add(1, 1)
        assert a.bins == {1: 1}

    def test_equality(self):
        assert LatencyHistogram({1: 2}) == LatencyHistogram({1: 2})
        assert LatencyHistogram({1: 2}) != LatencyHistogram({2: 2})

    @given(st.dictionaries(st.integers(min_value=1, max_value=20),
                           st.floats(min_value=0.1, max_value=1e4),
                           min_size=1, max_size=8),
           st.floats(min_value=0.0, max_value=4.0))
    def test_score_monotone_decreasing_in_k(self, bins, k):
        """Raising the decay exponent never increases the score."""
        hist = LatencyHistogram(bins)
        assert hist.score(k) >= hist.score(k + 0.5) - 1e-9

    @given(st.dictionaries(st.integers(min_value=1, max_value=20),
                           st.floats(min_value=0.1, max_value=1e4),
                           min_size=1, max_size=8))
    def test_score_bounds(self, bins):
        """score(k=0) = total bits; score(k) <= total bits for k >= 0."""
        hist = LatencyHistogram(bins)
        assert hist.score(0) == pytest.approx(hist.total_bits)
        assert hist.score(1.7) <= hist.total_bits + 1e-9
