"""Cross-module integration tests: the full pipeline on small inputs."""

import pytest

from repro.baselines.handfp import place_handfp
from repro.baselines.indeda import place_indeda
from repro.core import HiDaP, HiDaPConfig
from repro.core.config import Effort
from repro.api import (
    evaluate_placement,
    format_table2,
    format_table3,
    run_suite,
)


class TestThreeFlowComparison:
    """A miniature of the paper's evaluation on one tiny circuit."""

    @pytest.fixture(scope="class")
    def metrics(self, tiny_c1, tiny_c1_flat):
        _design, truth, die_w, die_h = tiny_c1
        flat = tiny_c1_flat
        flows = {}
        flows["indeda"] = place_indeda(flat, die_w, die_h)
        flows["handfp"] = place_handfp(flat, truth, die_w, die_h)
        flows["hidap"] = HiDaP(
            HiDaPConfig(seed=1, effort=Effort.FAST)).place(
                flat, die_w, die_h, flow_name="hidap")
        return {name: evaluate_placement(flat, placement)
                for name, placement in flows.items()}

    def test_all_flows_legal(self, metrics):
        for name, m in metrics.items():
            assert m.macro_overlap == pytest.approx(0.0), name

    def test_metrics_comparable(self, metrics):
        """All flows are measured by the same referee: same clock, same
        cell placement pipeline; values are finite and plausible."""
        for m in metrics.values():
            assert 0 < m.wl_meters < 100
            assert 0 <= m.grc_percent < 100
            assert -120 <= m.wns_percent <= 0
            assert m.tns <= 0

    def test_hidap_competitive(self, metrics):
        """HiDaP must beat the flat baseline on this macro-dominated
        circuit (the paper's core claim at circuit level)."""
        assert metrics["hidap"].wl_meters < metrics["indeda"].wl_meters


class TestSuiteRunner:
    def test_subset_suite(self):
        result = run_suite(scale="tiny", designs=["c1"],
                           flows=("indeda", "handfp-strip"),
                           effort=Effort.FAST)
        assert len(result.rows) == 2
        assert {r.flow for r in result.rows} == {"indeda", "handfp"}
        handfp_rows = [r for r in result.rows if r.flow == "handfp"]
        assert handfp_rows[0].wl_norm == pytest.approx(1.0)
        assert "c1" in result.design_info

    def test_tables_render_from_suite(self):
        result = run_suite(scale="tiny", designs=["c1"],
                           flows=("indeda", "handfp-strip"),
                           effort=Effort.FAST)
        t2 = format_table2(result.rows)
        t3 = format_table3(result.rows, result.design_info)
        assert "indeda" in t2
        assert "c1" in t3
