"""Tests for the routing grid and congestion estimation."""

import numpy as np
import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.rect import Rect
from repro.placement.stdcell import place_cells
from repro.routing.congestion import estimate_congestion
from repro.routing.grid import MACRO_POROSITY, RoutingGrid


class TestGrid:
    def test_uniform_capacity_without_macros(self):
        grid = RoutingGrid.build(Rect(0, 0, 32, 32), [], bins=8)
        assert np.allclose(grid.capacity_h, grid.capacity_h[0, 0])
        assert grid.capacity_total() > 0

    def test_macro_blocks_capacity(self):
        die = Rect(0, 0, 32, 32)
        free = RoutingGrid.build(die, [], bins=8)
        blocked = RoutingGrid.build(die, [Rect(0, 0, 16, 16)], bins=8)
        # Fully covered g-cells keep only the porosity fraction.
        assert blocked.capacity_h[0, 0] \
            == pytest.approx(free.capacity_h[0, 0] * MACRO_POROSITY)
        # Far corner unaffected.
        assert blocked.capacity_h[7, 7] \
            == pytest.approx(free.capacity_h[7, 7])

    def test_l_route_demand_conservation(self):
        grid = RoutingGrid.build(Rect(0, 0, 32, 32), [], bins=8)
        grid.add_l_route(2, 2, 30, 30, weight=1.0)
        # Both L routes get half a track across the spanned g-cells.
        total = grid.demand_h.sum() + grid.demand_v.sum()
        # Each L covers 8 horizontal + 8 vertical g-cells at 0.5.
        assert total == pytest.approx(2 * (8 * 0.5 + 8 * 0.5))

    def test_same_bin_route_adds_nothing(self):
        grid = RoutingGrid.build(Rect(0, 0, 32, 32), [], bins=8)
        grid.add_l_route(1, 1, 2, 2, weight=1.0)
        assert grid.demand_h.sum() + grid.demand_v.sum() == 0

    def test_overflow_math(self):
        grid = RoutingGrid.build(Rect(0, 0, 8, 8), [], bins=2)
        cap = grid.capacity_h[0, 0]
        grid.demand_h[0, 0] = cap + 3.0
        assert grid.overflow_total() == pytest.approx(3.0)
        assert grid.overflowed_gcell_fraction() == pytest.approx(0.25)

    def test_utilization_map_shape(self):
        grid = RoutingGrid.build(Rect(0, 0, 8, 8), [], bins=4)
        util = grid.utilization_map()
        assert util.shape == (4, 4)
        assert (util >= 0).all()


class TestCongestion:
    def test_congestion_of_placed_design(self, two_stage_flat,
                                         two_stage_design):
        die = Rect(0, 0, 60, 30)
        placement = MacroPlacement("two_stage", "t", die)
        placement.block_rects[""] = die
        mem_a = two_stage_flat.cell_by_path("sa/mem")
        mem_b = two_stage_flat.cell_by_path("sb/mem")
        placement.macros[mem_a.index] = PlacedMacro(
            mem_a.index, mem_a.path, Rect(5, 12, 6, 4))
        placement.macros[mem_b.index] = PlacedMacro(
            mem_b.index, mem_b.path, Rect(45, 12, 6, 4))
        ports = assign_port_positions(two_stage_design, die)
        cells = place_cells(two_stage_flat, placement, ports)
        report = estimate_congestion(two_stage_flat, placement, cells,
                                     ports, bins=16)
        assert report.grc_percent >= 0
        assert 0 <= report.hot_fraction <= 1
        assert report.grid.demand_h.sum() > 0

    def test_clumped_layout_more_congested(self, tiny_c1_flat, tiny_c1):
        """Macros piled into a corner blob congest more than the same
        macros spread on a uniform grid over the whole die."""
        import math
        design, _truth, die_w, die_h = tiny_c1
        die = Rect(0, 0, die_w, die_h)
        ports = assign_port_positions(design, die)
        macros = tiny_c1_flat.macros()
        n = len(macros)
        cols = int(math.ceil(math.sqrt(n)))

        def build(clump: bool) -> MacroPlacement:
            placement = MacroPlacement("c1", "t", die)
            placement.block_rects[""] = die
            if clump:
                x = y = 0.0
                row_h = 0.0
                span = die_w * 0.35
                for cell in macros:
                    w, h = cell.ctype.width, cell.ctype.height
                    if x + w > span and x > 0:
                        x = 0.0
                        y += row_h
                        row_h = 0.0
                    placement.macros[cell.index] = PlacedMacro(
                        cell.index, cell.path, Rect(x, y, w, h))
                    x += w
                    row_h = max(row_h, h)
            else:
                pitch_x = die_w / cols
                pitch_y = die_h / cols
                for k, cell in enumerate(macros):
                    w, h = cell.ctype.width, cell.ctype.height
                    cx = (k % cols + 0.5) * pitch_x
                    cy = (k // cols + 0.5) * pitch_y
                    x = min(max(cx - w / 2, 0.0), die_w - w)
                    y = min(max(cy - h / 2, 0.0), die_h - h)
                    placement.macros[cell.index] = PlacedMacro(
                        cell.index, cell.path, Rect(x, y, w, h))
            return placement

        clumped = build(True)
        spread = build(False)
        cells_c = place_cells(tiny_c1_flat, clumped, ports)
        cells_s = place_cells(tiny_c1_flat, spread, ports)
        grc_c = estimate_congestion(tiny_c1_flat, clumped, cells_c,
                                    ports).grc_percent
        grc_s = estimate_congestion(tiny_c1_flat, spread, cells_s,
                                    ports).grc_percent
        assert grc_c > grc_s
