"""Tests for corner placement and the flipping post-pass."""

import pytest

from repro.core.corners import corner_candidates, place_single_macro
from repro.core.flipping import flip_macros
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect


class TestCornerCandidates:
    def test_four_corners(self):
        region = Rect(0, 0, 10, 10)
        rects = corner_candidates(region, 3, 2)
        assert len(rects) == 4
        for rect in rects:
            assert region.contains_rect(rect)
        corners = {(r.x, r.y) for r in rects}
        assert (0, 0) in corners
        assert (7, 8) in corners

    def test_oversized_centered(self):
        region = Rect(0, 0, 4, 4)
        rects = corner_candidates(region, 6, 2)
        assert len(rects) == 1
        assert rects[0].center.x == pytest.approx(region.center.x)


class TestPlaceSingleMacro:
    def test_attracted_to_nearest_corner(self):
        region = Rect(0, 0, 10, 10)
        rect, orient = place_single_macro(
            region, 2, 2, [(Point(20, 20), 1.0)])
        assert (rect.x, rect.y) == (8, 8)

    def test_rotation_chosen_when_it_fits_better(self):
        region = Rect(0, 0, 3, 12)       # slim column
        rect, orient = place_single_macro(
            region, 8, 2, [(Point(0, 0), 1.0)])
        assert orient is Orientation.E
        assert region.contains_rect(rect)

    def test_no_attraction_prefers_center(self):
        region = Rect(0, 0, 10, 10)
        rect, _orient = place_single_macro(region, 2, 2, [])
        # All corners tie by symmetry; the result must be a corner and
        # the call must not crash.
        assert region.contains_rect(rect)

    def test_contained_beats_closer_overflow(self):
        """An in-region option always beats an out-of-region one."""
        region = Rect(0, 0, 10, 5)
        rect, _ = place_single_macro(region, 4, 4,
                                     [(Point(5, 100), 1.0)])
        assert region.contains_rect(rect)


def _macro_placement(flat):
    """Place the two macros of the two-stage design manually."""
    placement = MacroPlacement("two_stage", "test",
                               Rect(0, 0, 100, 40))
    placement.block_rects[""] = placement.die
    mem_a = flat.cell_by_path("sa/mem")
    mem_b = flat.cell_by_path("sb/mem")
    placement.macros[mem_a.index] = PlacedMacro(
        mem_a.index, mem_a.path, Rect(10, 10, 6, 4))
    placement.macros[mem_b.index] = PlacedMacro(
        mem_b.index, mem_b.path, Rect(60, 10, 6, 4))
    placement.block_rects["sa"] = Rect(0, 0, 50, 40)
    placement.block_rects["sb"] = Rect(50, 0, 50, 40)
    return placement


class TestFlipping:
    def test_flip_reduces_or_keeps_hpwl(self, two_stage_flat):
        placement = _macro_placement(two_stage_flat)

        def total_macro_hpwl():
            from repro.core.flipping import _collect_nets, _net_hpwl
            nets = _collect_nets(two_stage_flat, placement, {})
            return sum(_net_hpwl(fn, two_stage_flat, placement)
                       for fn in nets)

        before = total_macro_hpwl()
        flips = flip_macros(two_stage_flat, placement)
        after = total_macro_hpwl()
        assert after <= before + 1e-9
        assert flips >= 0

    def test_footprints_unchanged(self, two_stage_flat):
        placement = _macro_placement(two_stage_flat)
        rects_before = {i: p.rect for i, p in placement.macros.items()}
        flip_macros(two_stage_flat, placement)
        for i, placed in placement.macros.items():
            assert placed.rect == rects_before[i]
            assert not placed.orientation.swaps_sides

    def test_fixpoint(self, two_stage_flat):
        """A second run changes nothing."""
        placement = _macro_placement(two_stage_flat)
        flip_macros(two_stage_flat, placement)
        orients = {i: p.orientation for i, p in placement.macros.items()}
        again = flip_macros(two_stage_flat, placement)
        assert again == 0
        assert orients == {i: p.orientation
                           for i, p in placement.macros.items()}

    def test_pin_positions_respect_orientation(self, two_stage_flat):
        placement = _macro_placement(two_stage_flat)
        mem_a = two_stage_flat.cell_by_path("sa/mem")
        placed = placement.macros[mem_a.index]
        placed.orientation = Orientation.N
        west = placed.pin_position(two_stage_flat, "din", 0)
        placed.orientation = Orientation.FN
        east = placed.pin_position(two_stage_flat, "din", 0)
        # Mirroring about Y moves a west-edge pin to the east edge.
        assert west.x == pytest.approx(placed.rect.x)
        assert east.x == pytest.approx(placed.rect.x2)
