"""Cross-backend equivalence: the numpy referee reproduces the python
oracle bit-for-bit (and therefore row-for-row after rounding)."""

import random

import numpy as np
import pytest

from repro.api import get_flow
from repro.api.prepared import prepare_suite_design
from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.api import evaluate_placement
from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.cost import CostModel
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect
from repro.metrics import get_backend
from repro.netlist.flatten import FlatNet
from repro.placement.cluster import clustered_for
from repro.placement.hpwl import hpwl_reference, hpwl_report
from repro.placement.stdcell import (
    CellPlacement,
    PlacerConfig,
    place_cells,
)
from repro.routing.congestion import (
    congestion_reference,
    estimate_congestion,
)
from repro.shapecurve.curve import ShapeCurve
from repro.timing.sta import analyze_timing, analyze_timing_reference

SUITE_DESIGNS = ("c1", "c2", "c3", "c4", "c5")


def _assert_hpwl_identical(flat, placement, cells, ports):
    ref = hpwl_reference(flat, placement, cells, ports)
    new = hpwl_report(flat, placement, cells, ports, backend="numpy")
    assert new.total_units == ref.total_units
    assert new.n_nets == ref.n_nets
    assert new.macro_net_units == ref.macro_net_units
    return ref


def _assert_congestion_identical(flat, placement, cells, ports):
    ref = congestion_reference(flat, placement, cells, ports)
    new = estimate_congestion(flat, placement, cells, ports,
                              backend="numpy")
    assert np.array_equal(ref.grid.demand_h, new.grid.demand_h)
    assert np.array_equal(ref.grid.demand_v, new.grid.demand_v)
    assert new.grc_percent == ref.grc_percent
    assert new.hot_fraction == ref.hot_fraction
    return ref


def _assert_stdcell_identical(flat, placement, ports):
    """Assembled systems and solved placements match bit for bit."""
    clustered = clustered_for(flat)
    config = PlacerConfig()
    ref = get_backend("python").stdcell_system(flat, placement, ports,
                                               config, clustered)
    new = get_backend("numpy").stdcell_system(flat, placement, ports,
                                              config, clustered)
    assert ref[0].shape == new[0].shape
    assert np.array_equal(ref[0].indptr, new[0].indptr)
    assert np.array_equal(ref[0].indices, new[0].indices)
    assert np.array_equal(ref[0].data, new[0].data)
    assert np.array_equal(ref[1], new[1])       # bx
    assert np.array_equal(ref[2], new[2])       # by
    cells_ref = place_cells(flat, placement, ports, backend="python")
    cells_new = place_cells(flat, placement, ports, backend="numpy")
    assert np.array_equal(cells_ref.x, cells_new.x)
    assert np.array_equal(cells_ref.y, cells_new.y)
    return cells_new


def _assert_timing_identical(flat, gseq, placement, cells, ports,
                             clock_period=None):
    ref = analyze_timing_reference(flat, gseq, placement, cells, ports,
                                   clock_period=clock_period)
    new = analyze_timing(flat, gseq, placement, cells, ports,
                         clock_period=clock_period, backend="numpy")
    assert new.clock_period == ref.clock_period
    assert new.wns == ref.wns
    assert new.tns == ref.tns
    assert new.n_paths == ref.n_paths
    assert new.n_failing == ref.n_failing
    assert new.worst_edge == ref.worst_edge
    return ref


class TestSuiteRows:
    """Satellite: numpy vs python referee on c1..c5 placements."""

    @pytest.mark.parametrize("name", SUITE_DESIGNS)
    def test_rows_identical_after_rounding(self, name):
        prepared = prepare_suite_design(name, "tiny")
        placement = get_flow("indeda", seed=1).place(prepared)
        rows = {}
        for backend in ("python", "numpy"):
            m = evaluate_placement(prepared.flat, placement,
                                   prepared.gseq, backend=backend)
            rows[backend] = (m.design, m.flow,
                             round(m.wl_meters, 9),
                             round(m.grc_percent, 9),
                             round(m.wns_percent, 9),
                             round(m.tns, 9))
            assert m.eval_counters["referee_backend"] == backend
        assert rows["python"] == rows["numpy"]

    @pytest.mark.parametrize("name", SUITE_DESIGNS[:2])
    def test_kernels_bit_identical(self, name):
        prepared = prepare_suite_design(name, "tiny")
        flat = prepared.flat
        placement = get_flow("indeda", seed=1).place(prepared)
        ports = assign_port_positions(flat.design, placement.die)
        cells = place_cells(flat, placement, ports)
        _assert_hpwl_identical(flat, placement, cells, ports)
        _assert_congestion_identical(flat, placement, cells, ports)

    @pytest.mark.parametrize("name", SUITE_DESIGNS)
    def test_stdcell_and_timing_bit_identical(self, name):
        """The PR 4 kernels on every suite design's real placement."""
        prepared = prepare_suite_design(name, "tiny")
        flat = prepared.flat
        placement = get_flow("indeda", seed=1).place(prepared)
        ports = assign_port_positions(flat.design, placement.die)
        cells = _assert_stdcell_identical(flat, placement, ports)
        _assert_timing_identical(flat, prepared.gseq, placement, cells,
                                 ports)
        # A tight clock exercises the failing-path accumulations too.
        _assert_timing_identical(flat, prepared.gseq, placement, cells,
                                 ports, clock_period=1e-3)


class TestRandomizedPlacements:
    """Property-style sweep over randomly perturbed designs/placements."""

    def _random_context(self, flat, die_w, die_h, rng):
        die = Rect(0.0, 0.0, die_w, die_h)
        placement = MacroPlacement(design_name=flat.design.name,
                                   flow_name="rand", die=die)
        orientations = list(Orientation)
        for cell in flat.macros():
            if rng.random() < 0.15:     # some macros stay unplaced
                continue
            w = cell.ctype.width
            h = cell.ctype.height
            placement.macros[cell.index] = PlacedMacro(
                cell.index, cell.path,
                Rect(rng.uniform(-2.0, die_w - w),
                     rng.uniform(-2.0, die_h - h), w, h),
                orientation=rng.choice(orientations))
        ports = assign_port_positions(flat.design, die)
        ports = {name: pos for name, pos in ports.items()
                 if rng.random() > 0.1}
        return placement, ports

    def test_random_placements_identical(self, tiny_c1_flat, tiny_c1):
        _design, _truth, die_w, die_h = tiny_c1
        flat = tiny_c1_flat
        die = Rect(0.0, 0.0, die_w, die_h)
        base_placement = MacroPlacement(design_name=flat.design.name,
                                        flow_name="seed", die=die)
        for k, cell in enumerate(flat.macros()):
            base_placement.macros[cell.index] = PlacedMacro(
                cell.index, cell.path,
                Rect(1.0 + (3.0 * k) % max(die_w - 8.0, 1.0),
                     1.0 + (5.0 * k) % max(die_h - 8.0, 1.0),
                     cell.ctype.width, cell.ctype.height))
        ports0 = assign_port_positions(flat.design, die)
        base_cells = place_cells(flat, base_placement, ports0)

        rng = random.Random(20260729)
        np_rng = np.random.default_rng(20260729)
        for _trial in range(6):
            placement, ports = self._random_context(flat, die_w, die_h,
                                                    rng)
            # Perturb cluster positions instead of re-running the
            # quadratic placer: the kernels only see coordinates.
            cells = CellPlacement(
                clustered=base_cells.clustered,
                x=base_cells.x + np_rng.normal(0.0, 4.0,
                                               base_cells.x.shape),
                y=base_cells.y + np_rng.normal(0.0, 4.0,
                                               base_cells.y.shape),
                die=die)
            _assert_hpwl_identical(flat, placement, cells, ports)
            _assert_congestion_identical(flat, placement, cells, ports)

    def test_random_stdcell_and_timing_identical(self, tiny_c1_flat,
                                                 tiny_c1):
        """Property sweep for the PR 4 kernels: random partial
        placements (unplaced macros, dropped ports, random
        orientations) keep both backends bit-identical."""
        from repro.hiergraph.gnet import build_gnet
        from repro.hiergraph.gseq import build_gseq

        _design, _truth, die_w, die_h = tiny_c1
        flat = tiny_c1_flat
        gseq = build_gseq(build_gnet(flat), flat)
        rng = random.Random(20260730)
        for _trial in range(4):
            placement, ports = self._random_context(flat, die_w, die_h,
                                                    rng)
            cells = _assert_stdcell_identical(flat, placement, ports)
            _assert_timing_identical(flat, gseq, placement, cells,
                                     ports)
            _assert_timing_identical(flat, gseq, placement, cells,
                                     ports, clock_period=0.5)


class TestDegenerateNets:
    """Satellite regression: zero/one-endpoint nets stay harmless."""

    def _context(self, two_stage_design):
        from repro.netlist.flatten import flatten

        flat = flatten(two_stage_design)
        die = Rect(0, 0, 40, 40)
        placement = MacroPlacement(design_name=flat.design.name,
                                   flow_name="degen", die=die)
        macros = flat.macros()
        # One macro is never placed: nets reaching only it degenerate.
        for cell in macros[1:]:
            placement.macros[cell.index] = PlacedMacro(
                cell.index, cell.path,
                Rect(4.0, 5.0, cell.ctype.width, cell.ctype.height))
        ports = assign_port_positions(flat.design, die)
        cells = place_cells(flat, placement, ports)
        # Hand-append degenerate nets of every flavour (flatten drops
        # these, but stress generators and by-hand designs can carry
        # them): empty, single-endpoint, unplaced-macro-only and
        # unknown-port-only nets.
        unplaced = macros[0].index
        std = next(c.index for c in flat.cells if not c.is_macro)
        for endpoints, top_ports in (
                ([], []),
                ([(std, "d", 0)], []),
                ([(unplaced, "din", 0), (unplaced, "dout", 0)], []),
                ([], [("nonexistent_port", 0)]),
                ([(std, "d", 0)], [("nonexistent_port", 0)])):
            flat.nets.append(FlatNet(len(flat.nets), "degen",
                                     endpoints=list(endpoints),
                                     top_ports=list(top_ports)))
        return flat, placement, cells, ports

    def test_both_backends_agree_and_stay_finite(self, two_stage_design):
        flat, placement, cells, ports = self._context(two_stage_design)
        wl = _assert_hpwl_identical(flat, placement, cells, ports)
        assert np.isfinite(wl.total_units)
        assert np.isfinite(wl.macro_net_units)
        congestion = _assert_congestion_identical(flat, placement, cells,
                                                  ports)
        assert np.isfinite(congestion.grc_percent)
        assert 0.0 <= congestion.hot_fraction <= 1.0

    def test_degenerate_nets_do_not_count(self, two_stage_design):
        flat, placement, cells, ports = self._context(two_stage_design)
        degen_start = len(flat.nets) - 5
        with_degen = hpwl_report(flat, placement, cells, ports)
        flat.nets = flat.nets[:degen_start]
        without = hpwl_report(flat, placement, cells, ports)
        assert with_degen.n_nets == without.n_nets
        assert with_degen.total_units == without.total_units


class TestDistanceKernel:
    def _random_model(self, rng, n_blocks, n_terminals, density,
                      backend):
        size = n_blocks + n_terminals
        affinity = [[0.0] * size for _ in range(size)]
        for i in range(size):
            for j in range(size):
                if i != j and rng.random() < density:
                    affinity[i][j] = rng.uniform(0.1, 3.0)
        blocks = [Block(i, f"b{i}",
                        ShapeCurve.for_rect(1.0 + i % 3, 2.0),
                        area_min=1.0, area_target=2.0)
                  for i in range(n_blocks)]
        terminals = [Terminal(index=n_blocks + t, name=f"t{t}",
                              pos=Point(rng.uniform(-5, 30),
                                        rng.uniform(-5, 30)))
                     for t in range(n_terminals)]
        model = CostModel(blocks, terminals, affinity, scale=7.3,
                          backend=backend)
        rects = {i: Rect(rng.uniform(0, 20), rng.uniform(0, 20),
                         rng.uniform(0.5, 6), rng.uniform(0.5, 6))
                 for i in range(n_blocks)}
        return model, rects

    @pytest.mark.parametrize("n_blocks,density", [
        (3, 1.0),      # below the vectorization threshold
        (14, 0.8),     # above it
        (25, 0.5),
    ])
    def test_backends_bit_identical(self, n_blocks, density):
        rng = random.Random(n_blocks * 1000 + int(density * 10))
        model_py, rects = self._random_model(rng, n_blocks, 3, density,
                                             "python")
        rng = random.Random(n_blocks * 1000 + int(density * 10))
        model_np, rects2 = self._random_model(rng, n_blocks, 3, density,
                                              "numpy")
        assert rects == rects2
        assert model_np.distance_term(rects) \
            == model_py.distance_term(rects)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_missing_center_raises_on_every_backend(self, backend):
        # Dense 14-block model -> well above the vectorization
        # threshold; a referenced block without a rect/center must be a
        # KeyError on both backends, never a silent (0, 0).
        rng = random.Random(5)
        model, rects = self._random_model(rng, 14, 2, 1.0, backend)
        missing = next(i for i, _j, _a in model.block_pairs)
        del rects[missing]
        with pytest.raises(KeyError):
            model.distance_term(rects)

    def test_cached_centers_equal_recomputed(self):
        rng = random.Random(99)
        model, rects = self._random_model(rng, 10, 2, 0.7, None)
        centers = {i: (r.x + r.w / 2.0, r.y + r.h / 2.0)
                   for i, r in rects.items()}
        assert model.distance_term(rects, centers=centers) \
            == model.distance_term(rects)


class TestCachedCenters:
    def test_budget_report_carries_centers(self):
        from repro.floorplan.budget import budgeted_layout
        from repro.slicing.polish import PolishExpression
        from repro.slicing.tree import (
            annotate_areas,
            annotate_curves,
            build_tree,
        )

        blocks = [Block(i, f"b{i}", ShapeCurve.for_rect(2.0, 2.0),
                        area_min=4.0, area_target=5.0)
                  for i in range(3)]
        root = build_tree(PolishExpression.initial(3))
        annotate_curves(root, [b.curve for b in blocks], 16)
        annotate_areas(root, [b.area_min for b in blocks],
                       [b.area_target for b in blocks])
        report = budgeted_layout(root, Rect(0, 0, 6, 6), blocks)
        assert set(report.leaf_centers) == set(report.leaf_rects)
        for block, (cx, cy) in report.leaf_centers.items():
            center = report.leaf_rects[block].center
            assert cx == center.x and cy == center.y
