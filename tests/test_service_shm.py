"""Failure-path coverage for the shared-memory handoff layer.

The happy path — serial vs pooled row identity through a warm store —
lives in ``test_service_jobs.py``.  These tests pin down the edges the
analyzer's REP010-REP012 rules reason about statically:

* ``ShmHandoff.close()`` and ``SegmentOwner.unlink()`` are idempotent
  (double release must not raise or double-free);
* attaching a missing/renamed segment raises cleanly *and* leaves the
  monkeypatched ``resource_tracker.register`` restored and the pin
  registry untouched (the ``finally`` in ``_attach`` is load-bearing);
* double-attach of one segment reuses the pinned handle — exactly one
  ``_ATTACHED`` entry, same object back.
"""

import pickle

import numpy as np
import pytest

from multiprocessing import resource_tracker

from repro.service import shm as shm_mod
from repro.service.shm import SegmentOwner, ShmHandoff, _attach, export_entry


class FakeEntry:
    """Minimal stand-in for a CompiledDesignStore entry."""

    design_name = "fake-design"
    fingerprints = {"graph": "deadbeef"}

    def __init__(self):
        vals = np.arange(6, dtype=np.float64)
        mask = np.array([1, 0, 1], dtype=np.int64)
        self.arrays = {
            "core": ({"vals": vals}, {"n": 6}),
            "aux": ({"mask": mask}, {"rows": 3}),
        }

    def blob(self):
        return pickle.dumps({"design": self.design_name})


@pytest.fixture
def owner():
    owner = export_entry(FakeEntry())
    try:
        yield owner
    finally:
        # Drop any attachment this process made before unlinking.
        pinned = shm_mod._ATTACHED.pop(owner.handoff.segment, None)
        if pinned is not None:
            pinned.close()
        owner.unlink()


def test_export_round_trips_arrays_readonly(owner):
    handoff = owner.handoff
    shm = _attach(handoff.segment)
    groups = handoff.arrays(shm)
    assert set(groups) == {"core", "aux"}
    buffers, meta = groups["core"]
    assert meta == {"n": 6}
    assert np.array_equal(buffers["vals"], np.arange(6, dtype=np.float64))
    assert not buffers["vals"].flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        buffers["vals"][0] = 99.0
    blob = bytes(shm.buf[handoff.blob_offset:
                         handoff.blob_offset + handoff.blob_size])
    assert pickle.loads(blob) == {"design": "fake-design"}


def test_handoff_close_is_idempotent(owner):
    handoff = owner.handoff
    handoff._shm = _attach(handoff.segment)
    assert handoff.segment in shm_mod._ATTACHED
    handoff.close()
    assert handoff._shm is None
    assert handoff.segment not in shm_mod._ATTACHED
    # Second close is a no-op, not a double-free.
    handoff.close()
    assert handoff._shm is None


def test_owner_unlink_is_idempotent():
    owner = export_entry(FakeEntry())
    segment = owner.handoff.segment
    owner.unlink()
    assert owner.shm is None
    owner.unlink()  # must not raise
    # The segment is really gone: re-attach fails cleanly.
    with pytest.raises(FileNotFoundError):
        _attach(segment)
    assert segment not in shm_mod._ATTACHED


def test_missing_segment_attach_restores_tracker():
    original = resource_tracker.register
    name = "repro-test-no-such-segment"
    with pytest.raises(FileNotFoundError):
        _attach(name)
    # The finally in _attach must have put the real register back —
    # identity, not just equivalent behavior.
    assert resource_tracker.register is original
    # A failed attach must not leave a dangling pin.
    assert name not in shm_mod._ATTACHED


def test_double_attach_reuses_single_pin(owner):
    segment = owner.handoff.segment
    first = _attach(segment)
    before = len(shm_mod._ATTACHED)
    second = _attach(segment)
    assert second is first
    assert len(shm_mod._ATTACHED) == before
    assert shm_mod._ATTACHED[segment] is first


def test_handoff_pickles_without_attachment(owner):
    handoff = owner.handoff
    handoff._shm = _attach(handoff.segment)
    clone = pickle.loads(pickle.dumps(handoff))
    assert clone._shm is None
    assert clone.segment == handoff.segment
    assert clone.toc == handoff.toc
    assert isinstance(clone, ShmHandoff)


def test_owner_pairs_handoff_with_unlink_duty(owner):
    assert isinstance(owner, SegmentOwner)
    assert owner.shm.name == owner.handoff.segment
