"""Tests for target-area assignment (Sect. IV-C)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decluster import decluster
from repro.core.target_area import (
    assign_target_areas,
    glue_cells_of,
    scale_targets,
)
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.hierarchy import build_hierarchy


class TestAssignment:
    def test_area_conservation(self, tiny_c1_flat):
        """All glue area ends up absorbed by some block."""
        tree = build_hierarchy(tiny_c1_flat)
        gnet = build_gnet(tiny_c1_flat)
        result = decluster(tree.root, tiny_c1_flat, 0.01, 0.40)
        glue = glue_cells_of(result)
        glue_area = sum(tiny_c1_flat.cells[i].ctype.area for i in glue)
        absorbed = assign_target_areas(tiny_c1_flat, gnet, result)
        assert sum(absorbed) == pytest.approx(glue_area, rel=1e-6)
        assert all(a >= 0 for a in absorbed)

    def test_no_glue_no_absorption(self, two_stage_flat):
        tree = build_hierarchy(two_stage_flat)
        gnet = build_gnet(two_stage_flat)
        # Cut at root with huge min_area: both stages are blocks (they
        # hold macros), nothing is glue.
        result = decluster(tree.root, two_stage_flat, 0.9, 0.95)
        assert not glue_cells_of(result)
        absorbed = assign_target_areas(two_stage_flat, gnet, result)
        assert absorbed == [0.0] * len(result.blocks)

    def test_graph_proximity_wins(self, two_stage_flat):
        """Glue flops of sa must be absorbed by sa's macro block, not
        sb's."""
        tree = build_hierarchy(two_stage_flat)
        gnet = build_gnet(two_stage_flat)
        sa = tree.node("sa")
        result = decluster(sa, two_stage_flat, 0.01, 0.40)
        # One macro pseudo-block and 16 loose glue flops (area 16).
        absorbed = assign_target_areas(two_stage_flat, gnet, result)
        assert sum(absorbed) == pytest.approx(16.0)


class TestScaleTargets:
    def test_fills_region_exactly(self):
        targets = scale_targets([10, 20], [5, 5], region_area=80)
        assert sum(targets) == pytest.approx(80)

    def test_proportionality_when_growing(self):
        targets = scale_targets([10, 30], [0, 0], region_area=80)
        assert targets == pytest.approx([20, 60])

    def test_clamps_at_minimum_when_shrinking(self):
        targets = scale_targets([40, 10], [0, 50], region_area=60)
        assert targets[0] >= 40 - 1e-9
        assert sum(targets) == pytest.approx(60)

    def test_zero_raw_splits_evenly(self):
        targets = scale_targets([0, 0], [0, 0], region_area=10)
        assert targets == pytest.approx([5, 5])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=8),
           st.lists(st.floats(min_value=0.0, max_value=100), min_size=1,
                    max_size=8),
           st.floats(min_value=1.0, max_value=1e4))
    def test_total_always_matches_region(self, mins, absorbed, region):
        n = min(len(mins), len(absorbed))
        mins, absorbed = mins[:n], absorbed[:n]
        targets = scale_targets(mins, absorbed, region)
        assert len(targets) == n
        # Unless minimum areas alone exceed the region, the budget is
        # met exactly; otherwise targets settle at the minima.
        if sum(mins) <= region:
            assert sum(targets) == pytest.approx(region, rel=1e-6)
        assert all(t >= 0 for t in targets)
