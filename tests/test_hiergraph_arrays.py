"""Tests for array-name clustering."""

from repro.hiergraph.arrays import array_base, cluster_names


class TestArrayBase:
    def test_bracket_pattern(self):
        assert array_base("data_reg[7]") == ("data_reg", 7)

    def test_suffix_pattern(self):
        assert array_base("data_reg_7") == ("data_reg", 7)

    def test_plain_name(self):
        assert array_base("ctrl") == ("ctrl", 0)

    def test_bracket_takes_precedence(self):
        assert array_base("bank_2[3]") == ("bank_2", 3)

    def test_nested_indices(self):
        base, index = array_base("r[1][2]")
        assert index == 2
        assert base == "r[1]"


class TestClusterNames:
    def test_groups(self):
        groups = cluster_names(["a[0]", "a[1]", "b", "c_0", "c_1"])
        assert groups == {"a": ["a[0]", "a[1]"], "b": ["b"],
                          "c": ["c_0", "c_1"]}

    def test_preserves_order(self):
        groups = cluster_names(["x[1]", "x[0]"])
        assert groups["x"] == ["x[1]", "x[0]"]

    def test_empty(self):
        assert cluster_names([]) == {}
