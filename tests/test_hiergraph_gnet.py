"""Tests for the bit-level netlist graph Gnet."""


from repro.hiergraph.gnet import NodeKind, build_gnet


class TestGnet:
    def test_node_counts(self, two_stage_flat):
        gnet = build_gnet(two_stage_flat)
        counts = gnet.counts()
        assert counts[NodeKind.MACRO] == 2
        assert counts[NodeKind.FLOP] == 32
        assert counts[NodeKind.COMB] == 0
        assert counts[NodeKind.PORT] == 16        # 8-bit pin + 8-bit pout

    def test_edges_directed_driver_to_load(self, two_stage_flat):
        gnet = build_gnet(two_stage_flat)
        mem = two_stage_flat.cell_by_path("sa/mem")
        mem_node = gnet.node_of_cell[mem.index]
        # mem.dout drives out_reg.d pins: successors must be flops.
        assert gnet.succ[mem_node], "macro should drive something"
        for succ in gnet.succ[mem_node]:
            assert gnet.kinds[succ] is NodeKind.FLOP
        # mem.din is driven by in_reg flops.
        for pred in gnet.pred[mem_node]:
            assert gnet.kinds[pred] is NodeKind.FLOP

    def test_port_nodes_drive_inward(self, two_stage_flat):
        gnet = build_gnet(two_stage_flat)
        pin0 = gnet.node_of_port[("pin", 0)]
        assert gnet.succ[pin0], "input port bit must drive a flop"
        assert not gnet.pred[pin0]
        pout0 = gnet.node_of_port[("pout", 0)]
        assert gnet.pred[pout0]
        assert not gnet.succ[pout0]

    def test_no_duplicate_edges(self, tiny_c1_flat):
        gnet = build_gnet(tiny_c1_flat)
        for node in range(gnet.n_nodes):
            assert len(gnet.succ[node]) == len(set(gnet.succ[node]))

    def test_neighbors_undirected(self, two_stage_flat):
        gnet = build_gnet(two_stage_flat)
        mem = two_stage_flat.cell_by_path("sa/mem")
        node = gnet.node_of_cell[mem.index]
        nbrs = gnet.neighbors_undirected(node)
        assert set(nbrs) == set(gnet.succ[node]) | set(gnet.pred[node])

    def test_repr(self, two_stage_flat):
        text = repr(build_gnet(two_stage_flat))
        assert "macro=2" in text
