"""Tests for the cost model and the layout engine."""

import pytest

from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.budget import BudgetReport
from repro.floorplan.cost import CostModel, CostWeights
from repro.floorplan.engine import (
    LayoutConfig,
    LayoutProblem,
    generate_layout,
)
from repro.geometry.rect import Point, Rect
from repro.shapecurve.curve import ShapeCurve
from repro.slicing.anneal import AnnealConfig


def soft(i, name, area):
    return Block(i, name, ShapeCurve.trivial(), area, area)


class TestCostModel:
    def test_penalty_ordering(self):
        """Macro violations cost more than a_m, which cost more than
        a_t (the paper's severity order)."""
        weights = CostWeights()
        blocks = [soft(0, "a", 1)]
        model = CostModel(blocks, [], [[0.0]], weights)
        base = BudgetReport()
        t = BudgetReport(target_deficit=0.5)
        m = BudgetReport(min_deficit=0.5)
        g = BudgetReport(macro_deficit=0.5)
        assert model.penalty(base) == 1.0
        assert model.penalty(t) < model.penalty(m) < model.penalty(g)

    def test_distance_term(self):
        blocks = [soft(0, "a", 1), soft(1, "b", 1)]
        aff = [[0, 2.0], [2.0, 0]]
        model = CostModel(blocks, [], aff, scale=1.0)
        rects = {0: Rect(0, 0, 2, 2), 1: Rect(4, 0, 2, 2)}
        # centers (1,1) and (5,1): manhattan 4; affinity both ways = 4.
        assert model.distance_term(rects) == pytest.approx(16.0)

    def test_terminal_pairs(self):
        blocks = [soft(0, "a", 1)]
        term = Terminal(1, "p", Point(10, 0))
        aff = [[0, 3.0], [3.0, 0]]
        model = CostModel(blocks, [term], aff, scale=1.0)
        rects = {0: Rect(0, 0, 2, 2)}
        # center (1,1) to (10,0): 9 + 1 = 10; affinity 6.
        assert model.distance_term(rects) == pytest.approx(60.0)

    def test_matrix_size_checked(self):
        with pytest.raises(ValueError):
            CostModel([soft(0, "a", 1)], [], [[0, 0], [0, 0]])

    def test_zero_affinity_cost_still_ordered_by_penalty(self):
        blocks = [soft(0, "a", 1)]
        model = CostModel(blocks, [], [[0.0]])
        legal = BudgetReport(leaf_rects={0: Rect(0, 0, 1, 1)})
        illegal = BudgetReport(macro_deficit=1.0,
                               leaf_rects={0: Rect(0, 0, 1, 1)})
        assert model.cost(illegal) > model.cost(legal)


class TestGenerateLayout:
    def fast_config(self, seed=1):
        return LayoutConfig(seed=seed, anneal=AnnealConfig(
            seed=seed, moves_per_block=60, min_moves=120, max_moves=1200,
            moves_per_temperature=24, restarts=1))

    def test_single_block(self):
        problem = LayoutProblem(Rect(0, 0, 10, 10), [soft(0, "a", 100)],
                                [[0.0]])
        result = generate_layout(problem, self.fast_config())
        assert result.rects[0] == Rect(0, 0, 10, 10)
        assert result.is_legal

    def test_affinity_brings_blocks_together(self):
        """Three blocks where 0-2 have affinity: they end up closer
        than the unrelated pair on average."""
        blocks = [soft(0, "a", 30), soft(1, "b", 30), soft(2, "c", 30)]
        aff = [[0, 0, 8.0], [0, 0, 0], [8.0, 0, 0]]
        problem = LayoutProblem(Rect(0, 0, 9, 10), blocks, aff)
        result = generate_layout(problem, self.fast_config())
        d02 = result.rects[0].center.manhattan(result.rects[2].center)
        d01 = result.rects[0].center.manhattan(result.rects[1].center)
        assert d02 <= d01 + 1e-9

    def test_sliver_region_feasible(self):
        """Macros in a thin strip force the all-H stack: the seeded
        chain guarantees the engine finds it."""
        blocks = [Block(i, f"m{i}", ShapeCurve.for_rect(4, 4), 16, 20, 1)
                  for i in range(4)]
        problem = LayoutProblem(Rect(0, 0, 4.5, 40), blocks,
                                [[0.0] * 4 for _ in range(4)])
        result = generate_layout(problem, self.fast_config(seed=1))
        assert result.report.macro_deficit == pytest.approx(0.0)

    def test_terminal_pull(self):
        """A block attracted to a west terminal lands on the west."""
        blocks = [soft(0, "west", 25), soft(1, "free", 25)]
        term = Terminal(2, "pad", Point(0, 5))
        aff = [[0, 0, 50.0], [0, 0, 0], [50.0, 0, 0]]
        problem = LayoutProblem(Rect(0, 0, 10, 5), blocks, aff, [term])
        result = generate_layout(problem, self.fast_config())
        assert result.rects[0].center.x < result.rects[1].center.x

    def test_deterministic(self):
        blocks = [soft(i, f"b{i}", 10 + i) for i in range(5)]
        aff = [[1.0] * 5 for _ in range(5)]
        problem = LayoutProblem(Rect(0, 0, 10, 8), blocks, aff)
        a = generate_layout(problem, self.fast_config(seed=7))
        b = generate_layout(problem, self.fast_config(seed=7))
        assert a.rects == b.rects
        assert a.cost == b.cost
