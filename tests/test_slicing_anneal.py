"""Tests for the simulated-annealing engine."""

import pytest

from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import H, PolishExpression, V, is_operator


def count_h(expr: PolishExpression) -> int:
    return sum(1 for t in expr.tokens if t == H)


class TestAnnealer:
    def test_single_block_short_circuits(self):
        annealer = Annealer(lambda e: 0.0, AnnealConfig(seed=0))
        result = annealer.run(PolishExpression([0]))
        assert result.moves_tried == 0
        assert result.best.tokens == [0]

    def test_optimizes_simple_objective(self):
        """Cost = number of H operators: SA should find an all-V tree."""
        def cost(expr):
            return float(count_h(expr))

        annealer = Annealer(cost, AnnealConfig(seed=3))
        result = annealer.run(PolishExpression.initial(8))
        assert result.best_cost == 0.0
        assert result.best_cost <= result.initial_cost

    def test_deterministic_given_seed(self):
        def cost(expr):
            # An arbitrary but deterministic landscape.
            return sum((i + 1) * (1 if t == V else 2 if t == H else i)
                       for i, t in enumerate(expr.tokens))

        runs = [Annealer(cost, AnnealConfig(seed=9)).run(
            PolishExpression.initial(6)) for _ in range(2)]
        assert runs[0].best == runs[1].best
        assert runs[0].best_cost == runs[1].best_cost

    def test_different_seeds_explore(self):
        def cost(expr):
            return float(count_h(expr))

        a = Annealer(cost, AnnealConfig(seed=1)).run(
            PolishExpression.initial(6))
        b = Annealer(cost, AnnealConfig(seed=2)).run(
            PolishExpression.initial(6))
        # Same optimum even via different paths.
        assert a.best_cost == b.best_cost == 0.0

    def test_budget_scales_with_blocks(self):
        config = AnnealConfig(moves_per_block=100, min_moves=50,
                              max_moves=400)
        assert config.total_moves(1) == 100
        assert config.total_moves(3) == 300
        assert config.total_moves(100) == 400

    def test_adaptive_cooling_reaches_floor(self):
        config = AnnealConfig(min_temperature_ratio=1e-4,
                              moves_per_temperature=10)
        rate = config.cooling_rate(budget=1000)
        # After budget/moves_per_temperature steps, T ~ T0 * ratio.
        steps = 1000 / 10
        assert rate ** steps == pytest.approx(1e-4, rel=0.05)

    def test_static_cooling_respected(self):
        config = AnnealConfig(adaptive_cooling=False, cooling=0.91)
        assert config.cooling_rate(budget=12345) == 0.91

    def test_restarts_keep_best(self):
        def cost(expr):
            return float(count_h(expr))

        config = AnnealConfig(seed=5, restarts=3)
        result = Annealer(cost, config).run(PolishExpression.initial(7))
        assert result.best_cost == 0.0
