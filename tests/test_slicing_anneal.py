"""Tests for the simulated-annealing engine."""

import pytest

from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import H, PolishExpression, V


def count_h(expr: PolishExpression) -> int:
    return sum(1 for t in expr.tokens if t == H)


class TestAnnealer:
    def test_single_block_short_circuits(self):
        annealer = Annealer(lambda e: 0.0, AnnealConfig(seed=0))
        result = annealer.run(PolishExpression([0]))
        assert result.moves_tried == 0
        assert result.best.tokens == [0]

    def test_optimizes_simple_objective(self):
        """Cost = number of H operators: SA should find an all-V tree."""
        def cost(expr):
            return float(count_h(expr))

        annealer = Annealer(cost, AnnealConfig(seed=3))
        result = annealer.run(PolishExpression.initial(8))
        assert result.best_cost == 0.0
        assert result.best_cost <= result.initial_cost

    def test_deterministic_given_seed(self):
        def cost(expr):
            # An arbitrary but deterministic landscape.
            return sum((i + 1) * (1 if t == V else 2 if t == H else i)
                       for i, t in enumerate(expr.tokens))

        runs = [Annealer(cost, AnnealConfig(seed=9)).run(
            PolishExpression.initial(6)) for _ in range(2)]
        assert runs[0].best == runs[1].best
        assert runs[0].best_cost == runs[1].best_cost

    def test_different_seeds_explore(self):
        def cost(expr):
            return float(count_h(expr))

        a = Annealer(cost, AnnealConfig(seed=1)).run(
            PolishExpression.initial(6))
        b = Annealer(cost, AnnealConfig(seed=2)).run(
            PolishExpression.initial(6))
        # Same optimum even via different paths.
        assert a.best_cost == b.best_cost == 0.0

    def test_budget_scales_with_blocks(self):
        config = AnnealConfig(moves_per_block=100, min_moves=50,
                              max_moves=400)
        assert config.total_moves(1) == 100
        assert config.total_moves(3) == 300
        assert config.total_moves(100) == 400

    def test_adaptive_cooling_reaches_floor(self):
        config = AnnealConfig(min_temperature_ratio=1e-4,
                              moves_per_temperature=10)
        rate = config.cooling_rate(budget=1000)
        # After budget/moves_per_temperature steps, T ~ T0 * ratio.
        steps = 1000 / 10
        assert rate ** steps == pytest.approx(1e-4, rel=0.05)

    def test_static_cooling_respected(self):
        config = AnnealConfig(adaptive_cooling=False, cooling=0.91)
        assert config.cooling_rate(budget=12345) == 0.91

    def test_restarts_keep_best(self):
        def cost(expr):
            return float(count_h(expr))

        config = AnnealConfig(seed=5, restarts=3)
        result = Annealer(cost, config).run(PolishExpression.initial(7))
        assert result.best_cost == 0.0


class TestDeterminismContract:
    """Restart r depends only on seed + r; calibration is stream-isolated."""

    @staticmethod
    def landscape(expr):
        return sum((i + 1) * (1 if t == V else 2 if t == H else i)
                   for i, t in enumerate(expr.tokens))

    def test_restart_seed_derivation(self):
        from repro.slicing.anneal import RESTART_SEED_STRIDE
        config = AnnealConfig(seed=12)
        # Restart 0 keeps the configured seed (historical streams);
        # later restarts are spaced so they cannot collide with the
        # +1-per-level seeds HiDaPConfig.layout_config hands out.
        assert config.restart_seed(0) == 12
        assert config.restart_seed(3) == 12 + 3 * RESTART_SEED_STRIDE
        assert config.restart_seed(1) != AnnealConfig(
            seed=13).restart_seed(0)

    @staticmethod
    def _trace(initial, seed, probes=8, restarts=2):
        """Every expression the cost function sees, in order."""
        seen = []

        def spy(expr):
            seen.append(tuple(expr.tokens))
            return 0.0      # constant cost: acceptance never draws RNG

        annealer = Annealer(spy, AnnealConfig(
            seed=seed, min_moves=60, max_moves=60,
            calibration_probes=probes, restarts=restarts))
        annealer.run(initial)
        return seen

    def test_restart_r_equals_single_run_at_child_seed(self):
        """Restart r of a multi-restart run is the restart 0 of a
        single-restart run at restart_seed(r) — nothing restart 0
        consumed (calibration probes included) leaks into restart 1.
        The historical shared-RNG engine failed exactly this."""
        initial = PolishExpression([0, 1, V, 2, H, 3, V])
        child = AnnealConfig(seed=4).restart_seed(1)
        double = self._trace(initial, seed=4, restarts=2)
        # Each restart segment is 1 initial + probes + 60 main-loop
        # evaluations long.
        half = len(double) // 2
        assert double[:half] == self._trace(initial, seed=4, restarts=1)
        assert double[half:] == self._trace(initial, seed=child,
                                            restarts=1)

    def test_restarts_revisit_the_callers_initial(self):
        """Every restart re-anneals the caller's expression (the best
        known start), drawing diversity from its own stream; the
        historical engine abandoned it for a random shuffle after
        restart 0."""
        initial = PolishExpression([0, 1, V, 2, H, 3, V])
        trace = self._trace(initial, seed=4, restarts=3)
        segment = len(trace) // 3
        start = tuple(initial.tokens)
        for restart in range(3):
            assert trace[restart * segment] == start

    def test_calibration_probe_count_is_restart_local(self):
        """Changing the probe count re-randomizes each restart's own
        search but restart boundaries stay seed-derived: restart 1
        still equals a fresh run at its child seed with the same
        probe count."""
        initial = PolishExpression([0, 1, V, 2, H, 3, V])
        child = AnnealConfig(seed=4).restart_seed(1)
        for probes in (4, 24):
            double = self._trace(initial, seed=4, probes=probes)
            half = len(double) // 2
            assert double[half:] == self._trace(initial, seed=child,
                                                probes=probes,
                                                restarts=1)

    def test_more_restarts_never_hurt(self):
        """Appending restarts only adds searches: best cost is
        monotonically non-increasing in the restart count (restart 0 is
        unchanged because its stream does not depend on the others)."""
        initial = PolishExpression.initial(7)
        costs = [Annealer(self.landscape,
                          AnnealConfig(seed=9, restarts=r)).run(initial)
                 .best_cost
                 for r in (1, 2, 3)]
        assert costs[1] <= costs[0]
        assert costs[2] <= costs[1]

    def test_restarts_deterministic(self):
        initial = PolishExpression.initial(6)
        runs = [Annealer(self.landscape,
                         AnnealConfig(seed=2, restarts=3)).run(initial)
                for _ in range(2)]
        assert runs[0].best == runs[1].best
        assert runs[0].best_cost == runs[1].best_cost
