"""Tests for design validation."""

import pytest

from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.cells import DEFAULT_COMB, DEFAULT_FLOP
from repro.netlist.validate import assert_valid, validate_design


def errors(design):
    return [i for i in validate_design(design) if i.severity == "error"]


def warnings(design):
    return [i for i in validate_design(design) if i.severity == "warning"]


class TestValidate:
    def test_clean_design(self, two_stage_design):
        assert not errors(two_stage_design)
        assert_valid(two_stage_design)

    def test_suite_design_clean(self, tiny_c1):
        design, _truth, _w, _h = tiny_c1
        assert not errors(design)

    def test_multiple_drivers_detected(self):
        b = ModuleBuilder("m")
        b.input("a", 1).output("z", 1)
        g0 = b.instance(DEFAULT_COMB, "g0")
        g1 = b.instance(DEFAULT_COMB, "g1")
        b.connect("a", g0, "a0").connect("a", g0, "a1")
        b.connect("a", g1, "a0").connect("a", g1, "a1")
        b.connect("z", g0, "z")
        b.connect("z", g1, "z")          # second driver on z
        issues = errors(single_module_design(b))
        assert any("drivers" in i.message for i in issues)

    def test_undriven_loads_warn(self):
        b = ModuleBuilder("m")
        b.output("z", 1)
        b.wire("w", 1)
        g0 = b.instance(DEFAULT_COMB, "g0")
        b.connect("w", g0, "a0")
        b.connect("w", g0, "a1")         # two loads, no driver
        b.connect("z", g0, "z")
        issues = warnings(single_module_design(b))
        assert any("no driver" in i.message for i in issues)

    def test_pin_slice_overflow(self):
        b = ModuleBuilder("m")
        b.input("a", 8)
        f = b.instance(DEFAULT_FLOP, "f")
        b.connect("a", f, "d", width=2)   # d is 1 bit wide
        issues = errors(single_module_design(b))
        assert any("exceeds" in i.message for i in issues)

    def test_assert_valid_raises(self):
        b = ModuleBuilder("m")
        b.input("a", 8)
        f = b.instance(DEFAULT_FLOP, "f")
        b.connect("a", f, "d", width=2)
        with pytest.raises(ValueError, match="failed validation"):
            assert_valid(single_module_design(b))

    def test_issue_formatting(self):
        from repro.netlist.validate import ValidationIssue
        issue = ValidationIssue("error", "m.net", "boom")
        assert str(issue) == "[error] m.net: boom"
