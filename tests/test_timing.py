"""Tests for the delay model and STA."""

import pytest

from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.rect import Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.placement.stdcell import place_cells
from repro.timing.delay import DelayModel
from repro.timing.sta import analyze_timing, default_clock_period


class TestDelayModel:
    def test_monotone_in_distance(self):
        model = DelayModel()
        assert model.path_delay(0) < model.path_delay(10) \
            < model.path_delay(100)

    def test_zero_distance_is_logic_only(self):
        model = DelayModel(clk_to_q=0.1, logic_delay=0.5, setup=0.1,
                           wire_per_unit=1.0)
        assert model.path_delay(0) == pytest.approx(0.7)

    def test_negative_distance_clamped(self):
        model = DelayModel()
        assert model.path_delay(-5) == model.path_delay(0)


class TestClockPeriod:
    def test_scales_with_die(self):
        assert default_clock_period(100, 100) \
            < default_clock_period(500, 500)

    def test_flow_independent(self):
        assert default_clock_period(123, 77) \
            == default_clock_period(123, 77)


def _placement(flat, good: bool):
    die = Rect(0, 0, 60, 30)
    placement = MacroPlacement("two_stage", "t", die)
    placement.block_rects[""] = die
    mem_a = flat.cell_by_path("sa/mem")
    mem_b = flat.cell_by_path("sb/mem")
    ax, bx = (5, 45) if good else (45, 5)   # pin sits on the west wall
    placement.macros[mem_a.index] = PlacedMacro(
        mem_a.index, mem_a.path, Rect(ax, 13, 6, 4))
    placement.macros[mem_b.index] = PlacedMacro(
        mem_b.index, mem_b.path, Rect(bx, 13, 6, 4))
    return placement


class TestSta:
    def test_report_fields(self, two_stage_flat, two_stage_design):
        placement = _placement(two_stage_flat, good=True)
        ports = assign_port_positions(two_stage_design, placement.die)
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        cells = place_cells(two_stage_flat, placement, ports)
        report = analyze_timing(two_stage_flat, gseq, placement, cells,
                                ports)
        assert report.n_paths > 0
        assert report.tns <= 0
        assert report.wns_percent <= 0
        assert report.clock_period > 0

    def test_bad_placement_times_worse(self, two_stage_flat,
                                       two_stage_design):
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        results = {}
        for good in (True, False):
            placement = _placement(two_stage_flat, good)
            ports = assign_port_positions(two_stage_design,
                                          placement.die)
            cells = place_cells(two_stage_flat, placement, ports)
            results[good] = analyze_timing(
                two_stage_flat, gseq, placement, cells, ports,
                clock_period=1.0)
        assert results[False].wns <= results[True].wns
        assert results[False].tns <= results[True].tns

    def test_generous_clock_closes_timing(self, two_stage_flat,
                                          two_stage_design):
        placement = _placement(two_stage_flat, good=True)
        ports = assign_port_positions(two_stage_design, placement.die)
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        cells = place_cells(two_stage_flat, placement, ports)
        report = analyze_timing(two_stage_flat, gseq, placement, cells,
                                ports, clock_period=1e9)
        assert report.n_failing == 0
        assert report.tns == 0
        assert report.wns_percent == 0.0

    def test_impossible_clock_fails_everything(self, two_stage_flat,
                                               two_stage_design):
        placement = _placement(two_stage_flat, good=True)
        ports = assign_port_positions(two_stage_design, placement.die)
        gseq = build_gseq(build_gnet(two_stage_flat), two_stage_flat)
        cells = place_cells(two_stage_flat, placement, ports)
        report = analyze_timing(two_stage_flat, gseq, placement, cells,
                                ports, clock_period=1e-6)
        assert report.n_failing == report.n_paths
        assert report.worst_edge is not None
