"""Tests for the module builder API."""

import pytest

from repro.netlist.builder import ModuleBuilder, single_module_design
from repro.netlist.cells import DEFAULT_COMB, Direction
from repro.netlist.flatten import flatten


class TestBuilderBasics:
    def test_ports_and_wires(self):
        b = ModuleBuilder("m")
        b.input("a", 4).output("z", 4)
        b.wire("w", 4)
        module = b.build()
        assert module.ports["a"].direction is Direction.IN
        assert module.nets["w"].width == 4

    def test_connect_requires_declared_net(self):
        b = ModuleBuilder("m")
        inst = b.instance(DEFAULT_COMB)
        with pytest.raises(KeyError):
            b.connect("ghost", inst, "a0")

    def test_instance_auto_names_unique(self):
        b = ModuleBuilder("m")
        i1 = b.instance(DEFAULT_COMB)
        i2 = b.instance(DEFAULT_COMB)
        assert i1.name != i2.name


class TestRegisterArray:
    def test_flop_naming_pattern(self):
        b = ModuleBuilder("m")
        b.input("d", 4).output("q", 4)
        flops = b.register_array("r", 4, d="d", q="q")
        assert [f.name for f in flops] == ["r[0]", "r[1]", "r[2]", "r[3]"]

    def test_width_check(self):
        b = ModuleBuilder("m")
        b.input("d", 2).output("q", 4)
        with pytest.raises(ValueError):
            b.register_array("r", 4, d="d", q="q")

    def test_bit_connectivity(self):
        b = ModuleBuilder("m")
        b.input("d", 2).output("q", 2)
        b.register_array("r", 2, d="d", q="q")
        flat = flatten(single_module_design(b))
        # d[i] -> r[i].d and r[i].q -> q[i]: 4 bit nets with 1 cell each.
        assert len(flat.nets) == 4


class TestCombClouds:
    def test_cloud_drives_every_output_bit(self):
        b = ModuleBuilder("m")
        b.input("a", 4).output("z", 4)
        cells = b.comb_cloud("mix", ["a"], "z")
        assert len(cells) == 4
        design = single_module_design(b)
        flat = flatten(design)
        # Every z bit must have a driver.
        driven_bits = set()
        for net in flat.nets:
            for port, bit in net.top_ports:
                if port == "z":
                    driven_bits.add(bit)
        assert driven_bits == {0, 1, 2, 3}

    def test_cloud_extra_cells(self):
        b = ModuleBuilder("m")
        b.input("a", 4).output("z", 4)
        cells = b.comb_cloud("mix", ["a"], "z", n_cells=10)
        assert len(cells) == 10

    def test_cloud_needs_inputs(self):
        b = ModuleBuilder("m")
        b.output("z", 2)
        with pytest.raises(ValueError):
            b.comb_cloud("mix", [], "z")

    def test_comb_slice(self):
        b = ModuleBuilder("m")
        b.input("a", 2).output("z", 8)
        b.comb_slice("g", "a", "z", dst_lsb=4, width=2)
        design = single_module_design(b)
        flat = flatten(design)
        driven = set()
        for net in flat.nets:
            for port, bit in net.top_ports:
                if port == "z":
                    driven.add(bit)
        assert driven == {4, 5}

    def test_comb_slice_bounds(self):
        b = ModuleBuilder("m")
        b.input("a", 2).output("z", 4)
        with pytest.raises(ValueError):
            b.comb_slice("g", "a", "z", dst_lsb=3, width=2)
