"""Direct tests of the subsystem construction patterns."""

import random

import pytest

from repro.gen.macros import make_macro_library
from repro.gen.patterns import (
    BUILDERS,
)
from repro.gen.spec import SubsystemSpec
from repro.netlist.core import Design
from repro.netlist.flatten import flatten
from repro.netlist.stats import design_stats
from repro.netlist.validate import validate_design
from repro.netlist.builder import ModuleBuilder


def build_one(kind, macros=4, width=16, stages=3, filler=20):
    design = Design(f"test_{kind}")
    library = make_macro_library(5, width)
    spec = SubsystemSpec(kind=kind, name=f"{kind}_sub", macros=macros,
                         width=width, stages=stages,
                         filler_cells=filler)
    rng = random.Random(9)
    module = BUILDERS[kind](design, spec, library, rng)
    # Wrap in a top so ports exist for validation.
    top = ModuleBuilder("t")
    top.input("i", width)
    top.output("o", width)
    inst = top.instance(module, "u")
    top.connect_bus("i", inst, "din")
    top.connect_bus("o", inst, "dout")
    design.add_module(top.build())
    design.set_top("t")
    return design


class TestAllPatterns:
    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_macro_budget_met(self, kind):
        design = build_one(kind, macros=4)
        assert design_stats(design).macros == 4

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_no_validation_errors(self, kind):
        design = build_one(kind)
        errors = [i for i in validate_design(design)
                  if i.severity == "error"]
        assert not errors

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_zero_macros_supported(self, kind):
        design = build_one(kind, macros=0)
        assert design_stats(design).macros == 0

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_dataflow_reaches_output(self, kind):
        """An input-to-output path must exist through the subsystem
        (no disconnected output ports)."""
        design = build_one(kind)
        flat = flatten(design)
        driven_outputs = set()
        for net in flat.nets:
            for port, bit in net.top_ports:
                if port == "o" and net.endpoints:
                    driven_outputs.add(bit)
        assert driven_outputs, f"{kind}: chip output is undriven"


class TestPatternStructure:
    def test_pipeline_stage_modules(self):
        design = build_one("pipeline", macros=3, stages=3)
        stage_defs = [name for name in design.modules
                      if "stage" in name]
        assert len(stage_defs) == 3

    def test_memsys_bank_modules(self):
        design = build_one("memsys", macros=4, stages=4)
        banks = [name for name in design.modules if "bank" in name]
        assert len(banks) == 4

    def test_xbar_lane_modules(self):
        design = build_one("xbar", macros=2, stages=4)
        lanes = [name for name in design.modules if "lane" in name]
        assert len(lanes) == 4

    def test_dsp_rom_names(self):
        design = build_one("dsp", macros=3, stages=3)
        flat = flatten(design)
        rom_paths = [m.path for m in flat.macros()]
        assert all("rom" in path for path in rom_paths)

    def test_filler_increases_cells(self):
        small = design_stats(build_one("pipeline", filler=0)).cells
        big = design_stats(build_one("pipeline", filler=300)).cells
        assert big > small + 200
