"""Focused tests for RecursiveFloorplanner internals."""

import pytest

from repro.core.config import Effort, HiDaPConfig
from repro.core.dataflow import TerminalSpec
from repro.core.recursive import MAX_EXT_TERMINALS, RecursiveFloorplanner
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.shapecurve.generation import generate_shape_curves
from repro.shapecurve.curve import ShapeCurve


@pytest.fixture()
def floorplanner(two_stage_flat):
    flat = two_stage_flat
    tree = build_hierarchy(flat)
    gnet = build_gnet(flat)
    gseq = build_gseq(gnet, flat)

    def own_curves(node):
        return [ShapeCurve.for_rect(flat.cells[m].ctype.width,
                                    flat.cells[m].ctype.height)
                for m in node.own_macros]

    curves = {node.path: curve for node, curve in generate_shape_curves(
        tree.root, lambda n: n.children, own_curves).items()}
    config = HiDaPConfig(seed=1, effort=Effort.FAST)
    return RecursiveFloorplanner(
        flat=flat, gnet=gnet, gseq=gseq, tree=tree, curves=curves,
        config=config, port_positions={"pin": Point(0, 20),
                                       "pout": Point(60, 20)})


class TestTerminals:
    def test_port_terminals_built(self, floorplanner):
        terms = floorplanner._port_terminals()
        names = {t.name for t in terms}
        assert names == {"pin", "pout"}
        for t in terms:
            assert t.kind == "port"
            assert len(t.seq_nodes) == 1

    def test_cap_terminals_keeps_nearest(self, floorplanner):
        region = Rect(0, 0, 10, 10)
        terms = [TerminalSpec(f"t{i}", Point(float(i * 10), 0.0), [])
                 for i in range(MAX_EXT_TERMINALS + 10)]
        capped = floorplanner._cap_terminals(terms, region)
        assert len(capped) == MAX_EXT_TERMINALS
        # The nearest terminal to the region center survives.
        assert any(t.name == "t0" for t in capped)
        # The farthest is dropped.
        assert not any(t.name == f"t{MAX_EXT_TERMINALS + 9}"
                       for t in capped)

    def test_cap_terminals_noop_when_small(self, floorplanner):
        terms = [TerminalSpec("a", Point(0, 0), [])]
        assert floorplanner._cap_terminals(terms, Rect(0, 0, 1, 1)) \
            == terms


class TestCurveForSeed:
    def test_macro_seed_curve(self, floorplanner, two_stage_flat):
        from repro.core.decluster import BlockSeed
        mem = two_stage_flat.cell_by_path("sa/mem")
        seed = BlockSeed(name="sa/mem", macro_cell=mem.index)
        curve = floorplanner._curve_for_seed(seed)
        assert curve.feasible(6, 4)
        assert curve.feasible(4, 6)      # rotation included

    def test_node_seed_curve_inflated(self, floorplanner):
        from repro.core.decluster import BlockSeed
        node = floorplanner.tree.node("sa")
        seed = BlockSeed(name="sa", node=node)
        curve = floorplanner._curve_for_seed(seed)
        raw = floorplanner.curves["sa"]
        # Inflation adds whitespace: the min area grows by the factor.
        assert curve.min_area == pytest.approx(
            raw.min_area * floorplanner.config.curve_inflation, rel=1e-6)


class TestRunProducesConsistentState:
    def test_block_rects_nested(self, floorplanner):
        placement = floorplanner.run(Rect(0, 0, 40, 40))
        die = placement.block_rects[""]
        for path, rect in placement.block_rects.items():
            assert die.contains_rect(rect, tol=1e-6), path

    def test_flow_name_propagates(self, floorplanner):
        placement = floorplanner.run(Rect(0, 0, 40, 40),
                                     flow_name="custom")
        assert placement.flow_name == "custom"
