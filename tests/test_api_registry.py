"""Tests for the flow registry: registration, lookup, specs, errors."""

import pytest

from repro.api import (
    FlowError,
    IndEDAFlow,
    Placer,
    UnknownFlowError,
    available_flows,
    get_flow,
    parse_flow_spec,
    register_flow,
    unregister_flow,
)
from repro.cli import main
from repro.core.config import Effort
from repro.api import run_flow


class TestBuiltins:
    def test_builtin_flows_registered(self):
        flows = available_flows()
        for name in ("hidap", "hidap-best3", "indeda", "handfp",
                     "handfp-strip"):
            assert name in flows

    def test_get_flow_returns_placer(self):
        flow = get_flow("indeda")
        assert isinstance(flow, Placer)
        assert callable(flow.place)
        assert callable(flow.evaluate)

    def test_unknown_flow_error(self):
        with pytest.raises(UnknownFlowError) as excinfo:
            get_flow("magic")
        assert "magic" in str(excinfo.value)
        assert "indeda" in str(excinfo.value)     # lists what exists

    def test_unknown_flow_is_value_error(self):
        """Legacy callers catch ValueError; keep that contract."""
        with pytest.raises(ValueError):
            get_flow("magic")


class TestSpecParsing:
    def test_plain_name(self):
        assert parse_flow_spec("indeda") == ("indeda", {})

    def test_parameters(self):
        name, params = parse_flow_spec("hidap:lam=0.8,seed=3")
        assert name == "hidap"
        assert params == {"lam": 0.8, "seed": 3}

    def test_value_coercion(self):
        _name, params = parse_flow_spec(
            "hidap:lam=0.2,flipping=false,affinity_mode=pseudonet")
        assert params == {"lam": 0.2, "flipping": False,
                         "affinity_mode": "pseudonet"}

    def test_legacy_hidap_lambda_spelling(self):
        assert parse_flow_spec("hidap-l0.2") == ("hidap", {"lam": 0.2})

    def test_bad_parameter_rejected(self):
        with pytest.raises(FlowError):
            parse_flow_spec("hidap:lam")
        with pytest.raises(FlowError):
            parse_flow_spec("")

    def test_variant_configures_flow(self):
        flow = get_flow("hidap:lam=0.8")
        assert flow.config.lam == pytest.approx(0.8)

    def test_spec_overrides_defaults(self):
        flow = get_flow("hidap:lam=0.8", lam=0.3, seed=7)
        assert flow.config.lam == pytest.approx(0.8)
        assert flow.config.seed == 7

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FlowError):
            get_flow("indeda:warp_speed=9")

    def test_invalid_parameter_value_rejected(self):
        """Out-of-range values surface as FlowError, not raw errors."""
        with pytest.raises(FlowError):
            get_flow("hidap:lam=2.0")

    def test_split_flow_specs(self):
        from repro.api import split_flow_specs
        assert split_flow_specs("indeda,handfp") == ["indeda", "handfp"]
        assert split_flow_specs(
            "indeda,hidap:lam=0.2,flipping=false,handfp") == [
                "indeda", "hidap:lam=0.2,flipping=false", "handfp"]
        assert split_flow_specs("hidap:lam=0.2,indeda:lam=0.3") == [
            "hidap:lam=0.2", "indeda:lam=0.3"]
        with pytest.raises(FlowError):
            split_flow_specs("indeda,,handfp")

    def test_best3_accepts_lam_spec(self):
        """hidap-best3:lam=0.8 restricts the sweep to one λ."""
        flow = get_flow("hidap-best3:lam=0.8")
        assert flow.lambdas == (0.8,)
        assert get_flow("hidap-best3").lambdas == (0.2, 0.5, 0.8)


class TestRegistration:
    def test_reserved_characters_rejected(self):
        for bad in ("", "a:b", "a,b", "a=b"):
            with pytest.raises(FlowError):
                register_flow(bad, IndEDAFlow)

    def test_duplicate_rejected_without_overwrite(self):
        with pytest.raises(FlowError):
            register_flow("indeda", IndEDAFlow)

    def test_register_unregister_roundtrip(self):
        register_flow("tmp-flow", IndEDAFlow, description="temp")
        try:
            assert "tmp-flow" in available_flows()
        finally:
            unregister_flow("tmp-flow")
        assert "tmp-flow" not in available_flows()

    def test_defaults_filtered_by_factory_signature(self):
        """Factories need not accept seed/effort defaults."""
        class Minimal:
            name = "minimal"

            def place(self, prepared):
                raise NotImplementedError

            def evaluate(self, prepared, clock_period=None):
                raise NotImplementedError

        register_flow("tmp-minimal", lambda: Minimal())
        try:
            flow = get_flow("tmp-minimal", seed=3, effort=Effort.FAST)
            assert flow.name == "minimal"
        finally:
            unregister_flow("tmp-minimal")


class ThirdPartyFlow(IndEDAFlow):
    """A 'foreign' flow: registered without touching repro internals."""

    name = "thirdparty"


@pytest.fixture
def thirdparty_flow():
    register_flow("thirdparty", ThirdPartyFlow,
                  description="test-only flow", overwrite=True)
    yield
    unregister_flow("thirdparty")


class TestThirdPartyFlow:
    def test_runnable_via_run_flow(self, thirdparty_flow, tiny_c1_flat,
                                   tiny_c1):
        _design, truth, die_w, die_h = tiny_c1
        metrics = run_flow(tiny_c1_flat, truth, "thirdparty",
                           die_w, die_h)
        assert metrics.wl_meters > 0

    def test_runnable_via_cli(self, thirdparty_flow, capsys):
        assert main(["place", "c1", "--scale", "tiny", "--flow",
                     "thirdparty"]) == 0
        assert "macros placed" in capsys.readouterr().out

    def test_listed_by_cli_flows(self, thirdparty_flow, capsys):
        assert main(["flows"]) == 0
        out = capsys.readouterr().out
        assert "thirdparty" in out
        assert "hidap" in out


class TestCliErrors:
    def test_unknown_flow_is_reported_not_raised(self, capsys):
        assert main(["place", "c1", "--scale", "tiny", "--flow",
                     "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown flow" in err
        assert "hidap" in err          # the error lists alternatives

    def test_bad_flow_value_is_reported(self, capsys):
        assert main(["place", "c1", "--scale", "tiny", "--flow",
                     "hidap:lam=2.0"]) == 2
        assert "rejected parameters" in capsys.readouterr().err

    def test_suite_malformed_flow_spec_is_reported(self, capsys):
        assert main(["suite", "--scale", "tiny", "--designs", "c1",
                     "--flows", "hidap:lam"]) == 2
        assert "bad flow parameter" in capsys.readouterr().err

    def test_handfp_without_truth_is_reported(self, tmp_path, capsys):
        out = str(tmp_path / "d.json")
        main(["gen", "c1", "--scale", "tiny", "--out", out])
        capsys.readouterr()
        assert main(["place", out, "--flow", "handfp"]) == 2
        assert "ground truth" in capsys.readouterr().err
