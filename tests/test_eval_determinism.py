"""Determinism of the full referee and the best-of-three protocol."""


from repro.baselines.indeda import place_indeda
from repro.core.config import Effort
from repro.api import HIDAP_LAMBDAS, evaluate_placement, run_flow


class TestRefereeDeterminism:
    def test_evaluate_placement_reproducible(self, tiny_c1_flat,
                                             tiny_c1):
        _design, _truth, die_w, die_h = tiny_c1
        placement = place_indeda(tiny_c1_flat, die_w, die_h)
        a = evaluate_placement(tiny_c1_flat, placement)
        b = evaluate_placement(tiny_c1_flat, placement)
        assert a.wl_meters == b.wl_meters
        assert a.grc_percent == b.grc_percent
        assert a.wns_percent == b.wns_percent
        assert a.tns == b.tns

    def test_run_flow_seeded_reproducible(self, tiny_c1_flat, tiny_c1):
        _design, truth, die_w, die_h = tiny_c1
        a = run_flow(tiny_c1_flat, truth, "hidap-l0.5", die_w, die_h,
                     seed=7, effort=Effort.FAST)
        b = run_flow(tiny_c1_flat, truth, "hidap-l0.5", die_w, die_h,
                     seed=7, effort=Effort.FAST)
        assert a.wl_meters == b.wl_meters


class TestBestOfThree:
    def test_best3_no_worse_than_default_lambda(self, tiny_c1_flat,
                                                tiny_c1):
        """The paper's protocol: best WL over λ ∈ {0.2, 0.5, 0.8}."""
        _design, truth, die_w, die_h = tiny_c1
        best3 = run_flow(tiny_c1_flat, truth, "hidap-best3", die_w,
                         die_h, seed=1, effort=Effort.FAST)
        single = run_flow(tiny_c1_flat, truth, "hidap-l0.5", die_w,
                          die_h, seed=1, effort=Effort.FAST)
        assert best3.lam in HIDAP_LAMBDAS
        assert best3.wl_meters <= single.wl_meters + 1e-12
