"""Tests for the leaf-cell library."""

import pytest

from repro.netlist.cells import (
    CellKind,
    Direction,
    PinGeometry,
    PortDef,
    Side,
    comb_cell,
    flop_cell,
    macro_cell,
)


class TestPortDef:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            PortDef("p", Direction.IN, 0)

    def test_direction(self):
        assert Direction.IN.is_input
        assert not Direction.OUT.is_input


class TestCellTypes:
    def test_flop(self):
        flop = flop_cell()
        assert flop.is_sequential
        assert not flop.is_macro
        assert {p.name for p in flop.ports} == {"d", "q", "clk"}

    def test_comb(self):
        cell = comb_cell(n_inputs=3)
        ins = [p for p in cell.ports if p.direction is Direction.IN]
        assert len(ins) == 3
        assert cell.kind is CellKind.COMB

    def test_macro_requires_dimensions(self):
        with pytest.raises(ValueError):
            macro_cell("M", 0, 5, [PortDef("a", Direction.IN)])

    def test_macro_area(self):
        m = macro_cell("M", 4, 5, [PortDef("a", Direction.IN)])
        assert m.area == 20
        assert m.is_macro

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            macro_cell("M", 2, 2, [PortDef("a", Direction.IN),
                                   PortDef("a", Direction.OUT)])

    def test_port_lookup(self):
        flop = flop_cell()
        assert flop.port("d").direction is Direction.IN
        assert flop.has_port("q")
        assert not flop.has_port("zz")
        with pytest.raises(KeyError):
            flop.port("zz")


class TestPinGeometry:
    def side_macro(self, side):
        return macro_cell(
            "M", 10, 6, [PortDef("p", Direction.IN, 4)],
            pin_geometry={"p": PinGeometry(side, 0.5)})

    def test_west(self):
        x, y = self.side_macro(Side.WEST).pin_as_drawn("p", 0)
        assert x == 0.0
        assert 0 <= y <= 6

    def test_east(self):
        x, _y = self.side_macro(Side.EAST).pin_as_drawn("p", 0)
        assert x == 10.0

    def test_south_north(self):
        _x, y = self.side_macro(Side.SOUTH).pin_as_drawn("p", 0)
        assert y == 0.0
        _x, y = self.side_macro(Side.NORTH).pin_as_drawn("p", 0)
        assert y == 6.0

    def test_bits_spread_along_side(self):
        macro = self.side_macro(Side.WEST)
        ys = [macro.pin_as_drawn("p", bit)[1] for bit in range(4)]
        assert ys == sorted(ys)
        assert ys[0] < ys[-1]

    def test_default_geometry(self):
        macro = macro_cell("M", 10, 6, [PortDef("p", Direction.IN)])
        assert macro.pin_as_drawn("p") == (0.0, 3.0)

    def test_non_macro_raises(self):
        with pytest.raises(ValueError):
            flop_cell().pin_as_drawn("d")
