"""Tests for the referee backend registry, selection and observability."""

import pytest

from repro.api import FlowError, get_flow
from repro.core.config import HiDaPConfig
from repro.api import evaluate_placement
from repro.metrics import (
    MetricsBackendError,
    PythonBackend,
    RefereeBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.metrics.backends import _BACKENDS


class TestRegistry:
    def test_builtins_registered(self):
        assert "python" in available_backends()
        assert "numpy" in available_backends()

    def test_default_is_numpy(self):
        assert default_backend_name() == "numpy"
        assert get_backend().name == "numpy"
        assert get_backend(None).name == "numpy"

    def test_get_by_name(self):
        assert get_backend("python").name == "python"
        assert isinstance(get_backend("python"), PythonBackend)

    def test_backend_instances_pass_through(self):
        backend = PythonBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(MetricsBackendError, match="unknown referee"):
            get_backend("gpu-someday")

    def test_register_custom_and_overwrite_guard(self):
        class Custom(PythonBackend):
            name = "custom-test"

        try:
            register_backend(Custom())
            assert "custom-test" in available_backends()
            with pytest.raises(MetricsBackendError, match="already"):
                register_backend(Custom())
            register_backend(Custom(), overwrite=True)
        finally:
            _BACKENDS.pop("custom-test", None)

    def test_register_rejects_base_name(self):
        with pytest.raises(MetricsBackendError):
            register_backend(RefereeBackend())

    def test_partial_backend_inherits_reference_kernels(self, tiny_c1):
        """A backend registered before the stdcell/timing kernels
        existed (implementing only hpwl/congestion/affinity_distance)
        must keep evaluating: the base class falls back to the
        reference implementations."""
        from repro.api.prepared import PreparedDesign

        class Pr3Era(RefereeBackend):
            name = "pr3-era-test"

            def hpwl(self, flat, placement, cells, port_positions,
                     arrays=None, coords=None):
                from repro.placement.hpwl import hpwl_reference
                return hpwl_reference(flat, placement, cells,
                                      port_positions)

            def congestion(self, flat, placement, cells,
                           port_positions, bins=32, arrays=None,
                           coords=None):
                from repro.routing.congestion import congestion_reference
                return congestion_reference(flat, placement, cells,
                                            port_positions, bins=bins)

            def affinity_distance(self, pairs, centers):
                return PythonBackend().affinity_distance(pairs, centers)

        design, truth, die_w, die_h = tiny_c1
        prepared = PreparedDesign(design=design, die_w=die_w,
                                  die_h=die_h, truth=truth)
        try:
            register_backend(Pr3Era())
            placement = get_flow("indeda", seed=1).place(prepared)
            partial = evaluate_placement(prepared.flat, placement,
                                         prepared.gseq,
                                         backend="pr3-era-test")
            oracle = evaluate_placement(prepared.flat, placement,
                                        prepared.gseq, backend="python")
            assert partial.wl_meters == oracle.wl_meters
            assert partial.wns_percent == oracle.wns_percent
            assert partial.tns == oracle.tns
        finally:
            _BACKENDS.pop("pr3-era-test", None)

    def test_set_default_roundtrip(self):
        try:
            set_default_backend("python")
            assert default_backend_name() == "python"
            assert get_backend().name == "python"
        finally:
            set_default_backend("numpy")

    def test_set_default_rejects_unknown(self):
        with pytest.raises(MetricsBackendError):
            set_default_backend("not-a-backend")


class TestSelection:
    def test_hidap_config_validates_backend(self):
        assert HiDaPConfig(referee_backend="python").referee_backend \
            == "python"
        with pytest.raises(ValueError, match="referee backend"):
            HiDaPConfig(referee_backend="bogus")

    def test_config_threads_into_layout_config(self):
        config = HiDaPConfig(referee_backend="python")
        assert config.layout_config(3).metrics_backend == "python"
        assert HiDaPConfig().layout_config(3).metrics_backend is None

    def test_flow_spec_selects_backend(self):
        flow = get_flow("hidap:referee_backend=python")
        assert flow.referee_backend == "python"
        assert flow.config.referee_backend == "python"

    def test_flow_default_backend_is_registry_default(self):
        assert get_flow("hidap").referee_backend is None

    def test_baseline_flows_accept_backend(self):
        assert get_flow("indeda",
                        referee_backend="python").referee_backend \
            == "python"

    def test_unknown_backend_is_flow_error(self):
        with pytest.raises(FlowError):
            get_flow("indeda:referee_backend=bogus")
        with pytest.raises(FlowError):
            get_flow("hidap:referee_backend=bogus")


class TestObservability:
    @pytest.fixture(scope="class")
    def prepared(self, tiny_c1):
        from repro.api.prepared import PreparedDesign

        design, truth, die_w, die_h = tiny_c1
        return PreparedDesign(design=design, die_w=die_w, die_h=die_h,
                              truth=truth)

    def test_referee_counters_on_metrics(self, prepared):
        flow = get_flow("indeda", seed=1)
        metrics = flow.evaluate(prepared)
        counters = metrics.eval_counters
        assert counters["referee_backend"] == "numpy"
        for key in ("referee_stdcell_us", "referee_hpwl_us",
                    "referee_congestion_us", "referee_timing_us"):
            assert isinstance(counters[key], int)
            assert counters[key] >= 0

    def test_backend_name_follows_selection(self, prepared):
        flow = get_flow("indeda", seed=1, referee_backend="python")
        metrics = flow.evaluate(prepared)
        assert metrics.eval_counters["referee_backend"] == "python"

    def test_counters_sink_argument(self, prepared):
        placement = get_flow("indeda", seed=1).place(prepared)
        sink = {}
        metrics = evaluate_placement(prepared.flat, placement,
                                     prepared.gseq, counters=sink)
        assert sink["referee_backend"] == "numpy"
        assert metrics.eval_counters == sink

    def test_hidap_artifacts_carry_referee_counters(self, prepared):
        from repro.core.config import Effort

        flow = get_flow("hidap", seed=1, effort=Effort.FAST)
        flow.evaluate(prepared)
        counters = flow.artifacts.eval_counters
        assert counters["referee_backend"] == "numpy"
        assert "referee_hpwl_us" in counters
        # The annealing counters from the pipeline stages coexist.
        assert counters.get("cost_evals", 0) > 0

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_stdcell_and_timing_counters_both_backends(self, prepared,
                                                       backend):
        """Satellite: the PR 4 kernel stages are observable on both
        backends, in FlowMetrics and in RunArtifacts."""
        from repro.core.config import Effort

        flow = get_flow("hidap", seed=1, effort=Effort.FAST,
                        referee_backend=backend)
        metrics = flow.evaluate(prepared)
        for counters in (metrics.eval_counters,
                         flow.artifacts.eval_counters):
            assert counters["referee_backend"] == backend
            for key in ("referee_stdcell_us", "referee_timing_us"):
                assert isinstance(counters[key], int)
                assert counters[key] >= 0
