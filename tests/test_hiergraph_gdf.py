"""Tests for Gdf construction: block flow vs macro flow (paper Fig. 7)."""

import pytest

from repro.hiergraph.gdf import GdfNode, build_gdf
from repro.hiergraph.gseq import Gseq, SeqKind, SeqNode


def make_gseq(nodes, edges):
    """Hand-build a Gseq: nodes = (kind, name, bits), edges = (u, v, w)."""
    seq_nodes = []
    for i, (kind, name, bits) in enumerate(nodes):
        node = SeqNode(i, kind, name, bits, module_path=name.split("/")[0])
        seq_nodes.append(node)
    succ = [[] for _ in seq_nodes]
    pred = [[] for _ in seq_nodes]
    edge_bits = {}
    for u, v, w in edges:
        succ[u].append(v)
        pred[v].append(u)
        edge_bits[(u, v)] = w
    return Gseq(nodes=seq_nodes, succ=succ, pred=pred, edge_bits=edge_bits)


@pytest.fixture
def fig7_gseq():
    """A two-block system in the spirit of the paper's Fig. 7:

    block A: macro mA (32b) -> reg a1 (32b)
    glue:    reg g (16b)
    block B: reg b1 (32b) -> macro mB (32b)

    a1 -> g -> b1 plus a direct a1 -> b1 edge.
    """
    nodes = [
        (SeqKind.MACRO, "A/mA", 32),    # 0
        (SeqKind.REG, "A/a1", 32),      # 1
        (SeqKind.REG, "glue/g", 16),    # 2
        (SeqKind.REG, "B/b1", 32),      # 3
        (SeqKind.MACRO, "B/mB", 32),    # 4
    ]
    edges = [
        (0, 1, 32),
        (1, 2, 16),
        (2, 3, 16),
        (1, 3, 32),
        (3, 4, 32),
    ]
    return make_gseq(nodes, edges)


def fig7_groups():
    return [GdfNode(0, "A", "block", [0, 1]),
            GdfNode(1, "B", "block", [3, 4])]


class TestBlockFlow:
    def test_direct_and_glue_paths(self, fig7_gseq):
        gdf = build_gdf(fig7_gseq, fig7_groups())
        edge = gdf.edge(0, 1)
        assert edge is not None
        # Direct a1 -> b1: latency 1, width of a1 (32).
        # Through glue: a1 -> g -> b1: latency 2, width of g (16).
        assert edge.block_hist.bins == {1: 32, 2: 16}

    def test_no_reverse_flow(self, fig7_gseq):
        gdf = build_gdf(fig7_gseq, fig7_groups())
        assert gdf.edge(1, 0) is None

    def test_internal_edges_ignored(self, fig7_gseq):
        """mA -> a1 is inside block A: no self affinity."""
        gdf = build_gdf(fig7_gseq, fig7_groups())
        assert (0, 0) not in gdf.edges


class TestMacroFlow:
    def test_macro_paths_cross_registers(self, fig7_gseq):
        gdf = build_gdf(fig7_gseq, fig7_groups())
        edge = gdf.edge(0, 1)
        # mA -> a1 -> b1 -> mB: latency 3, predecessor b1 (32b); and
        # mA -> a1 -> g -> b1 -> mB: latency 4, predecessor b1 again.
        assert edge.macro_hist.bins == {3: 32}

    def test_macros_not_crossed(self):
        """A path that must pass through a macro is not discovered."""
        nodes = [
            (SeqKind.MACRO, "A/m1", 8),    # 0
            (SeqKind.MACRO, "X/mx", 8),    # 1 (its own block)
            (SeqKind.MACRO, "B/m2", 8),    # 2
        ]
        edges = [(0, 1, 8), (1, 2, 8)]
        gseq = make_gseq(nodes, edges)
        groups = [GdfNode(0, "A", "block", [0]),
                  GdfNode(1, "X", "block", [1]),
                  GdfNode(2, "B", "block", [2])]
        gdf = build_gdf(gseq, groups)
        assert gdf.edge(0, 1) is not None
        assert gdf.edge(0, 2) is None       # would require crossing mx


class TestPortsAndTerminals:
    def test_port_groups_get_edges(self):
        nodes = [
            (SeqKind.PORT, "pin", 16),     # 0
            (SeqKind.REG, "A/r", 16),      # 1
            (SeqKind.MACRO, "A/m", 16),    # 2
        ]
        edges = [(0, 1, 16), (1, 2, 16)]
        gseq = make_gseq(nodes, edges)
        groups = [GdfNode(0, "A", "block", [1, 2]),
                  GdfNode(1, "pin", "port", [0])]
        gdf = build_gdf(gseq, groups)
        edge = gdf.edge(1, 0)
        assert edge is not None
        assert edge.block_hist.bins == {1: 16}
        # Macro flow from the port: pin -> r -> m, latency 2.
        assert edge.macro_hist.bins == {2: 16}


class TestAffinity:
    def test_lambda_blend(self, fig7_gseq):
        gdf = build_gdf(fig7_gseq, fig7_groups())
        edge = gdf.edge(0, 1)
        block_score = edge.block_hist.score(1.0)     # 32 + 8 = 40
        macro_score = edge.macro_hist.score(1.0)     # 32/3
        assert edge.affinity(1.0, 1.0) == pytest.approx(block_score)
        assert edge.affinity(0.0, 1.0) == pytest.approx(macro_score)
        mid = edge.affinity(0.5, 1.0)
        assert mid == pytest.approx(0.5 * block_score + 0.5 * macro_score)

    def test_affinity_between_sums_directions(self, fig7_gseq):
        gdf = build_gdf(fig7_gseq, fig7_groups())
        forward = gdf.edge(0, 1).affinity(0.5, 1.0)
        assert gdf.affinity_between(0, 1, 0.5, 1.0) \
            == pytest.approx(forward)
        assert gdf.affinity_between(1, 0, 0.5, 1.0) \
            == pytest.approx(forward)


class TestMaxLatency:
    def test_deep_paths_cut(self):
        """Paths longer than max_latency are not discovered."""
        nodes = [(SeqKind.REG, f"g/r{i}", 8) for i in range(6)]
        nodes[0] = (SeqKind.REG, "A/a", 8)
        nodes[-1] = (SeqKind.REG, "B/b", 8)
        edges = [(i, i + 1, 8) for i in range(5)]
        gseq = make_gseq(nodes, edges)
        groups = [GdfNode(0, "A", "block", [0]),
                  GdfNode(1, "B", "block", [5])]
        full = build_gdf(gseq, groups, max_latency=16)
        assert full.edge(0, 1).block_hist.bins == {5: 8}
        cut = build_gdf(gseq, groups, max_latency=3)
        assert cut.edge(0, 1) is None

    def test_overlapping_groups_rejected(self, fig7_gseq):
        groups = [GdfNode(0, "A", "block", [0, 1]),
                  GdfNode(1, "B", "block", [1, 3])]
        with pytest.raises(ValueError, match="two groups"):
            build_gdf(fig7_gseq, groups)
