# Convenience targets for the RTL-aware macro-placement reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-benchmarks lint analyze smoke-api smoke-trace \
	smoke-service bench-suite bench-anneal bench-referee check flows

# Tier-1 verification: the full unit-test suite.
test:
	python -m pytest -x -q

# The figure/table reproductions alone (slow; CI runs them in a
# separate non-blocking job).
test-benchmarks:
	python -m pytest -q benchmarks

# Lint gate: ruff (config in pyproject.toml) when installed, a builtin
# fallback implementing the same selected rules otherwise (both read
# the identical rule set via tools/analyze/lintrules.py).
lint:
	python tools/lint.py

# Determinism & backend-contract static analyzer (rules REP001-REP012;
# see ROADMAP "Static analysis contracts").  Self-hosts over src/,
# benchmarks/ and tools/; per-file results are cached under .cache/
# keyed by content hash, so warm runs re-analyze only changed files.
# Exits 1 on any unbaselined finding or (--strict-suppressions) any
# stale noqa; the JSON report (findings + per-phase timings + cache
# hit/miss counts) is uploaded by CI next to BENCH_*.json.
# ANALYZE_FLAGS adds CLI flags (CI passes --format github for inline
# PR annotations).
analyze:
	python -m tools.analyze --strict-suppressions $(ANALYZE_FLAGS) \
	    --json-out benchmarks/artifacts/ANALYZE_findings.json

# One verification entry point for builders and CI (the ci.yml "check"
# job runs exactly this): lint, the repro-analyze gate, tier-1 tests
# (tests/ only, the benchmark reproductions are excluded for speed),
# the API smoke, and the referee-backend benchmark — bit-identity
# across backends is the hard gate there; the >= 3x speedup gate warns
# on loaded runners.
check:
	$(MAKE) lint
	$(MAKE) analyze
	python -m pytest -x -q tests
	$(MAKE) smoke-api
	$(MAKE) smoke-trace
	$(MAKE) smoke-service
	$(MAKE) bench-referee

# Fast smoke of the unified repro.api surface (registry, pipeline,
# parallel suite).
smoke-api:
	python -m pytest -q tests/test_api_registry.py \
	    tests/test_api_pipeline.py tests/test_api_suite.py

# Traced 2-worker suite smoke: exercises cross-process span
# collection end-to-end (two designs so the pool path actually runs)
# and leaves a Perfetto-loadable artifact for CI to upload.
smoke-trace:
	python -m repro.cli suite --scale tiny --designs c1,c2 \
	    --flows indeda,handfp-strip --effort fast --workers 2 \
	    --trace benchmarks/artifacts/TRACE_smoke.json
	python tools/trace_summary.py \
	    benchmarks/artifacts/TRACE_smoke.json --top 12

# Placement-service smoke: cold 2-worker suite against a fresh
# compiled-design store, then a traced warm run asserting zero
# worker-side prepare.* spans (workers attach shared memory instead),
# then a PlacementService submit/poll round-trip asserting
# bit-identical rows.
smoke-service:
	python tools/smoke_service.py

# Serial-vs-parallel-vs-store suite wall-clock (cold and warm store
# phases); writes benchmarks/artifacts/BENCH_suite.json.
bench-suite:
	python benchmarks/bench_suite_runtime.py

# Incremental-vs-full annealing cost evaluation; verifies bit-identical
# placements and writes benchmarks/artifacts/BENCH_anneal.json.
bench-anneal:
	python benchmarks/bench_anneal.py

# Python-vs-numpy referee backends (stdcell + HPWL + congestion +
# timing kernels on c1+c2); verifies bit-identical systems/reports/rows
# (hard failure) and a best-of-3 speedup (soft gate), and writes
# benchmarks/artifacts/BENCH_referee.json.
bench-referee:
	python benchmarks/bench_referee.py

# List every registered placement flow.
flows:
	python -m repro.cli flows
