# Convenience targets for the RTL-aware macro-placement reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke-api bench-suite flows

# Tier-1 verification: the full unit-test suite.
test:
	python -m pytest -x -q

# Fast smoke of the unified repro.api surface (registry, pipeline,
# parallel suite).
smoke-api:
	python -m pytest -q tests/test_api_registry.py \
	    tests/test_api_pipeline.py tests/test_api_suite.py

# Serial-vs-parallel suite wall-clock; writes
# benchmarks/artifacts/BENCH_suite.json.
bench-suite:
	python benchmarks/bench_suite_runtime.py

# List every registered placement flow.
flows:
	python -m repro.cli flows
