# Convenience targets for the RTL-aware macro-placement reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke-api bench-suite bench-anneal bench-referee check flows

# Tier-1 verification: the full unit-test suite.
test:
	python -m pytest -x -q

# One verification entry point for builders: tier-1 tests (tests/ only,
# the benchmark reproductions are excluded for speed), the API smoke,
# and the referee-backend benchmark (fails unless the numpy referee is
# >= 3x the python oracle and bit-identical).
check:
	python -m pytest -x -q tests
	$(MAKE) smoke-api
	$(MAKE) bench-referee

# Fast smoke of the unified repro.api surface (registry, pipeline,
# parallel suite).
smoke-api:
	python -m pytest -q tests/test_api_registry.py \
	    tests/test_api_pipeline.py tests/test_api_suite.py

# Serial-vs-parallel suite wall-clock; writes
# benchmarks/artifacts/BENCH_suite.json.
bench-suite:
	python benchmarks/bench_suite_runtime.py

# Incremental-vs-full annealing cost evaluation; verifies bit-identical
# placements and writes benchmarks/artifacts/BENCH_anneal.json.
bench-anneal:
	python benchmarks/bench_anneal.py

# Python-vs-numpy referee backends (HPWL + congestion kernels on
# c1+c2); verifies bit-identical reports and writes
# benchmarks/artifacts/BENCH_referee.json.
bench-referee:
	python benchmarks/bench_referee.py

# List every registered placement flow.
flows:
	python -m repro.cli flows
