"""Normalized Polish expressions for slicing floorplans.

A slicing floorplan over ``n`` blocks is a binary tree with the blocks at
the leaves and a cut direction at every internal node.  Wong & Liu encode
it as a postfix (Polish) expression over operand tokens (block indices)
and the two operators:

* ``V`` — vertical cut line: the two sub-floorplans sit side by side;
* ``H`` — horizontal cut line: the two sub-floorplans are stacked.

An expression is *valid* when every prefix contains strictly more
operands than operators (the balloting property) and *normalized* when no
two consecutive operators are equal, which makes the encoding of every
skewed slicing tree unique.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, Union

H = "H"
V = "V"
Token = Union[int, str]

_OPERATORS = (H, V)


def is_operator(token: Token) -> bool:
    return token == H or token == V


def other_operator(op: str) -> str:
    return V if op == H else H


class PolishExpression:
    """A normalized Polish expression over blocks ``0 .. n-1``.

    Instances are lightweight mutable wrappers around a token list; the
    annealer copies them when it needs snapshots.
    """

    __slots__ = ("tokens",)

    def __init__(self, tokens: Sequence[Token]):
        self.tokens: List[Token] = list(tokens)

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(cls, n_blocks: int,
                rng: random.Random = None) -> "PolishExpression":
        """A simple alternating-cut chain over the blocks.

        ``[0, 1, V, 2, H, 3, V, ...]`` — valid and normalized for any n.
        When an ``rng`` is given, the operand order is shuffled so that
        repeated searches explore different corners of the space.
        """
        if n_blocks < 1:
            raise ValueError("need at least one block")
        order = list(range(n_blocks))
        if rng is not None:
            rng.shuffle(order)
        tokens: List[Token] = [order[0]]
        op = V
        for block in order[1:]:
            tokens.append(block)
            tokens.append(op)
            op = other_operator(op)
        return cls(tokens)

    def copy(self) -> "PolishExpression":
        return PolishExpression(self.tokens)

    # -- inspection ---------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return sum(1 for t in self.tokens if not is_operator(t))

    def operands(self) -> List[int]:
        """Block indices in expression order."""
        return [t for t in self.tokens if not is_operator(t)]

    def operand_positions(self) -> List[int]:
        return [i for i, t in enumerate(self.tokens) if not is_operator(t)]

    def operator_positions(self) -> List[int]:
        return [i for i, t in enumerate(self.tokens) if is_operator(t)]

    def operator_chains(self) -> List[Tuple[int, int]]:
        """Maximal operator runs as (start, end) inclusive index pairs."""
        chains: List[Tuple[int, int]] = []
        i = 0
        n = len(self.tokens)
        while i < n:
            if is_operator(self.tokens[i]):
                j = i
                while j + 1 < n and is_operator(self.tokens[j + 1]):
                    j += 1
                chains.append((i, j))
                i = j + 1
            else:
                i += 1
        return chains

    def is_valid(self) -> bool:
        """Balloting property + exactly n-1 operators + normalization."""
        n_operands = 0
        n_operators = 0
        prev: Token = None
        for token in self.tokens:
            if is_operator(token):
                n_operators += 1
                if n_operators >= n_operands:
                    return False
                if prev == token:
                    return False          # not normalized
            else:
                n_operands += 1
            prev = token
        return n_operands >= 1 and n_operators == n_operands - 1

    def __eq__(self, other) -> bool:
        return (isinstance(other, PolishExpression)
                and self.tokens == other.tokens)

    def __hash__(self) -> int:
        return hash(tuple(self.tokens))

    def __repr__(self) -> str:
        return "PolishExpression(%s)" % " ".join(str(t) for t in self.tokens)
