"""Slicing trees built from Polish expressions.

The tree is the structural view the layout generator walks top-down; the
Polish expression is the flat view the annealer perturbs.  ``build_tree``
converts the latter into the former with a standard postfix evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from repro.memo import DEFAULT_MAX_ENTRIES, BoundedStore
from repro.shapecurve.curve import ComposeCache, ShapeCurve
from repro.slicing.polish import H, PolishExpression, is_operator


class SlicingNode:
    """A node of a slicing tree.

    Leaves carry a ``block`` index; internal nodes carry an operator
    (``'H'`` stacked / ``'V'`` side-by-side) and exactly two children.
    Composite block characterizations 〈Γ, a_m, a_t〉 are annotated onto
    nodes by the floorplan engine (see ``repro.floorplan``).

    ``signature`` — the subtree's own Polish token tuple — identifies
    the subtree structurally and is the cache key of the incremental
    evaluators (see :class:`SubtreeCache`); it is filled on demand by
    :func:`compute_signatures`.
    """

    __slots__ = ("op", "block", "left", "right",
                 "curve", "area_min", "area_target", "signature")

    def __init__(self, op: Optional[str] = None, block: Optional[int] = None,
                 left: "SlicingNode" = None, right: "SlicingNode" = None):
        self.op = op
        self.block = block
        self.left = left
        self.right = right
        # Composite characterization, filled by annotate_* helpers.
        self.curve: Optional[ShapeCurve] = None
        self.area_min: float = 0.0
        self.area_target: float = 0.0
        self.signature: Optional[Tuple] = None

    @property
    def is_leaf(self) -> bool:
        return self.block is not None

    def leaves(self) -> List["SlicingNode"]:
        """All leaf nodes, left to right."""
        if self.is_leaf:
            return [self]
        return self.left.leaves() + self.right.leaves()

    def blocks(self) -> List[int]:
        """Block indices at the leaves, left to right."""
        return [leaf.block for leaf in self.leaves()]

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"Leaf({self.block})"
        return f"Node({self.op}, {self.left!r}, {self.right!r})"


def build_tree(expr: PolishExpression) -> SlicingNode:
    """Build the slicing tree described by a valid Polish expression."""
    stack: List[SlicingNode] = []
    for token in expr.tokens:
        if is_operator(token):
            if len(stack) < 2:
                raise ValueError(f"invalid expression: {expr!r}")
            right = stack.pop()
            left = stack.pop()
            stack.append(SlicingNode(op=token, left=left, right=right))
        else:
            stack.append(SlicingNode(block=token))
    if len(stack) != 1:
        raise ValueError(f"invalid expression: {expr!r}")
    return stack[0]


def annotate_curves(root: SlicingNode, leaf_curves: List[ShapeCurve],
                    limit: int = None) -> ShapeCurve:
    """Fill composite shape curves bottom-up; returns the root curve.

    A vertical cut (`V`) puts children side by side so curves compose
    horizontally; a horizontal cut (`H`) stacks them so curves compose
    vertically.  ``limit`` caps the number of Pareto points kept per
    composition (smaller limits make annealing cost evaluation cheaper).
    """
    from repro.shapecurve.curve import MAX_POINTS
    if limit is None:
        limit = MAX_POINTS
    if root.is_leaf:
        root.curve = leaf_curves[root.block]
        return root.curve
    left = annotate_curves(root.left, leaf_curves, limit)
    right = annotate_curves(root.right, leaf_curves, limit)
    if root.op == H:
        root.curve = left.compose_vertical(right, limit)
    else:
        root.curve = left.compose_horizontal(right, limit)
    return root.curve


def annotate_areas(root: SlicingNode, minimum: List[float],
                   target: List[float]) -> None:
    """Fill composite a_m / a_t sums bottom-up (paper Sect. IV-E)."""
    if root.is_leaf:
        root.area_min = minimum[root.block]
        root.area_target = target[root.block]
        return
    annotate_areas(root.left, minimum, target)
    annotate_areas(root.right, minimum, target)
    root.area_min = root.left.area_min + root.right.area_min
    root.area_target = root.left.area_target + root.right.area_target


# -- incremental evaluation ---------------------------------------------------


def compute_signatures(root: SlicingNode) -> Tuple:
    """Fill ``node.signature`` bottom-up; returns the root signature.

    A signature is the Polish token tuple of the node's own subtree
    (``(block,)`` at a leaf, ``left + right + (op,)`` inside), so two
    structurally identical subtrees — across different expressions or
    different moves of one annealing run — share a signature and can
    share cached annotations and sub-layouts.
    """
    if root.is_leaf:
        root.signature = (root.block,)
        return root.signature
    left = compute_signatures(root.left)
    right = compute_signatures(root.right)
    root.signature = left + right + (root.op,)
    return root.signature


@dataclass
class EvalStats:
    """Counters of one incremental-evaluation context.

    ``cost_evals`` counts cost-function invocations; the remaining
    counters split the work those evaluations *would* have done under
    full re-evaluation into cached and actually-performed parts:

    * ``cost_cache_hits`` — whole-expression transposition hits (the
      entire layout expansion was skipped);
    * ``layout_nodes_total`` / ``layout_nodes_expanded`` — slicing-tree
      nodes a full evaluator would have expanded into budgeted
      rectangles vs. the nodes actually expanded;
    * ``subtree_hits`` / ``subtree_misses`` — per-subtree curve+area
      annotation reuse;
    * ``curve_compose_hits`` / ``curve_compose_misses`` — memoized
      pairwise shape-curve compositions.
    """

    cost_evals: int = 0
    cost_cache_hits: int = 0
    layout_nodes_total: int = 0
    layout_nodes_expanded: int = 0
    subtree_hits: int = 0
    subtree_misses: int = 0
    curve_compose_hits: int = 0
    curve_compose_misses: int = 0

    def merge(self, other: "EvalStats") -> None:
        """Accumulate ``other`` into this record."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def expansion_ratio(self) -> float:
        """How many times fewer nodes were expanded than full eval."""
        if self.layout_nodes_expanded <= 0:
            return float("inf") if self.layout_nodes_total else 1.0
        return self.layout_nodes_total / self.layout_nodes_expanded


class SubtreeCache:
    """Composed 〈Γ, a_m, a_t〉 annotations keyed by subtree signature.

    Valid for one evaluation context — fixed leaf curves, areas and
    Pareto limit (one :func:`repro.floorplan.engine.generate_layout`
    call, or one shape-curve search).  Entries hold exactly what the
    uncached :func:`annotate_curves` / :func:`annotate_areas` pair
    would compute, so cached and full evaluation stay bit-identical.
    Bounded by a :class:`repro.memo.BoundedStore`.
    """

    __slots__ = ("compose", "hits", "misses", "_store")

    def __init__(self, compose: Optional[ComposeCache] = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES):
        self.compose = compose or ComposeCache()
        self._store = BoundedStore(max_entries)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.compose.clear()

    def get(self, signature: Tuple):
        return self._store.get(signature)

    def put(self, signature: Tuple,
            entry: Tuple[ShapeCurve, float, float]) -> None:
        self._store.put(signature, entry)


def annotate_cached(root: SlicingNode, leaf_curves: List[ShapeCurve],
                    limit: int, cache: SubtreeCache,
                    minimum: Optional[List[float]] = None,
                    target: Optional[List[float]] = None) -> ShapeCurve:
    """Annotate curves (and optionally areas) reusing unchanged subtrees.

    Equivalent to ``annotate_curves(root, leaf_curves, limit)`` plus
    ``annotate_areas(root, minimum, target)`` but skips the curve
    composition of every subtree whose signature is already cached —
    after a local perturbation only the root path of the changed node
    is recomposed.  ``root`` must carry signatures
    (:func:`compute_signatures`).  Returns the root curve.
    """
    if minimum is None:
        minimum = [0.0] * len(leaf_curves)
    if target is None:
        target = [0.0] * len(leaf_curves)

    def visit(node: SlicingNode) -> None:
        entry = cache.get(node.signature)
        if entry is not None:
            cache.hits += 1
            node.curve, node.area_min, node.area_target = entry
            if not node.is_leaf:
                visit(node.left)
                visit(node.right)
            return
        cache.misses += 1
        if node.is_leaf:
            node.curve = leaf_curves[node.block]
            node.area_min = minimum[node.block]
            node.area_target = target[node.block]
        else:
            visit(node.left)
            visit(node.right)
            node.curve = cache.compose.compose(
                node.left.curve, node.right.curve,
                horizontal=(node.op != H), limit=limit)
            node.area_min = node.left.area_min + node.right.area_min
            node.area_target = (node.left.area_target
                                + node.right.area_target)
        cache.put(node.signature, (node.curve, node.area_min,
                                   node.area_target))

    visit(root)
    return root.curve
