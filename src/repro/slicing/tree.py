"""Slicing trees built from Polish expressions.

The tree is the structural view the layout generator walks top-down; the
Polish expression is the flat view the annealer perturbs.  ``build_tree``
converts the latter into the former with a standard postfix evaluation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.shapecurve.curve import ShapeCurve
from repro.slicing.polish import H, PolishExpression, is_operator


class SlicingNode:
    """A node of a slicing tree.

    Leaves carry a ``block`` index; internal nodes carry an operator
    (``'H'`` stacked / ``'V'`` side-by-side) and exactly two children.
    Composite block characterizations 〈Γ, a_m, a_t〉 are annotated onto
    nodes by the floorplan engine (see ``repro.floorplan``).
    """

    __slots__ = ("op", "block", "left", "right",
                 "curve", "area_min", "area_target")

    def __init__(self, op: Optional[str] = None, block: Optional[int] = None,
                 left: "SlicingNode" = None, right: "SlicingNode" = None):
        self.op = op
        self.block = block
        self.left = left
        self.right = right
        # Composite characterization, filled by annotate_* helpers.
        self.curve: Optional[ShapeCurve] = None
        self.area_min: float = 0.0
        self.area_target: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.block is not None

    def leaves(self) -> List["SlicingNode"]:
        """All leaf nodes, left to right."""
        if self.is_leaf:
            return [self]
        return self.left.leaves() + self.right.leaves()

    def blocks(self) -> List[int]:
        """Block indices at the leaves, left to right."""
        return [leaf.block for leaf in self.leaves()]

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"Leaf({self.block})"
        return f"Node({self.op}, {self.left!r}, {self.right!r})"


def build_tree(expr: PolishExpression) -> SlicingNode:
    """Build the slicing tree described by a valid Polish expression."""
    stack: List[SlicingNode] = []
    for token in expr.tokens:
        if is_operator(token):
            if len(stack) < 2:
                raise ValueError(f"invalid expression: {expr!r}")
            right = stack.pop()
            left = stack.pop()
            stack.append(SlicingNode(op=token, left=left, right=right))
        else:
            stack.append(SlicingNode(block=token))
    if len(stack) != 1:
        raise ValueError(f"invalid expression: {expr!r}")
    return stack[0]


def annotate_curves(root: SlicingNode, leaf_curves: List[ShapeCurve],
                    limit: int = None) -> ShapeCurve:
    """Fill composite shape curves bottom-up; returns the root curve.

    A vertical cut (`V`) puts children side by side so curves compose
    horizontally; a horizontal cut (`H`) stacks them so curves compose
    vertically.  ``limit`` caps the number of Pareto points kept per
    composition (smaller limits make annealing cost evaluation cheaper).
    """
    from repro.shapecurve.curve import MAX_POINTS
    if limit is None:
        limit = MAX_POINTS
    if root.is_leaf:
        root.curve = leaf_curves[root.block]
        return root.curve
    left = annotate_curves(root.left, leaf_curves, limit)
    right = annotate_curves(root.right, leaf_curves, limit)
    if root.op == H:
        root.curve = left.compose_vertical(right, limit)
    else:
        root.curve = left.compose_horizontal(right, limit)
    return root.curve


def annotate_areas(root: SlicingNode, minimum: List[float],
                   target: List[float]) -> None:
    """Fill composite a_m / a_t sums bottom-up (paper Sect. IV-E)."""
    if root.is_leaf:
        root.area_min = minimum[root.block]
        root.area_target = target[root.block]
        return
    annotate_areas(root.left, minimum, target)
    annotate_areas(root.right, minimum, target)
    root.area_min = root.left.area_min + root.right.area_min
    root.area_target = root.left.area_target + root.right.area_target
