"""A small, deterministic simulated-annealing engine.

Both HiDaP annealing problems (shape-curve generation and per-level
layout generation) share this engine.  The state is always a Polish
expression; the problem supplies the cost function.  Cooling is
geometric; the initial temperature is calibrated from the cost spread of
random perturbations so the same configuration works across problem
scales.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import current_tracer
from repro.slicing.moves import perturb
from repro.slicing.polish import PolishExpression


#: Spacing between per-restart child seeds.  A large odd constant (the
#: golden-ratio hash multiplier) so that restart streams can never
#: collide with the small consecutive per-level seed increments callers
#: use (e.g. ``HiDaPConfig.layout_config`` seeds adjacent levels with
#: ``base + level``); with a +1 stride, restart 1 of one level would be
#: driven by the identical RNG stream as restart 0 of the next.
RESTART_SEED_STRIDE = 0x9E3779B1


@dataclass
class AnnealConfig:
    """Annealing schedule parameters.

    ``moves_per_block`` scales the iteration count with problem size, so
    small trees anneal in milliseconds while big ones get a fair search.
    """

    seed: int = 0
    moves_per_block: int = 220
    min_moves: int = 400
    max_moves: int = 30000
    initial_acceptance: float = 0.85
    #: With adaptive cooling (the default) the rate is derived from the
    #: move budget so the temperature always sweeps from T0 down to
    #: T0 * min_temperature_ratio within the run; this static rate is
    #: only used when ``adaptive_cooling`` is off.
    cooling: float = 0.94
    adaptive_cooling: bool = True
    moves_per_temperature: int = 40
    min_temperature_ratio: float = 1e-4
    restarts: int = 1
    #: Random perturbations probed to pick T0.  Calibration is part of
    #: each restart's own RNG stream (see :meth:`Annealer.run`), so
    #: changing this count re-randomizes a restart's search but can
    #: never leak into *other* restarts.
    calibration_probes: int = 24

    def total_moves(self, n_blocks: int) -> int:
        moves = self.moves_per_block * max(1, n_blocks)
        return max(self.min_moves, min(self.max_moves, moves))

    def cooling_rate(self, budget: int) -> float:
        if not self.adaptive_cooling:
            return self.cooling
        steps = max(2.0, budget / max(1, self.moves_per_temperature))
        return self.min_temperature_ratio ** (1.0 / steps)

    def restart_seed(self, restart: int) -> int:
        """The child seed driving restart number ``restart``.

        Restart 0 keeps the configured seed (historical single-restart
        streams are reproduced exactly); later restarts are spaced by
        :data:`RESTART_SEED_STRIDE`.
        """
        return self.seed + restart * RESTART_SEED_STRIDE


@dataclass
class AnnealResult:
    """Best state found and bookkeeping about the search."""

    best: PolishExpression
    best_cost: float
    initial_cost: float
    moves_tried: int
    moves_accepted: int


class Annealer:
    """Simulated annealing over Polish expressions.

    Parameters
    ----------
    cost_fn:
        Maps a ``PolishExpression`` to a non-negative float; lower is
        better.  The engine treats it as a black box.
    config:
        Schedule parameters; defaults are tuned for floorplans of 2-40
        blocks.
    """

    def __init__(self, cost_fn: Callable[[PolishExpression], float],
                 config: Optional[AnnealConfig] = None):
        self.cost_fn = cost_fn
        self.config = config or AnnealConfig()

    # -- internals ----------------------------------------------------------

    def _calibrate_temperature(self, expr: PolishExpression,
                               rng: random.Random) -> float:
        """Pick T0 so ~initial_acceptance of uphill moves are accepted."""
        deltas = []
        probe = expr.copy()
        cost = self.cost_fn(probe)
        for _ in range(max(1, self.config.calibration_probes)):
            perturb(probe, rng)
            new_cost = self.cost_fn(probe)
            if new_cost > cost:
                deltas.append(new_cost - cost)
            cost = new_cost
        if not deltas:
            return max(1e-9, abs(cost)) * 0.1
        # The median is robust against the huge deltas produced when a
        # perturbation crosses into heavily-penalized illegal layouts.
        deltas.sort()
        typical_uphill = deltas[len(deltas) // 2]
        accept = min(0.99, max(0.01, self.config.initial_acceptance))
        return -typical_uphill / math.log(accept)

    def _run_once(self, initial: PolishExpression,
                  rng: random.Random) -> AnnealResult:
        current = initial.copy()
        current_cost = self.cost_fn(current)
        best = current.copy()
        best_cost = current_cost
        initial_cost = current_cost

        n_blocks = current.n_blocks
        if n_blocks < 2:
            return AnnealResult(best, best_cost, initial_cost, 0, 0)

        temperature = self._calibrate_temperature(current, rng)
        floor = temperature * self.config.min_temperature_ratio
        budget = self.config.total_moves(n_blocks)
        cooling = self.config.cooling_rate(budget)
        tried = 0
        accepted = 0

        while tried < budget and temperature > floor:
            for _ in range(self.config.moves_per_temperature):
                if tried >= budget:
                    break
                tried += 1
                candidate = current.copy()
                perturb(candidate, rng)
                candidate_cost = self.cost_fn(candidate)
                delta = candidate_cost - current_cost
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    current = candidate
                    current_cost = candidate_cost
                    accepted += 1
                    if current_cost < best_cost:
                        best = current.copy()
                        best_cost = current_cost
            temperature *= cooling
        return AnnealResult(best, best_cost, initial_cost, tried, accepted)

    # -- public API -----------------------------------------------------------

    def run(self, initial: PolishExpression) -> AnnealResult:
        """Anneal from ``initial``; multi-restart keeps the best result.

        Determinism contract: restart ``r`` re-anneals the caller's
        ``initial`` expression driven *entirely* by the child seed
        ``config.restart_seed(r)`` (= ``seed + r *
        RESTART_SEED_STRIDE``) — one ``random.Random(child_seed)``
        feeds, in order, the restart's temperature calibration and its
        move/acceptance stream.  Consequences:

        * restart ``r`` of this run is identical to restart 0 of a
          single-restart run at ``restart_seed(r)``; raising
          ``restarts`` appends new searches without disturbing the
          results of earlier ones (the historical engine threaded one
          RNG through calibration and all restarts, so any change to
          the calibration probe count — or to the restart count —
          silently reshuffled every downstream placement);
        * every restart revisits ``initial`` (the caller's best known
          start) instead of abandoning it for a random shuffle, as the
          historical engine did for restarts > 0; diversity comes from
          the per-restart streams;
        * restart 0, with the default configuration, reproduces the
          single-restart results of the historical engine exactly.
        """
        tracer = current_tracer()
        best_result: Optional[AnnealResult] = None
        for restart in range(max(1, self.config.restarts)):
            rng = random.Random(self.config.restart_seed(restart))
            # Span granularity is one restart, not one move: the
            # disabled-mode overhead gate in benchmarks/bench_anneal.py
            # only holds because the inner accept/reject loop stays
            # untraced.
            with tracer.span(f"restart[{restart}]") as span:
                result = self._run_once(initial, rng)
                span.set(moves=result.moves_tried,
                         accepted=result.moves_accepted)
            if best_result is None or result.best_cost < best_result.best_cost:
                best_result = result
        return best_result
