"""The three Wong-Liu perturbations on normalized Polish expressions.

The paper (Sect. IV-E) perturbs the slicing structure "with equal
probability with one of three operations: operand swap, operator
inversion or operand-operator swap (similar to [13])", [13] being
Wong & Liu, DAC'86.  These are:

* **M1** — swap two operands adjacent in operand order;
* **M2** — complement a maximal chain of operators;
* **M3** — swap an adjacent operand/operator pair (only when the result
  is still valid and normalized).

All moves mutate the expression in place and return a :class:`Move`
record naming the move kind and the token positions that changed, so a
caller can log or undo it — or tell which subtrees of the slicing tree
survived the perturbation: every subtree whose token span avoids
``move.positions`` is structurally unchanged.  (The incremental
evaluators in :mod:`repro.floorplan.engine` recover the same
information from subtree signatures, which also catch structure
repeated across unrelated expressions.)
"""

from __future__ import annotations

import random
from typing import NamedTuple, Optional, Tuple

from repro.slicing.polish import PolishExpression, is_operator, other_operator

#: How many times a move is re-drawn before the perturbation gives up and
#: falls back to another move kind.  M3 candidates are frequently illegal.
_MAX_TRIES = 8


class Move(NamedTuple):
    """An applied perturbation.

    ``positions`` are the indices of every token the move touched, in
    increasing order; ``move[0]`` still reads as the move kind, like
    the historical plain-tuple return did.
    """

    kind: str
    positions: Tuple[int, ...]

    @property
    def lo(self) -> int:
        """Smallest changed token index."""
        return self.positions[0]

    @property
    def hi(self) -> int:
        """Largest changed token index."""
        return self.positions[-1]


def move_operand_swap(expr: PolishExpression,
                      rng: random.Random) -> Optional[Move]:
    """M1: swap two operands that are adjacent in operand order."""
    positions = expr.operand_positions()
    if len(positions) < 2:
        return None
    k = rng.randrange(len(positions) - 1)
    i, j = positions[k], positions[k + 1]
    expr.tokens[i], expr.tokens[j] = expr.tokens[j], expr.tokens[i]
    return Move("M1", (i, j))


def move_chain_invert(expr: PolishExpression,
                      rng: random.Random) -> Optional[Move]:
    """M2: complement every operator in one maximal operator chain."""
    chains = expr.operator_chains()
    if not chains:
        return None
    start, end = chains[rng.randrange(len(chains))]
    for i in range(start, end + 1):
        expr.tokens[i] = other_operator(expr.tokens[i])
    return Move("M2", tuple(range(start, end + 1)))


def move_operand_operator_swap(expr: PolishExpression,
                               rng: random.Random) -> Optional[Move]:
    """M3: swap an adjacent operand/operator pair, keeping validity.

    Candidates are drawn at random and validated on a scratch copy;
    invalid draws are retried a bounded number of times.
    """
    n = len(expr.tokens)
    if n < 3:
        return None
    for _ in range(_MAX_TRIES):
        i = rng.randrange(n - 1)
        a, b = expr.tokens[i], expr.tokens[i + 1]
        if is_operator(a) == is_operator(b):
            continue
        expr.tokens[i], expr.tokens[i + 1] = b, a
        if expr.is_valid():
            return Move("M3", (i, i + 1))
        expr.tokens[i], expr.tokens[i + 1] = a, b   # revert illegal swap
    return None


_MOVES = (move_operand_swap, move_chain_invert, move_operand_operator_swap)


def perturb(expr: PolishExpression, rng: random.Random) -> Move:
    """Apply one of M1/M2/M3 chosen uniformly at random.

    If the chosen move cannot produce a legal perturbation the other
    moves are tried, so the function always perturbs expressions with at
    least two operands.  Returns the applied :class:`Move`, whose
    ``positions`` tell the caller which token indices — and therefore
    which slicing subtrees — changed.
    """
    order = list(_MOVES)
    rng.shuffle(order)
    for move in order:
        applied = move(expr, rng)
        if applied is not None:
            return applied
    raise ValueError("expression cannot be perturbed (single block?)")
