"""Slicing floorplan structures and their annealing search.

The layout of every hierarchy level is represented as a slicing tree,
encoded as a normalized Polish expression (Wong & Liu, DAC'86).  The
expression is perturbed with the three classic moves and searched with
simulated annealing; evaluation is done either bottom-up (shape-curve
area minimization, Sect. IV-A of the paper) or top-down (area-budgeted
layout generation, Sect. IV-E).
"""

from repro.slicing.anneal import AnnealConfig, Annealer, AnnealResult
from repro.slicing.moves import Move, perturb
from repro.slicing.polish import PolishExpression, H, V
from repro.slicing.tree import (
    EvalStats,
    SlicingNode,
    SubtreeCache,
    annotate_cached,
    build_tree,
    compute_signatures,
)

__all__ = [
    "AnnealConfig",
    "EvalStats",
    "Move",
    "SubtreeCache",
    "annotate_cached",
    "compute_signatures",
    "Annealer",
    "AnnealResult",
    "PolishExpression",
    "SlicingNode",
    "build_tree",
    "perturb",
    "H",
    "V",
]
