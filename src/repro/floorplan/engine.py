"""The per-level layout engine: slicing SA over budgeted layouts.

``generate_layout`` searches the slicing-structure space with simulated
annealing.  Every candidate expression is expanded top-down into a
budgeted layout and scored with the penalty-times-distance cost model;
the best legal-leaning layout wins.  Single-block instances short-cut to
a direct assignment.

Cost evaluation is **incremental** by default (``LayoutConfig.incremental``):
a whole-expression transposition table short-circuits re-proposed
candidates, a :class:`~repro.slicing.tree.SubtreeCache` reuses the
composed shape curves and area annotations of every subtree a
perturbation did not touch, and a
:class:`~repro.floorplan.budget.LayoutCache` reuses their budgeted
sub-layouts.  All three caches return exactly what full re-evaluation
would compute, so results are bit-identical under a fixed seed — the
``incremental=False`` fallback exists for cross-checking, not because
the answers differ.  :class:`~repro.slicing.tree.EvalStats` counters on
the :class:`LayoutResult` report how much work was saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.floorplan.blocks import Block, Terminal
from repro.memo import BoundedStore
from repro.floorplan.budget import BudgetReport, LayoutCache, budgeted_layout
from repro.floorplan.cost import CostModel, CostWeights
from repro.geometry.rect import Rect
from repro.obs import current_tracer
from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import H, PolishExpression, V
from repro.slicing.tree import (
    EvalStats,
    SubtreeCache,
    annotate_areas,
    annotate_cached,
    annotate_curves,
    build_tree,
    compute_signatures,
)


def _chain(n_blocks: int, operators) -> PolishExpression:
    """A chain expression ``0 1 op 2 op ...`` cycling over ``operators``."""
    tokens = [0]
    for i in range(1, n_blocks):
        tokens.append(i)
        tokens.append(operators[(i - 1) % len(operators)])
    return PolishExpression(tokens)


@dataclass
class LayoutProblem:
    """One floorplanning instance: blocks, fixed context, affinity."""

    region: Rect
    blocks: List[Block]
    affinity: Sequence[Sequence[float]]
    terminals: List[Terminal] = field(default_factory=list)


@dataclass
class LayoutConfig:
    """Search-effort knobs for one layout generation call."""

    seed: int = 0
    weights: CostWeights = field(default_factory=CostWeights)
    #: Pareto-point cap during annealing; the final evaluation uses the
    #: full curve resolution.
    anneal_curve_limit: int = 6
    final_curve_limit: int = 32
    anneal: AnnealConfig = None
    restarts: int = 2
    #: Reuse cached subtree curves/areas and budgeted sub-layouts
    #: between cost evaluations.  Bit-identical to full re-evaluation
    #: under a fixed seed; disable only to cross-check that claim.
    incremental: bool = True
    #: Referee backend for the cost model's affinity-distance kernel
    #: (``None`` → the :mod:`repro.metrics` registry default).  All
    #: backends are bit-identical; this is a speed knob only.
    metrics_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.anneal is None:
            self.anneal = AnnealConfig(
                seed=self.seed, moves_per_block=140, min_moves=240,
                max_moves=6000, moves_per_temperature=28,
                restarts=self.restarts)


@dataclass
class LayoutResult:
    """The chosen layout for one level."""

    rects: Dict[int, Rect]
    report: BudgetReport
    cost: float
    penalty: float
    distance_term: float
    expression: Optional[PolishExpression]
    #: Evaluation-work counters of the search.  Always populated by
    #: :func:`generate_layout` (a single-block short-cut records just
    #: its one final evaluation); ``None`` only on manually built
    #: results.
    stats: Optional[EvalStats] = None

    @property
    def is_legal(self) -> bool:
        return self.report.is_legal


class LayoutEvaluator:
    """Expression -> budgeted layout/cost, optionally incremental.

    One evaluator serves one (problem, curve limit) context.  In
    incremental mode it keeps three cooperating caches — a
    whole-expression cost transposition table, the per-subtree
    curve/area annotations and the per-(subtree, rect) budgeted
    sub-layouts — and records their effect in ``stats``.  All cached
    values equal what full evaluation computes, so the two modes yield
    bit-identical costs and layouts.
    """

    def __init__(self, problem: LayoutProblem, model: CostModel,
                 curve_limit: int, incremental: bool,
                 stats: Optional[EvalStats] = None):
        self.problem = problem
        self.model = model
        self.curve_limit = curve_limit
        self.incremental = incremental
        self.stats = stats if stats is not None else EvalStats()
        self._leaf_curves = [b.curve for b in problem.blocks]
        self._area_min = [b.area_min for b in problem.blocks]
        self._area_target = [b.area_target for b in problem.blocks]
        self._n_nodes = max(1, 2 * len(problem.blocks) - 1)
        if incremental:
            self._subtrees = SubtreeCache()
            self._layouts = LayoutCache()
            self._costs: Optional[BoundedStore] = BoundedStore()
        else:
            self._subtrees = None
            self._layouts = None
            self._costs = None

    # -- internals ----------------------------------------------------------

    def _annotate(self, expr: PolishExpression):
        root = build_tree(expr)
        if self.incremental:
            compute_signatures(root)
            annotate_cached(root, self._leaf_curves, self.curve_limit,
                            self._subtrees, minimum=self._area_min,
                            target=self._area_target)
        else:
            annotate_curves(root, self._leaf_curves, self.curve_limit)
            annotate_areas(root, self._area_min, self._area_target)
        return root

    def _account_nodes(self) -> None:
        """Book one full-expansion equivalent against the counters."""
        self.stats.layout_nodes_total += self._n_nodes
        if not self.incremental:
            self.stats.layout_nodes_expanded += self._n_nodes

    # -- evaluation ---------------------------------------------------------

    def report(self, expr: PolishExpression) -> BudgetReport:
        """The full budget report for one expression (no cost memo)."""
        self.stats.cost_evals += 1
        self._account_nodes()
        root = self._annotate(expr)
        return budgeted_layout(root, self.problem.region,
                               self.problem.blocks, cache=self._layouts)

    def cost(self, expr: PolishExpression) -> float:
        """The annealing objective; memoized per expression."""
        self.stats.cost_evals += 1
        self._account_nodes()
        key = None
        if self._costs is not None:
            key = tuple(expr.tokens)
            cached = self._costs.get(key)
            if cached is not None:
                self.stats.cost_cache_hits += 1
                return cached
        root = self._annotate(expr)
        report = budgeted_layout(root, self.problem.region,
                                 self.problem.blocks, cache=self._layouts)
        value = self.model.cost(report)
        if key is not None:
            self._costs.put(key, value)
        return value

    def flush_counters(self) -> None:
        """Fold the cache-level counters into ``stats`` (idempotent via
        zeroing the sources)."""
        if not self.incremental:
            return
        self.stats.subtree_hits += self._subtrees.hits
        self.stats.subtree_misses += self._subtrees.misses
        self.stats.curve_compose_hits += self._subtrees.compose.hits
        self.stats.curve_compose_misses += self._subtrees.compose.misses
        self.stats.layout_nodes_expanded += self._layouts.nodes_expanded
        self._subtrees.hits = self._subtrees.misses = 0
        self._subtrees.compose.hits = self._subtrees.compose.misses = 0
        self._layouts.nodes_expanded = 0


def _result_from(report: BudgetReport, model: CostModel,
                 expr: PolishExpression,
                 stats: Optional[EvalStats]) -> LayoutResult:
    return LayoutResult(
        rects=dict(report.leaf_rects), report=report,
        cost=model.cost(report), penalty=model.penalty(report),
        distance_term=model.distance_term(
            report.leaf_rects, centers=report.leaf_centers or None),
        expression=expr, stats=stats)


def generate_layout(problem: LayoutProblem,
                    config: Optional[LayoutConfig] = None) -> LayoutResult:
    """Find block coordinates for one floorplanning instance."""
    config = config or LayoutConfig()
    with current_tracer().span("layout", blocks=len(problem.blocks)):
        return _generate_layout(problem, config)


def _generate_layout(problem: LayoutProblem,
                     config: LayoutConfig) -> LayoutResult:
    scale = max(problem.region.w + problem.region.h, 1e-12)
    model = CostModel(problem.blocks, problem.terminals, problem.affinity,
                      config.weights, scale=scale,
                      backend=config.metrics_backend)

    stats = EvalStats()
    final_eval = LayoutEvaluator(problem, model, config.final_curve_limit,
                                 incremental=False, stats=stats)

    if len(problem.blocks) == 1:
        expr = PolishExpression([0])
        report = final_eval.report(expr)
        return _result_from(report, model, expr, stats)

    sa_eval = LayoutEvaluator(problem, model, config.anneal_curve_limit,
                              incremental=config.incremental, stats=stats)

    # Deterministic seed structures: a vertical stack, a horizontal row
    # and an alternating chain.  They bound the SA result (useful on
    # sliver regions, where only one cut direction is feasible) and the
    # best of them starts the search.
    n = len(problem.blocks)
    candidates: List[PolishExpression] = [
        _chain(n, (H,)), _chain(n, (V,)), PolishExpression.initial(n)]
    scored = [(sa_eval.cost(expr), i) for i, expr in enumerate(candidates)]
    scored.sort()
    best = candidates[scored[0][1]]

    annealer = Annealer(sa_eval.cost, config.anneal)
    result = annealer.run(best)
    if result.best_cost <= scored[0][0]:
        best = result.best
    sa_eval.flush_counters()

    report = final_eval.report(best)
    return _result_from(report, model, best, stats)
