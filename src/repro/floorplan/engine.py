"""The per-level layout engine: slicing SA over budgeted layouts.

``generate_layout`` searches the slicing-structure space with simulated
annealing.  Every candidate expression is expanded top-down into a
budgeted layout and scored with the penalty-times-distance cost model;
the best legal-leaning layout wins.  Single-block instances short-cut to
a direct assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.budget import BudgetReport, budgeted_layout
from repro.floorplan.cost import CostModel, CostWeights
from repro.geometry.rect import Rect
from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import H, PolishExpression, V
from repro.slicing.tree import annotate_areas, annotate_curves, build_tree


def _chain(n_blocks: int, operators) -> PolishExpression:
    """A chain expression ``0 1 op 2 op ...`` cycling over ``operators``."""
    tokens = [0]
    for i in range(1, n_blocks):
        tokens.append(i)
        tokens.append(operators[(i - 1) % len(operators)])
    return PolishExpression(tokens)


@dataclass
class LayoutProblem:
    """One floorplanning instance: blocks, fixed context, affinity."""

    region: Rect
    blocks: List[Block]
    affinity: Sequence[Sequence[float]]
    terminals: List[Terminal] = field(default_factory=list)


@dataclass
class LayoutConfig:
    """Search-effort knobs for one layout generation call."""

    seed: int = 0
    weights: CostWeights = field(default_factory=CostWeights)
    #: Pareto-point cap during annealing; the final evaluation uses the
    #: full curve resolution.
    anneal_curve_limit: int = 6
    final_curve_limit: int = 32
    anneal: AnnealConfig = None
    restarts: int = 2

    def __post_init__(self) -> None:
        if self.anneal is None:
            self.anneal = AnnealConfig(
                seed=self.seed, moves_per_block=140, min_moves=240,
                max_moves=6000, moves_per_temperature=28,
                restarts=self.restarts)


@dataclass
class LayoutResult:
    """The chosen layout for one level."""

    rects: Dict[int, Rect]
    report: BudgetReport
    cost: float
    penalty: float
    distance_term: float
    expression: Optional[PolishExpression]

    @property
    def is_legal(self) -> bool:
        return self.report.is_legal


def _evaluate(expr: PolishExpression, problem: LayoutProblem,
              model: CostModel, curve_limit: int) -> BudgetReport:
    root = build_tree(expr)
    leaf_curves = [b.curve for b in problem.blocks]
    annotate_curves(root, leaf_curves, curve_limit)
    annotate_areas(root,
                   [b.area_min for b in problem.blocks],
                   [b.area_target for b in problem.blocks])
    return budgeted_layout(root, problem.region, problem.blocks)


def generate_layout(problem: LayoutProblem,
                    config: Optional[LayoutConfig] = None) -> LayoutResult:
    """Find block coordinates for one floorplanning instance."""
    config = config or LayoutConfig()
    scale = max(problem.region.w + problem.region.h, 1e-12)
    model = CostModel(problem.blocks, problem.terminals, problem.affinity,
                      config.weights, scale=scale)

    if len(problem.blocks) == 1:
        expr = PolishExpression([0])
        report = _evaluate(expr, problem, model, config.final_curve_limit)
        return LayoutResult(
            rects=dict(report.leaf_rects), report=report,
            cost=model.cost(report), penalty=model.penalty(report),
            distance_term=model.distance_term(report.leaf_rects),
            expression=expr)

    def sa_cost(expr: PolishExpression) -> float:
        report = _evaluate(expr, problem, model, config.anneal_curve_limit)
        return model.cost(report)

    # Deterministic seed structures: a vertical stack, a horizontal row
    # and an alternating chain.  They bound the SA result (useful on
    # sliver regions, where only one cut direction is feasible) and the
    # best of them starts the search.
    n = len(problem.blocks)
    candidates: List[PolishExpression] = [
        _chain(n, (H,)), _chain(n, (V,)), PolishExpression.initial(n)]
    scored = [(sa_cost(expr), i) for i, expr in enumerate(candidates)]
    scored.sort()
    best = candidates[scored[0][1]]

    annealer = Annealer(sa_cost, config.anneal)
    result = annealer.run(best)
    if result.best_cost <= scored[0][0]:
        best = result.best

    report = _evaluate(best, problem, model, config.final_curve_limit)
    return LayoutResult(
        rects=dict(report.leaf_rects), report=report,
        cost=model.cost(report), penalty=model.penalty(report),
        distance_term=model.distance_term(report.leaf_rects),
        expression=best)
