"""The layout cost model: penalty times affinity-weighted distance.

The paper minimizes ``penalty * sum_{i,j} distance(i, j) * M[i][j]``
where the sum runs over dataflow-graph vertices (movable blocks plus
fixed ports / external macros) and the penalty multiplier punishes
macro-overlap, a_m and a_t violations at increasing severity, keeping
illegal intermediate solutions explorable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.budget import BudgetReport
from repro.geometry.rect import Point, Rect


@dataclass(frozen=True)
class CostWeights:
    """Penalty severities, ordered as the paper orders them.

    Yielding target area is cheapest, minimum area is worse, macro area
    (an infeasible macro placement) is most severe.
    """

    target_area: float = 0.6
    min_area: float = 6.0
    macro_area: float = 40.0
    #: Added to the distance term so penalties still order zero-affinity
    #: layouts (e.g. a level whose blocks exchange no dataflow).
    epsilon: float = 1e-3


class CostModel:
    """Evaluates ``penalty * sum(dist * affinity)`` for budget layouts.

    Parameters
    ----------
    blocks:
        Movable blocks; their indices address affinity rows 0..n-1.
    terminals:
        Fixed points; terminal ``t`` addresses row ``n + t.index``.
    affinity:
        Dense symmetric matrix of size (n + len(terminals))^2; only
        pairs with non-zero affinity are kept.
    weights:
        Penalty severities.
    scale:
        A reference length; the distance term is divided by it so costs
        are comparable across die sizes (penalties stay scale-free).
    backend:
        Referee backend name for the affinity-distance kernel
        (``None`` → the :mod:`repro.metrics` registry default).  Every
        backend returns the same bits, so this is a speed knob only.
    """

    def __init__(self, blocks: List[Block], terminals: List[Terminal],
                 affinity: Sequence[Sequence[float]],
                 weights: CostWeights = None, scale: float = 1.0,
                 backend: str = None):
        self.blocks = blocks
        self.terminals = terminals
        self.weights = weights or CostWeights()
        self.scale = max(scale, 1e-12)
        self.backend = backend
        self._pairs = None          # lazy metrics.AffinityPairs
        self._kernel = None         # backend resolved once, on first use
        n = len(blocks)
        size = n + len(terminals)
        if len(affinity) != size:
            raise ValueError(
                f"affinity matrix is {len(affinity)}x..., expected {size}")
        self.block_pairs: List[Tuple[int, int, float]] = []
        self.terminal_pairs: List[Tuple[int, int, float]] = []
        for i in range(n):
            for j in range(i + 1, n):
                a = affinity[i][j] + affinity[j][i]
                if a > 0:
                    self.block_pairs.append((i, j, a))
            for t, terminal in enumerate(terminals):
                a = affinity[i][n + t] + affinity[n + t][i]
                if a > 0:
                    self.terminal_pairs.append((i, terminal.index, a))
        self._terminal_pos: Dict[int, Point] = {
            t.index: t.pos for t in terminals}

    # -- pieces ------------------------------------------------------------

    def _affinity_pairs(self):
        """The distance kernel's compiled pair view (built once)."""
        if self._pairs is None:
            from repro.metrics import AffinityPairs

            terminal_pairs = []
            for i, t, a in self.terminal_pairs:
                pos = self._terminal_pos[t]
                terminal_pairs.append((i, (pos.x, pos.y), a))
            self._pairs = AffinityPairs(self.block_pairs, terminal_pairs)
        return self._pairs

    def distance_term(self, rects: Dict[int, Rect],
                      centers: Dict[int, Tuple[float, float]] = None
                      ) -> float:
        """Affinity-weighted sum of Manhattan center distances.

        ``centers`` optionally passes pre-computed ``(cx, cy)`` block
        centers (e.g. the ones cached on budgeted sub-layouts) so the
        evaluation skips recomputing every rectangle center; values
        must equal ``rect.center`` of the corresponding rectangle.  The
        sum is delegated to the configured referee backend — all
        backends reduce sequentially in pair order, so the result is
        bit-identical to the historical Python accumulator.  The
        backend is resolved once, on the first evaluation (this sits in
        the annealing hot loop).
        """
        if self._kernel is None:
            from repro.metrics import get_backend
            self._kernel = get_backend(self.backend)
        if centers is None:
            centers = {i: (r.x + r.w / 2.0, r.y + r.h / 2.0)
                       for i, r in rects.items()}
        total = self._kernel.affinity_distance(self._affinity_pairs(),
                                               centers)
        return total / self.scale

    def penalty(self, report: BudgetReport) -> float:
        w = self.weights
        return (1.0
                + w.target_area * report.target_deficit
                + w.min_area * report.min_deficit
                + w.macro_area * report.macro_deficit)

    def cost(self, report: BudgetReport) -> float:
        """The paper's objective for one budgeted layout.

        Uses the centers cached on the report's sub-layouts (when the
        report carries them) instead of recomputing every rectangle
        center per evaluation.
        """
        term = self.distance_term(report.leaf_rects,
                                  centers=report.leaf_centers or None)
        return self.penalty(report) * (term + self.weights.epsilon)

    def total_affinity(self) -> float:
        return (sum(a for _i, _j, a in self.block_pairs)
                + sum(a for _i, _t, a in self.terminal_pairs))
