"""Top-down area-budgeted layout generation (paper Sect. IV-E).

Unlike bottom-up shape-curve packing, the available rectangle is treated
as a *budget*: the layout always consumes exactly the assigned area.  At
every slicing-tree node the rectangle is split according to the target
areas (a_t) of the two subtrees; when the resulting child rectangle
cannot hold its subtree's macros (checked against the composed shape
curve Γ), area is moved from the sibling, and the move is penalized by
the kind of area the sibling yielded — target slack (cheapest), minimum
area, or macro area (infeasible, most severe).

The expansion of one subtree depends only on the subtree's structure
(curve/area annotations, which the signature determines) and the
rectangle it receives, so sub-layouts are memoizable: a
:class:`LayoutCache` keyed by ``(signature, rect)`` lets the annealing
engine reuse the budgeted layout of every subtree a perturbation did
not touch.  Violation accounting is kept as per-node contribution
sequences and folded left-to-right in depth-first order at the end, so
cached and full evaluation produce bit-identical deficits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.floorplan.blocks import Block
from repro.memo import DEFAULT_MAX_ENTRIES, BoundedStore
from repro.geometry.rect import Rect
from repro.slicing.polish import H
from repro.slicing.tree import SlicingNode


@dataclass
class BudgetReport:
    """Violation accounting for one budgeted layout.

    All deficits are relative (fraction of the respective area), so the
    penalty is scale-free.
    """

    target_deficit: float = 0.0    # a_t violated, a_m still met
    min_deficit: float = 0.0       # a_m violated
    macro_deficit: float = 0.0     # macros do not fit (relative shortfall)
    repairs: int = 0               # how many sibling area moves happened
    leaf_rects: Dict[int, Rect] = field(default_factory=dict)
    #: ``block -> (cx, cy)`` rectangle centers, carried from the cached
    #: sub-layouts so the cost model's distance term does not recompute
    #: them per evaluation.  Values equal ``leaf_rects[b].center``.
    leaf_centers: Dict[int, Tuple[float, float]] = field(
        default_factory=dict)

    @property
    def is_legal(self) -> bool:
        return self.macro_deficit <= 1e-9 and self.min_deficit <= 1e-9


@dataclass(frozen=True)
class SubLayout:
    """The budgeted expansion of one subtree inside one rectangle.

    ``rects`` lists ``(block, rect)`` pairs and the ``*_contribs``
    tuples list per-node deficit contributions, both in depth-first
    (parent, left, right) order — the exact order the historical
    recursive accumulator produced them in, which is what keeps cached
    folds bit-identical to full evaluation.  ``centers`` caches each
    leaf rectangle's ``(block, cx, cy)`` center so repeated cost
    evaluations (and the distance kernel) never recompute it.
    ``nodes`` counts the slicing-tree nodes in the subtree (for
    cache-saving accounting).
    """

    rects: Tuple[Tuple[int, Rect], ...]
    centers: Tuple[Tuple[int, float, float], ...]
    target_contribs: Tuple[float, ...]
    min_contribs: Tuple[float, ...]
    macro_contribs: Tuple[float, ...]
    repairs: int
    nodes: int


class LayoutCache:
    """Memoized :class:`SubLayout` records keyed by (signature, rect).

    Valid for one evaluation context (fixed blocks and annotation
    limit).  ``nodes_expanded`` counts subtree nodes actually computed;
    ``nodes_saved`` counts the nodes inside cache-hit subtrees that a
    full evaluator would have expanded.  Requires signatures on the
    tree (:func:`repro.slicing.tree.compute_signatures`).  Bounded by
    a :class:`repro.memo.BoundedStore`.
    """

    __slots__ = ("hits", "misses", "nodes_expanded", "nodes_saved",
                 "_store")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self._store = BoundedStore(max_entries)
        self.hits = 0
        self.misses = 0
        self.nodes_expanded = 0
        self.nodes_saved = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()

    def get(self, key: tuple) -> Optional[SubLayout]:
        return self._store.get(key)

    def put(self, key: tuple, sub: SubLayout) -> None:
        self._store.put(key, sub)


def _min_side(node: SlicingNode, across: float, horizontal_split: bool
              ) -> float:
    """Minimum width (or height) the subtree needs given the other side.

    ``across`` is the fixed perpendicular dimension; for a vertical cut
    we ask the composed curve for the minimum width at height ``across``
    and vice versa.  Returns 0 when the subtree holds no macros and
    ``inf`` when not even the most elongated curve point fits.
    """
    curve = node.curve
    if curve is None or curve.is_trivial:
        return 0.0
    if horizontal_split:
        needed = curve.min_width_for_height(across)
    else:
        needed = curve.min_height_for_width(across)
    return float("inf") if needed is None else needed


def _area_violation(node: SlicingNode, got_area: float
                    ) -> Tuple[float, float]:
    """Classify a shrunken subtree's area against its a_t / a_m.

    Returns ``(target_contrib, min_contrib)``.
    """
    if got_area >= node.area_target - 1e-9:
        return 0.0, 0.0
    if got_area >= node.area_min - 1e-9:
        if node.area_target > 0:
            return ((node.area_target - got_area) / node.area_target, 0.0)
        return 0.0, 0.0
    target = 0.0
    minimum = 0.0
    if node.area_target > 0:
        target = (node.area_target - node.area_min) / node.area_target
    if node.area_min > 0:
        minimum = (node.area_min - got_area) / node.area_min
    return target, minimum


def _leaf_layout(node: SlicingNode, rect: Rect,
                 blocks: List[Block]) -> SubLayout:
    block = blocks[node.block]
    macro = ()
    if not block.curve.feasible(rect.w, rect.h):
        # Relative shortfall of the best curve point vs the rect.
        best = 1e18
        for pw, ph in block.curve.points:
            shortfall = (max(0.0, pw - rect.w) * max(1.0, ph)
                         + max(0.0, ph - rect.h) * max(1.0, pw))
            ref = max(pw * ph, 1e-12)
            best = min(best, shortfall / ref)
        if block.curve.is_trivial:
            best = 0.0
        macro = (min(best, 4.0),)
    target, minimum = _area_violation(node, rect.area)
    return SubLayout(
        rects=((node.block, rect),),
        centers=((node.block, rect.x + rect.w / 2.0,
                  rect.y + rect.h / 2.0),),
        target_contribs=(target,) if target else (),
        min_contribs=(minimum,) if minimum else (),
        macro_contribs=macro,
        repairs=0, nodes=1)


def _expand(node: SlicingNode, rect: Rect, blocks: List[Block],
            cache: Optional[LayoutCache]) -> SubLayout:
    """Expand one subtree into its rectangle, memoized when cached."""
    if cache is not None:
        key = (node.signature, rect.x, rect.y, rect.w, rect.h)
        cached = cache.get(key)
        if cached is not None:
            cache.hits += 1
            cache.nodes_saved += cached.nodes
            return cached
        cache.misses += 1

    if node.is_leaf:
        sub = _leaf_layout(node, rect, blocks)
    else:
        horizontal_split = node.op != H   # V cut -> children side by side
        total_target = max(node.left.area_target + node.right.area_target,
                           1e-12)
        if horizontal_split:
            span, across = rect.w, rect.h
        else:
            span, across = rect.h, rect.w

        left_share = span * node.left.area_target / total_target
        left_min = _min_side(node.left, across, horizontal_split)
        right_min = _min_side(node.right, across, horizontal_split)

        own_macro: Tuple[float, ...] = ()
        repairs = 0
        if left_min + right_min > span + 1e-9:
            # Even yielding all sibling area cannot fit both macro sets:
            # split proportionally to the minimum needs and charge the
            # relative overflow as a macro violation.  A subtree that
            # fits at no width reports an infinite need; cap it at the
            # span so the proportional split stays finite.
            overflow = (left_min + right_min - span) / max(span, 1e-12)
            own_macro = (min(overflow, 4.0),)
            repairs = 1
            lm = min(left_min, span)
            rm = min(right_min, span)
            denom = max(lm + rm, 1e-12)
            left_share = span * (lm / denom)
        else:
            lo = left_min
            hi = span - right_min
            clamped = min(max(left_share, lo), hi)
            if abs(clamped - left_share) > 1e-12:
                repairs = 1
            left_share = clamped

        # Guard float noise: shares live in [0, span] exactly.
        left_share = min(max(left_share, 0.0), span)
        right_share = max(span - left_share, 0.0)
        if horizontal_split:
            left_rect = Rect(rect.x, rect.y, left_share, rect.h)
            right_rect = Rect(rect.x + left_share, rect.y,
                              right_share, rect.h)
        else:
            left_rect = Rect(rect.x, rect.y, rect.w, left_share)
            right_rect = Rect(rect.x, rect.y + left_share,
                              rect.w, right_share)

        left = _expand(node.left, left_rect, blocks, cache)
        right = _expand(node.right, right_rect, blocks, cache)
        sub = SubLayout(
            rects=left.rects + right.rects,
            centers=left.centers + right.centers,
            target_contribs=left.target_contribs + right.target_contribs,
            min_contribs=left.min_contribs + right.min_contribs,
            macro_contribs=(own_macro + left.macro_contribs
                            + right.macro_contribs),
            repairs=repairs + left.repairs + right.repairs,
            nodes=1 + left.nodes + right.nodes)

    if cache is not None:
        cache.nodes_expanded += 1
        cache.put(key, sub)
    return sub


def budgeted_layout(root: SlicingNode, region: Rect, blocks: List[Block],
                    cache: Optional[LayoutCache] = None) -> BudgetReport:
    """Assign every leaf block a rectangle inside ``region``.

    ``root`` must already be annotated with composed curves and areas
    (``annotate_curves`` / ``annotate_areas``).  The returned report
    carries the leaf rectangles and the violation accounting used by the
    cost model; rectangles always tile ``region`` exactly.

    With a :class:`LayoutCache` (requires subtree signatures), unchanged
    subtrees reuse their previous expansion; the report is bit-identical
    to the uncached one (``sum`` folds the contributions left-to-right
    in depth-first order, the historical accumulation order).
    """
    if cache is not None and root.signature is None:
        raise ValueError(
            "budgeted_layout(cache=...) needs subtree signatures — run "
            "repro.slicing.tree.compute_signatures(root) first (without "
            "them every subtree would share the cache key None and "
            "collide)")
    sub = _expand(root, region, blocks, cache)
    return BudgetReport(
        target_deficit=sum(sub.target_contribs),
        min_deficit=sum(sub.min_contribs),
        macro_deficit=sum(sub.macro_contribs),
        repairs=sub.repairs,
        leaf_rects=dict(sub.rects),
        leaf_centers={block: (cx, cy)
                      for block, cx, cy in sub.centers})
