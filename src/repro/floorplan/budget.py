"""Top-down area-budgeted layout generation (paper Sect. IV-E).

Unlike bottom-up shape-curve packing, the available rectangle is treated
as a *budget*: the layout always consumes exactly the assigned area.  At
every slicing-tree node the rectangle is split according to the target
areas (a_t) of the two subtrees; when the resulting child rectangle
cannot hold its subtree's macros (checked against the composed shape
curve Γ), area is moved from the sibling, and the move is penalized by
the kind of area the sibling yielded — target slack (cheapest), minimum
area, or macro area (infeasible, most severe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.floorplan.blocks import Block
from repro.geometry.rect import Rect
from repro.slicing.polish import H
from repro.slicing.tree import SlicingNode


@dataclass
class BudgetReport:
    """Violation accounting for one budgeted layout.

    All deficits are relative (fraction of the respective area), so the
    penalty is scale-free.
    """

    target_deficit: float = 0.0    # a_t violated, a_m still met
    min_deficit: float = 0.0       # a_m violated
    macro_deficit: float = 0.0     # macros do not fit (relative shortfall)
    repairs: int = 0               # how many sibling area moves happened
    leaf_rects: Dict[int, Rect] = field(default_factory=dict)

    @property
    def is_legal(self) -> bool:
        return self.macro_deficit <= 1e-9 and self.min_deficit <= 1e-9


def _min_side(node: SlicingNode, across: float, horizontal_split: bool
              ) -> float:
    """Minimum width (or height) the subtree needs given the other side.

    ``across`` is the fixed perpendicular dimension; for a vertical cut
    we ask the composed curve for the minimum width at height ``across``
    and vice versa.  Returns 0 when the subtree holds no macros and
    ``inf`` when not even the most elongated curve point fits.
    """
    curve = node.curve
    if curve is None or curve.is_trivial:
        return 0.0
    if horizontal_split:
        needed = curve.min_width_for_height(across)
    else:
        needed = curve.min_height_for_width(across)
    return float("inf") if needed is None else needed


def _record_area_violation(report: BudgetReport, node: SlicingNode,
                           got_area: float) -> None:
    """Classify a shrunken subtree's area against its a_t / a_m."""
    if got_area >= node.area_target - 1e-9:
        return
    if got_area >= node.area_min - 1e-9:
        if node.area_target > 0:
            report.target_deficit += (
                (node.area_target - got_area) / node.area_target)
        return
    if node.area_target > 0:
        report.target_deficit += (
            (node.area_target - node.area_min) / node.area_target)
    if node.area_min > 0:
        report.min_deficit += (node.area_min - got_area) / node.area_min


def _assign(node: SlicingNode, rect: Rect, blocks: List[Block],
            report: BudgetReport) -> None:
    if node.is_leaf:
        report.leaf_rects[node.block] = rect
        block = blocks[node.block]
        if not block.curve.feasible(rect.w, rect.h):
            # Relative shortfall of the best curve point vs the rect.
            best = 1e18
            for pw, ph in block.curve.points:
                shortfall = (max(0.0, pw - rect.w) * max(1.0, ph)
                             + max(0.0, ph - rect.h) * max(1.0, pw))
                ref = max(pw * ph, 1e-12)
                best = min(best, shortfall / ref)
            if block.curve.is_trivial:
                best = 0.0
            report.macro_deficit += min(best, 4.0)
        _record_area_violation(report, node, rect.area)
        return

    horizontal_split = node.op != H       # V cut -> children side by side
    total_target = max(node.left.area_target + node.right.area_target,
                       1e-12)
    if horizontal_split:
        span, across = rect.w, rect.h
    else:
        span, across = rect.h, rect.w

    left_share = span * node.left.area_target / total_target
    left_min = _min_side(node.left, across, horizontal_split)
    right_min = _min_side(node.right, across, horizontal_split)

    if left_min + right_min > span + 1e-9:
        # Even yielding all sibling area cannot fit both macro sets:
        # split proportionally to the minimum needs and charge the
        # relative overflow as a macro violation.  A subtree that fits
        # at no width reports an infinite need; cap it at the span so
        # the proportional split stays finite.
        overflow = (left_min + right_min - span) / max(span, 1e-12)
        report.macro_deficit += min(overflow, 4.0)
        report.repairs += 1
        lm = min(left_min, span)
        rm = min(right_min, span)
        denom = max(lm + rm, 1e-12)
        left_share = span * (lm / denom)
    else:
        lo = left_min
        hi = span - right_min
        clamped = min(max(left_share, lo), hi)
        if abs(clamped - left_share) > 1e-12:
            report.repairs += 1
        left_share = clamped

    # Guard float noise: shares live in [0, span] exactly.
    left_share = min(max(left_share, 0.0), span)
    right_share = max(span - left_share, 0.0)
    if horizontal_split:
        left_rect = Rect(rect.x, rect.y, left_share, rect.h)
        right_rect = Rect(rect.x + left_share, rect.y,
                          right_share, rect.h)
    else:
        left_rect = Rect(rect.x, rect.y, rect.w, left_share)
        right_rect = Rect(rect.x, rect.y + left_share,
                          rect.w, right_share)

    _assign(node.left, left_rect, blocks, report)
    _assign(node.right, right_rect, blocks, report)


def budgeted_layout(root: SlicingNode, region: Rect,
                    blocks: List[Block]) -> BudgetReport:
    """Assign every leaf block a rectangle inside ``region``.

    ``root`` must already be annotated with composed curves and areas
    (``annotate_curves`` / ``annotate_areas``).  The returned report
    carries the leaf rectangles and the violation accounting used by the
    cost model; rectangles always tile ``region`` exactly.
    """
    report = BudgetReport()
    _assign(root, region, blocks, report)
    return report
