"""Per-level layout generation: hybrid hard/soft block floorplanning.

A floorplanning instance at one hierarchy level is a set of blocks
〈Γ, a_m, a_t〉 plus fixed terminals (ports, external macros) and an
affinity matrix.  The layout is a slicing structure searched with
simulated annealing; rectangles are assigned **top-down by area budget**
— dimensions are a budget, not a constraint — with legality repaired by
moving area between siblings at increasing penalty severity
(a_t < a_m < macro area).
"""

from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.budget import (
    BudgetReport,
    LayoutCache,
    SubLayout,
    budgeted_layout,
)
from repro.floorplan.cost import CostModel, CostWeights
from repro.floorplan.engine import (
    LayoutConfig,
    LayoutProblem,
    LayoutResult,
    generate_layout,
)

__all__ = [
    "Block",
    "BudgetReport",
    "LayoutCache",
    "SubLayout",
    "CostModel",
    "CostWeights",
    "LayoutConfig",
    "LayoutProblem",
    "LayoutResult",
    "Terminal",
    "budgeted_layout",
    "generate_layout",
]
