"""The block model: the paper's 〈Γ, a_m, a_t〉 triple plus terminals.

A block is one hierarchy-cut node (HCB member): a hybrid of hard macros
and soft standard-cell area.  Its shape curve Γ constrains only the
macros; ``a_m`` is the *minimum* area (all macros and cells beneath the
node); ``a_t`` is the *target* area after glue absorption and die-fill
scaling.  Terminals are fixed points the cost function can pull blocks
toward: chip ports and macros outside the subtree being floorplanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.rect import Point
from repro.shapecurve.curve import ShapeCurve


@dataclass
class Block:
    """A floorplanning block at one hierarchy level."""

    index: int
    name: str
    curve: ShapeCurve
    area_min: float
    area_target: float
    macro_count: int = 0
    hier_path: Optional[str] = None
    seq_nodes: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.area_min < 0:
            raise ValueError(f"block {self.name}: negative minimum area")
        if self.area_target < self.area_min - 1e-9:
            # The target must at least cover the block's own contents.
            self.area_target = self.area_min

    @property
    def has_macros(self) -> bool:
        return self.macro_count > 0

    @property
    def is_soft(self) -> bool:
        return self.curve.is_trivial

    def __repr__(self) -> str:
        return (f"Block({self.name}: macros={self.macro_count}, "
                f"a_m={self.area_min:.0f}, a_t={self.area_target:.0f})")


@dataclass
class Terminal:
    """A fixed point with dataflow affinity to the blocks."""

    index: int                 # index in the affinity matrix tail
    name: str
    pos: Point
    kind: str = "port"         # "port" | "ext"

    def __repr__(self) -> str:
        return f"Terminal({self.name}@{self.pos.x:.0f},{self.pos.y:.0f})"
