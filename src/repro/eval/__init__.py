"""Evaluation harness: run flows, extract metrics, print paper tables.

The paper's referee is fixed: every flow's macro placement is followed
by the *same* standard-cell placement, congestion estimation and STA;
wirelength is compared as geometric-mean ratios against handFP.  This
package reproduces that pipeline end to end and formats Table II and
Table III.
"""

from repro.api.run import FlowMetrics, evaluate_placement, run_flow
from repro.api.suite import SuiteResult, run_suite
from repro.eval.tables import format_table2, format_table3, geomean

__all__ = [
    "FlowMetrics",
    "SuiteResult",
    "evaluate_placement",
    "format_table2",
    "format_table3",
    "geomean",
    "run_flow",
    "run_suite",
]
