"""Formatting of the paper's Table II and Table III."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.api.run import FlowMetrics


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's WL averaging choice)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize_to_handfp(rows: List[FlowMetrics]) -> None:
    """Fill ``wl_norm`` = WL / WL(handFP of the same design), in place."""
    handfp_wl: Dict[str, float] = {
        r.design: r.wl_meters for r in rows if r.flow == "handfp"}
    for row in rows:
        base = handfp_wl.get(row.design)
        row.wl_norm = row.wl_meters / base if base else 0.0


_FLOW_ORDER = ("indeda", "hidap", "handfp")
_EFFORT_NOTE = {
    "indeda": "fast flat tool (CPU)",
    "hidap": "HiDaP, best of 3 lambdas (CPU)",
    "handfp": "ground-truth oracle, long refinement (CPU)",
}


def format_table2(rows: Sequence[FlowMetrics]) -> str:
    """Average WL (geomean, normalized), average WNS% and effort."""
    lines = ["Table II: Average WL, WNS and effort for the three flows",
             f"{'flow':8s} {'WL(geomean)':>12s} {'WNS%(avg)':>10s} "
             f"{'runtime(s)':>16s}  effort"]
    for flow in _FLOW_ORDER:
        flow_rows = [r for r in rows if r.flow == flow]
        if not flow_rows:
            continue
        # Without a handFP baseline the normalized column is undefined;
        # fall back to raw meters so partial-suite runs still print.
        if all(r.wl_norm > 0 for r in flow_rows):
            wl = geomean([r.wl_norm for r in flow_rows])
        else:
            wl = geomean([r.wl_meters for r in flow_rows])
        wns = sum(r.wns_percent for r in flow_rows) / len(flow_rows)
        tmin = min(r.placer_seconds for r in flow_rows)
        tmax = max(r.placer_seconds for r in flow_rows)
        lines.append(f"{flow:8s} {wl:12.3f} {wns:+10.1f} "
                     f"{tmin:7.1f}-{tmax:7.1f}  {_EFFORT_NOTE[flow]}")
    return "\n".join(lines)


def format_table3(rows: Sequence[FlowMetrics],
                  design_info: Dict[str, str] = None) -> str:
    """Per-circuit metrics in the paper's Table III layout."""
    design_info = design_info or {}
    designs: List[str] = []
    for row in rows:
        if row.design not in designs:
            designs.append(row.design)
    lines = ["Table III: Metrics after placement using the three flows",
             f"{'circ':5s} {'flow':8s} {'WL(m)':>9s} {'norm':>6s} "
             f"{'GRC%':>7s} {'WNS%':>7s} {'TNS':>9s}"]
    for design in designs:
        info = design_info.get(design, "")
        if info:
            lines.append(f"-- {design}: {info}")
        for flow in _FLOW_ORDER:
            for row in rows:
                if row.design == design and row.flow == flow:
                    lines.append(
                        f"{design:5s} {flow:8s} {row.wl_meters:9.3f} "
                        f"{row.wl_norm:6.3f} {row.grc_percent:7.2f} "
                        f"{row.wns_percent:+7.1f} {row.tns:9.1f}")
    return "\n".join(lines)
