"""Deprecated shim: the implementation moved to :mod:`repro.api.run`.

``FlowMetrics``, ``evaluate_placement``, ``run_flow`` and
``HIDAP_LAMBDAS`` are the same objects as the ones exported by
:mod:`repro.api` — importing them from here keeps working but emits a
:class:`DeprecationWarning`.  New code should import from
``repro.api``.
"""

from __future__ import annotations

import warnings

__all__ = ["FlowMetrics", "HIDAP_LAMBDAS", "evaluate_placement",
           "run_flow"]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.eval.flow.{name} is deprecated; import {name} "
            "from repro.api instead",
            DeprecationWarning, stacklevel=2)
        from repro.api import run as _run
        return getattr(_run, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
