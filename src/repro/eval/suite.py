"""Suite runner: the c1..c8 comparison behind Tables II and III.

The implementation moved to :mod:`repro.api.suite`, which adds
parallel execution (``run_suite(workers=N)``) and prepared-design
caching; this module re-exports it so existing imports keep working.
"""

from __future__ import annotations

from typing import Tuple

from repro.api.prepared import prepare_design as _prepare_design
from repro.api.suite import DEFAULT_FLOWS, SuiteResult, run_suite
from repro.gen.spec import DesignSpec, GroundTruth
from repro.netlist.flatten import FlatDesign

__all__ = ["DEFAULT_FLOWS", "SuiteResult", "prepare_design",
           "run_suite"]


def prepare_design(spec: DesignSpec) -> Tuple[FlatDesign, GroundTruth,
                                              float, float]:
    """Build + flatten one suite design and size its die.

    Legacy tuple interface; prefer
    :func:`repro.api.prepared.prepare_design`, which returns a caching
    :class:`~repro.api.prepared.PreparedDesign`.
    """
    prepared = _prepare_design(spec)
    return prepared.flat, prepared.truth, prepared.die_w, prepared.die_h
