"""Deprecated shim: the implementation lives in :mod:`repro.api.suite`.

``DEFAULT_FLOWS``, ``SuiteResult`` and ``run_suite`` are the same
objects as the ones exported by :mod:`repro.api`; the legacy
tuple-returning ``prepare_design`` is kept here for old callers.  All
of them emit a :class:`DeprecationWarning` — new code should import
from ``repro.api``.
"""

from __future__ import annotations

import warnings

__all__ = ["DEFAULT_FLOWS", "SuiteResult", "prepare_design",
           "run_suite"]


def _legacy_prepare_design(spec):
    """Build + flatten one suite design and size its die.

    Legacy tuple interface; prefer
    :func:`repro.api.prepared.prepare_design`, which returns a caching
    :class:`~repro.api.prepared.PreparedDesign`.
    """
    from repro.api.prepared import prepare_design as _prepare_design
    prepared = _prepare_design(spec)
    return (prepared.flat, prepared.truth, prepared.die_w,
            prepared.die_h)


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.eval.suite.{name} is deprecated; use repro.api "
            "instead (prepare_design there returns a PreparedDesign)",
            DeprecationWarning, stacklevel=2)
        if name == "prepare_design":
            return _legacy_prepare_design
        from repro.api import suite as _suite
        return getattr(_suite, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
