"""Suite runner: the c1..c8 comparison behind Tables II and III."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import Effort
from repro.eval.flow import FlowMetrics, run_flow
from repro.eval.tables import normalize_to_handfp
from repro.gen.designs import build_design, die_for, suite_specs
from repro.gen.spec import DesignSpec, GroundTruth
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.flatten import FlatDesign, flatten

DEFAULT_FLOWS = ("indeda", "hidap-best3", "handfp")


@dataclass
class SuiteResult:
    """All rows plus bookkeeping for table formatting."""

    rows: List[FlowMetrics] = field(default_factory=list)
    design_info: Dict[str, str] = field(default_factory=dict)
    total_seconds: float = 0.0

    def rows_for(self, design: str) -> List[FlowMetrics]:
        return [r for r in self.rows if r.design == design]


def prepare_design(spec: DesignSpec) -> Tuple[FlatDesign, GroundTruth,
                                              float, float]:
    """Build + flatten one suite design and size its die."""
    design, truth = build_design(spec)
    die_w, die_h = die_for(design, utilization=spec.utilization)
    return flatten(design), truth, die_w, die_h


def run_suite(scale: str = "bench",
              flows: Sequence[str] = DEFAULT_FLOWS,
              designs: Optional[Sequence[str]] = None,
              seed: int = 1,
              effort: Effort = Effort.NORMAL,
              verbose: bool = False) -> SuiteResult:
    """Run every flow on every (selected) suite design.

    The flow label ``hidap-best3`` is reported as ``hidap`` in the rows,
    matching the paper's presentation.
    """
    start = time.perf_counter()
    result = SuiteResult()
    for spec in suite_specs(scale):
        if designs is not None and spec.name not in designs:
            continue
        flat, truth, die_w, die_h = prepare_design(spec)
        gseq = build_gseq(build_gnet(flat), flat)
        result.design_info[spec.name] = (
            f"{len(flat.cells)} cells, {len(flat.macros())} macros "
            f"(paper: {spec.paper_cells} cells, {spec.paper_macros} "
            f"macros)")
        for flow in flows:
            metrics = run_flow(flat, truth, flow, die_w, die_h,
                               seed=seed, effort=effort, gseq=gseq)
            if flow.startswith("hidap"):
                metrics.flow = "hidap"
            result.rows.append(metrics)
            if verbose:
                print(metrics.row())
    normalize_to_handfp(result.rows)
    result.total_seconds = time.perf_counter() - start
    return result
