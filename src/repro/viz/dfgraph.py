"""Dataflow-graph diagrams (the paper's Fig. 9d and interactive tool).

The paper ships an interactive viewer where each colored box is a Gdf
vertex and arrow brightness encodes affinity.  This module renders the
same content as Graphviz DOT text and as a standalone SVG: blocks drawn
at their floorplan positions, edges weighted by affinity.
"""

from __future__ import annotations

from typing import Dict

from repro.geometry.rect import Point, Rect
from repro.hiergraph.gdf import Gdf


def gdf_to_dot(gdf: Gdf, lam: float = 0.5, latency_k: float = 1.0,
               min_affinity: float = 0.0) -> str:
    """Render Gdf as a Graphviz digraph with affinity edge weights."""
    lines = ["digraph Gdf {", '  rankdir=LR;',
             '  node [shape=box, style=filled, fillcolor="#cfe2f3"];']
    for node in gdf.nodes:
        shape = "box" if node.is_block else "ellipse"
        fill = "#cfe2f3" if node.is_block else "#f9cb9c"
        lines.append(f'  n{node.index} [label="{node.name}", '
                     f'shape={shape}, fillcolor="{fill}"];')
    peak = max((edge.affinity(lam, latency_k)
                for edge in gdf.edges.values()), default=1.0) or 1.0
    for (i, j), edge in sorted(gdf.edges.items()):
        a = edge.affinity(lam, latency_k)
        if a <= min_affinity:
            continue
        width = 0.5 + 3.5 * a / peak
        lines.append(f'  n{i} -> n{j} [penwidth={width:.2f}, '
                     f'label="{a:.0f}"];')
    lines.append("}")
    return "\n".join(lines)


def svg_dataflow(gdf: Gdf, positions: Dict[int, Rect], die: Rect,
                 lam: float = 0.5, latency_k: float = 1.0,
                 scale: float = 4.0) -> str:
    """Fig. 9d: blocks at their floorplan rectangles + affinity arrows.

    ``positions`` maps Gdf node index -> rectangle; nodes without one
    (ports) are skipped as arrow endpoints are enough for them.
    """
    from repro.viz.svg import _PALETTE, _rect_elem, _svg_header

    parts = _svg_header(die.w, die.h, scale)
    parts.append(_rect_elem(Rect(die.x, die.y, die.w, die.h), die,
                            "#ffffff", "#000", stroke_w=0.8))
    centers: Dict[int, Point] = {}
    for node in gdf.nodes:
        rect = positions.get(node.index)
        if rect is None:
            continue
        color = _PALETTE[node.index % len(_PALETTE)]
        parts.append(_rect_elem(rect, die, color, opacity=0.7))
        centers[node.index] = rect.center
        font = max(1.5, min(rect.h * 0.3, 5.0))
        parts.append(
            f'<text x="{rect.x - die.x + 0.8:.2f}" '
            f'y="{die.y2 - rect.y2 + font + 0.6:.2f}" '
            f'font-size="{font:.1f}" font-family="monospace">'
            f'{node.name.split("/")[-1]}</text>')

    peak = max((edge.affinity(lam, latency_k)
                for edge in gdf.edges.values()), default=1.0) or 1.0
    for (i, j), edge in sorted(gdf.edges.items()):
        if i not in centers or j not in centers:
            continue
        a = edge.affinity(lam, latency_k)
        if a <= 0:
            continue
        width = 0.3 + 2.2 * (a / peak)
        opacity = 0.25 + 0.75 * (a / peak)
        p, q = centers[i], centers[j]
        parts.append(
            f'<line x1="{p.x - die.x:.2f}" y1="{die.y2 - p.y:.2f}" '
            f'x2="{q.x - die.x:.2f}" y2="{die.y2 - q.y:.2f}" '
            f'stroke="#c00" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.2f}"/>')
    parts.append("</svg>")
    return "\n".join(parts)
