"""Standard-cell density maps (the paper's Fig. 9a-c).

The paper compares flows by the cell-density rasters after placement:
wall-hugging macro placements squeeze cells into hot ridges near the
macros, while HiDaP's distributed placement flattens the peaks.
``density_stats`` extracts exactly that peak figure.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.placement.stdcell import CellPlacement


def density_map(cells: CellPlacement, bins: int = 32) -> np.ndarray:
    """Cell-area density per bin, normalized by bin area."""
    die = cells.die
    raster = np.zeros((bins, bins))
    bw = die.w / bins
    bh = die.h / bins
    if len(cells.x) == 0:
        return raster
    bi = np.minimum(((cells.x - die.x) / bw).astype(int), bins - 1)
    bj = np.minimum(((cells.y - die.y) / bh).astype(int), bins - 1)
    areas = np.array([c.area for c in cells.clustered.clusters])
    np.add.at(raster, (np.maximum(bi, 0), np.maximum(bj, 0)), areas)
    return raster / (bw * bh)


@dataclass
class DensityStats:
    """Summary numbers of one density raster."""

    peak: float
    mean: float
    hot_fraction: float     # fraction of bins above 2x mean

    def __repr__(self) -> str:
        return (f"DensityStats(peak={self.peak:.2f}, mean={self.mean:.2f},"
                f" hot={100 * self.hot_fraction:.1f}%)")


def density_stats(raster: np.ndarray) -> DensityStats:
    mean = float(raster.mean())
    hot = float((raster > 2.0 * mean).mean()) if mean > 0 else 0.0
    return DensityStats(peak=float(raster.max()), mean=mean,
                        hot_fraction=hot)
