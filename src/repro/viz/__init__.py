"""Visualization: ASCII/SVG floorplans, density maps, dataflow diagrams.

Reproduces the paper's visual artifacts: the multi-level evolution of
Fig. 1, the standard-cell density maps of Fig. 9a-c, and the top-level
Gdf block-floorplan diagram of Fig. 9d (the paper's "interactive graphic
tool" equivalent, rendered to SVG/ASCII instead of a GUI).
"""

from repro.viz.ascii_art import ascii_floorplan
from repro.viz.density import density_map, density_stats
from repro.viz.svg import svg_floorplan, svg_density_map
from repro.viz.dfgraph import gdf_to_dot, svg_dataflow

__all__ = [
    "ascii_floorplan",
    "density_map",
    "density_stats",
    "gdf_to_dot",
    "svg_dataflow",
    "svg_density_map",
    "svg_floorplan",
]
