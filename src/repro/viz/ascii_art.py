"""ASCII floorplan rendering for terminals and tests."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect

#: Fill characters cycled over rectangles.
_FILLS = "##@@%%**++==ooxx"


def ascii_floorplan(die: Rect, rects: Sequence[Tuple[str, Rect]],
                    width: int = 64, height: Optional[int] = None) -> str:
    """Draw labelled rectangles inside the die as character art.

    Each rectangle is filled with a cycling character and carries its
    label (clipped) in the top-left corner.  Aspect ratio is preserved
    assuming terminal cells are twice as tall as wide.
    """
    if height is None:
        height = max(8, int(width * (die.h / max(die.w, 1e-9)) * 0.5))
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        cx = int((x - die.x) / die.w * (width - 1)) if die.w else 0
        cy = int((y - die.y) / die.h * (height - 1)) if die.h else 0
        # Flip y: row 0 is the top of the die.
        return (min(max(cx, 0), width - 1),
                height - 1 - min(max(cy, 0), height - 1))

    for index, (label, rect) in enumerate(rects):
        fill = _FILLS[index % len(_FILLS)]
        x0, y1 = to_cell(rect.x, rect.y)
        x1, y0 = to_cell(rect.x2, rect.y2)
        for row in range(y0, y1 + 1):
            for col in range(x0, x1 + 1):
                grid[row][col] = fill
        text = label[:max(0, x1 - x0 + 1)]
        for k, ch in enumerate(text):
            if x0 + k < width:
                grid[y0][x0 + k] = ch

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return border + "\n" + body + "\n" + border


def ascii_histogram(values: Dict[int, float], width: int = 40) -> str:
    """A quick latency-histogram bar chart (for Gdf edge inspection)."""
    if not values:
        return "(empty)"
    peak = max(values.values())
    lines = []
    for latency in sorted(values):
        bar = "#" * max(1, int(values[latency] / peak * width))
        lines.append(f"lat {latency:3d} | {bar} {values[latency]:g}")
    return "\n".join(lines)
