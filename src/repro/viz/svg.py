"""SVG rendering of floorplans and density maps."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect

_PALETTE = ["#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
            "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"]


def _heat_color(value: float) -> str:
    """Blue (0) -> yellow (0.5) -> red (1) heat ramp."""
    v = min(max(value, 0.0), 1.0)
    if v < 0.5:
        t = v / 0.5
        r, g, b = int(40 + t * 215), int(80 + t * 175), int(200 - t * 150)
    else:
        t = (v - 0.5) / 0.5
        r, g, b = 255, int(255 - t * 200), int(50 - t * 50)
    return f"#{r:02x}{g:02x}{b:02x}"


def _svg_header(w: float, h: float, scale: float) -> List[str]:
    return [f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{w * scale:.0f}" height="{h * scale:.0f}" '
            f'viewBox="0 0 {w:.2f} {h:.2f}">']


def _rect_elem(rect: Rect, die: Rect, fill: str, stroke: str = "#222",
               opacity: float = 1.0, stroke_w: float = 0.4) -> str:
    # SVG y grows downward; flip against the die.
    y = die.y2 - rect.y2
    return (f'<rect x="{rect.x - die.x:.2f}" y="{y:.2f}" '
            f'width="{rect.w:.2f}" height="{rect.h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_w}" fill-opacity="{opacity:.2f}"/>')


def svg_floorplan(die: Rect, rects: Sequence[Tuple[str, Rect]],
                  scale: float = 4.0,
                  color_by_prefix: bool = True) -> str:
    """Render labelled rectangles on the die as an SVG document.

    Rectangles sharing a path prefix (text before the first '/') share
    a color, visually grouping subsystems.
    """
    parts = _svg_header(die.w, die.h, scale)
    parts.append(_rect_elem(Rect(die.x, die.y, die.w, die.h), die,
                            "#f7f7f7", "#000", stroke_w=0.8))
    prefix_color: Dict[str, str] = {}
    for label, rect in rects:
        prefix = label.split("/")[0] if color_by_prefix else label
        color = prefix_color.setdefault(
            prefix, _PALETTE[len(prefix_color) % len(_PALETTE)])
        parts.append(_rect_elem(rect, die, color, opacity=0.85))
        font = max(1.2, min(rect.w / max(len(label), 1) * 1.6, rect.h * 0.5,
                            4.0))
        parts.append(
            f'<text x="{rect.x - die.x + 0.6:.2f}" '
            f'y="{die.y2 - rect.y2 + font + 0.4:.2f}" '
            f'font-size="{font:.1f}" font-family="monospace" '
            f'fill="#111">{label.split("/")[-1]}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def svg_density_map(die: Rect, density: np.ndarray,
                    macro_rects: Sequence[Rect] = (),
                    scale: float = 4.0) -> str:
    """Render a density raster (Fig. 9 style) with macro outlines."""
    bins_x, bins_y = density.shape
    bw = die.w / bins_x
    bh = die.h / bins_y
    peak = max(float(density.max()), 1e-12)
    parts = _svg_header(die.w, die.h, scale)
    for i in range(bins_x):
        for j in range(bins_y):
            value = float(density[i, j]) / peak
            cell = Rect(die.x + i * bw, die.y + j * bh, bw, bh)
            parts.append(_rect_elem(cell, die, _heat_color(value),
                                    stroke="none", stroke_w=0.0))
    for rect in macro_rects:
        parts.append(_rect_elem(rect, die, "none", "#000", stroke_w=0.6))
    parts.append("</svg>")
    return "\n".join(parts)
