"""repro: a reproduction of "RTL-Aware Dataflow-Driven Macro Placement"
(Vidal-Obiols et al., DATE 2019).

The package implements the paper's HiDaP macro placer plus every
substrate its evaluation depends on: a hierarchical netlist model, the
HT/Gnet/Gseq/Gdf abstraction stack, slicing-tree floorplanning with
top-down area budgeting, a synthetic industrial-design generator, two
baseline flows, and a shared referee (cell placement, congestion, STA).

Quickstart
----------
>>> from repro import HiDaP, HiDaPConfig, build_design, suite_specs
>>> design, truth = build_design(suite_specs("tiny")[0])
>>> placement = HiDaP(HiDaPConfig(seed=1)).place(design, 200.0, 200.0)
>>> len(placement.macros)
32
"""

from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.core.result import MacroPlacement, PlacedMacro
from repro.eval.flow import FlowMetrics, run_flow
from repro.eval.suite import run_suite
from repro.eval.tables import format_table2, format_table3
from repro.gen.designs import build_design, die_for, suite_specs
from repro.geometry.rect import Point, Rect
from repro.netlist.core import Design
from repro.netlist.flatten import flatten

__version__ = "1.0.0"

__all__ = [
    "Design",
    "Effort",
    "FlowMetrics",
    "HiDaP",
    "HiDaPConfig",
    "MacroPlacement",
    "PlacedMacro",
    "Point",
    "Rect",
    "__version__",
    "build_design",
    "die_for",
    "flatten",
    "format_table2",
    "format_table3",
    "run_flow",
    "run_suite",
    "suite_specs",
]
