"""repro: a reproduction of "RTL-Aware Dataflow-Driven Macro Placement"
(Vidal-Obiols et al., DATE 2019).

The package implements the paper's HiDaP macro placer plus every
substrate its evaluation depends on: a hierarchical netlist model, the
HT/Gnet/Gseq/Gdf abstraction stack, slicing-tree floorplanning with
top-down area budgeting, a synthetic industrial-design generator, two
baseline flows, and a shared referee (cell placement, congestion, STA).

All flows sit behind the unified :mod:`repro.api`: a flow registry
(``get_flow``/``register_flow``/``available_flows``), a staged pipeline
with observer hooks, prepared-design caching, and a parallel suite
runner.

Quickstart
----------
>>> from repro import get_flow, prepare_suite_design
>>> prepared = prepare_suite_design("c1", scale="tiny")
>>> placement = get_flow("hidap:lam=0.5", seed=1).place(prepared)
>>> len(placement.macros)
32

Run a whole comparison suite in parallel and print the paper's tables:

>>> from repro import format_table2, run_suite
>>> result = run_suite(scale="tiny", workers=4)   # doctest: +SKIP
>>> print(format_table2(result.rows))             # doctest: +SKIP

Or run placement as a service: compiled designs persist in an on-disk
store (``store=DIR`` also works on ``run_suite``), pool workers attach
them through shared memory instead of recompiling, and jobs go through
a submit/poll API:

>>> from repro.api import PlacementService, RunOptions
>>> with PlacementService(scale="tiny", designs=("c1",),
...                       store="/tmp/hidap-store", workers=2,
...                       options=RunOptions(seed=1)) as service:
...     handle = service.submit("c1", "hidap")
...     row = handle.result()                     # doctest: +SKIP

Or drop to the classic object API:

>>> from repro import HiDaP, HiDaPConfig, build_design, suite_specs
>>> design, truth = build_design(suite_specs("tiny")[0])
>>> placement = HiDaP(HiDaPConfig(seed=1)).place(design, 200.0, 200.0)
>>> len(placement.macros)
32
"""

from repro.api import (
    Pipeline,
    PipelineObserver,
    Placer,
    PreparedDesign,
    RunArtifacts,
    Stage,
    available_flows,
    build_hidap_pipeline,
    get_flow,
    prepare_suite_design,
    register_flow,
    run_suite,
)
from repro.api.run import FlowMetrics, RunOptions, run_flow
from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.core.result import MacroPlacement, PlacedMacro
from repro.eval.tables import format_table2, format_table3
from repro.gen.designs import build_design, die_for, suite_specs
from repro.geometry.rect import Point, Rect
from repro.netlist.core import Design
from repro.netlist.flatten import flatten

__version__ = "1.1.0"

__all__ = [
    "Design",
    "Effort",
    "FlowMetrics",
    "HiDaP",
    "HiDaPConfig",
    "MacroPlacement",
    "Pipeline",
    "PipelineObserver",
    "PlacedMacro",
    "Placer",
    "Point",
    "PreparedDesign",
    "Rect",
    "RunArtifacts",
    "RunOptions",
    "Stage",
    "__version__",
    "available_flows",
    "build_design",
    "build_hidap_pipeline",
    "die_for",
    "flatten",
    "format_table2",
    "format_table3",
    "get_flow",
    "prepare_suite_design",
    "register_flow",
    "run_flow",
    "run_suite",
    "suite_specs",
]
