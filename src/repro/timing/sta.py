"""Placement-aware static timing analysis on Gseq.

Each Gseq edge is one clock-cycle path.  Endpoint positions come from
the placed design: macros at their center, register arrays at the mean
position of their flop clusters, ports at their pad location.  Slack is
measured per edge against a design-specific clock period; WNS is the
worst slack (reported as a percentage of the period, negative = failing)
and TNS accumulates negative slack over all failing endpoints,
mirroring the paper's Table III columns.

:func:`analyze_timing` dispatches through the referee backend registry
(:mod:`repro.metrics`): the ``numpy`` default runs the levelized batched
kernel over compiled :class:`~repro.metrics.timing_kernel.TimingArrays`;
:func:`analyze_timing_reference` keeps the original per-edge loop as the
``python`` oracle.  Both return bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.result import MacroPlacement
from repro.geometry.rect import Point
from repro.hiergraph.gseq import Gseq, SeqNode
from repro.netlist.flatten import FlatDesign
from repro.placement.stdcell import CellPlacement
from repro.timing.delay import DelayModel


@dataclass
class TimingReport:
    """Timing summary for one placed design."""

    clock_period: float
    wns: float                    # worst slack (negative = violation)
    tns: float                    # total negative slack (<= 0)
    n_paths: int
    n_failing: int
    worst_edge: Optional[Tuple[str, str]] = None

    @property
    def wns_percent(self) -> float:
        """WNS as a percentage of the clock period (paper's WNS%).

        Positive slack reports as 0.0, matching the paper's convention
        of showing met timing as zero.
        """
        return 100.0 * min(self.wns, 0.0) / self.clock_period

    def __repr__(self) -> str:
        return (f"TimingReport(T={self.clock_period:.2f}, "
                f"WNS={self.wns_percent:+.1f}%, TNS={self.tns:.1f}, "
                f"{self.n_failing}/{self.n_paths} failing)")


def _node_position(node: SeqNode, flat: FlatDesign,
                   placement: MacroPlacement, cells: CellPlacement,
                   port_positions: Dict[str, Point]) -> Optional[Point]:
    if node.is_macro:
        placed = placement.macros.get(node.cells[0])
        return placed.rect.center if placed else None
    if node.is_port:
        return port_positions.get(node.name)
    xs: List[float] = []
    ys: List[float] = []
    for cell_index in node.cells:
        pos = cells.cell_pos(cell_index)
        if pos is not None:
            xs.append(pos.x)
            ys.append(pos.y)
    if not xs:
        return None
    return Point(sum(xs) / len(xs), sum(ys) / len(ys))


def default_clock_period(die_w: float, die_h: float,
                         model: Optional[DelayModel] = None) -> float:
    """A flow-independent clock period for a die of the given size.

    Calibrated so a path crossing ~30% of the die half-perimeter meets
    timing exactly: good floorplans close timing, bad ones go negative —
    the regime the paper's circuits sit in.
    """
    model = model or DelayModel()
    reachable = 0.30 * (die_w + die_h)
    return model.path_delay(reachable)


def analyze_timing(flat: FlatDesign, gseq: Gseq,
                   placement: MacroPlacement, cells: CellPlacement,
                   port_positions: Dict[str, Point],
                   clock_period: Optional[float] = None,
                   model: Optional[DelayModel] = None,
                   backend=None) -> TimingReport:
    """Evaluate every Gseq edge against the clock period.

    ``backend`` selects a referee backend by name or instance (``None``
    → the :mod:`repro.metrics` registry default, normally ``numpy``).
    """
    from repro.metrics import get_backend

    model = model or DelayModel()
    if clock_period is None:
        clock_period = default_clock_period(placement.die.w,
                                            placement.die.h, model)
    return get_backend(backend).timing(flat, gseq, placement, cells,
                                       port_positions, clock_period,
                                       model)


def analyze_timing_reference(flat: FlatDesign, gseq: Gseq,
                             placement: MacroPlacement,
                             cells: CellPlacement,
                             port_positions: Dict[str, Point],
                             clock_period: Optional[float] = None,
                             model: Optional[DelayModel] = None
                             ) -> TimingReport:
    """The per-edge reference loop (the ``python`` backend's kernel)."""
    model = model or DelayModel()
    if clock_period is None:
        clock_period = default_clock_period(placement.die.w,
                                            placement.die.h, model)

    positions: List[Optional[Point]] = [
        _node_position(node, flat, placement, cells, port_positions)
        for node in gseq.nodes]

    wns = float("inf")
    tns = 0.0
    n_paths = 0
    n_failing = 0
    worst_edge: Optional[Tuple[str, str]] = None
    for (u, v), _bits in gseq.edge_bits.items():
        pu, pv = positions[u], positions[v]
        if pu is None or pv is None:
            continue
        delay = model.path_delay(pu.manhattan(pv))
        slack = clock_period - delay
        n_paths += 1
        if slack < wns:
            wns = slack
            worst_edge = (gseq.nodes[u].name, gseq.nodes[v].name)
        if slack < 0:
            n_failing += 1
            tns += slack
    if n_paths == 0:
        wns = 0.0
    return TimingReport(clock_period=clock_period, wns=wns, tns=tns,
                        n_paths=n_paths, n_failing=n_failing,
                        worst_edge=worst_edge)
