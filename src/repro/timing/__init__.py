"""Static timing analysis over the sequential graph.

The paper's WNS/TNS columns come from a commercial STA after placement.
This package reproduces the referee at the granularity macro placement
actually influences: every Gseq edge is a register-to-register (or
macro/port) path whose delay is a fixed logic part plus a wire part
proportional to the placed distance of its endpoints.  The clock period
is design-specific but flow-independent, so slack comparisons between
flows are fair.
"""

from repro.timing.delay import DelayModel
from repro.timing.sta import (
    TimingReport,
    analyze_timing,
    analyze_timing_reference,
    default_clock_period,
)

__all__ = ["DelayModel", "TimingReport", "analyze_timing",
           "analyze_timing_reference", "default_clock_period"]
