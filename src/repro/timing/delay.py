"""Wire and stage delay models.

A linear (buffered-wire) delay model is the standard assumption at
floorplan stage: repeater insertion makes delay proportional to
distance.  Units are abstract: one "ns" equals the delay of a nominal
logic stage; the wire coefficient converts site units to the same
scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DelayModel:
    """Coefficients of the stage-delay estimate.

    delay(edge) = clk_to_q + logic_delay + wire_per_unit * distance
    """

    clk_to_q: float = 0.12
    logic_delay: float = 0.55
    setup: float = 0.08
    wire_per_unit: float = 0.011

    def path_delay(self, distance: float) -> float:
        return (self.clk_to_q + self.logic_delay + self.setup
                + self.wire_per_unit * max(0.0, distance))
