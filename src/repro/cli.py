"""Command-line interface: ``hidap <subcommand>``.

Subcommands
-----------
``gen``    generate a suite design to JSON (and optionally Verilog);
``place``  place a design's macros with a chosen flow, emit JSON/SVG;
``suite``  run the paper's three-flow comparison and print the tables;
``info``   print design statistics and graph sizes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.baselines.handfp import place_handfp
from repro.baselines.indeda import place_indeda
from repro.eval.suite import run_suite
from repro.eval.tables import format_table2, format_table3
from repro.gen.designs import build_design, die_for, suite_specs
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.flatten import flatten
from repro.netlist.jsonio import load_design, save_design
from repro.netlist.stats import design_stats
from repro.netlist.verilog import design_to_verilog
from repro.viz.svg import svg_floorplan


def _spec_by_name(name: str, scale: str):
    for spec in suite_specs(scale):
        if spec.name == name:
            return spec
    raise SystemExit(f"unknown suite design {name!r}")


def cmd_gen(args: argparse.Namespace) -> int:
    spec = _spec_by_name(args.design, args.scale)
    design, _truth = build_design(spec)
    save_design(design, args.out)
    print(f"wrote {args.out}: {design_stats(design).summary()}")
    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(design_to_verilog(design))
        print(f"wrote {args.verilog}")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    if args.design.endswith(".json"):
        design = load_design(args.design)
        truth = None
    else:
        spec = _spec_by_name(args.design, args.scale)
        design, truth = build_design(spec)
    die_w, die_h = die_for(design) if args.die is None else args.die

    if args.flow == "hidap":
        config = HiDaPConfig(seed=args.seed, lam=args.lam,
                             effort=Effort(args.effort))
        placement = HiDaP(config).place(design, die_w, die_h)
    elif args.flow == "indeda":
        placement = place_indeda(design, die_w, die_h)
    elif args.flow == "handfp":
        if truth is None:
            raise SystemExit("handfp needs a generated design "
                             "(ground truth)")
        placement = place_handfp(design, truth, die_w, die_h)
    else:
        raise SystemExit(f"unknown flow {args.flow!r}")

    print(placement.summary())
    out = {
        "design": placement.design_name,
        "flow": placement.flow_name,
        "die": [die_w, die_h],
        "macros": {
            placed.path: {
                "x": placed.rect.x, "y": placed.rect.y,
                "w": placed.rect.w, "h": placed.rect.h,
                "orientation": placed.orientation.value}
            for placed in placement.macros.values()},
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(out, handle, indent=1)
        print(f"wrote {args.out}")
    if args.svg:
        rects = [(p.path, p.rect) for p in placement.macros.values()]
        with open(args.svg, "w") as handle:
            handle.write(svg_floorplan(placement.die, rects))
        print(f"wrote {args.svg}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    designs = args.designs.split(",") if args.designs else None
    flows = tuple(args.flows.split(",")) if args.flows else None
    kwargs = {} if flows is None else {"flows": flows}
    result = run_suite(scale=args.scale, designs=designs,
                       seed=args.seed, effort=Effort(args.effort),
                       verbose=True, **kwargs)
    print()
    print(format_table3(result.rows, result.design_info))
    print()
    print(format_table2(result.rows))
    print(f"\nsuite wall-clock: {result.total_seconds:.1f}s")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.design.endswith(".json"):
        design = load_design(args.design)
    else:
        design, _truth = build_design(_spec_by_name(args.design,
                                                    args.scale))
    stats = design_stats(design)
    print(stats.summary())
    flat = flatten(design)
    gnet = build_gnet(flat)
    gseq = build_gseq(gnet, flat)
    print(f"flat: {flat}")
    print(f"gnet: {gnet}")
    print(f"gseq: {gseq}")
    print(f"die (55% util): {die_for(design)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidap",
        description="RTL-aware dataflow-driven macro placement "
                    "(DATE 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen", help="generate a suite design")
    p.add_argument("design", help="suite name (c1..c8)")
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--out", default="design.json")
    p.add_argument("--verilog", default=None)
    p.set_defaults(func=cmd_gen)

    p = sub.add_parser("place", help="place macros")
    p.add_argument("design", help="suite name or design .json")
    p.add_argument("--flow", default="hidap",
                   choices=("hidap", "indeda", "handfp"))
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--lam", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--effort", default="normal",
                   choices=("fast", "normal", "high"))
    p.add_argument("--die", type=float, nargs=2, default=None,
                   metavar=("W", "H"))
    p.add_argument("--out", default=None, help="placement JSON path")
    p.add_argument("--svg", default=None, help="floorplan SVG path")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser("suite", help="run the three-flow comparison")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--designs", default=None,
                   help="comma-separated subset, e.g. c1,c3")
    p.add_argument("--flows", default=None,
                   help="comma-separated flows "
                        "(default: indeda,hidap-best3,handfp)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--effort", default="fast",
                   choices=("fast", "normal", "high"))
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("info", help="print design statistics")
    p.add_argument("design", help="suite name or design .json")
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.set_defaults(func=cmd_info)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
