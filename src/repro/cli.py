"""Command-line interface: ``hidap <subcommand>``.

Subcommands
-----------
``gen``    generate a suite design to JSON (and optionally Verilog);
``place``  place a design's macros with a chosen flow, emit JSON/SVG;
``suite``  run the paper's three-flow comparison and print the tables;
``serve``  run a placement service: JSON job requests on stdin, JSON
           results on stdout, compiled designs cached in ``--store``;
``flows``  list every registered flow (the registry drives dispatch);
``info``   print design statistics and graph sizes.

Flow dispatch goes through :mod:`repro.api`: any name printed by
``hidap flows`` — including parameterized specs such as
``hidap:lam=0.8`` and flows registered by third-party code — is valid
wherever a flow is expected.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import (
    FlowError,
    PreparedDesign,
    UnknownFlowError,
    available_flows,
    flow_descriptions,
    get_flow,
    run_suite,
    split_flow_specs,
)
from repro.core.config import Effort
from repro.eval.tables import format_table2, format_table3
from repro.gen.designs import build_design, die_for, suite_specs
from repro.netlist.jsonio import load_design, save_design
from repro.netlist.stats import design_stats
from repro.netlist.verilog import design_to_verilog
from repro.viz.svg import svg_floorplan


def _spec_by_name(name: str, scale: str):
    for spec in suite_specs(scale):
        if spec.name == name:
            return spec
    raise SystemExit(f"unknown suite design {name!r}")


def _fail(message: str) -> int:
    """Report a user error without a bare SystemExit traceback."""
    print(f"hidap: error: {message}", file=sys.stderr)
    return 2


def cmd_gen(args: argparse.Namespace) -> int:
    spec = _spec_by_name(args.design, args.scale)
    design, _truth = build_design(spec)
    save_design(design, args.out)
    print(f"wrote {args.out}: {design_stats(design).summary()}")
    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(design_to_verilog(design))
        print(f"wrote {args.verilog}")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    from repro.obs import (
        Tracer,
        render_summary,
        use_tracer,
        write_chrome_trace,
    )

    if args.design.endswith(".json"):
        design = load_design(args.design)
        truth = None
    else:
        spec = _spec_by_name(args.design, args.scale)
        design, truth = build_design(spec)
    die_w, die_h = die_for(design) if args.die is None else args.die

    defaults = {"seed": args.seed, "effort": Effort(args.effort)}
    if args.lam is not None:
        # Offered to the flow factory; silently dropped for flows
        # whose signature has no lam (e.g. indeda).
        defaults["lam"] = args.lam
    if args.referee is not None:
        defaults["referee_backend"] = args.referee
    tracing = bool(args.trace or args.verbose)
    tracer = Tracer("main") if tracing else None
    try:
        placer = get_flow(args.flow, **defaults)
        prepared = PreparedDesign(design=design, die_w=die_w,
                                  die_h=die_h, truth=truth)
        if tracing:
            with use_tracer(tracer):
                placement = placer.place(prepared)
        else:
            placement = placer.place(prepared)
    except UnknownFlowError as exc:
        return _fail(f"{exc} (see `hidap flows`)")
    except FlowError as exc:
        return _fail(str(exc))

    if args.trace:
        write_chrome_trace(args.trace, [tracer.payload()])
        print(f"wrote {args.trace} (open in https://ui.perfetto.dev)")
    if args.verbose:
        print(render_summary([tracer.payload()]))

    print(placement.summary())
    out = {
        "design": placement.design_name,
        "flow": placement.flow_name,
        "die": [die_w, die_h],
        "macros": {
            placed.path: {
                "x": placed.rect.x, "y": placed.rect.y,
                "w": placed.rect.w, "h": placed.rect.h,
                "orientation": placed.orientation.value}
            for placed in placement.macros.values()},
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(out, handle, indent=1)
        print(f"wrote {args.out}")
    if args.svg:
        rects = [(p.path, p.rect) for p in placement.macros.values()]
        with open(args.svg, "w") as handle:
            handle.write(svg_floorplan(placement.die, rects))
        print(f"wrote {args.svg}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.api import RunOptions

    designs = args.designs.split(",") if args.designs else None
    kwargs = {}
    options = RunOptions(seed=args.seed, effort=Effort(args.effort),
                         referee_backend=args.referee,
                         trace=args.trace or bool(args.verbose))
    try:
        if args.flows:
            kwargs["flows"] = tuple(split_flow_specs(args.flows))
        result = run_suite(scale=args.scale, designs=designs,
                           verbose=True, workers=args.workers,
                           options=options, store=args.store,
                           **kwargs)
    except FlowError as exc:
        return _fail(f"{exc} (see `hidap flows`)")
    print()
    print(format_table3(result.rows, result.design_info))
    print()
    print(format_table2(result.rows))
    print(f"\nsuite wall-clock: {result.total_seconds:.1f}s")
    if args.trace:
        print(f"wrote {args.trace} (open in https://ui.perfetto.dev)")
    if args.verbose and result.trace:
        from repro.obs import render_summary
        print()
        print(render_summary(result.trace))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """JSON-lines placement service over stdin/stdout.

    Each input line is a job request
    ``{"design": "c1", "flow": "hidap", "seed": 1}`` (``flow`` and
    ``seed`` optional); each output line is an event object —
    ``ready``, ``queued`` per accepted job, then ``done``/``failed``
    per job in submission order.  Malformed requests produce an
    ``error`` event instead of killing the service.
    """
    from repro.api import RunOptions
    from repro.service import PlacementService

    designs = args.designs.split(",") if args.designs else None
    options = RunOptions(seed=args.seed, effort=Effort(args.effort),
                         referee_backend=args.referee)

    def emit(payload):
        print(json.dumps(payload), flush=True)

    try:
        service = PlacementService(scale=args.scale, designs=designs,
                                   store=args.store,
                                   workers=args.workers,
                                   options=options)
    except ValueError as exc:
        return _fail(str(exc))
    with service:
        emit({"event": "ready", "scale": args.scale,
              "designs": list(service.designs),
              "workers": args.workers or 0,
              "store": args.store})
        handles = []
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                handle = service.submit(request["design"],
                                        request.get("flow", "hidap"),
                                        seed=request.get("seed"))
            except (ValueError, KeyError, TypeError) as exc:
                emit({"event": "error", "error": str(exc)})
                continue
            handles.append(handle)
            emit({"event": "queued", "job": handle.job_id,
                  "design": handle.design, "flow": handle.flow})
        for handle in handles:
            try:
                row = handle.result()
                emit({"event": "done", "job": handle.job_id,
                      "design": row.design, "flow": row.flow,
                      "wl_meters": row.wl_meters,
                      "grc_percent": row.grc_percent,
                      "wns_percent": row.wns_percent,
                      "tns": row.tns,
                      "placer_seconds": row.placer_seconds})
            except Exception as exc:
                emit({"event": "failed", "job": handle.job_id,
                      "design": handle.design, "flow": handle.flow,
                      "error": str(exc)})
    return 0


def cmd_flows(args: argparse.Namespace) -> int:
    del args
    from repro.metrics import available_backends, default_backend_name

    print("registered flows:")
    for name, description in flow_descriptions():
        print(f"  {name:14s} {description}")
    print("\nparameterized specs: <name>:key=value,...  "
          "e.g. hidap:lam=0.8")
    print("register your own with repro.api.register_flow(...)")
    print(f"\nreferee backends: {', '.join(available_backends())} "
          f"(default: {default_backend_name()}; "
          "select with --referee or hidap:referee_backend=...)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.design.endswith(".json"):
        design = load_design(args.design)
    else:
        design, _truth = build_design(_spec_by_name(args.design,
                                                    args.scale))
    stats = design_stats(design)
    print(stats.summary())
    prepared = PreparedDesign(design=design, die_w=0.0, die_h=0.0)
    print(f"flat: {prepared.flat}")
    print(f"gnet: {prepared.gnet}")
    print(f"gseq: {prepared.gseq}")
    print(f"die (55% util): {die_for(design)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidap",
        description="RTL-aware dataflow-driven macro placement "
                    "(DATE 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen", help="generate a suite design")
    p.add_argument("design", help="suite name (c1..c8)")
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--out", default="design.json")
    p.add_argument("--verilog", default=None)
    p.set_defaults(func=cmd_gen)

    p = sub.add_parser("place", help="place macros")
    p.add_argument("design", help="suite name or design .json")
    p.add_argument("--flow", default="hidap",
                   help="flow name or spec (see `hidap flows`); "
                        f"registered: {', '.join(available_flows())}")
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--lam", type=float, default=None,
                   help="λ for hidap flows (default 0.5; "
                        "hidap-best3 sweeps {0.2,0.5,0.8} unless set)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--effort", default="normal",
                   choices=("fast", "normal", "high"))
    p.add_argument("--referee", default=None,
                   help="referee backend (python|numpy|...; "
                        "default: numpy — see `hidap flows`)")
    p.add_argument("--die", type=float, nargs=2, default=None,
                   metavar=("W", "H"))
    p.add_argument("--out", default=None, help="placement JSON path")
    p.add_argument("--svg", default=None, help="floorplan SVG path")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans to a Chrome trace-event file "
                        "(view in Perfetto / chrome://tracing)")
    p.add_argument("--verbose", action="store_true",
                   help="print a per-stage timing footer")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser("suite", help="run the three-flow comparison")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--designs", default=None,
                   help="comma-separated subset, e.g. c1,c3")
    p.add_argument("--flows", default=None,
                   help="comma-separated flows "
                        "(default: indeda,hidap-best3,handfp; "
                        "see `hidap flows`)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--effort", default="fast",
                   choices=("fast", "normal", "high"))
    p.add_argument("--referee", default=None,
                   help="referee backend for every flow "
                        "(python|numpy|...; default: numpy)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan (design, flow) pairs over N processes")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans (incl. per-worker ones) to a "
                        "Chrome trace-event file")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persistent compiled-design store: designs "
                        "compile at most once, ever; warm runs skip "
                        "every prepare/compile step")
    p.add_argument("--verbose", action="store_true",
                   help="print a per-task timing footer")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "serve",
        help="placement service: JSON jobs stdin -> results stdout")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "bench", "full"))
    p.add_argument("--designs", default=None,
                   help="comma-separated designs to serve "
                        "(default: all for the scale)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persistent compiled-design store directory")
    p.add_argument("--workers", type=int, default=None,
                   help="worker pool size (default: in-process)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--effort", default="fast",
                   choices=("fast", "normal", "high"))
    p.add_argument("--referee", default=None,
                   help="referee backend for every job")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("flows", help="list registered flows")
    p.set_defaults(func=cmd_flows)

    p = sub.add_parser("info", help="print design statistics")
    p.add_argument("design", help="suite name or design .json")
    p.add_argument("--scale", default="bench",
                   choices=("tiny", "bench", "full"))
    p.set_defaults(func=cmd_info)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
