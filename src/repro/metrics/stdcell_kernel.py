"""Batched quadratic stdcell system assembly over compiled CSR arrays.

The quadratic cell placer's reference assembly
(:func:`repro.placement.stdcell._build_system`) is a Python double loop
over the clustered netlist: every collapsed net expands into a bounded
clique of movable-movable spring entries plus fixed-anchor pulls toward
placed macro pins and known chip ports.  :class:`StdcellArrays` lowers
the placement-independent part of that loop once per design — CSR
cluster-endpoint rows, CSR fixed-anchor candidate rows (macro slots
first, then port slots, matching the reference visit order) and the
fully precompiled clique pair template (COO row/col index streams) —
so the per-placement work reduces to array gathers, `np.repeat`
streams and ordered `np.add.at` scatters.

Bit-identity discipline (the same contract as the HPWL / congestion
kernels): every accumulation that the reference performs with a scalar
``+=`` is replayed with ``np.add.at`` over an index stream in the
reference visit order (``np.add.at`` is unbuffered and sequential, so
repeated indices accumulate exactly like the scalar loop), and the COO
triplets handed to ``scipy.sparse.coo_matrix`` are element-for-element
identical to the reference lists.  The assembled Laplacian, right-hand
sides — and therefore the conjugate-gradient solution and every metric
measured on the resulting cell placement — match the reference bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import MacroPlacement
    from repro.geometry.rect import Point
    from repro.netlist.flatten import FlatDesign
    from repro.placement.cluster import ClusteredNetlist
    from repro.placement.stdcell import PlacerConfig

#: Fixed-anchor candidate kinds (``StdcellArrays.fixed_kind``).
FIXED_MACRO = 0
FIXED_PORT = 1


@dataclass(frozen=True)
class StdcellArrays:
    """CSR view of the clustered netlist's quadratic connectivity.

    Net ``n`` owns cluster endpoints ``eps[ep_offsets[n]:ep_offsets[n+1]]``
    (the reference iteration order) and fixed-anchor *candidates*
    ``fixed_kind/fixed_ref[fixed_offsets[n]:fixed_offsets[n+1]]`` —
    macro endpoints first, then port endpoints, exactly as the
    reference builds ``fixed_pts``.  Which candidates materialize
    depends on the placement (unplaced macros and unknown ports drop
    out), so only kinds and slots are compiled here.

    ``pair_rows``/``pair_cols`` are the complete COO index template of
    the movable-movable clique entries: per net with >= 2 cluster
    endpoints, ``(i, j)`` then ``(j, i)`` per unordered pair in
    ``a < b`` order — byte-for-byte the reference append order.
    ``pair_counts[n]`` is that net's entry count (``m * (m - 1)``).
    """

    n_nets: int
    n_clusters: int
    weight: np.ndarray          # (n_nets,) float64 collapsed bit count
    ep_counts: np.ndarray       # (n_nets,) int64 cluster endpoints per net
    ep_offsets: np.ndarray      # (n_nets + 1,) int64
    eps: np.ndarray             # (n_eps,) int64 cluster indices
    fixed_offsets: np.ndarray   # (n_nets + 1,) int64
    fixed_kind: np.ndarray      # (n_fixed,) int8 — FIXED_MACRO / FIXED_PORT
    fixed_ref: np.ndarray       # (n_fixed,) int64 macro/port slot
    macro_cells: np.ndarray     # (n_macro_slots,) int64 flat cell index
    port_names: Tuple[str, ...]
    pair_rows: np.ndarray       # (n_pair_entries,) int64
    pair_cols: np.ndarray       # (n_pair_entries,) int64
    pair_counts: np.ndarray     # (n_nets,) int64 COO entries per net

    def __repr__(self) -> str:
        return (f"StdcellArrays({self.n_nets} nets, {self.eps.size} eps, "
                f"{self.fixed_kind.size} anchors, "
                f"{self.pair_rows.size} pair entries)")


def compile_stdcell_arrays(clustered: "ClusteredNetlist") -> StdcellArrays:
    """Lower ``clustered`` into :class:`StdcellArrays` (one pass)."""
    n_nets = len(clustered.nets)
    weight = np.zeros(n_nets, dtype=np.float64)
    ep_counts = np.zeros(n_nets, dtype=np.int64)

    eps_list: list = []
    ep_offsets = [0]
    fixed_kind: list = []
    fixed_ref: list = []
    fixed_offsets = [0]
    macro_slots: Dict[int, int] = {}
    port_slots: Dict[str, int] = {}

    for index, (cluster_eps, macro_eps, port_eps, bits) in \
            enumerate(clustered.nets):
        weight[index] = bits
        ep_counts[index] = len(cluster_eps)
        eps_list.extend(cluster_eps)
        ep_offsets.append(len(eps_list))
        for cell_index in macro_eps:
            fixed_kind.append(FIXED_MACRO)
            fixed_ref.append(
                macro_slots.setdefault(cell_index, len(macro_slots)))
        for port_name in port_eps:
            fixed_kind.append(FIXED_PORT)
            fixed_ref.append(
                port_slots.setdefault(port_name, len(port_slots)))
        fixed_offsets.append(len(fixed_kind))

    eps = np.asarray(eps_list, dtype=np.int64)
    offsets = np.asarray(ep_offsets, dtype=np.int64)

    # -- clique pair template: group nets by endpoint count -----------------
    pair_counts = np.where(ep_counts >= 2,
                           ep_counts * (ep_counts - 1), 0)
    entry_offsets = np.concatenate(
        [[0], np.cumsum(pair_counts)]).astype(np.int64)
    pair_rows = np.empty(int(entry_offsets[-1]), dtype=np.int64)
    pair_cols = np.empty(int(entry_offsets[-1]), dtype=np.int64)
    for m in np.unique(ep_counts):
        m = int(m)
        if m < 2:
            continue
        nets = np.flatnonzero(ep_counts == m)
        # (G, m) endpoint matrix for this group.
        block = eps[offsets[nets][:, None] + np.arange(m)]
        a_idx, b_idx = np.triu_indices(m, 1)     # reference (a, b) order
        i_ep = block[:, a_idx]                   # (G, P)
        j_ep = block[:, b_idx]
        rows_block = np.empty((len(nets), len(a_idx), 2), dtype=np.int64)
        rows_block[:, :, 0] = i_ep               # add_pair appends (i, j)
        rows_block[:, :, 1] = j_ep
        cols_block = np.empty((len(nets), len(a_idx), 2), dtype=np.int64)
        cols_block[:, :, 0] = j_ep               # ... and cols (j, i)
        cols_block[:, :, 1] = i_ep
        positions = entry_offsets[nets][:, None] + np.arange(2 * len(a_idx))
        pair_rows[positions] = rows_block.reshape(len(nets), -1)
        pair_cols[positions] = cols_block.reshape(len(nets), -1)

    return StdcellArrays(
        n_nets=n_nets,
        n_clusters=clustered.n_clusters,
        weight=weight,
        ep_counts=ep_counts,
        ep_offsets=offsets,
        eps=eps,
        fixed_offsets=np.asarray(fixed_offsets, dtype=np.int64),
        fixed_kind=np.asarray(fixed_kind, dtype=np.int8),
        fixed_ref=np.asarray(fixed_ref, dtype=np.int64),
        macro_cells=np.fromiter(macro_slots.keys(), dtype=np.int64,
                                count=len(macro_slots)),
        port_names=tuple(port_slots),
        pair_rows=pair_rows,
        pair_cols=pair_cols,
        pair_counts=pair_counts.astype(np.int64))


def stdcell_arrays_for(clustered: "ClusteredNetlist") -> StdcellArrays:
    """Compiled arrays for ``clustered``, built once and cached on it.

    The ``prepare.stdcell_arrays`` span fires only on an actual compile
    — a cache hit (including arrays installed from the compiled-design
    store) records nothing.
    """
    from repro.obs import current_tracer

    cached = getattr(clustered, "_stdcell_arrays", None)
    if cached is not None and cached[0] == len(clustered.nets):
        return cached[1]
    with current_tracer().span("prepare.stdcell_arrays",
                               nets=len(clustered.nets)):
        arrays = compile_stdcell_arrays(clustered)
    clustered._stdcell_arrays = (len(clustered.nets), arrays)
    return arrays


def install_stdcell_arrays(clustered: "ClusteredNetlist",
                           arrays: StdcellArrays) -> None:
    """Seed the per-design compile cache with precompiled ``arrays``.

    Used by the compiled-design store to hand memory-mapped /
    shared-memory arrays to a process without recompiling; callers
    validate the store entry's fingerprint against ``clustered`` first.
    """
    clustered._stdcell_arrays = (len(clustered.nets), arrays)


#: ``StdcellArrays`` fields that serialize as raw numpy buffers.
_STDCELL_ARRAY_FIELDS = ("weight", "ep_counts", "ep_offsets", "eps",
                         "fixed_offsets", "fixed_kind", "fixed_ref",
                         "macro_cells", "pair_rows", "pair_cols",
                         "pair_counts")


def stdcell_arrays_to_buffers(arrays: StdcellArrays):
    """Split ``arrays`` into ``(buffers, meta)`` for persistence."""
    buffers = {name: getattr(arrays, name)
               for name in _STDCELL_ARRAY_FIELDS}
    meta = {"n_nets": arrays.n_nets, "n_clusters": arrays.n_clusters,
            "port_names": list(arrays.port_names)}
    return buffers, meta


def stdcell_arrays_from_buffers(buffers, meta) -> StdcellArrays:
    """Rebuild :class:`StdcellArrays` from its persisted parts.

    Buffers are adopted zero-copy — every kernel only reads them.
    """
    return StdcellArrays(
        n_nets=int(meta["n_nets"]),
        n_clusters=int(meta["n_clusters"]),
        port_names=tuple(meta["port_names"]),
        **{name: buffers[name] for name in _STDCELL_ARRAY_FIELDS})


def assemble_quadratic_system(arrays: StdcellArrays,
                              clustered: "ClusteredNetlist",
                              flat: "FlatDesign",
                              placement: "MacroPlacement",
                              port_positions: Dict[str, "Point"],
                              config: "PlacerConfig"):
    """The numpy stdcell kernel: ``(laplacian, bx, by)`` for one placement.

    Bit-identical to :func:`repro.placement.stdcell._build_system` (see
    the module docstring for the discipline).
    """
    from scipy.sparse import coo_matrix

    from repro.placement.stdcell import _CLIQUE_CAP

    n = arrays.n_clusters
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)

    # -- anchor slots: placed macro centers, known port positions ----------
    n_macro = len(arrays.macro_cells)
    macro_x = np.zeros(n_macro)
    macro_y = np.zeros(n_macro)
    macro_ok = np.zeros(n_macro, dtype=bool)
    for slot, cell_index in enumerate(arrays.macro_cells.tolist()):
        placed = placement.macros.get(cell_index)
        if placed is None:
            continue
        center = placed.rect.center
        macro_ok[slot] = True
        macro_x[slot] = center.x
        macro_y[slot] = center.y
    n_port = len(arrays.port_names)
    port_x = np.zeros(n_port)
    port_y = np.zeros(n_port)
    port_ok = np.zeros(n_port, dtype=bool)
    for slot, name in enumerate(arrays.port_names):
        pos = port_positions.get(name)
        if pos is None:
            continue
        port_ok[slot] = True
        port_x[slot] = pos.x
        port_y[slot] = pos.y

    # -- materialized fixed points per net (reference candidate order) -----
    is_macro = arrays.fixed_kind == FIXED_MACRO
    n_cand = arrays.fixed_kind.size
    keep = np.zeros(n_cand, dtype=bool)
    fx_cand = np.zeros(n_cand)
    fy_cand = np.zeros(n_cand)
    slots = arrays.fixed_ref[is_macro]
    keep[is_macro] = macro_ok[slots]
    fx_cand[is_macro] = macro_x[slots]
    fy_cand[is_macro] = macro_y[slots]
    slots = arrays.fixed_ref[~is_macro]
    keep[~is_macro] = port_ok[slots]
    fx_cand[~is_macro] = port_x[slots]
    fy_cand[~is_macro] = port_y[slots]
    fx = fx_cand[keep]
    fy = fy_cand[keep]
    kept_cum = np.concatenate([[0], np.cumsum(keep)])
    f = (kept_cum[arrays.fixed_offsets[1:]]
         - kept_cum[arrays.fixed_offsets[:-1]])    # anchors per net (exact)

    # -- per-net clique weight ---------------------------------------------
    m = arrays.ep_counts
    k = m + f
    w = arrays.weight / np.maximum(1, np.minimum(k, _CLIQUE_CAP) - 1)

    # -- movable-movable COO entries (template indices, -w values) ---------
    vals = -np.repeat(w, arrays.pair_counts)

    # -- diagonal: every endpoint of net n accumulates w[n] exactly
    #    (m - 1 + f) times, nets in order (same per-slot add sequence as
    #    the interleaved reference loop, since all of one net's diagonal
    #    contributions share one w).
    rep_net = np.maximum(m - 1 + f, 0)
    rep_ep = np.repeat(rep_net, m)
    w_ep = np.repeat(w, m)
    np.add.at(diag, np.repeat(arrays.eps, rep_ep), np.repeat(w_ep, rep_ep))

    # -- fixed-anchor pulls: endpoint-major, anchor-minor, nets in order
    #    (the exact reference ``add_fixed`` stream).
    f_ep = np.repeat(f, m)
    idx = np.repeat(arrays.eps, f_ep)
    if idx.size:
        total = idx.size
        block_starts = np.concatenate([[0], np.cumsum(f_ep)])[:-1]
        local = np.arange(total) - np.repeat(block_starts, f_ep)
        anchor_start = np.concatenate([[0], np.cumsum(f)])[:-1]
        anchor = np.repeat(np.repeat(anchor_start, m), f_ep) + local
        w_entry = np.repeat(w_ep, f_ep)
        np.add.at(bx, idx, w_entry * fx[anchor])
        np.add.at(by, idx, w_entry * fy[anchor])

    # -- mild pull toward each cluster's hierarchy block center ------------
    region_centers: Dict[str, "Point"] = {}
    for cluster in clustered.clusters:
        if not cluster.cells:
            continue
        path = flat.cells[cluster.cells[0]].module_path
        center = region_centers.get(path)
        if center is None:
            center = placement.region_of_cell(flat,
                                              cluster.cells[0]).center
            region_centers[path] = center
        pull = config.region_pull * max(1.0, cluster.area) ** 0.5
        diag[cluster.index] += pull
        bx[cluster.index] += pull * center.x
        by[cluster.index] += pull * center.y

    # -- non-singularity guard for isolated clusters -----------------------
    die_center = placement.die.center
    isolated = diag <= 0
    if isolated.any():
        diag[isolated] += 1e-3
        bx[isolated] += 1e-3 * die_center.x
        by[isolated] += 1e-3 * die_center.y

    laplacian = coo_matrix((vals, (arrays.pair_rows, arrays.pair_cols)),
                           shape=(n, n)).tocsr()
    laplacian.setdiag(diag)
    return laplacian, bx, by
