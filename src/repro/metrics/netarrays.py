"""Array-compiled netlists: the referee's CSR view of a flat design.

The evaluation referee used to walk ``FlatDesign.nets`` with pure
Python loops for every metric.  A :class:`NetArrays` record lowers the
netlist once into flat NumPy columns — CSR net→row offsets plus one row
per endpoint (macro pin, standard cell, or top port) — so the batched
kernels in :mod:`repro.metrics.numpy_backend` can evaluate every net at
once.  The compile is placement-independent: macro rows carry the
"as drawn" pin offset and a dense macro *slot*, and only the small
per-slot transforms (origin + orientation coefficients) are rebuilt per
placement by :func:`locate_endpoints`.

Compilation is cached on the :class:`~repro.netlist.flatten.FlatDesign`
instance itself (see :func:`net_arrays_for`), so every flow, baseline
and parallel suite worker that shares a prepared design also shares the
compiled arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.result import MacroPlacement
from repro.geometry.rect import Point
from repro.geometry.orientation import Orientation
from repro.netlist.flatten import FlatDesign
from repro.placement.stdcell import CellPlacement

#: Endpoint-row kinds.
KIND_STD = 0
KIND_MACRO = 1
KIND_PORT = 2

#: Orientation → pin-offset transform coefficients.  A pin drawn at
#: ``(px, py)`` inside a ``w``-by-``h`` macro lands at
#: ``ax*px + bx*py + (cw_x*w + ch_x*h)`` (and the y analogue) inside
#: the oriented footprint — the linear form of
#: :meth:`repro.geometry.orientation.Orientation.pin_offset`, chosen so
#: the vectorized evaluation is bit-identical to the scalar one.
_ORIENT_COEF: Dict[Orientation, Tuple[float, ...]] = {
    #                ax    bx   cwx chx   ay    by   cwy chy
    Orientation.N:  (1.0,  0.0, 0.0, 0.0, 0.0,  1.0, 0.0, 0.0),
    Orientation.FN: (-1.0, 0.0, 1.0, 0.0, 0.0,  1.0, 0.0, 0.0),
    Orientation.S:  (-1.0, 0.0, 1.0, 0.0, 0.0, -1.0, 0.0, 1.0),
    Orientation.FS: (1.0,  0.0, 0.0, 0.0, 0.0, -1.0, 0.0, 1.0),
    Orientation.E:  (0.0,  1.0, 0.0, 0.0, -1.0, 0.0, 1.0, 0.0),
    Orientation.FE: (0.0,  1.0, 0.0, 0.0, 1.0,  0.0, 0.0, 0.0),
    Orientation.W:  (0.0, -1.0, 0.0, 1.0, 1.0,  0.0, 0.0, 0.0),
    Orientation.FW: (0.0, -1.0, 0.0, 1.0, -1.0, 0.0, 1.0, 0.0),
}


@dataclass(frozen=True)
class NetArrays:
    """CSR arrays over every flat bit net's endpoints.

    Row ``r`` belongs to net ``net_of_row[r]``; net ``n`` owns rows
    ``net_offsets[n]:net_offsets[n+1]`` (cell endpoints first, then top
    ports, matching the reference loops' visit order).  ``ref`` is a
    flat cell index for standard-cell rows, a dense macro slot for
    macro rows, and a port slot for port rows; ``pin_dx``/``pin_dy``
    are the as-drawn macro pin offsets (zero on non-macro rows).
    """

    n_nets: int
    n_cells: int
    net_offsets: np.ndarray      # (n_nets + 1,) int64
    net_of_row: np.ndarray       # (n_rows,) int64
    kind: np.ndarray             # (n_rows,) int8 — KIND_STD/MACRO/PORT
    ref: np.ndarray              # (n_rows,) int64
    pin_dx: np.ndarray           # (n_rows,) float64
    pin_dy: np.ndarray           # (n_rows,) float64
    macro_cells: np.ndarray      # (n_macro_slots,) int64 flat cell index
    macro_w: np.ndarray          # (n_macro_slots,) float64 as-drawn width
    macro_h: np.ndarray          # (n_macro_slots,) float64 as-drawn height
    port_names: Tuple[str, ...]  # port slot → top port name

    @property
    def n_rows(self) -> int:
        return int(self.net_of_row.shape[0])

    def __repr__(self) -> str:
        return (f"NetArrays({self.n_nets} nets, {self.n_rows} rows, "
                f"{len(self.macro_cells)} macro slots, "
                f"{len(self.port_names)} ports)")


def compile_net_arrays(flat: FlatDesign) -> NetArrays:
    """Lower ``flat`` into :class:`NetArrays` (one pass over the nets)."""
    kinds: list = []
    refs: list = []
    pdx: list = []
    pdy: list = []
    offsets = [0]
    net_of_row: list = []
    macro_slots: Dict[int, int] = {}
    port_slots: Dict[str, int] = {}

    cells = flat.cells
    for net in flat.nets:
        net_index = len(offsets) - 1
        for cell_index, pin, bit in net.endpoints:
            cell = cells[cell_index]
            if cell.is_macro:
                slot = macro_slots.setdefault(cell_index, len(macro_slots))
                px, py = cell.ctype.pin_as_drawn(pin, bit)
                kinds.append(KIND_MACRO)
                refs.append(slot)
                pdx.append(px)
                pdy.append(py)
            else:
                kinds.append(KIND_STD)
                refs.append(cell_index)
                pdx.append(0.0)
                pdy.append(0.0)
            net_of_row.append(net_index)
        for port_name, _bit in net.top_ports:
            slot = port_slots.setdefault(port_name, len(port_slots))
            kinds.append(KIND_PORT)
            refs.append(slot)
            pdx.append(0.0)
            pdy.append(0.0)
            net_of_row.append(net_index)
        offsets.append(len(kinds))

    macro_cell_indices = np.fromiter(
        macro_slots.keys(), dtype=np.int64, count=len(macro_slots))
    macro_w = np.array([cells[i].ctype.width for i in macro_slots],
                       dtype=np.float64)
    macro_h = np.array([cells[i].ctype.height for i in macro_slots],
                       dtype=np.float64)
    return NetArrays(
        n_nets=len(flat.nets),
        n_cells=len(cells),
        net_offsets=np.asarray(offsets, dtype=np.int64),
        net_of_row=np.asarray(net_of_row, dtype=np.int64),
        kind=np.asarray(kinds, dtype=np.int8),
        ref=np.asarray(refs, dtype=np.int64),
        pin_dx=np.asarray(pdx, dtype=np.float64),
        pin_dy=np.asarray(pdy, dtype=np.float64),
        macro_cells=macro_cell_indices,
        macro_w=macro_w,
        macro_h=macro_h,
        port_names=tuple(port_slots))


def _fingerprint(flat: FlatDesign) -> Tuple[int, int, int]:
    """Cheap staleness check for the per-design compile cache."""
    rows = sum(  # repro: noqa[REP003] integer count, exact in any order
        len(net.endpoints) + len(net.top_ports) for net in flat.nets)
    return (len(flat.cells), len(flat.nets), rows)


def net_arrays_for(flat: FlatDesign) -> NetArrays:
    """The compiled arrays for ``flat``, built once and cached on it.

    The cache is invalidated when the design's net/cell counts change
    (tests sometimes append nets to a flat design by hand); deeper
    mutations require dropping ``flat._net_arrays`` manually.

    The ``prepare.net_arrays`` span fires only on an actual compile —
    a cache hit (including arrays installed from the compiled-design
    store) records nothing.
    """
    from repro.obs import current_tracer

    fingerprint = _fingerprint(flat)
    cached = getattr(flat, "_net_arrays", None)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    with current_tracer().span("prepare.net_arrays",
                               design=flat.design.name):
        arrays = compile_net_arrays(flat)
    flat._net_arrays = (fingerprint, arrays)
    return arrays


def install_net_arrays(flat: FlatDesign, arrays: NetArrays) -> None:
    """Seed the per-design compile cache with precompiled ``arrays``.

    The compiled-design store uses this to hand a memory-mapped (or
    shared-memory) :class:`NetArrays` to a process without recompiling;
    the arrays must describe ``flat`` — the fingerprint recorded here
    is validated by the caller against the store entry's metadata.
    """
    flat._net_arrays = (_fingerprint(flat), arrays)


#: ``NetArrays`` fields that serialize as raw numpy buffers.
_NET_ARRAY_FIELDS = ("net_offsets", "net_of_row", "kind", "ref",
                     "pin_dx", "pin_dy", "macro_cells", "macro_w",
                     "macro_h")


def net_arrays_to_buffers(arrays: NetArrays):
    """Split ``arrays`` into ``(buffers, meta)`` for persistence.

    ``buffers`` maps field name to its ndarray; ``meta`` is the
    JSON-able remainder.  :func:`net_arrays_from_buffers` inverts this
    bit-for-bit (``.npy`` round-trips preserve dtype and every byte).
    """
    buffers = {name: getattr(arrays, name) for name in _NET_ARRAY_FIELDS}
    meta = {"n_nets": arrays.n_nets, "n_cells": arrays.n_cells,
            "port_names": list(arrays.port_names)}
    return buffers, meta


def net_arrays_from_buffers(buffers, meta) -> NetArrays:
    """Rebuild :class:`NetArrays` from :func:`net_arrays_to_buffers` parts.

    The buffers are used as-is (zero-copy): memory-mapped or
    shared-memory views work directly because every kernel only reads
    the compiled arrays.
    """
    return NetArrays(
        n_nets=int(meta["n_nets"]),
        n_cells=int(meta["n_cells"]),
        port_names=tuple(meta["port_names"]),
        **{name: buffers[name] for name in _NET_ARRAY_FIELDS})


def locate_endpoints(arrays: NetArrays, placement: MacroPlacement,
                     cells: CellPlacement,
                     port_positions: Dict[str, Point]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Materialize endpoint coordinates for one placement.

    Returns ``(x, y, located, macro_located)`` aligned with the rows of
    ``arrays``.  Unlocated rows (unplaced macros, unclustered cells,
    unknown ports) hold zeros and are masked out — every coordinate of
    a located row is bit-identical to what the scalar reference code
    (``PlacedMacro.pin_position`` / ``CellPlacement.cell_pos`` /
    ``port_positions[name]``) computes.
    """
    n = arrays.n_rows
    x = np.zeros(n)
    y = np.zeros(n)
    located = np.zeros(n, dtype=bool)

    # -- macro rows: per-slot origin + orientation transform ---------------
    n_slots = len(arrays.macro_cells)
    if n_slots:
        origin_x = np.zeros(n_slots)
        origin_y = np.zeros(n_slots)
        coef = np.zeros((n_slots, 8))
        placed_mask = np.zeros(n_slots, dtype=bool)
        for slot, cell_index in enumerate(arrays.macro_cells.tolist()):
            placed = placement.macros.get(cell_index)
            if placed is None:
                continue
            placed_mask[slot] = True
            origin_x[slot] = placed.rect.x
            origin_y[slot] = placed.rect.y
            coef[slot] = _ORIENT_COEF[placed.orientation]
        w, h = arrays.macro_w, arrays.macro_h
        off_cx = coef[:, 2] * w + coef[:, 3] * h
        off_cy = coef[:, 6] * w + coef[:, 7] * h

        rows = arrays.kind == KIND_MACRO
        slot = arrays.ref[rows]
        px = arrays.pin_dx[rows]
        py = arrays.pin_dy[rows]
        x[rows] = origin_x[slot] + (coef[slot, 0] * px
                                    + coef[slot, 1] * py + off_cx[slot])
        y[rows] = origin_y[slot] + (coef[slot, 4] * px
                                    + coef[slot, 5] * py + off_cy[slot])
        located[rows] = placed_mask[slot]
        macro_located = located.copy()
    else:
        macro_located = np.zeros(n, dtype=bool)

    # -- standard-cell rows: cluster-position gather ------------------------
    rows = arrays.kind == KIND_STD
    if rows.any():
        cluster_of_cell = cells.clustered.cell_cluster_array(
            arrays.n_cells)
        cluster = cluster_of_cell[arrays.ref[rows]]
        has_cluster = cluster >= 0
        safe = np.maximum(cluster, 0)
        if cells.x.shape[0]:
            x[rows] = np.where(has_cluster, cells.x[safe], 0.0)
            y[rows] = np.where(has_cluster, cells.y[safe], 0.0)
            located[rows] = has_cluster
        # else: no clusters were placed; every cell row stays unlocated.

    # -- port rows: name-slot gather ----------------------------------------
    rows = arrays.kind == KIND_PORT
    if rows.any():
        n_ports = len(arrays.port_names)
        port_x = np.zeros(n_ports)
        port_y = np.zeros(n_ports)
        port_mask = np.zeros(n_ports, dtype=bool)
        for slot, name in enumerate(arrays.port_names):
            pos = port_positions.get(name)
            if pos is None:
                continue
            port_mask[slot] = True
            port_x[slot] = pos.x
            port_y[slot] = pos.y
        slot = arrays.ref[rows]
        x[rows] = port_x[slot]
        y[rows] = port_y[slot]
        located[rows] = port_mask[slot]

    return x, y, located, macro_located
