"""Levelized batched timing kernel over compiled Gseq edge arrays.

The reference STA (:func:`repro.timing.sta.analyze_timing_reference`)
walks ``Gseq.edge_bits`` with a Python loop: locate both endpoints,
evaluate the linear delay model, fold the slack into WNS/TNS.  A
:class:`TimingArrays` record lowers the sequential graph once — edge
endpoint columns in the reference visit order, a CSR view of every
register array's member cells, and a topological levelization of the
graph (Kahn's algorithm; nodes trapped in cycles collect in one final
level) — so the kernel can propagate arrival times level by level with
one batched gather per level instead of one Python iteration per edge.

Every Gseq edge crosses exactly one register boundary, so arrival
propagation degenerates to a single delay evaluation per edge; the
levelization is the batching structure (and the seam for multi-cycle
extensions), not a semantic change.  Bit-identity discipline:

* register-array positions are per-cell means accumulated with
  ``np.add.at`` (unbuffered, sequential — exactly the reference's
  ``sum(xs) / len(xs)``);
* the delay expression replicates the reference IEEE evaluation order
  elementwise;
* WNS uses first-minimum tie-breaking (``np.argmin``) like the
  reference's strict ``<`` update, and TNS reduces sequentially
  (``np.add.accumulate``) in the reference edge visit order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import MacroPlacement
    from repro.geometry.rect import Point
    from repro.hiergraph.gseq import Gseq
    from repro.netlist.flatten import FlatDesign
    from repro.placement.stdcell import CellPlacement
    from repro.timing.delay import DelayModel

#: Node-row kinds (``TimingArrays.node_kind``).
NODE_REG = 0
NODE_MACRO = 1
NODE_PORT = 2


@dataclass(frozen=True)
class TimingArrays:
    """Array-compiled view of one sequential graph.

    ``edge_u``/``edge_v`` follow the ``Gseq.edge_bits`` iteration order
    (the reference visit order every sequential reduction replays).
    ``node_cells``/``cell_offsets`` give register nodes their flat
    member cells; ``macro_cell`` holds the flat cell index of macro
    nodes (-1 elsewhere).  ``level_edges`` groups edge indices by the
    topological level of the source node; ``n_levels`` counts the
    levels (cycle-trapped nodes share the final one).
    """

    n_nodes: int
    n_edges: int
    n_cells: int
    edge_u: np.ndarray                  # (n_edges,) int64
    edge_v: np.ndarray                  # (n_edges,) int64
    node_kind: np.ndarray               # (n_nodes,) int8
    macro_cell: np.ndarray              # (n_nodes,) int64, -1 = not a macro
    cell_offsets: np.ndarray            # (n_nodes + 1,) int64
    node_cells: np.ndarray              # (sum cells,) int64 flat indices
    node_of_cell_row: np.ndarray        # (sum cells,) int64
    node_names: Tuple[str, ...]
    node_level: np.ndarray              # (n_nodes,) int64
    level_edges: Tuple[np.ndarray, ...]

    @property
    def n_levels(self) -> int:
        return len(self.level_edges)

    def __repr__(self) -> str:
        return (f"TimingArrays({self.n_nodes} nodes, {self.n_edges} edges, "
                f"{self.n_levels} levels)")


def _levelize(n_nodes: int, succ, pred) -> np.ndarray:
    """Topological levels (Kahn); cycle members land one past the end."""
    indegree = np.array([len(p) for p in pred], dtype=np.int64)
    level = np.zeros(n_nodes, dtype=np.int64)
    queue = deque(int(i) for i in np.flatnonzero(indegree == 0))
    seen = 0
    while queue:
        node = queue.popleft()
        seen += 1
        for target in succ[node]:
            level[target] = max(level[target], level[node] + 1)
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if seen < n_nodes:
        # Nodes still carrying in-degree sit on a cycle: park them (and
        # therefore their outgoing edges) in one final shared level.
        trapped = indegree > 0
        level[trapped] = (int(level[~trapped].max()) + 1
                          if (~trapped).any() else 0)
    return level


def compile_timing_arrays(gseq: "Gseq",
                          flat: "FlatDesign") -> TimingArrays:
    """Lower ``gseq`` into :class:`TimingArrays` (one pass)."""
    from repro.hiergraph.gseq import SeqKind

    n_nodes = gseq.n_nodes
    node_kind = np.zeros(n_nodes, dtype=np.int8)
    macro_cell = np.full(n_nodes, -1, dtype=np.int64)
    cell_offsets = [0]
    node_cells: list = []
    node_of_cell_row: list = []
    names = []
    for node in gseq.nodes:
        names.append(node.name)
        if node.kind is SeqKind.MACRO:
            node_kind[node.index] = NODE_MACRO
            if node.cells:
                macro_cell[node.index] = node.cells[0]
        elif node.kind is SeqKind.PORT:
            node_kind[node.index] = NODE_PORT
        else:
            node_cells.extend(node.cells)
            node_of_cell_row.extend([node.index] * len(node.cells))
        cell_offsets.append(len(node_cells))

    edge_u = np.fromiter((u for u, _v in gseq.edge_bits),
                         dtype=np.int64, count=gseq.n_edges)
    edge_v = np.fromiter((v for _u, v in gseq.edge_bits),
                         dtype=np.int64, count=gseq.n_edges)

    node_level = _levelize(n_nodes, gseq.succ, gseq.pred)
    if edge_u.size:
        edge_level = node_level[edge_u]
        level_edges = tuple(
            np.flatnonzero(edge_level == lv)
            for lv in range(int(edge_level.max()) + 1))
    else:
        level_edges = ()

    return TimingArrays(
        n_nodes=n_nodes,
        n_edges=gseq.n_edges,
        n_cells=len(flat.cells),
        edge_u=edge_u,
        edge_v=edge_v,
        node_kind=node_kind,
        macro_cell=macro_cell,
        cell_offsets=np.asarray(cell_offsets, dtype=np.int64),
        node_cells=np.asarray(node_cells, dtype=np.int64),
        node_of_cell_row=np.asarray(node_of_cell_row, dtype=np.int64),
        node_names=tuple(names),
        node_level=node_level,
        level_edges=level_edges)


def timing_arrays_for(gseq: "Gseq", flat: "FlatDesign") -> TimingArrays:
    """Compiled arrays for ``gseq``, built once and cached on it.

    The ``prepare.timing_arrays`` span fires only on an actual compile
    — a cache hit (including arrays installed from the compiled-design
    store) records nothing.
    """
    from repro.obs import current_tracer

    fingerprint = (gseq.n_nodes, gseq.n_edges, len(flat.cells))
    cached = getattr(gseq, "_timing_arrays", None)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    with current_tracer().span("prepare.timing_arrays",
                               design=flat.design.name):
        arrays = compile_timing_arrays(gseq, flat)
    gseq._timing_arrays = (fingerprint, arrays)
    return arrays


def install_timing_arrays(gseq: "Gseq", flat: "FlatDesign",
                          arrays: TimingArrays) -> None:
    """Seed the per-design compile cache with precompiled ``arrays``.

    Used by the compiled-design store to hand memory-mapped /
    shared-memory arrays to a process without recompiling; callers
    validate the store entry's fingerprint against ``gseq`` first.
    """
    gseq._timing_arrays = ((gseq.n_nodes, gseq.n_edges,
                            len(flat.cells)), arrays)


#: ``TimingArrays`` ndarray fields persisted one buffer each
#: (``level_edges`` is a tuple of arrays and travels concatenated).
_TIMING_ARRAY_FIELDS = ("edge_u", "edge_v", "node_kind", "macro_cell",
                        "cell_offsets", "node_cells",
                        "node_of_cell_row", "node_level")


def timing_arrays_to_buffers(arrays: TimingArrays):
    """Split ``arrays`` into ``(buffers, meta)`` for persistence.

    ``level_edges`` (a tuple of per-level index arrays) is stored as
    one concatenated buffer plus a CSR-style offsets buffer.
    """
    buffers = {name: getattr(arrays, name)
               for name in _TIMING_ARRAY_FIELDS}
    if arrays.level_edges:
        buffers["level_edges_cat"] = np.concatenate(arrays.level_edges)
        sizes = [level.size for level in arrays.level_edges]
    else:
        buffers["level_edges_cat"] = np.zeros(0, dtype=np.int64)
        sizes = []
    buffers["level_offsets"] = np.concatenate(
        [[0], np.cumsum(np.asarray(sizes, dtype=np.int64))]
    ).astype(np.int64)
    meta = {"n_nodes": arrays.n_nodes, "n_edges": arrays.n_edges,
            "n_cells": arrays.n_cells,
            "node_names": list(arrays.node_names)}
    return buffers, meta


def timing_arrays_from_buffers(buffers, meta) -> TimingArrays:
    """Rebuild :class:`TimingArrays` from its persisted parts.

    The per-level views are slices of the concatenated buffer —
    zero-copy, like every other adopted buffer.
    """
    offsets = buffers["level_offsets"]
    cat = buffers["level_edges_cat"]
    level_edges = tuple(cat[int(offsets[i]):int(offsets[i + 1])]
                        for i in range(len(offsets) - 1))
    return TimingArrays(
        n_nodes=int(meta["n_nodes"]),
        n_edges=int(meta["n_edges"]),
        n_cells=int(meta["n_cells"]),
        node_names=tuple(meta["node_names"]),
        level_edges=level_edges,
        **{name: buffers[name] for name in _TIMING_ARRAY_FIELDS})


def _node_coordinates(arrays: TimingArrays, placement: "MacroPlacement",
                      cells: "CellPlacement",
                      port_positions: Dict[str, "Point"]):
    """(x, y, located) per Gseq node, bit-identical to the reference."""
    n = arrays.n_nodes
    x = np.zeros(n)
    y = np.zeros(n)
    located = np.zeros(n, dtype=bool)

    # Macro and port nodes: a handful each, resolved scalar-side with
    # the exact reference expressions.
    for index in np.flatnonzero(arrays.node_kind == NODE_MACRO).tolist():
        cell_index = int(arrays.macro_cell[index])
        placed = placement.macros.get(cell_index)
        if placed is None:
            continue
        center = placed.rect.center
        located[index] = True
        x[index] = center.x
        y[index] = center.y
    for index in np.flatnonzero(arrays.node_kind == NODE_PORT).tolist():
        pos = port_positions.get(arrays.node_names[index])
        if pos is None:
            continue
        located[index] = True
        x[index] = pos.x
        y[index] = pos.y

    # Register arrays: batched per-cell means.  np.add.at accumulates
    # sequentially in row order — the reference's ``sum(xs)``.
    if arrays.node_cells.size and cells.x.shape[0]:
        cluster = cells.clustered.cell_cluster_array(
            arrays.n_cells)[arrays.node_cells]
        has = cluster >= 0
        rows = arrays.node_of_cell_row[has]
        safe = cluster[has]
        sum_x = np.zeros(n)
        sum_y = np.zeros(n)
        count = np.zeros(n, dtype=np.int64)
        np.add.at(sum_x, rows, cells.x[safe])
        np.add.at(sum_y, rows, cells.y[safe])
        np.add.at(count, rows, 1)
        reg_ok = count > 0
        denom = np.maximum(count, 1)
        x[reg_ok] = (sum_x / denom)[reg_ok]
        y[reg_ok] = (sum_y / denom)[reg_ok]
        located |= reg_ok
    return x, y, located


def timing_report(arrays: TimingArrays, placement: "MacroPlacement",
                  cells: "CellPlacement",
                  port_positions: Dict[str, "Point"],
                  clock_period: float, model: "DelayModel"):
    """The numpy timing kernel: one :class:`~repro.timing.sta.TimingReport`.

    Delays propagate level by level (one batched gather per topological
    level of the compiled graph); the WNS/TNS reductions then replay
    the reference edge visit order.
    """
    from repro.timing.sta import TimingReport

    x, y, located = _node_coordinates(arrays, placement, cells,
                                      port_positions)

    u, v = arrays.edge_u, arrays.edge_v
    slack = np.zeros(arrays.n_edges)
    base = model.clk_to_q + model.logic_delay + model.setup
    for level in arrays.level_edges:
        su, sv = u[level], v[level]
        distance = np.abs(x[su] - x[sv]) + np.abs(y[su] - y[sv])
        arrival = base + model.wire_per_unit * np.maximum(0.0, distance)
        slack[level] = clock_period - arrival

    valid = np.flatnonzero(located[u] & located[v]) if u.size else u
    n_paths = int(valid.size)
    if n_paths == 0:
        return TimingReport(clock_period=clock_period, wns=0.0, tns=0.0,
                            n_paths=0, n_failing=0, worst_edge=None)
    ordered = slack[valid]
    worst = int(valid[np.argmin(ordered)])   # first minimum, like the
    wns = float(ordered.min())               # reference's strict < update
    failing = ordered < 0.0
    n_failing = int(failing.sum())
    tns = _sequential_sum(ordered[failing])
    worst_edge = (arrays.node_names[int(u[worst])],
                  arrays.node_names[int(v[worst])])
    return TimingReport(clock_period=clock_period, wns=wns, tns=tns,
                        n_paths=n_paths, n_failing=n_failing,
                        worst_edge=worst_edge)


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float64 sum, bit-identical to a Python ``+=`` loop."""
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])
