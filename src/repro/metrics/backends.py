"""The referee backend registry.

A *referee backend* owns the five batched evaluation kernels — the
quadratic stdcell system assembly, HPWL, congestion, the levelized
timing analysis and the affinity-pair distance term — behind one small
interface, so the referee (:func:`repro.api.run.evaluate_placement`),
the layout cost model (:class:`repro.floorplan.cost.CostModel`) and the
CLI can switch implementations with a name:

* ``"python"`` — the reference per-net loops the repo started with,
  kept as the equivalence oracle;
* ``"numpy"`` — batched array kernels over the compiled
  :class:`~repro.metrics.netarrays.NetArrays` (the default).

Both backends produce bit-identical metric values: the NumPy kernels
replicate the reference IEEE expressions elementwise and reduce with
sequential accumulation (``cumsum``) in the reference visit order, so
switching backends never perturbs annealing decisions or table rows.
Third parties may register their own backend (e.g. a GPU
implementation) with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import MacroPlacement
    from repro.geometry.rect import Point
    from repro.hiergraph.gseq import Gseq
    from repro.metrics.netarrays import NetArrays
    from repro.netlist.flatten import FlatDesign
    from repro.placement.cluster import ClusteredNetlist
    from repro.placement.hpwl import HpwlReport
    from repro.placement.stdcell import CellPlacement, PlacerConfig
    from repro.routing.congestion import CongestionReport
    from repro.timing.delay import DelayModel
    from repro.timing.sta import TimingReport


class MetricsBackendError(ValueError):
    """An unknown or unusable referee backend was requested."""


class RefereeBackend:
    """One implementation of the referee kernels.

    ``name`` identifies the backend in configs/CLI flags;
    ``uses_net_arrays`` tells callers whether to compile (and pass) the
    shared :class:`~repro.metrics.netarrays.NetArrays`.  ``coords``
    optionally hands the HPWL and congestion kernels one shared
    :func:`~repro.metrics.netarrays.locate_endpoints` result so a
    caller evaluating several metrics on the same placement (the
    referee) locates every endpoint once; backends that do not consume
    net arrays ignore it.
    """

    name = "base"
    uses_net_arrays = False

    def stdcell_system(self, flat: "FlatDesign",
                       placement: "MacroPlacement",
                       port_positions: Dict[str, "Point"],
                       config: "PlacerConfig",
                       clustered: "ClusteredNetlist"):
        """``(laplacian, bx, by)`` of the quadratic clique system.

        The shared solve (conjugate gradients + diffusion) lives in
        :func:`repro.placement.stdcell.place_cells`; backends only own
        the connectivity assembly, the profiled hot loop.  Defaults to
        the reference assembly so backends predating this kernel (or
        choosing not to specialize it) keep working — every builtin
        kernel is bit-identical, so mixing is safe.
        """
        from repro.placement.stdcell import _build_system
        return _build_system(clustered, flat, placement, port_positions,
                             config)

    def timing(self, flat: "FlatDesign", gseq: "Gseq",
               placement: "MacroPlacement", cells: "CellPlacement",
               port_positions: Dict[str, "Point"], clock_period: float,
               model: "DelayModel") -> "TimingReport":
        """Slack analysis of every sequential edge against the clock.

        Defaults to the reference per-edge loop (see
        :meth:`stdcell_system` for why).
        """
        from repro.timing.sta import analyze_timing_reference
        return analyze_timing_reference(flat, gseq, placement, cells,
                                        port_positions,
                                        clock_period=clock_period,
                                        model=model)

    def hpwl(self, flat: "FlatDesign", placement: "MacroPlacement",
             cells: "CellPlacement", port_positions: Dict[str, "Point"],
             arrays: Optional["NetArrays"] = None,
             coords=None) -> "HpwlReport":
        raise NotImplementedError

    def congestion(self, flat: "FlatDesign", placement: "MacroPlacement",
                   cells: "CellPlacement",
                   port_positions: Dict[str, "Point"], bins: int = 32,
                   arrays: Optional["NetArrays"] = None,
                   coords=None) -> "CongestionReport":
        raise NotImplementedError

    def affinity_distance(self, pairs: "AffinityPairs",
                          centers: Dict[int, Tuple[float, float]]) -> float:
        """Unscaled ``sum(a * manhattan)`` over the compiled pairs."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<RefereeBackend {self.name!r}>"


class AffinityPairs:
    """The distance kernel's compiled view of a cost model's pairs.

    ``block_pairs`` are ``(i, j, a)`` with both ends movable;
    ``terminal_pairs`` are ``(i, (tx, ty), a)`` with a fixed end.  Kept
    in the cost model's historical iteration order so sequential
    reduction matches the reference accumulator bit for bit.  NumPy
    column views are materialized lazily on first use.
    """

    __slots__ = ("block_pairs", "terminal_pairs", "_columns",
                 "_required")

    def __init__(self,
                 block_pairs: List[Tuple[int, int, float]],
                 terminal_pairs: List[Tuple[int, Tuple[float, float],
                                            float]]):
        self.block_pairs = block_pairs
        self.terminal_pairs = terminal_pairs
        self._columns = None
        self._required = None

    def __len__(self) -> int:
        return len(self.block_pairs) + len(self.terminal_pairs)

    def required_indices(self) -> Tuple[int, ...]:
        """Every block index the pairs reference (sorted, deduped).

        Kernels look these up in the caller's ``centers`` mapping, so a
        missing index raises ``KeyError`` on every backend alike.
        """
        if self._required is None:
            indices = {i for i, _j, _a in self.block_pairs}
            indices.update(j for _i, j, _a in self.block_pairs)
            indices.update(i for i, _pos, _a in self.terminal_pairs)
            self._required = tuple(sorted(indices))
        return self._required

    def columns(self):
        """``(bi, bj, ba, ti, tx, ty, ta)`` int64/float64 arrays."""
        if self._columns is None:
            import numpy as np

            bi = np.array([p[0] for p in self.block_pairs], dtype=np.int64)
            bj = np.array([p[1] for p in self.block_pairs], dtype=np.int64)
            ba = np.array([p[2] for p in self.block_pairs],
                          dtype=np.float64)
            ti = np.array([p[0] for p in self.terminal_pairs],
                          dtype=np.int64)
            tx = np.array([p[1][0] for p in self.terminal_pairs],
                          dtype=np.float64)
            ty = np.array([p[1][1] for p in self.terminal_pairs],
                          dtype=np.float64)
            ta = np.array([p[2] for p in self.terminal_pairs],
                          dtype=np.float64)
            self._columns = (bi, bj, ba, ti, tx, ty, ta)
        return self._columns


class PythonBackend(RefereeBackend):
    """The reference loops (the repo's original referee).

    ``stdcell_system`` and ``timing`` are the inherited reference
    implementations — the base class already delegates to them.
    """

    name = "python"
    uses_net_arrays = False

    def hpwl(self, flat, placement, cells, port_positions, arrays=None,
             coords=None):
        from repro.placement.hpwl import hpwl_reference
        return hpwl_reference(flat, placement, cells, port_positions)

    def congestion(self, flat, placement, cells, port_positions,
                   bins=32, arrays=None, coords=None):
        from repro.routing.congestion import congestion_reference
        return congestion_reference(flat, placement, cells,
                                    port_positions, bins=bins)

    def affinity_distance(self, pairs, centers):
        total = 0.0
        for i, j, a in pairs.block_pairs:
            cxi, cyi = centers[i]
            cxj, cyj = centers[j]
            total += a * (abs(cxi - cxj) + abs(cyi - cyj))
        for i, (tx, ty), a in pairs.terminal_pairs:
            cxi, cyi = centers[i]
            total += a * (abs(cxi - tx) + abs(cyi - ty))
        return total


class TracedBackend(RefereeBackend):
    """A span-recording proxy around any referee backend.

    Subclasses :class:`RefereeBackend` (not just duck-types it) so the
    :func:`get_backend` instance passthrough accepts it anywhere a
    backend name is accepted — ``place_cells`` and ``analyze_timing``
    resolve their ``backend=`` argument through that path.  Each kernel
    call becomes one ``referee.<kernel>`` span on the wrapped tracer;
    results are forwarded untouched, so tracing can never perturb a
    metric value.  Never registered: built per-evaluation by
    :func:`traced_backend` when a tracer is active.
    """

    def __init__(self, inner: RefereeBackend, tracer) -> None:
        self._inner = inner
        self._tracer = tracer
        self.name = inner.name
        self.uses_net_arrays = inner.uses_net_arrays

    def stdcell_system(self, *args, **kwargs):
        with self._tracer.span("referee.stdcell_system"):
            return self._inner.stdcell_system(*args, **kwargs)

    def timing(self, *args, **kwargs):
        with self._tracer.span("referee.timing"):
            return self._inner.timing(*args, **kwargs)

    def hpwl(self, *args, **kwargs):
        with self._tracer.span("referee.hpwl"):
            return self._inner.hpwl(*args, **kwargs)

    def congestion(self, *args, **kwargs):
        with self._tracer.span("referee.congestion"):
            return self._inner.congestion(*args, **kwargs)

    def affinity_distance(self, *args, **kwargs):
        with self._tracer.span("referee.affinity_distance"):
            return self._inner.affinity_distance(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<TracedBackend {self.name!r}>"


def traced_backend(backend: RefereeBackend, tracer) -> RefereeBackend:
    """Wrap ``backend`` in kernel spans when ``tracer`` is enabled.

    With the null tracer (tracing off) the backend is returned as-is,
    so the referee's hot path carries no proxy indirection by default.
    """
    if not getattr(tracer, "enabled", False):
        return backend
    if isinstance(backend, TracedBackend):
        return backend
    return TracedBackend(backend, tracer)


_BACKENDS: Dict[str, RefereeBackend] = {}
_DEFAULT: Optional[str] = None


def register_backend(backend: RefereeBackend, *,
                     overwrite: bool = False) -> None:
    """Register ``backend`` under ``backend.name``."""
    name = backend.name
    if not name or name == "base":
        raise MetricsBackendError(
            f"backend needs a distinctive name, got {name!r}")
    if name in _BACKENDS and not overwrite:
        raise MetricsBackendError(
            f"referee backend {name!r} already registered "
            "(pass overwrite=True to replace)")
    _BACKENDS[name] = backend  # repro: noqa[REP009] worker-init replay


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin cleanup).

    The built-in ``python``/``numpy`` backends may be removed too —
    callers doing so are expected to re-register them.  Removing the
    process-wide default resets the default to ``numpy``.
    """
    global _DEFAULT
    if name not in _BACKENDS:
        raise MetricsBackendError(
            f"unknown referee backend {name!r}; "
            f"available: {', '.join(available_backends()) or '<none>'}")
    del _BACKENDS[name]
    if _DEFAULT == name:
        _DEFAULT = None


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered referee backend."""
    return tuple(sorted(_BACKENDS))


def set_default_backend(name: str) -> None:
    """Make ``name`` the process-wide default referee backend."""
    global _DEFAULT
    if name not in _BACKENDS:
        raise MetricsBackendError(
            f"unknown referee backend {name!r}; "
            f"available: {', '.join(available_backends())}")
    _DEFAULT = name  # repro: noqa[REP009] worker-init replay


def default_backend_name() -> str:
    """The current default backend name (``numpy`` unless overridden)."""
    return _DEFAULT if _DEFAULT is not None else "numpy"


def get_backend(name: Optional[str] = None) -> RefereeBackend:
    """Resolve a backend by name (``None`` → the default backend)."""
    if isinstance(name, RefereeBackend):
        return name
    if name is None:
        name = default_backend_name()
    backend = _BACKENDS.get(name)
    if backend is None:
        raise MetricsBackendError(
            f"unknown referee backend {name!r}; "
            f"available: {', '.join(available_backends()) or '<none>'}")
    return backend
