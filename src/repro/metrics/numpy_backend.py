"""Batched NumPy referee kernels over compiled :class:`NetArrays`.

Each kernel is engineered to be *bit-identical* to its Python
reference loop, not merely close:

* elementwise arithmetic replicates the reference IEEE expressions
  (same operands, same order), so every per-net / per-pair term matches
  exactly;
* scalar accumulators are replaced by ``cumsum`` (``np.add.accumulate``),
  which reduces sequentially in the reference visit order — unlike
  ``np.sum``'s pairwise tree — so totals match bit for bit;
* congestion demand weights are exact binary fractions (halves), so
  scatter-order differences cannot round.

That property is what lets the ``numpy`` backend be the default
without perturbing annealing trajectories or historical table rows;
``tests/test_metrics_equivalence.py`` enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.backends import RefereeBackend
from repro.metrics.netarrays import locate_endpoints, net_arrays_for

#: Below this pair count the distance kernel's array overhead beats the
#: loop; fall back to the reference implementation (identical result).
_MIN_VECTOR_PAIRS = 32


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float64 sum, bit-identical to a Python ``+=`` loop."""
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


class NumpyBackend(RefereeBackend):
    """Array-compiled referee: batched stdcell assembly, segmented HPWL,
    rasterized congestion, levelized timing, gathered affinity
    distances."""

    name = "numpy"
    uses_net_arrays = True

    # -- quadratic stdcell system -------------------------------------------

    def stdcell_system(self, flat, placement, port_positions, config,
                       clustered):
        from repro.metrics.stdcell_kernel import (
            assemble_quadratic_system,
            stdcell_arrays_for,
        )

        return assemble_quadratic_system(stdcell_arrays_for(clustered),
                                         clustered, flat, placement,
                                         port_positions, config)

    # -- timing -------------------------------------------------------------

    def timing(self, flat, gseq, placement, cells, port_positions,
               clock_period, model):
        from repro.metrics.timing_kernel import (
            timing_arrays_for,
            timing_report,
        )

        return timing_report(timing_arrays_for(gseq, flat), placement,
                             cells, port_positions, clock_period, model)

    # -- HPWL ---------------------------------------------------------------

    def hpwl(self, flat, placement, cells, port_positions, arrays=None,
             coords=None):
        from repro.placement.hpwl import HpwlReport

        arrays = arrays if arrays is not None else net_arrays_for(flat)
        if arrays.n_nets == 0:
            return HpwlReport(total_units=0.0, n_nets=0,
                              macro_net_units=0.0)
        x, y, located, macro_located = (
            coords if coords is not None
            else locate_endpoints(arrays, placement, cells,
                                  port_positions))

        # One sentinel row keeps every CSR offset a valid reduceat
        # index (degenerate trailing nets have offset == n_rows); the
        # sentinel is the reduction identity for each column.
        starts = arrays.net_offsets[:-1]
        x_min = np.minimum.reduceat(
            np.append(np.where(located, x, np.inf), np.inf), starts)
        x_max = np.maximum.reduceat(
            np.append(np.where(located, x, -np.inf), -np.inf), starts)
        y_min = np.minimum.reduceat(
            np.append(np.where(located, y, np.inf), np.inf), starts)
        y_max = np.maximum.reduceat(
            np.append(np.where(located, y, -np.inf), -np.inf), starts)
        counts = np.add.reduceat(
            np.append(located, False).astype(np.int64), starts)
        macro_hits = np.add.reduceat(
            np.append(macro_located, False).astype(np.int64), starts)

        # reduceat maps an empty CSR span to the element at its start
        # offset; such nets have zero *own* rows, so their located
        # count can only see a neighbouring row — always < 2, and the
        # validity mask drops them (the degenerate-net guard).
        spans = np.diff(arrays.net_offsets)
        valid = (counts >= 2) & (spans > 0)
        with np.errstate(invalid="ignore"):
            lengths = (x_max - x_min) + (y_max - y_min)
        total = _sequential_sum(lengths[valid])
        macro_total = _sequential_sum(lengths[valid & (macro_hits > 0)])
        return HpwlReport(total_units=total, n_nets=int(valid.sum()),
                          macro_net_units=macro_total)

    # -- congestion ---------------------------------------------------------

    def congestion(self, flat, placement, cells, port_positions,
                   bins=32, arrays=None, coords=None):
        from repro.routing.congestion import congestion_report_from
        from repro.routing.grid import RoutingGrid

        arrays = arrays if arrays is not None else net_arrays_for(flat)
        grid = RoutingGrid.build(placement.die,
                                 (m.rect for m in placement.macros.values()),
                                 bins=bins)
        x, y, located, _ = (
            coords if coords is not None
            else locate_endpoints(arrays, placement, cells,
                                  port_positions))
        x = x[located]
        y = y[located]
        net = arrays.net_of_row[located]
        if x.size:
            # The reference chains each net's points in (x, y) order;
            # lexsort by (net, x, y), then every consecutive same-net
            # pair is one 2-pin chain segment.
            order = np.lexsort((y, x, net))
            x, y, net = x[order], y[order], net[order]
            same = net[1:] == net[:-1]
            grid.add_l_routes(x[:-1][same], y[:-1][same],
                              x[1:][same], y[1:][same], weight=1.0)
        return congestion_report_from(grid)

    # -- affinity distance --------------------------------------------------

    def affinity_distance(self, pairs, centers):
        if len(pairs) < _MIN_VECTOR_PAIRS:
            # Identical value (see module docstring); the loop is
            # faster than array setup at this size.
            from repro.metrics.backends import PythonBackend
            return PythonBackend.affinity_distance(self, pairs, centers)
        bi, bj, ba, ti, tx, ty, ta = pairs.columns()
        required = pairs.required_indices()
        n = required[-1] + 1 if required else 0
        cx = np.zeros(n)
        cy = np.zeros(n)
        # Indexing ``centers`` (not iterating it) keeps the oracle's
        # contract: a referenced block without a center is a KeyError,
        # never a silent (0, 0).
        for index in required:
            cx[index], cy[index] = centers[index]
        block_terms = ba * (np.abs(cx[bi] - cx[bj])
                            + np.abs(cy[bi] - cy[bj]))
        terminal_terms = ta * (np.abs(cx[ti] - tx) + np.abs(cy[ti] - ty))
        return _sequential_sum(np.concatenate([block_terms,
                                               terminal_terms]))
