"""Vectorized referee subsystem: array-compiled netlists + kernels.

This package turns the evaluation referee from per-net Python loops
into batched array kernels:

* :mod:`repro.metrics.netarrays` compiles a
  :class:`~repro.netlist.flatten.FlatDesign` into flat CSR-style NumPy
  columns (:class:`NetArrays`), built once per design and cached on the
  flat design itself (shared by every flow, baseline and suite worker).
* :mod:`repro.metrics.backends` keeps the backend registry: the
  ``python`` reference loops (the equivalence oracle) and the
  ``numpy`` default, plus :func:`register_backend` for third-party
  implementations.
* :mod:`repro.metrics.numpy_backend` holds the three batched kernels
  (segmented HPWL, congestion rasterization, affinity-pair distances),
  bit-identical to the reference loops by construction.

Selecting a backend::

    hidap suite --referee python            # CLI
    run_suite(referee_backend="python")    # API
    HiDaPConfig(referee_backend="python")  # flow config / flow spec
    hidap place c1 --flow hidap:referee_backend=python

``evaluate_placement(..., backend="...")`` and
``CostModel(..., backend="...")`` accept the same names directly.
"""

from repro.metrics.backends import (
    AffinityPairs,
    MetricsBackendError,
    PythonBackend,
    RefereeBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.metrics.netarrays import (
    NetArrays,
    compile_net_arrays,
    locate_endpoints,
    net_arrays_for,
)
from repro.metrics.numpy_backend import NumpyBackend

register_backend(PythonBackend(), overwrite=True)
register_backend(NumpyBackend(), overwrite=True)

__all__ = [
    "AffinityPairs",
    "MetricsBackendError",
    "NetArrays",
    "NumpyBackend",
    "PythonBackend",
    "RefereeBackend",
    "available_backends",
    "compile_net_arrays",
    "default_backend_name",
    "get_backend",
    "locate_endpoints",
    "net_arrays_for",
    "register_backend",
    "set_default_backend",
]
