"""Vectorized referee subsystem: array-compiled netlists + kernels.

This package turns the evaluation referee from per-net Python loops
into batched array kernels:

* :mod:`repro.metrics.netarrays` compiles a
  :class:`~repro.netlist.flatten.FlatDesign` into flat CSR-style NumPy
  columns (:class:`NetArrays`), built once per design and cached on the
  flat design itself (shared by every flow, baseline and suite worker).
* :mod:`repro.metrics.backends` keeps the backend registry: the
  ``python`` reference loops (the equivalence oracle) and the
  ``numpy`` default, plus :func:`register_backend` for third-party
  implementations.
* :mod:`repro.metrics.numpy_backend` holds the batched kernels
  (segmented HPWL, congestion rasterization, affinity-pair distances),
  bit-identical to the reference loops by construction.
* :mod:`repro.metrics.stdcell_kernel` compiles the clustered netlist's
  quadratic clique connectivity (:class:`StdcellArrays`) and assembles
  the cell placer's sparse system with ordered array scatters.
* :mod:`repro.metrics.timing_kernel` compiles the sequential graph's
  edges with a topological levelization (:class:`TimingArrays`) and
  batches the slack analysis level by level.

Selecting a backend::

    hidap suite --referee python            # CLI
    run_suite(referee_backend="python")    # API
    HiDaPConfig(referee_backend="python")  # flow config / flow spec
    hidap place c1 --flow hidap:referee_backend=python

``evaluate_placement(..., backend="...")`` and
``CostModel(..., backend="...")`` accept the same names directly.
"""

from repro.metrics.backends import (
    AffinityPairs,
    MetricsBackendError,
    PythonBackend,
    RefereeBackend,
    TracedBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    traced_backend,
    unregister_backend,
)
from repro.metrics.netarrays import (
    NetArrays,
    compile_net_arrays,
    install_net_arrays,
    locate_endpoints,
    net_arrays_for,
    net_arrays_from_buffers,
    net_arrays_to_buffers,
)
from repro.metrics.numpy_backend import NumpyBackend
from repro.metrics.stdcell_kernel import (
    StdcellArrays,
    compile_stdcell_arrays,
    install_stdcell_arrays,
    stdcell_arrays_for,
    stdcell_arrays_from_buffers,
    stdcell_arrays_to_buffers,
)
from repro.metrics.timing_kernel import (
    TimingArrays,
    compile_timing_arrays,
    install_timing_arrays,
    timing_arrays_for,
    timing_arrays_from_buffers,
    timing_arrays_to_buffers,
)

register_backend(PythonBackend(), overwrite=True)
register_backend(NumpyBackend(), overwrite=True)

__all__ = [
    "AffinityPairs",
    "MetricsBackendError",
    "NetArrays",
    "NumpyBackend",
    "PythonBackend",
    "RefereeBackend",
    "StdcellArrays",
    "TimingArrays",
    "TracedBackend",
    "available_backends",
    "compile_net_arrays",
    "compile_stdcell_arrays",
    "compile_timing_arrays",
    "default_backend_name",
    "get_backend",
    "install_net_arrays",
    "install_stdcell_arrays",
    "install_timing_arrays",
    "locate_endpoints",
    "net_arrays_for",
    "net_arrays_from_buffers",
    "net_arrays_to_buffers",
    "register_backend",
    "set_default_backend",
    "stdcell_arrays_for",
    "stdcell_arrays_from_buffers",
    "stdcell_arrays_to_buffers",
    "timing_arrays_for",
    "timing_arrays_from_buffers",
    "timing_arrays_to_buffers",
    "traced_backend",
    "unregister_backend",
]
