"""Global-routing congestion estimation.

The paper's congestion column (GRC %) is global-routing overflow from a
commercial router.  This package reproduces the referee with a G-cell
grid and probabilistic L-routing: every net spreads demand over its two
L-shaped routes; macro footprints consume routing capacity.  The
reported figure is total overflow as a percentage of total capacity.
"""

from repro.routing.grid import RoutingGrid
from repro.routing.congestion import CongestionReport, estimate_congestion

__all__ = ["CongestionReport", "RoutingGrid", "estimate_congestion"]
