"""Probabilistic global routing and the GRC% congestion metric.

:func:`estimate_congestion` dispatches through the referee backend
registry (:mod:`repro.metrics`): the ``numpy`` default locates every
endpoint from compiled :class:`~repro.metrics.netarrays.NetArrays` and
rasterizes all chain segments onto the
:class:`~repro.routing.grid.RoutingGrid` in one vectorized pass
(:meth:`~repro.routing.grid.RoutingGrid.add_l_routes`);
:func:`congestion_reference` keeps the original per-net loop as the
``python`` oracle.  Demand weights are exact halves, so both backends
fill bit-identical demand rasters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.result import MacroPlacement
from repro.geometry.rect import Point
from repro.netlist.flatten import FlatDesign
from repro.placement.stdcell import CellPlacement
from repro.routing.grid import RoutingGrid


@dataclass
class CongestionReport:
    """Congestion summary for one placed design."""

    grc_percent: float            # overflow / capacity * 100
    hot_fraction: float           # fraction of overflowed g-cells
    grid: RoutingGrid

    def __repr__(self) -> str:
        return (f"CongestionReport(GRC={self.grc_percent:.2f}%, "
                f"hot={100 * self.hot_fraction:.1f}% gcells)")


def congestion_report_from(grid: RoutingGrid) -> CongestionReport:
    """Summarize an already-filled demand raster (shared by backends)."""
    capacity = max(grid.capacity_total(), 1e-12)
    return CongestionReport(
        grc_percent=100.0 * grid.overflow_total() / capacity,
        hot_fraction=grid.overflowed_gcell_fraction(),
        grid=grid)


def _net_points(flat: FlatDesign, net, placement: MacroPlacement,
                cells: CellPlacement,
                port_positions: Dict[str, Point]) -> List[Point]:
    points: List[Point] = []
    for cell_index, pin, bit in net.endpoints:
        cell = flat.cells[cell_index]
        if cell.is_macro:
            placed = placement.macros.get(cell_index)
            if placed is not None:
                points.append(placed.pin_position(flat, pin, bit))
        else:
            pos = cells.cell_pos(cell_index)
            if pos is not None:
                points.append(pos)
    for port_name, _bit in net.top_ports:
        pos = port_positions.get(port_name)
        if pos is not None:
            points.append(pos)
    return points


def estimate_congestion(flat: FlatDesign, placement: MacroPlacement,
                        cells: CellPlacement,
                        port_positions: Dict[str, Point],
                        bins: int = 32,
                        backend: Optional[str] = None,
                        arrays=None) -> CongestionReport:
    """Route every net probabilistically and report overflow.

    Multi-pin nets are decomposed into a chain over the x-sorted pins (a
    cheap Steiner surrogate); each 2-pin segment spreads demand over its
    two L routes.  Nets with fewer than two located endpoints are
    skipped (the degenerate-net guard shared by every backend).

    ``backend`` selects a referee backend by name (``None`` → the
    registry default, normally ``numpy``); ``arrays`` optionally passes
    pre-compiled :class:`~repro.metrics.netarrays.NetArrays`.
    """
    from repro.metrics import get_backend

    resolved = get_backend(backend)
    return resolved.congestion(flat, placement, cells, port_positions,
                               bins=bins, arrays=arrays)


def congestion_reference(flat: FlatDesign, placement: MacroPlacement,
                         cells: CellPlacement,
                         port_positions: Dict[str, Point],
                         bins: int = 32) -> CongestionReport:
    """The per-net reference loop (the ``python`` backend's kernel)."""
    grid = RoutingGrid.build(placement.die,
                             (m.rect for m in placement.macros.values()),
                             bins=bins)
    for net in flat.nets:
        points = _net_points(flat, net, placement, cells, port_positions)
        if len(points) < 2:
            continue
        points.sort(key=lambda p: (p.x, p.y))
        for a, b in zip(points, points[1:]):
            grid.add_l_route(a.x, a.y, b.x, b.y, 1.0)
    return congestion_report_from(grid)
