"""The G-cell grid: capacities and demand accumulation.

Capacity models routing tracks per G-cell edge-length; macros block a
large fraction of the tracks above them (they leave a thin over-the-
macro porosity, as real blocks do for upper metal layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.geometry.rect import Rect

#: Routing tracks per site unit of G-cell span, per direction.
#: Calibrated so the suite's GRC% lands in the paper's 1-40% regime.
TRACKS_PER_UNIT = 34.0
#: Fraction of capacity surviving above a macro.
MACRO_POROSITY = 0.15


@dataclass
class RoutingGrid:
    """Demand/capacity rasters over a ``bins`` x ``bins`` grid."""

    die: Rect
    bins: int
    capacity_h: np.ndarray      # horizontal track capacity per g-cell
    capacity_v: np.ndarray
    demand_h: np.ndarray
    demand_v: np.ndarray

    @classmethod
    def build(cls, die: Rect, macro_rects: Iterable[Rect],
              bins: int = 32) -> "RoutingGrid":
        """Build capacities, rasterizing macro blockages vectorized.

        The per-cell arithmetic replicates the historical
        ``Rect.intersection`` expressions exactly and multiplies keep
        factors macro-by-macro in iteration order, so capacities are
        bit-identical to the original per-cell loop.
        """
        bw = die.w / bins
        bh = die.h / bins
        cap_h = np.full((bins, bins), TRACKS_PER_UNIT * bh)
        cap_v = np.full((bins, bins), TRACKS_PER_UNIT * bw)
        gx = die.x + np.arange(bins) * bw      # g-cell lower-left corners
        gy = die.y + np.arange(bins) * bh
        gcell_area = bw * bh
        for rect in macro_rects:
            i0 = max(0, int((rect.x - die.x) / bw))
            i1 = min(bins - 1, int((rect.x2 - die.x - 1e-9) / bw))
            j0 = max(0, int((rect.y - die.y) / bh))
            j1 = min(bins - 1, int((rect.y2 - die.y - 1e-9) / bh))
            if i1 < i0 or j1 < j0:
                continue
            cx = gx[i0:i1 + 1]
            cy = gy[j0:j1 + 1]
            iw = np.maximum(0.0, np.minimum(cx + bw, rect.x2)
                            - np.maximum(cx, rect.x))
            ih = np.maximum(0.0, np.minimum(cy + bh, rect.y2)
                            - np.maximum(cy, rect.y))
            blocked = np.outer(iw, ih) / gcell_area
            keep = 1.0 - blocked * (1.0 - MACRO_POROSITY)
            cap_h[i0:i1 + 1, j0:j1 + 1] *= keep
            cap_v[i0:i1 + 1, j0:j1 + 1] *= keep
        zeros = np.zeros((bins, bins))
        return cls(die=die, bins=bins, capacity_h=cap_h, capacity_v=cap_v,
                   demand_h=zeros.copy(), demand_v=zeros.copy())

    # -- coordinate helpers ---------------------------------------------------

    def bin_of(self, x: float, y: float):
        i = int((x - self.die.x) / (self.die.w / self.bins))
        j = int((y - self.die.y) / (self.die.h / self.bins))
        return (min(max(i, 0), self.bins - 1),
                min(max(j, 0), self.bins - 1))

    def bins_of(self, x: np.ndarray, y: np.ndarray):
        """Vectorized :meth:`bin_of` (truncation + clamp, like ``int()``)."""
        i = ((x - self.die.x) / (self.die.w / self.bins)).astype(np.int64)
        j = ((y - self.die.y) / (self.die.h / self.bins)).astype(np.int64)
        return (np.clip(i, 0, self.bins - 1),
                np.clip(j, 0, self.bins - 1))

    # -- demand ----------------------------------------------------------------

    def add_horizontal(self, j: int, i0: int, i1: int,
                       weight: float) -> None:
        if i1 < i0:
            i0, i1 = i1, i0
        self.demand_h[i0:i1 + 1, j] += weight

    def add_vertical(self, i: int, j0: int, j1: int, weight: float) -> None:
        if j1 < j0:
            j0, j1 = j1, j0
        self.demand_v[i, j0:j1 + 1] += weight

    def add_l_route(self, x0: float, y0: float, x1: float, y1: float,
                    weight: float) -> None:
        """Spread ``weight`` demand over the two L routes of a 2-pin net."""
        i0, j0 = self.bin_of(x0, y0)
        i1, j1 = self.bin_of(x1, y1)
        if i0 == i1 and j0 == j1:
            return
        half = weight / 2.0
        # Lower-L: horizontal at j0 then vertical at i1.
        self.add_horizontal(j0, i0, i1, half)
        self.add_vertical(i1, j0, j1, half)
        # Upper-L: vertical at i0 then horizontal at j1.
        self.add_vertical(i0, j0, j1, half)
        self.add_horizontal(j1, i0, i1, half)

    def add_l_routes(self, x0: np.ndarray, y0: np.ndarray,
                     x1: np.ndarray, y1: np.ndarray,
                     weight: float = 1.0) -> None:
        """Vectorized :meth:`add_l_route` over parallel segment arrays.

        Every segment's two L routes are rasterized with the
        difference-array trick: span endpoints are scattered into
        ``(bins + 1, bins)`` delta rasters and a prefix sum along the
        span axis recovers the demand.  Same-bin segments add nothing,
        exactly like the scalar method.  All contributions are halves
        of ``weight``; with the default integral weight they are exact
        binary fractions, so the accumulated raster is bit-identical
        to scalar segment-by-segment addition.
        """
        i0, j0 = self.bins_of(x0, y0)
        i1, j1 = self.bins_of(x1, y1)
        moved = ~((i0 == i1) & (j0 == j1))
        if not moved.any():
            return
        i0, j0, i1, j1 = i0[moved], j0[moved], i1[moved], j1[moved]
        half = weight / 2.0
        bins = self.bins

        lo_i = np.minimum(i0, i1)
        hi_i = np.maximum(i0, i1)
        delta_h = np.zeros((bins + 1, bins))
        # Lower-L horizontal at j0, upper-L horizontal at j1.
        np.add.at(delta_h, (lo_i, j0), half)
        np.add.at(delta_h, (hi_i + 1, j0), -half)
        np.add.at(delta_h, (lo_i, j1), half)
        np.add.at(delta_h, (hi_i + 1, j1), -half)
        self.demand_h += np.cumsum(delta_h, axis=0)[:bins]

        lo_j = np.minimum(j0, j1)
        hi_j = np.maximum(j0, j1)
        delta_v = np.zeros((bins, bins + 1))
        # Lower-L vertical at i1, upper-L vertical at i0.
        np.add.at(delta_v, (i1, lo_j), half)
        np.add.at(delta_v, (i1, hi_j + 1), -half)
        np.add.at(delta_v, (i0, lo_j), half)
        np.add.at(delta_v, (i0, hi_j + 1), -half)
        self.demand_v += np.cumsum(delta_v, axis=1)[:, :bins]

    # -- metrics -----------------------------------------------------------------

    def overflow_total(self) -> float:
        over_h = np.maximum(self.demand_h - self.capacity_h, 0.0)
        over_v = np.maximum(self.demand_v - self.capacity_v, 0.0)
        return float(over_h.sum() + over_v.sum())

    def capacity_total(self) -> float:
        return float(self.capacity_h.sum() + self.capacity_v.sum())

    def overflowed_gcell_fraction(self) -> float:
        over = ((self.demand_h > self.capacity_h)
                | (self.demand_v > self.capacity_v))
        return float(over.mean())

    def utilization_map(self) -> np.ndarray:
        """Demand / capacity per g-cell (max of the two directions)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            uh = np.where(self.capacity_h > 1e-12,
                          self.demand_h / self.capacity_h, 10.0)
            uv = np.where(self.capacity_v > 1e-12,
                          self.demand_v / self.capacity_v, 10.0)
        return np.maximum(uh, uv)
