"""Hierarchical span tracer with a zero-overhead disabled mode.

A :class:`Tracer` owns a stack of open spans; ``tracer.span(name)``
returns a context manager that times its block with the obs clock and
attaches itself to the enclosing span, producing a tree like::

    place
    └── floorplan
        ├── restart[0]
        ├── restart[1]
        └── referee.hpwl

The active tracer is carried in a :class:`~contextvars.ContextVar`
(:func:`current_tracer` / :func:`use_tracer`) so deeply nested code —
annealing loops, referee kernels, prepared-design compile steps — can
record spans without threading a tracer argument through every API.

When no tracer is installed, :func:`current_tracer` returns the shared
:data:`NULL_TRACER`, whose ``span``/``event`` calls reuse one
pre-built no-op span and read no clock: the cost of instrumentation
left in hot paths is a ContextVar read and an attribute check.

Determinism contract: tracers observe, never steer.  Nothing here
touches RNG streams or placement state, and span payloads are kept out
of every artifact the benchmark gates compare.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro.obs.clock import perf_seconds, wall_seconds
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


class Span:
    """One timed, attributed node in the span tree."""

    __slots__ = ("name", "attrs", "t0", "t1", "children", "_tracer")

    def __init__(self, name: str, tracer: "Tracer",
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.t0 = 0.0
        self.t1 = 0.0
        self.children: List["Span"] = []
        self._tracer = tracer

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.t0 = perf_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.t1 = perf_seconds()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects a span forest + events + metrics for one process."""

    enabled = True

    def __init__(self, label: str = "main") -> None:
        self.label = label
        self.pid = os.getpid()
        self.metrics = MetricsRegistry()
        # Pairing a wall anchor with a perf anchor lets sinks place
        # every span from every process on one absolute timeline.
        self.wall_anchor = wall_seconds()
        self.perf_anchor = perf_seconds()
        self.roots: List[Span] = []
        self.events: List[Dict[str, object]] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: object) -> Span:
        return Span(name, self, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event (rendered as ``ph:"i"`` in Chrome)."""
        self.events.append({
            "name": name,
            "t": perf_seconds(),
            "attrs": dict(attrs),
        })

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    def payload(self) -> Dict[str, object]:
        """Picklable snapshot, shipped from suite workers to the parent."""
        return {
            "label": self.label,
            "pid": self.pid,
            "wall_anchor": self.wall_anchor,
            "perf_anchor": self.perf_anchor,
            "spans": [s.to_dict() for s in self.roots],
            "events": [dict(e) for e in self.events],
            "metrics": self.metrics.to_dict(),
        }


class _NullSpan:
    """Shared no-op span: enter/exit touch no clock, no state."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, object] = {}
    t0 = 0.0
    t1 = 0.0
    seconds = 0.0
    children: List["_NullSpan"] = []

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Disabled tracer: every call is a constant-time no-op."""

    enabled = False
    label = "null"
    pid = 0
    metrics = NULL_REGISTRY

    _SPAN = _NullSpan()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return self._SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def payload(self) -> Dict[str, object]:
        return {}


NULL_TRACER = NullTracer()

_ACTIVE: ContextVar[object] = ContextVar("repro_obs_tracer",
                                         default=NULL_TRACER)


def current_tracer():
    """The tracer installed for this context (NULL_TRACER when off)."""
    return _ACTIVE.get()


@contextmanager
def use_tracer(tracer) -> Iterator[object]:
    """Install ``tracer`` as the context's active tracer."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
