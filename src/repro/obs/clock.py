"""The single sanctioned wall-clock reader (the REP006 exception).

Every timing the observability layer records — span durations, stage
seconds, the ``referee_*_us`` counters — flows through this module, so
the repro-analyze REP006 rule (no wall-clock reads in kernel and
cost-model code) stays enforceable everywhere else: kernel code may
call :func:`perf_seconds` (which is not a ``time.*`` read at the call
site), and the two suppressed reads below are the only clock reads in
``src/``.  ``tests/test_analyze.py`` proves that invariant against the
analyzer's effect summaries, so a stray ``time.perf_counter()`` added
by future instrumentation fails CI instead of silently eroding the
determinism contract.

Timings read here are observability-only by construction: nothing in
this module (or in :mod:`repro.obs` at large) feeds a metric value, a
placement coordinate or an RNG stream.
"""

from __future__ import annotations

import time


def perf_seconds() -> float:
    """Monotonic high-resolution seconds (durations, span timings)."""
    return time.perf_counter()  # repro: noqa[REP006] obs clock: sole monotonic reader


def wall_seconds() -> float:
    """Epoch seconds; anchors per-process monotonic spans on one
    timeline so cross-process traces align in Perfetto."""
    return time.time()  # repro: noqa[REP006] obs clock: epoch anchor for traces
