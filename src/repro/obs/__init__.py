"""repro.obs: hierarchical tracing, metrics, and trace sinks.

Usage::

    from repro.obs import Tracer, use_tracer, current_tracer

    tracer = Tracer("main")
    with use_tracer(tracer):
        run_flow(..., trace=True)
    write_chrome_trace("out.json", [tracer.payload()])

When no tracer is installed, ``current_tracer()`` returns the shared
no-op :data:`NULL_TRACER`; instrumentation left in hot paths costs a
ContextVar read and nothing else.  See ROADMAP.md "Observability" for
the span taxonomy and the single-clock REP006 exception.
"""

from repro.obs.clock import perf_seconds, wall_seconds
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import (
    chrome_trace,
    iter_spans,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "iter_spans",
    "perf_seconds",
    "render_summary",
    "use_tracer",
    "wall_seconds",
    "write_chrome_trace",
    "write_jsonl",
]
