"""Trace sinks: Chrome trace-event JSON, JSONL, and a summary tree.

All three sinks consume the same input — a list of tracer payloads
(:meth:`repro.obs.tracer.Tracer.payload` dicts), one per traced
process.  The Chrome sink emits the ``traceEvents`` array format that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly; per-payload wall/perf anchors place spans from different
processes on one absolute timeline.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry

Payload = Mapping[str, object]


def iter_spans(payload: Payload) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Yield ``(depth, span_dict)`` over a payload's span forest."""
    stack = [(0, span) for span in reversed(payload.get("spans", []))]
    while stack:
        depth, span = stack.pop()
        yield depth, span
        for child in reversed(span.get("children", [])):
            stack.append((depth + 1, child))


def chrome_trace(payloads: Sequence[Payload]) -> Dict[str, object]:
    """Build a Chrome trace-event document from tracer payloads."""
    events: List[Dict[str, object]] = []
    for payload in payloads:
        pid = int(payload.get("pid", 0))
        label = str(payload.get("label", "proc"))
        # chrome ts is absolute microseconds: re-anchor each process's
        # monotonic perf timestamps on its wall clock so concurrent
        # workers line up side by side in Perfetto.
        wall = float(payload.get("wall_anchor", 0.0))
        perf = float(payload.get("perf_anchor", 0.0))

        def ts(t: float, wall=wall, perf=perf) -> float:
            return (wall + (t - perf)) * 1e6

        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
        for _depth, span in iter_spans(payload):
            event: Dict[str, object] = {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": ts(float(span["t0"])),
                "dur": max(0.0, (float(span["t1"]) - float(span["t0"]))
                           * 1e6),
                "pid": pid,
                "tid": 0,
            }
            attrs = span.get("attrs")
            if attrs:
                event["args"] = dict(attrs)
            events.append(event)
        for instant in payload.get("events", []):
            event = {
                "name": instant["name"],
                "cat": "repro",
                "ph": "i",
                "s": "p",
                "ts": ts(float(instant["t"])),
                "pid": pid,
                "tid": 0,
            }
            if instant.get("attrs"):
                event["args"] = dict(instant["attrs"])
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, payloads: Sequence[Payload]) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(payloads), fh, indent=1)
        fh.write("\n")


def write_jsonl(path, payloads: Sequence[Payload]) -> None:
    """One JSON object per line: payload headers, spans, and events."""
    with open(path, "w") as fh:
        for payload in payloads:
            header = {k: payload[k] for k in
                      ("label", "pid", "wall_anchor", "perf_anchor")
                      if k in payload}
            fh.write(json.dumps({"kind": "process", **header}) + "\n")
            for depth, span in iter_spans(payload):
                row = {
                    "kind": "span",
                    "pid": payload.get("pid"),
                    "depth": depth,
                    "name": span["name"],
                    "seconds": float(span["t1"]) - float(span["t0"]),
                }
                if span.get("attrs"):
                    row["attrs"] = span["attrs"]
                fh.write(json.dumps(row) + "\n")
            for instant in payload.get("events", []):
                row = {
                    "kind": "event",
                    "pid": payload.get("pid"),
                    "name": instant["name"],
                }
                if instant.get("attrs"):
                    row["attrs"] = instant["attrs"]
                fh.write(json.dumps(row) + "\n")
            metrics = payload.get("metrics")
            if metrics:
                fh.write(json.dumps(
                    {"kind": "metrics", "pid": payload.get("pid"),
                     **metrics}) + "\n")


def _merge_tree(payloads: Sequence[Payload]) -> List[dict]:
    """Merge span forests by (depth, name): count + total seconds."""

    def merge_level(span_lists: List[List[dict]]) -> List[dict]:
        order: List[str] = []
        groups: Dict[str, dict] = {}
        for spans in span_lists:
            for span in spans:
                name = span["name"]
                node = groups.get(name)
                if node is None:
                    node = {"name": name, "count": 0, "seconds": 0.0,
                            "_children": []}
                    groups[name] = node
                    order.append(name)
                node["count"] += 1
                node["seconds"] += float(span["t1"]) - float(span["t0"])
                node["_children"].append(span.get("children", []))
        merged = []
        for name in order:
            node = groups[name]
            node["children"] = merge_level(node.pop("_children"))
            merged.append(node)
        return merged

    return merge_level([list(p.get("spans", [])) for p in payloads])


def render_summary(payloads: Sequence[Payload],
                   top: Optional[int] = None) -> str:
    """Human timing footer: merged span tree + headline counters."""
    lines: List[str] = []
    procs = ", ".join(
        f"{p.get('label', 'proc')}(pid {p.get('pid', '?')})"
        for p in payloads)
    lines.append(f"trace: {len(payloads)} process(es): {procs}")

    def emit(nodes: List[dict], depth: int) -> None:
        ranked = sorted(nodes, key=lambda n: -n["seconds"])
        if top is not None:
            ranked = ranked[:top]
        shown = {id(n) for n in ranked}
        for node in nodes:           # keep structural (call) order
            if id(node) not in shown:
                continue
            count = f" x{node['count']}" if node["count"] > 1 else ""
            lines.append(f"{'  ' * depth}{node['seconds']:9.3f}s  "
                         f"{node['name']}{count}")
            emit(node["children"], depth + 1)

    emit(_merge_tree(payloads), 0)

    merged = MetricsRegistry()
    for payload in payloads:
        metrics = payload.get("metrics")
        if metrics:
            merged.merge(metrics)
    if merged.counters or merged.labels:
        lines.append("counters:")
        for name in sorted(merged.counters):
            value = merged.counters[name]
            text = f"{value:g}"
            lines.append(f"  {name} = {text}")
        for name in sorted(merged.labels):
            lines.append(f"  {name} = {merged.labels[name]}")
    return "\n".join(lines)
