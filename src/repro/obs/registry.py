"""Unified metrics registry: counters, gauges, labels, histograms.

The registry absorbs the repo's legacy ``eval_counters`` mapping
(numeric values become counters, strings become labels) and re-exports
it unchanged through :meth:`MetricsRegistry.as_eval_counters`, so
observers and tests written against the old dict keep working while
new instrumentation records structured metrics.

Registries are plain dict-of-float state — picklable, mergeable, and
deterministic to serialize — so suite workers can ship theirs back
through the existing ``ProcessPoolExecutor`` result path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Union

Number = Union[int, float]


class MetricsRegistry:
    """Named counters/gauges/labels/histograms for one traced run."""

    __slots__ = ("counters", "gauges", "labels", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.labels: Dict[str, str] = {}
        # name -> [count, total, min, max]
        self.histograms: Dict[str, List[float]] = {}

    # -- recording ----------------------------------------------------
    def counter(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the running total for ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Record the latest value for ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def label(self, name: str, value: str) -> None:
        """Record a string-valued fact (e.g. the referee backend name)."""
        self.labels[name] = str(value)

    def observe(self, name: str, value: Number) -> None:
        """Fold ``value`` into the histogram summary for ``name``."""
        value = float(value)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)

    # -- legacy eval_counters bridge ----------------------------------
    def absorb(self, mapping: Mapping[str, object]) -> None:
        """Fold a legacy ``eval_counters``-style dict into the registry.

        Numeric values accumulate as counters, everything else becomes
        a label — the exact inverse of :meth:`as_eval_counters`, so a
        round trip reproduces the original mapping (with numeric sums
        where a key was absorbed twice, matching the old merge
        semantics in ``RunArtifacts.eval_counters``).
        """
        for key, value in mapping.items():
            if isinstance(value, bool):
                self.counter(key, int(value))
            elif isinstance(value, (int, float)):
                self.counter(key, value)
            else:
                self.label(key, str(value))

    def as_eval_counters(self) -> Dict[str, object]:
        """Back-compat view: the flat dict observers/tests expect."""
        out: Dict[str, object] = {}
        out.update(self.counters)
        out.update(self.labels)
        return out

    # -- serialization ------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "labels": dict(self.labels),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
        }

    def merge(self, payload: Mapping[str, object]) -> None:
        """Merge a :meth:`to_dict` payload (e.g. from a suite worker)."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)
        for name, value in payload.get("labels", {}).items():
            self.label(name, value)
        for name, hist in payload.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = list(hist)
            else:
                mine[0] += hist[0]
                mine[1] += hist[1]
                mine[2] = min(mine[2], hist[2])
                mine[3] = max(mine[3], hist[3])


class _NullRegistry(MetricsRegistry):
    """Registry used by the disabled tracer: records nothing."""

    __slots__ = ()

    def counter(self, name: str, value: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def label(self, name: str, value: str) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def absorb(self, mapping: Mapping[str, object]) -> None:
        pass


#: Shared sink for metrics recorded while tracing is disabled.
NULL_REGISTRY = _NullRegistry()
