"""Bounded deterministic memo store for the incremental evaluators.

Every incremental-evaluation cache (pairwise curve composition, subtree
annotations, budgeted sub-layouts, whole-expression transposition
tables) wraps this store.  It is a plain dict with one policy: when
``max_entries`` is reached the store is cleared wholesale.  Unlike LRU
eviction, a full clear cannot make results depend on lookup order, so
cached and uncached runs stay bit-identical — the property the whole
incremental engine rests on.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

#: Default capacity shared by all incremental-eval caches.
DEFAULT_MAX_ENTRIES = 1 << 17


class BoundedStore:
    """A dict bounded by clearing wholesale when full."""

    __slots__ = ("max_entries", "_store")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self._store: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable) -> Optional[Any]:
        return self._store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        if len(self._store) >= self.max_entries:
            self._store.clear()
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()
