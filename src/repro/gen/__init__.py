"""Synthetic RTL design generation.

The paper's evaluation uses eight proprietary industrial circuits whose
essential placement-relevant signals are: a deep RTL hierarchy, bus and
register-array structure, macro-dominated area, and strongly-patterned
dataflow between subsystems.  This package generates designs carrying
exactly those signals — pipelines, memory subsystems, crossbars and DSP
datapaths composed into chips — with the paper's macro counts kept 1:1
and cell counts scaled to laptop size (see DESIGN.md §5).

Every generated design ships a :class:`GroundTruth` describing the
intended dataflow order; the handFP "expert" baseline consumes it, just
as the paper's human experts consumed their knowledge of the design.
"""

from repro.gen.macros import MacroLibrary, make_macro_library
from repro.gen.spec import DesignSpec, GroundTruth, SubsystemSpec
from repro.gen.designs import build_design, suite_specs

__all__ = [
    "DesignSpec",
    "GroundTruth",
    "MacroLibrary",
    "SubsystemSpec",
    "build_design",
    "make_macro_library",
    "suite_specs",
]
