"""Subsystem construction patterns.

Each builder returns a module with a ``din``/``dout`` bus interface and
registers the submodules it creates on the design.  The four patterns
mirror the structures the paper's intro motivates: register pipelines
threading memories, banked memory subsystems, switch fabrics, and DSP
datapaths with coefficient ROMs.
"""

from __future__ import annotations

import random
from typing import List

from repro.gen.macros import MacroLibrary
from repro.gen.spec import SubsystemSpec
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design, Module


def _spread(total: int, buckets: int) -> List[int]:
    """Distribute ``total`` items over ``buckets`` as evenly as possible."""
    if buckets <= 0:
        return []
    base, extra = divmod(total, buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


def _stage_module(design: Design, name: str, width: int, n_macros: int,
                  filler: int, library: MacroLibrary,
                  rng: random.Random) -> Module:
    """One pipeline stage: in_reg -> comb -> macros -> comb -> out_reg."""
    b = ModuleBuilder(name)
    b.input("din", width)
    b.output("dout", width)
    b.wire("pre", width)
    b.register_array("in_reg", width, d="din", q="pre")

    current = "pre"
    for m in range(n_macros):
        macro_type = library.sample(rng)
        mw = macro_type.port("din").width
        inst = b.instance(macro_type, f"mem{m}")
        feed = f"feed{m}"
        back = f"back{m}"
        b.wire(feed, mw)
        b.wire(back, mw)
        b.comb_cloud(f"mix{m}", [current], feed)
        b.connect_bus(feed, inst, "din")
        # Address pins hang off the stage input (control-ish fan-in).
        addr_w = macro_type.port("addr").width
        b.connect(current, inst, "addr",
                  width=min(addr_w, width), net_lsb=0, pin_lsb=0)
        b.connect_bus(back, inst, "dout")
        current = back

    b.wire("post", width)
    b.comb_cloud("collect", [current], "post",
                 n_cells=width + max(0, filler))
    b.register_array("out_reg", width, d="post", q="dout")
    module = b.build()
    design.add_module(module)
    return module


def build_pipeline(design: Design, spec: SubsystemSpec,
                   library: MacroLibrary, rng: random.Random) -> Module:
    """A pipeline of stages, each threading its macro share."""
    stages = max(1, spec.stages)
    macro_split = _spread(spec.macros, stages)
    filler_split = _spread(spec.filler_cells, stages)
    b = ModuleBuilder(spec.name)
    b.input("din", spec.width)
    b.output("dout", spec.width)
    current = "din"
    for s in range(stages):
        stage = _stage_module(design, f"{spec.name}_stage{s}", spec.width,
                              macro_split[s], filler_split[s], library, rng)
        inst = b.instance(stage, f"st{s}")
        nxt = f"l{s}" if s < stages - 1 else "dout"
        if nxt != "dout":
            b.wire(nxt, spec.width)
        b.connect_bus(current, inst, "din")
        b.connect_bus(nxt, inst, "dout")
        current = nxt
    module = b.build()
    design.add_module(module)
    return module


def _bank_module(design: Design, name: str, width: int, n_macros: int,
                 filler: int, library: MacroLibrary,
                 rng: random.Random) -> Module:
    """A memory bank: small periphery logic plus its macros in parallel."""
    b = ModuleBuilder(name)
    b.input("din", width)
    b.output("dout", width)
    b.wire("wdata", width)
    b.register_array("wr_reg", width, d="din", q="wdata")
    outs = []
    for m in range(max(1, n_macros)):
        if m < n_macros:
            macro_type = library.sample(rng)
            inst = b.instance(macro_type, f"ram{m}")
            mw = macro_type.port("din").width
            feed, back = f"feed{m}", f"back{m}"
            b.wire(feed, mw)
            b.wire(back, mw)
            b.comb_cloud(f"wmux{m}", ["wdata"], feed)
            b.connect_bus(feed, inst, "din")
            addr_w = macro_type.port("addr").width
            b.connect("wdata", inst, "addr", width=min(addr_w, width))
            b.connect_bus(back, inst, "dout")
            outs.append(back)
    b.wire("rdata", width)
    b.comb_cloud("rmux", outs or ["wdata"], "rdata",
                 n_cells=width + max(0, filler))
    b.register_array("rd_reg", width, d="rdata", q="dout")
    module = b.build()
    design.add_module(module)
    return module


def build_memsys(design: Design, spec: SubsystemSpec,
                 library: MacroLibrary, rng: random.Random) -> Module:
    """A banked memory subsystem: decode -> banks (parallel) -> merge."""
    banks = max(1, spec.stages)
    macro_split = _spread(spec.macros, banks)
    filler_split = _spread(spec.filler_cells, banks + 1)
    b = ModuleBuilder(spec.name)
    b.input("din", spec.width)
    b.output("dout", spec.width)
    b.wire("decoded", spec.width)
    b.comb_cloud("decode", ["din"], "decoded",
                 n_cells=spec.width + filler_split[-1])
    bank_outs = []
    for k in range(banks):
        bank = _bank_module(design, f"{spec.name}_bank{k}", spec.width,
                            macro_split[k], filler_split[k], library, rng)
        inst = b.instance(bank, f"bank{k}")
        out = f"bout{k}"
        b.wire(out, spec.width)
        b.connect_bus("decoded", inst, "din")
        b.connect_bus(out, inst, "dout")
        bank_outs.append(out)
    b.wire("merged", spec.width)
    b.comb_cloud("merge", bank_outs, "merged")
    b.register_array("out_reg", spec.width, d="merged", q="dout")
    module = b.build()
    design.add_module(module)
    return module


def _lane_module(design: Design, name: str, full_width: int, lane_w: int,
                 n_macros: int, filler: int, library: MacroLibrary,
                 rng: random.Random) -> Module:
    """One crossbar lane: switch cloud, lane register, buffer macros."""
    b = ModuleBuilder(name)
    b.input("din", full_width)
    b.output("dout", lane_w)
    b.wire("picked", lane_w)
    b.wire("held", lane_w)
    b.comb_cloud("sw", ["din"], "picked", n_cells=lane_w + max(0, filler))
    b.register_array("lane_reg", lane_w, d="picked", q="held")
    current = "held"
    for m in range(n_macros):
        macro_type = library.sample(rng)
        inst = b.instance(macro_type, f"buf{m}")
        mw = macro_type.port("din").width
        feed, back, mixed = f"bf{m}", f"bb{m}", f"bm{m}"
        b.wire(feed, mw)
        b.wire(back, mw)
        b.wire(mixed, lane_w)
        b.comb_cloud(f"bfm{m}", [current], feed)
        b.connect_bus(feed, inst, "din")
        b.connect(current, inst, "addr",
                  width=min(macro_type.port("addr").width, lane_w))
        b.connect_bus(back, inst, "dout")
        b.comb_cloud(f"bmx{m}", [back], mixed)
        current = mixed
    b.wire("out_pre", lane_w)
    b.comb_cloud("out_mix", [current], "out_pre")
    b.register_array("out_reg", lane_w, d="out_pre", q="dout")
    module = b.build()
    design.add_module(module)
    return module


def build_xbar(design: Design, spec: SubsystemSpec,
               library: MacroLibrary, rng: random.Random) -> Module:
    """A registered switch fabric; optional buffer macros per lane."""
    lanes = max(2, spec.stages)
    lane_w = max(4, spec.width // lanes)
    macro_split = _spread(spec.macros, lanes)
    filler_split = _spread(spec.filler_cells, lanes)
    b = ModuleBuilder(spec.name)
    b.input("din", spec.width)
    b.output("dout", spec.width)
    for l in range(lanes):
        lane = _lane_module(design, f"{spec.name}_lane{l}", spec.width,
                            lane_w, macro_split[l], filler_split[l],
                            library, rng)
        inst = b.instance(lane, f"lane{l}")
        out = f"lo{l}"
        b.wire(out, lane_w)
        b.connect_bus("din", inst, "din")
        b.connect_bus(out, inst, "dout")
        base = l * lane_w
        take = min(lane_w, spec.width - base)
        if take > 0:
            b.comb_slice(f"gather{l}", out, "dout", base, take)
    module = b.build()
    design.add_module(module)
    return module


def build_dsp(design: Design, spec: SubsystemSpec,
              library: MacroLibrary, rng: random.Random) -> Module:
    """A DSP datapath: MAC-ish comb stages with coefficient ROMs."""
    taps = max(1, spec.stages)
    macro_split = _spread(spec.macros, taps)
    filler_split = _spread(spec.filler_cells, taps)
    b = ModuleBuilder(spec.name)
    b.input("din", spec.width)
    b.output("dout", spec.width)
    current = "din"
    for t in range(taps):
        acc = f"acc{t}"
        b.wire(acc, spec.width)
        sources = [current]
        for m in range(macro_split[t]):
            macro_type = library.sample(rng)
            inst = b.instance(macro_type, f"rom{t}_{m}")
            mw = macro_type.port("din").width
            coeff = f"coef{t}_{m}"
            b.wire(coeff, mw)
            b.connect(current, inst, "din",
                      width=min(mw, spec.width))
            b.connect(current, inst, "addr",
                      width=min(macro_type.port("addr").width, spec.width))
            b.connect_bus(coeff, inst, "dout")
            sources.append(coeff)
        b.comb_cloud(f"mac{t}", sources, acc,
                     n_cells=spec.width + filler_split[t])
        reg_out = f"r{t}" if t < taps - 1 else "dout"
        if reg_out != "dout":
            b.wire(reg_out, spec.width)
        b.register_array(f"tap_reg{t}", spec.width, d=acc, q=reg_out)
        current = reg_out
    module = b.build()
    design.add_module(module)
    return module


BUILDERS = {
    "pipeline": build_pipeline,
    "memsys": build_memsys,
    "xbar": build_xbar,
    "dsp": build_dsp,
}
