"""Macro cell libraries for generated designs.

Macros model SRAMs/ROMs: a data-in bus on the west side, data-out on the
east, an address bus on the south.  Dimensions vary per library so
shape-curve generation has real work to do; the library is deterministic
in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.netlist.cells import (
    CellType,
    Direction,
    PinGeometry,
    PortDef,
    Side,
    macro_cell,
)


@dataclass
class MacroLibrary:
    """A set of macro cell types plus a sampling helper."""

    cells: Dict[str, CellType]
    _order: List[str]

    def sample(self, rng: random.Random) -> CellType:
        return self.cells[self._order[rng.randrange(len(self._order))]]

    def by_name(self, name: str) -> CellType:
        return self.cells[name]


def make_ram(name: str, data_width: int, depth_units: float,
             aspect: float) -> CellType:
    """An SRAM-ish macro: area grows with width x depth, shape with aspect.

    ``depth_units`` abstracts the word count; the constant converts
    bit-area to our site units so macro area dominates cell area as in
    the paper's circuits.
    """
    area = max(16.0, 0.35 * data_width * depth_units)
    width = (area / aspect) ** 0.5
    height = area / width
    ports = [
        PortDef("din", Direction.IN, data_width),
        PortDef("addr", Direction.IN, max(2, int(depth_units).bit_length())),
        PortDef("dout", Direction.OUT, data_width),
    ]
    geometry = {
        "din": PinGeometry(Side.WEST, 0.5),
        "addr": PinGeometry(Side.SOUTH, 0.5),
        "dout": PinGeometry(Side.EAST, 0.5),
    }
    return macro_cell(name, round(width, 2), round(height, 2),
                      ports, geometry)


def make_macro_library(seed: int, data_width: int,
                       n_types: int = 4) -> MacroLibrary:
    """A deterministic library of ``n_types`` RAM variants.

    The seed is baked into the type names: two libraries with different
    seeds can produce differently-shaped RAMs, and name collisions would
    corrupt round-trips that resolve leaf cells by name.
    """
    rng = random.Random(seed * 2654435761 % (2 ** 31))
    tag = seed % 9973
    cells: Dict[str, CellType] = {}
    order: List[str] = []
    for i in range(n_types):
        depth = rng.choice([16.0, 24.0, 32.0, 48.0, 64.0])
        aspect = rng.choice([0.5, 0.75, 1.0, 1.5, 2.0])
        name = f"RAM{data_width}X{int(depth)}_L{tag}_{i}"
        cells[name] = make_ram(name, data_width, depth, aspect)
        order.append(name)
    return MacroLibrary(cells=cells, _order=order)
