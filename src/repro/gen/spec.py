"""Specifications for generated designs and their ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SubsystemSpec:
    """One top-level subsystem of a generated chip."""

    kind: str                 # "pipeline" | "memsys" | "xbar" | "dsp"
    name: str
    macros: int               # macro budget of this subsystem
    width: int                # data bus width
    stages: int = 4           # pipeline/dsp depth, memsys banks, xbar size
    filler_cells: int = 0     # extra glue cells for area realism


@dataclass
class DesignSpec:
    """A whole generated chip."""

    name: str
    seed: int
    subsystems: List[SubsystemSpec]
    utilization: float = 0.55
    aspect: float = 1.0
    #: Extra top-level cross links (from, to) subsystem indices beside
    #: the main chain; they add the secondary dataflow the paper's
    #: industrial designs exhibit.
    cross_links: List = field(default_factory=list)
    #: What the paper reported for the analogous circuit, recorded so
    #: EXPERIMENTS.md can show the scale substitution explicitly.
    paper_cells: Optional[str] = None
    paper_macros: Optional[int] = None

    @property
    def total_macros(self) -> int:
        return sum(s.macros for s in self.subsystems)


@dataclass
class GroundTruth:
    """Designer knowledge about a generated chip.

    ``order`` is the intended 1-D dataflow order of the top-level
    subsystem instances; ``subsystem_macros`` maps each instance name to
    the hierarchical paths of its macros.  The handFP oracle uses this
    the way the paper's back-end experts used their understanding of
    the design.
    """

    order: List[str]
    subsystem_macros: Dict[str, List[str]]
    widths: Dict[str, int] = field(default_factory=dict)
