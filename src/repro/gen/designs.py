"""The c1..c8 design suite and the chip-level composer.

``suite_specs`` returns specs mirroring the paper's Table III circuits:
macro counts are kept 1:1 and standard-cell counts are scaled (bench
scale ≈ 1:500, full scale ≈ 1:200 — see DESIGN.md §5).  ``build_design``
composes the subsystems into a chip: a main dataflow chain with a few
cross links, ports at both ends, deterministic in the spec seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.gen.macros import make_macro_library
from repro.gen.patterns import BUILDERS
from repro.gen.spec import DesignSpec, GroundTruth, SubsystemSpec
from repro.netlist.builder import ModuleBuilder
from repro.netlist.core import Design
from repro.netlist.flatten import flatten

#: (name, paper cell count, paper macro count, subsystem plan)
#: Every plan lists (kind, macro share, width, stages) per subsystem;
#: macro shares are normalized to the paper's macro count.
_SUITE_PLAN = [
    ("c1", "520k", 32, 0.52,
     [("pipeline", 3, 64, 3), ("memsys", 4, 64, 4), ("dsp", 1, 32, 3)]),
    ("c2", "3.95M", 100, 3.95,
     [("pipeline", 3, 64, 4), ("memsys", 5, 128, 5), ("memsys", 4, 64, 4),
      ("xbar", 1, 64, 4), ("dsp", 2, 64, 4)]),
    ("c3", "3.78M", 94, 3.78,
     [("memsys", 4, 128, 4), ("pipeline", 3, 64, 4), ("dsp", 2, 64, 5),
      ("memsys", 3, 64, 4), ("xbar", 0, 64, 4)]),
    ("c4", "4.81M", 122, 4.81,
     [("pipeline", 4, 64, 5), ("memsys", 5, 128, 5), ("memsys", 4, 64, 4),
      ("dsp", 2, 64, 4), ("xbar", 1, 64, 4), ("pipeline", 2, 32, 3)]),
    ("c5", "1.39M", 133, 1.39,
     [("memsys", 6, 64, 6), ("memsys", 5, 64, 5), ("pipeline", 3, 32, 4),
      ("dsp", 2, 32, 4)]),
    ("c6", "2.87M", 90, 2.87,
     [("dsp", 3, 64, 5), ("pipeline", 3, 64, 4), ("memsys", 4, 128, 4),
      ("xbar", 1, 64, 4)]),
    ("c7", "1.67M", 108, 1.67,
     [("memsys", 5, 64, 5), ("xbar", 1, 64, 4), ("pipeline", 3, 64, 4),
      ("memsys", 4, 64, 4)]),
    ("c8", "2.20M", 37, 2.20,
     [("pipeline", 4, 64, 4), ("dsp", 2, 64, 4), ("memsys", 2, 128, 3)]),
]

#: stdcells per paper-million-cells at each scale.  Small designs are
#: floor-bound by their structural size (registers + clouds implied by
#: the subsystem plans); filler glue tops the count up to the target.
_SCALE_CELLS = {"tiny": 700.0, "bench": 4000.0, "full": 10000.0}


def suite_specs(scale: str = "bench") -> List[DesignSpec]:
    """Specs for the eight-circuit suite at the requested scale."""
    if scale not in _SCALE_CELLS:
        raise ValueError(f"unknown scale {scale!r}; "
                         f"choose from {sorted(_SCALE_CELLS)}")
    cells_per_m = _SCALE_CELLS[scale]
    specs: List[DesignSpec] = []
    for idx, (name, paper_cells, paper_macros, mcells, plan) \
            in enumerate(_SUITE_PLAN):
        target_cells = int(mcells * cells_per_m)
        share_total = sum(share for _k, share, _w, _s in plan)
        # Largest-remainder allocation keeps the macro total exact.
        exact = [paper_macros * share / share_total
                 for _k, share, _w, _s in plan]
        counts = [int(e) for e in exact]
        remainders = sorted(range(len(plan)),
                            key=lambda i: exact[i] - counts[i],
                            reverse=True)
        for i in remainders[:paper_macros - sum(counts)]:
            counts[i] += 1
        subsystems: List[SubsystemSpec] = []
        for i, (kind, share, width, stages) in enumerate(plan):
            subsystems.append(SubsystemSpec(
                kind=kind, name=f"{name}_{kind}{i}", macros=counts[i],
                width=width, stages=stages))
        _budget_filler(subsystems, target_cells)
        cross = [(0, len(plan) - 1)] if len(plan) > 2 else []
        if len(plan) > 4:
            cross.append((1, 3))
        specs.append(DesignSpec(
            name=name, seed=1000 + idx, subsystems=subsystems,
            cross_links=cross, paper_cells=paper_cells,
            paper_macros=paper_macros))
    return specs


def _structural_cells(spec: SubsystemSpec) -> int:
    """Rough cell count of a subsystem before filler (for budgeting)."""
    w, s = spec.width, max(1, spec.stages)
    per_stage = 3.2 * w + 28 * spec.macros / s
    return int(s * per_stage)


def _budget_filler(subsystems: List[SubsystemSpec],
                   target_cells: int) -> None:
    """Distribute filler cells so the chip hits its target cell count."""
    structural = sum(_structural_cells(s) for s in subsystems)
    leftover = max(0, target_cells - structural)
    weights = [max(1, _structural_cells(s)) for s in subsystems]
    total_w = sum(weights)
    for sub, w in zip(subsystems, weights):
        sub.filler_cells = int(leftover * w / total_w)


def build_design(spec: DesignSpec) -> Tuple[Design, GroundTruth]:
    """Compose the chip described by ``spec``.

    The top module chains the subsystems in order (the intended
    dataflow), adds the configured cross links, and exposes chip ports
    at both ends.  Returns the design plus its ground truth.
    """
    rng = random.Random(spec.seed)
    design = Design(spec.name)
    width0 = spec.subsystems[0].width
    width_last = spec.subsystems[-1].width

    top = ModuleBuilder(f"{spec.name}_top")
    top.input("chip_in", width0)
    top.output("chip_out", width_last)

    order: List[str] = []
    widths: Dict[str, int] = {}
    insts = []
    n_subs = len(spec.subsystems)
    # Instantiate all subsystems and their output buses first.
    for i, sub in enumerate(spec.subsystems):
        library = make_macro_library(spec.seed * 31 + i, sub.width)
        module = BUILDERS[sub.kind](design, sub, library, rng)
        inst_name = f"u_{sub.name}"
        inst = top.instance(module, inst_name)
        insts.append((inst, sub))
        order.append(inst_name)
        widths[inst_name] = sub.width
        top.wire(f"bus{i}", sub.width)
        top.connect_bus(f"bus{i}", inst, "dout")

    # Feed every subsystem input through a small top-level mixing cloud:
    # it adapts bus widths, merges cross links, and provides the loose
    # top-level glue the declustering/target-area steps must handle.
    cross_into: Dict[int, List[int]] = {}
    for a, b in spec.cross_links:
        a, b = sorted((a, b))
        if a != b and b < n_subs:
            cross_into.setdefault(b, []).append(a)
    for i, (inst, sub) in enumerate(insts):
        sources = ["chip_in"] if i == 0 else [f"bus{i - 1}"]
        sources.extend(f"bus{a}" for a in cross_into.get(i, ()))
        feed = f"feed{i}"
        top.wire(feed, sub.width)
        top.comb_cloud(f"link{i}", sources, feed)
        top.connect_bus(feed, inst, "din")

    # Chip output: gathered from the last subsystem's bus.
    top.comb_slice("out_gather", f"bus{n_subs - 1}", "chip_out", 0,
                   width_last)

    design.add_module(top.build())
    design.set_top(f"{spec.name}_top")

    truth = GroundTruth(order=order, subsystem_macros={}, widths=widths)
    flat = flatten(design)
    for inst_name in order:
        truth.subsystem_macros[inst_name] = [
            cell.path for cell in flat.macros()
            if cell.path.startswith(inst_name + "/")]
    return design, truth


def die_for(design: Design, utilization: float = 0.55,
            aspect: float = 1.0) -> Tuple[float, float]:
    """Die dimensions for a design at the given core utilization."""
    flat = flatten(design)
    area = flat.total_cell_area() / utilization
    width = math.sqrt(area / aspect)
    return (round(width, 2), round(area / width, 2))
