"""Gnet: the bit-level netlist graph.

Vertices are macros, top-level port bits, flops and combinational cells
(the paper's M ∪ P ∪ F ∪ C); a directed edge runs from the driver of a
flat bit net to each of its loads.  The graph is stored as integer
adjacency lists — at the paper's scale (~1e7 vertices) this is the only
representation that stays cheap, and it keeps our scaled version fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import Direction
from repro.netlist.flatten import FlatDesign


class NodeKind(Enum):
    """Vertex families of Gnet."""

    MACRO = "macro"
    PORT = "port"
    FLOP = "flop"
    COMB = "comb"

    @property
    def is_sequential(self) -> bool:
        """Sequential-boundary vertices: everything but combinational."""
        return self is not NodeKind.COMB


@dataclass
class Gnet:
    """Bit-level connectivity with O(1) vertex attribute access.

    Attributes are parallel lists indexed by vertex id.  ``cell_of`` maps
    a vertex to its flat cell index (or -1 for port vertices);
    ``port_of`` maps port vertices to ``(port name, bit)``.
    """

    kinds: List[NodeKind]
    cell_of: List[int]
    port_of: List[Optional[Tuple[str, int]]]
    succ: List[List[int]]
    pred: List[List[int]]
    node_of_cell: Dict[int, int]
    node_of_port: Dict[Tuple[str, int], int]

    @property
    def n_nodes(self) -> int:
        return len(self.kinds)

    def neighbors_undirected(self, node: int) -> List[int]:
        return self.succ[node] + self.pred[node]

    def counts(self) -> Dict[NodeKind, int]:
        out: Dict[NodeKind, int] = {kind: 0 for kind in NodeKind}
        for kind in self.kinds:
            out[kind] += 1
        return out

    def __repr__(self) -> str:
        counts = self.counts()
        return ("Gnet(" + ", ".join(
            f"{kind.value}={counts[kind]}" for kind in NodeKind) + ")")


def build_gnet(flat: FlatDesign) -> Gnet:
    """Build Gnet from a flattened design.

    One vertex per leaf cell (macros included) and one per top-level
    port *bit*.  For every flat bit net, edges run driver -> loads;
    nets without a cell or input-port driver contribute nothing.
    """
    kinds: List[NodeKind] = []
    cell_of: List[int] = []
    port_of: List[Optional[Tuple[str, int]]] = []
    node_of_cell: Dict[int, int] = {}
    node_of_port: Dict[Tuple[str, int], int] = {}

    def add_node(kind: NodeKind, cell: int,
                 port: Optional[Tuple[str, int]]) -> int:
        kinds.append(kind)
        cell_of.append(cell)
        port_of.append(port)
        return len(kinds) - 1

    for cell in flat.cells:
        if cell.is_macro:
            kind = NodeKind.MACRO
        elif cell.is_flop:
            kind = NodeKind.FLOP
        else:
            kind = NodeKind.COMB
        node_of_cell[cell.index] = add_node(kind, cell.index, None)

    top_ports = flat.design.top.ports
    for port in top_ports.values():
        for bit in range(port.width):
            key = (port.name, bit)
            node_of_port[key] = add_node(NodeKind.PORT, -1, key)

    succ: List[List[int]] = [[] for _ in range(len(kinds))]
    pred: List[List[int]] = [[] for _ in range(len(kinds))]

    for net in flat.nets:
        drivers: List[int] = []
        loads: List[int] = []
        for cell_index, pin, _bit in net.endpoints:
            cell = flat.cells[cell_index]
            node = node_of_cell[cell_index]
            if cell.ctype.port(pin).direction is Direction.OUT:
                drivers.append(node)
            else:
                loads.append(node)
        for port_name, bit in net.top_ports:
            node = node_of_port[(port_name, bit)]
            if top_ports[port_name].direction is Direction.IN:
                drivers.append(node)     # input ports drive inward
            else:
                loads.append(node)
        for d in drivers:
            for l in loads:
                if d != l:
                    succ[d].append(l)
                    pred[l].append(d)

    # Deduplicate parallel edges (bit-level width is carried by having
    # one vertex per bit, not by parallel edges).
    for adjacency in (succ, pred):
        for i, nbrs in enumerate(adjacency):
            if len(nbrs) > 1:
                adjacency[i] = sorted(set(nbrs))

    return Gnet(kinds=kinds, cell_of=cell_of, port_of=port_of,
                succ=succ, pred=pred,
                node_of_cell=node_of_cell, node_of_port=node_of_port)
