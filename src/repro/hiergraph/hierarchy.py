"""The hierarchy tree HT.

Every node corresponds to one module *instance* (identified by its
hierarchical path); edges are sub-hierarchy relations.  Nodes aggregate
the area and macro population of their subtree — the ``area(n)`` and
``macro_count(n)`` oracles of Algorithm 3 — and keep the flat cells
instantiated directly at their level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.netlist.core import Design, Module
from repro.netlist.flatten import FlatCell, FlatDesign, PATH_SEP


@dataclass(eq=False)       # identity equality: nodes are used as dict keys
class HierNode:
    """One level of the design hierarchy."""

    path: str                      # "" for the top module
    module_name: str
    parent: Optional["HierNode"] = None
    children: List["HierNode"] = field(default_factory=list)
    own_cells: List[int] = field(default_factory=list)    # flat cell indices
    # Subtree aggregates (filled by build_hierarchy):
    area: float = 0.0              # std cell + macro area under this node
    stdcell_area: float = 0.0
    macro_area: float = 0.0
    macro_count: int = 0
    cell_count: int = 0
    macros: List[int] = field(default_factory=list)       # subtree macros
    own_macros: List[int] = field(default_factory=list)   # direct macros

    @property
    def name(self) -> str:
        """The last path component (module instance name)."""
        if not self.path:
            return self.module_name
        return self.path.rsplit(PATH_SEP, 1)[-1]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["HierNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_cells(self) -> Iterator[int]:
        """Flat indices of every cell under this node."""
        for node in self.walk():
            yield from node.own_cells

    def __repr__(self) -> str:
        return (f"HierNode({self.path or '<top>'}: "
                f"{self.macro_count} macros, area {self.area:.0f})")


class HierTree:
    """The whole hierarchy tree with path-based lookup."""

    def __init__(self, root: HierNode, flat: FlatDesign):
        self.root = root
        self.flat = flat
        self.by_path: Dict[str, HierNode] = {
            node.path: node for node in root.walk()}

    def node(self, path: str) -> HierNode:
        return self.by_path[path]

    def node_of_cell(self, cell: FlatCell) -> HierNode:
        return self.by_path[cell.module_path]

    def __len__(self) -> int:
        return len(self.by_path)

    def __repr__(self) -> str:
        return f"HierTree({len(self)} nodes, root={self.root.module_name})"


def _join(path: str, name: str) -> str:
    return name if not path else path + PATH_SEP + name


def build_hierarchy(flat: FlatDesign) -> HierTree:
    """Construct HT for a flattened design.

    The tree mirrors module instantiation: one node per module instance.
    Aggregates are accumulated bottom-up in a single walk.
    """
    design: Design = flat.design

    def visit(module: Module, path: str,
              parent: Optional[HierNode]) -> HierNode:
        node = HierNode(path=path, module_name=module.name, parent=parent)
        for inst in module.instances.values():
            if inst.is_leaf:
                continue
            child = visit(inst.ref, _join(path, inst.name), node)
            node.children.append(child)
        return node

    root = visit(design.top, "", None)
    tree = HierTree(root, flat)

    for cell in flat.cells:
        node = tree.by_path[cell.module_path]
        node.own_cells.append(cell.index)
        if cell.is_macro:
            node.own_macros.append(cell.index)

    def aggregate(node: HierNode) -> None:
        node.area = 0.0
        node.stdcell_area = 0.0
        node.macro_area = 0.0
        node.macro_count = 0
        node.cell_count = len(node.own_cells)
        node.macros = list(node.own_macros)
        for index in node.own_cells:
            cell = flat.cells[index]
            if cell.is_macro:
                node.macro_area += cell.ctype.area
                node.macro_count += 1
            else:
                node.stdcell_area += cell.ctype.area
        for child in node.children:
            aggregate(child)
            node.stdcell_area += child.stdcell_area
            node.macro_area += child.macro_area
            node.macro_count += child.macro_count
            node.cell_count += child.cell_count
            node.macros.extend(child.macros)
        node.area = node.stdcell_area + node.macro_area

    aggregate(root)
    return tree
