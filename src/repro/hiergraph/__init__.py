"""Circuit abstractions: the hierarchy tree and the three graphs.

The paper (Table I) models the circuit at four granularities:

* ``HT``   — the RTL hierarchy tree (``repro.hiergraph.hierarchy``);
* ``Gnet`` — bit-level netlist connectivity (``repro.hiergraph.gnet``);
* ``Gseq`` — multi-bit sequential connectivity after combinational
  collapse and array clustering (``repro.hiergraph.gseq``);
* ``Gdf``  — block-level dataflow with latency/width histograms
  (``repro.hiergraph.gdf``).

Each is derived from the previous one; all are deterministic functions
of the input design.
"""

from repro.hiergraph.hierarchy import HierNode, HierTree, build_hierarchy
from repro.hiergraph.gnet import Gnet, NodeKind, build_gnet
from repro.hiergraph.arrays import cluster_names
from repro.hiergraph.histogram import LatencyHistogram
from repro.hiergraph.gseq import Gseq, SeqKind, SeqNode, build_gseq
from repro.hiergraph.gdf import Gdf, GdfEdge, build_gdf

__all__ = [
    "Gdf",
    "GdfEdge",
    "Gnet",
    "Gseq",
    "HierNode",
    "HierTree",
    "LatencyHistogram",
    "NodeKind",
    "SeqKind",
    "SeqNode",
    "build_gdf",
    "build_gnet",
    "build_gseq",
    "build_hierarchy",
    "cluster_names",
]
