"""Gseq: the multi-bit sequential graph.

Derived from Gnet in the four steps of Sect. IV-D:

1. combinational vertices are collapsed by discovering, for every
   sequential vertex, which sequential vertices its output reaches
   through combinational-only paths;
2. flops and port bits are clustered into arrays by name
   (``name[n]`` / ``name_n``);
3. edges between the resulting multi-bit components carry the number of
   distinct source bits that reach the target component;
4. components narrower than a threshold are discarded (macros and ports
   are always kept).

Each Gseq edge crosses exactly one register boundary, so a path of
``L`` edges has latency ``L`` clock cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Set, Tuple

from repro.netlist.cells import Direction
from repro.netlist.flatten import FlatDesign, PATH_SEP
from repro.hiergraph.arrays import array_base
from repro.hiergraph.gnet import Gnet, NodeKind


class SeqKind(Enum):
    """Vertex families of Gseq."""

    MACRO = "macro"
    REG = "reg"
    PORT = "port"


@dataclass
class SeqNode:
    """A macro, a multi-bit register array, or a multi-bit port."""

    index: int
    kind: SeqKind
    name: str                # array base path / port name / macro path
    bits: int                # node weight: the component's bitwidth
    module_path: str         # hierarchy node owning the component
    cells: List[int] = field(default_factory=list)   # flat cell indices

    @property
    def is_macro(self) -> bool:
        return self.kind is SeqKind.MACRO

    @property
    def is_port(self) -> bool:
        return self.kind is SeqKind.PORT

    def __repr__(self) -> str:
        return f"SeqNode({self.name}:{self.kind.value}x{self.bits})"


@dataclass
class Gseq:
    """Directed multi-bit sequential connectivity."""

    nodes: List[SeqNode]
    succ: List[List[int]]
    pred: List[List[int]]
    edge_bits: Dict[Tuple[int, int], int]     # (u, v) -> communicated bits

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edge_bits)

    def macros(self) -> List[SeqNode]:
        return [n for n in self.nodes if n.is_macro]

    def ports(self) -> List[SeqNode]:
        return [n for n in self.nodes if n.is_port]

    def registers(self) -> List[SeqNode]:
        return [n for n in self.nodes if n.kind is SeqKind.REG]

    def node_by_name(self, name: str) -> SeqNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no Gseq node named {name!r}")

    def __repr__(self) -> str:
        return (f"Gseq({len(self.macros())} macros, "
                f"{len(self.registers())} regs, {len(self.ports())} ports, "
                f"{self.n_edges} edges)")


def _macro_width(flat: FlatDesign, cell_index: int) -> int:
    """A macro's node weight: its widest output port (data bus width)."""
    ctype = flat.cells[cell_index].ctype
    outs = [p.width for p in ctype.ports if p.direction is Direction.OUT]
    if outs:
        return max(outs)
    return max((p.width for p in ctype.ports), default=1)


def _reg_base(flat: FlatDesign, cell_index: int) -> Tuple[str, str]:
    """(module_path, array base) of a flop — the clustering key."""
    cell = flat.cells[cell_index]
    base, _index = array_base(cell.local_name)
    return (cell.module_path, base)


def build_gseq(gnet: Gnet, flat: FlatDesign, min_bits: int = 2,
               max_cloud: int = 200000) -> Gseq:
    """Construct Gseq from Gnet (see module docstring).

    ``min_bits`` is the array-width threshold of step 4; registers
    narrower than it are dropped.  ``max_cloud`` bounds the number of
    combinational vertices one collapse BFS may visit (a safety valve
    against pathological clouds).
    """
    nodes: List[SeqNode] = []
    cluster_of_gnode: Dict[int, int] = {}

    def new_node(kind: SeqKind, name: str, module_path: str) -> SeqNode:
        node = SeqNode(len(nodes), kind, name, 0, module_path)
        nodes.append(node)
        return node

    # --- step 2 first: build clusters so step 1 can aggregate directly ---
    reg_clusters: Dict[Tuple[str, str], SeqNode] = {}
    for gnode in range(gnet.n_nodes):
        kind = gnet.kinds[gnode]
        if kind is NodeKind.MACRO:
            cell = flat.cells[gnet.cell_of[gnode]]
            node = new_node(SeqKind.MACRO, cell.path, cell.module_path)
            node.bits = _macro_width(flat, cell.index)
            node.cells.append(cell.index)
            cluster_of_gnode[gnode] = node.index
        elif kind is NodeKind.FLOP:
            cell = flat.cells[gnet.cell_of[gnode]]
            key = _reg_base(flat, cell.index)
            node = reg_clusters.get(key)
            if node is None:
                path, base = key
                full = base if not path else path + PATH_SEP + base
                node = new_node(SeqKind.REG, full, path)
                reg_clusters[key] = node
            node.bits += 1
            node.cells.append(cell.index)
            cluster_of_gnode[gnode] = node.index
        elif kind is NodeKind.PORT:
            port_name, _bit = gnet.port_of[gnode]
            # One Gseq node per top-level port; accumulate its bits.
            existing = [n for n in nodes
                        if n.is_port and n.name == port_name]
            if existing:
                node = existing[0]
            else:
                node = new_node(SeqKind.PORT, port_name, "")
            node.bits += 1
            cluster_of_gnode[gnode] = node.index

    # --- step 1 + 3: collapse combinational logic, aggregate edges -------
    # Edge width = communicated bits: the larger of the distinct source
    # bits and distinct destination bits seen between the two clusters
    # (a macro is a single Gnet vertex, so counting only sources would
    # report width 1 for a wide macro output bus).
    contributions: Set[Tuple[int, int, int, int]] = set()  # (u, v, src, dst)
    for gnode, cluster in cluster_of_gnode.items():
        # BFS forward through combinational vertices only.
        reached: Set[int] = set()
        visited_comb: Set[int] = set()
        queue = deque(gnet.succ[gnode])
        while queue:
            nxt = queue.popleft()
            kind = gnet.kinds[nxt]
            if kind is NodeKind.COMB:
                if nxt in visited_comb or len(visited_comb) >= max_cloud:
                    continue
                visited_comb.add(nxt)
                queue.extend(gnet.succ[nxt])
            else:
                reached.add(nxt)
        for target_gnode in reached:
            target = cluster_of_gnode[target_gnode]
            if target != cluster:
                contributions.add((cluster, target, gnode, target_gnode))

    # --- step 4: threshold filter ----------------------------------------
    keep = [node for node in nodes
            if node.is_macro or node.is_port or node.bits >= min_bits]
    remap: Dict[int, int] = {}
    for new_index, node in enumerate(keep):
        remap[node.index] = new_index
        node.index = new_index

    edge_srcs: Dict[Tuple[int, int], Set[int]] = {}
    edge_dsts: Dict[Tuple[int, int], Set[int]] = {}
    for u, v, src, dst in contributions:
        if u in remap and v in remap:
            key = (remap[u], remap[v])
            edge_srcs.setdefault(key, set()).add(src)
            edge_dsts.setdefault(key, set()).add(dst)
    edge_bits: Dict[Tuple[int, int], int] = {
        key: max(len(edge_srcs[key]), len(edge_dsts[key]))
        for key in edge_srcs}

    succ: List[List[int]] = [[] for _ in keep]
    pred: List[List[int]] = [[] for _ in keep]
    for (u, v) in sorted(edge_bits):
        succ[u].append(v)
        pred[v].append(u)

    return Gseq(nodes=keep, succ=succ, pred=pred, edge_bits=edge_bits)
