"""Latency/width histograms and their dataflow score.

Every Gdf edge condenses the communication between two blocks into a
histogram: bin = path latency in clock cycles, height = number of bits
travelling at that latency.  The paper scores a histogram as

    score(h, k) = sum_i  bits_i / latency_i^k

where ``k`` controls how fast affinity decays with pipeline distance.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class LatencyHistogram:
    """A sparse latency -> bits histogram."""

    __slots__ = ("bins",)

    def __init__(self, bins: Dict[int, float] = None):
        self.bins: Dict[int, float] = dict(bins) if bins else {}

    def add(self, latency: int, bits: float) -> None:
        if latency < 1:
            raise ValueError(f"latency must be >= 1, got {latency}")
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        if bits:
            self.bins[latency] = self.bins.get(latency, 0.0) + bits

    def merge(self, other: "LatencyHistogram") -> None:
        for latency, bits in other.bins.items():
            self.bins[latency] = self.bins.get(latency, 0.0) + bits

    def score(self, k: float = 1.0) -> float:
        """The paper's ``score(h, k)``: total bits damped by latency^k."""
        return sum(bits / (latency ** k)
                   for latency, bits in self.bins.items())

    @property
    def total_bits(self) -> float:
        return sum(self.bins.values())

    @property
    def min_latency(self) -> int:
        return min(self.bins) if self.bins else 0

    def is_empty(self) -> bool:
        return not self.bins

    def items(self) -> Iterator[Tuple[int, float]]:
        return iter(sorted(self.bins.items()))

    def copy(self) -> "LatencyHistogram":
        return LatencyHistogram(self.bins)

    def __eq__(self, other) -> bool:
        return (isinstance(other, LatencyHistogram)
                and self.bins == other.bins)

    def __repr__(self) -> str:
        inner = ", ".join(f"{lat}:{bits:g}" for lat, bits in self.items())
        return f"LatencyHistogram({{{inner}}})"
