"""Gdf: the dataflow graph over blocks and multi-bit ports.

Each vertex groups a set of Gseq components (a floorplan block, one
multi-bit port, or a fixed external group); each directed edge carries
two latency/width histograms:

* **block flow** (``E^b``): paths found by a BFS that starts from every
  component of the source group and traverses *glue* components only —
  the physically-accurate view of inter-block nets;
* **macro flow** (``E^m``): paths between macros that may cross any
  non-macro sequential component, including those inside other blocks —
  the global view of how data moves between macro groups.

On reaching a target group at BFS depth ``d`` (latency ``d`` cycles),
the bitwidth of the *predecessor* component on the path is added to
histogram bin ``d`` (paper Sect. IV-D).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hiergraph.gseq import Gseq
from repro.hiergraph.histogram import LatencyHistogram


@dataclass
class GdfNode:
    """A dataflow vertex: block, port or fixed external group."""

    index: int
    name: str
    kind: str                       # "block" | "port" | "ext"
    seq_nodes: List[int] = field(default_factory=list)

    @property
    def is_block(self) -> bool:
        return self.kind == "block"

    def __repr__(self) -> str:
        return f"GdfNode({self.name}:{self.kind}, {len(self.seq_nodes)} seq)"


@dataclass
class GdfEdge:
    """Directed dataflow between two Gdf vertices."""

    src: int
    dst: int
    block_hist: LatencyHistogram = field(default_factory=LatencyHistogram)
    macro_hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    def affinity(self, lam: float, k: float) -> float:
        """The paper's blended edge score.

        ``lam`` (λ) weighs block flow against macro flow; ``k`` is the
        latency-decay exponent of ``score(h, k)``.
        """
        return (lam * self.block_hist.score(k)
                + (1.0 - lam) * self.macro_hist.score(k))


@dataclass
class Gdf:
    """The dataflow graph."""

    nodes: List[GdfNode]
    edges: Dict[Tuple[int, int], GdfEdge]
    group_of_seq: Dict[int, int]

    def edge(self, src: int, dst: int) -> Optional[GdfEdge]:
        return self.edges.get((src, dst))

    def node_by_name(self, name: str) -> GdfNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no Gdf node named {name!r}")

    def affinity_between(self, i: int, j: int, lam: float,
                         k: float) -> float:
        """Symmetric affinity: both edge directions summed."""
        total = 0.0
        for key in ((i, j), (j, i)):
            edge = self.edges.get(key)
            if edge is not None:
                total += edge.affinity(lam, k)
        return total

    def __repr__(self) -> str:
        return f"Gdf({len(self.nodes)} nodes, {len(self.edges)} edges)"


def build_gdf(gseq: Gseq, groups: Sequence[GdfNode],
              max_latency: int = 16) -> Gdf:
    """Construct Gdf from Gseq and a grouping of its components.

    ``groups`` must carry disjoint ``seq_nodes``; Gseq components not
    claimed by any group are *glue*.  ``max_latency`` bounds the BFS
    depth: paths longer than it contribute (exponentially) little
    affinity and are not worth discovering.
    """
    nodes = [GdfNode(i, g.name, g.kind, list(g.seq_nodes))
             for i, g in enumerate(groups)]
    group_of_seq: Dict[int, int] = {}
    for node in nodes:
        for seq in node.seq_nodes:
            if seq in group_of_seq:
                raise ValueError(
                    f"Gseq component {seq} claimed by two groups")
            group_of_seq[seq] = node.index

    edges: Dict[Tuple[int, int], GdfEdge] = {}

    def edge_for(src: int, dst: int) -> GdfEdge:
        edge = edges.get((src, dst))
        if edge is None:
            edge = GdfEdge(src, dst)
            edges[(src, dst)] = edge
        return edge

    width = [node.bits for node in gseq.nodes]

    # ---- block flow: glue-only traversal --------------------------------
    for group in nodes:
        sources = sorted(group.seq_nodes)
        if not sources:
            continue
        visited = set(sources)
        queue = deque((s, 0) for s in sources)
        while queue:
            u, dist = queue.popleft()
            if dist >= max_latency:
                continue
            for v in gseq.succ[u]:
                target_group = group_of_seq.get(v)
                if target_group is None:
                    if v not in visited:
                        visited.add(v)
                        queue.append((v, dist + 1))
                elif target_group != group.index:
                    edge_for(group.index, target_group).block_hist.add(
                        dist + 1, width[u])
                # v inside the same group: internal, ignored.

    # ---- macro flow: cross anything except macros/ports ------------------
    for group in nodes:
        # Ports act as their own macro-flow sources so port<->macro
        # affinity exists; blocks start from their macro components.
        sources = sorted(s for s in group.seq_nodes
                         if gseq.nodes[s].is_macro or gseq.nodes[s].is_port)
        if not sources:
            continue
        visited = set(sources)
        queue = deque((s, 0) for s in sources)
        while queue:
            u, dist = queue.popleft()
            if dist >= max_latency:
                continue
            for v in gseq.succ[u]:
                node_v = gseq.nodes[v]
                if node_v.is_macro or node_v.is_port:
                    target_group = group_of_seq.get(v)
                    if target_group is not None \
                            and target_group != group.index:
                        edge_for(group.index, target_group).macro_hist.add(
                            dist + 1, width[u])
                    continue               # macros/ports are never crossed
                if v not in visited:
                    visited.add(v)
                    queue.append((v, dist + 1))

    return Gdf(nodes=nodes, edges=edges, group_of_seq=group_of_seq)
