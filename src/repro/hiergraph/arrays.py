"""Array discovery by name clustering.

RTL register arrays and buses survive synthesis as families of names
like ``data_reg[7]`` or ``data_reg_7``.  Gseq construction clusters
flop instances and port bits by these patterns (paper Sect. IV-D,
step 2) to recover the multi-bit components whose widths drive the
dataflow-affinity metric.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

_BRACKET = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")
_SUFFIX = re.compile(r"^(?P<base>.+?)_(?P<index>\d+)$")


def array_base(name: str) -> Tuple[str, int]:
    """Split ``name[n]`` / ``name_n`` into (base, index).

    Names without an index pattern cluster alone with index 0.
    """
    match = _BRACKET.match(name)
    if match is None:
        match = _SUFFIX.match(name)
    if match is None:
        return (name, 0)
    return (match.group("base"), int(match.group("index")))


def cluster_names(names: Iterable[str]) -> Dict[str, List[str]]:
    """Group names by their array base, preserving insertion order.

    >>> cluster_names(["a[0]", "a[1]", "b"])
    {'a': ['a[0]', 'a[1]'], 'b': ['b']}
    """
    groups: Dict[str, List[str]] = {}
    for name in names:
        base, _index = array_base(name)
        groups.setdefault(base, []).append(name)
    return groups
