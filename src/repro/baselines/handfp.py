"""handFP: the expert-floorplan stand-in.

The paper compares against floorplans that back-end engineers iterated
on for weeks using their knowledge of the design.  The oracle here gets
the equivalent knowledge from the generator's ground truth — the
intended subsystem dataflow order — and a generous refinement budget:

1. the die is split into vertical strips, one per subsystem, in
   ground-truth dataflow order (data enters west, leaves east), widths
   proportional to subsystem area;
2. each subsystem's macros are shelf-packed around its strip walls,
   keeping the strip center open for standard cells (the expert style
   visible in the paper's Fig. 9b);
3. many greedy refinement sweeps reorder macros within each strip
   against the full dataflow affinity (the same metric HiDaP optimizes,
   with the expert's global view).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.common import (
    macro_affinity_matrix,
    pack_perimeter,
    refine_order,
)
from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement, PlacedMacro
from repro.gen.spec import GroundTruth
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.flatten import FlatDesign, flatten
from repro.obs import perf_seconds

_LAM = 0.5
_LATENCY_K = 1.0


def _strip_rects(die: Rect, shares: List[float],
                 min_widths: List[float]) -> List[Rect]:
    """Vertical strips with area-proportional widths.

    A strip is never thinner than its subsystem's widest macro side
    (plus margin) — a real engineer would widen the region rather than
    let a memory stick out.  The extra width is taken from strips with
    slack, proportionally.
    """
    total = sum(shares)
    widths = [die.w * s / total for s in shares]
    for _ in range(8):
        deficit = 0.0
        slack_idx = []
        for i, w in enumerate(widths):
            if w < min_widths[i]:
                deficit += min_widths[i] - w
                widths[i] = min_widths[i]
            elif w > min_widths[i]:
                slack_idx.append(i)
        if deficit <= 1e-9 or not slack_idx:
            break
        slack_total = sum(widths[i] - min_widths[i] for i in slack_idx)
        if slack_total <= 1e-12:
            break
        take = min(1.0, deficit / slack_total)
        for i in slack_idx:
            widths[i] -= (widths[i] - min_widths[i]) * take
    scale = die.w / sum(widths)
    widths = [w * scale for w in widths]

    rects: List[Rect] = []
    x = die.x
    for w in widths:
        rects.append(Rect(x, die.y, w, die.h))
        x += w
    return rects


def place_handfp(design, truth: GroundTruth, die_w: float, die_h: float,
                 refinement_passes: int = 8,
                 gnet=None, gseq=None, tree=None) -> MacroPlacement:
    """Run the expert-oracle flow; returns a legal strip placement.

    ``gnet``/``gseq``/``tree`` accept pre-built structures (e.g. from
    a :class:`repro.api.prepared.PreparedDesign`) to avoid rebuilding
    them; they must belong to the same flattened design.
    """
    start = perf_seconds()
    flat = design if isinstance(design, FlatDesign) else flatten(design)
    die = Rect(0.0, 0.0, float(die_w), float(die_h))
    if gnet is None:
        gnet = build_gnet(flat)
    if gseq is None:
        gseq = build_gseq(gnet, flat)
    if tree is None:
        tree = build_hierarchy(flat)
    port_positions = assign_port_positions(flat.design, die)

    macro_cells, matrix, port_names = macro_affinity_matrix(
        gseq, flat, lam=_LAM, latency_k=_LATENCY_K)
    n = len(macro_cells)
    index_of_cell = {c: i for i, c in enumerate(macro_cells)}
    port_pulls: List[List[Tuple[Point, float]]] = [[] for _ in range(n)]
    for i in range(n):
        for t, name in enumerate(port_names):
            a = matrix[i][n + t] + matrix[n + t][i]
            pos = port_positions.get(name)
            if a > 0 and pos is not None:
                port_pulls[i].append((pos, a))

    # Strips in ground-truth order, widths by subsystem area.
    shares: List[float] = []
    members: List[List[int]] = []         # macro matrix indices per strip
    claimed = set()
    path_of_cell = {cell.index: cell.path for cell in flat.cells}
    for inst_name in truth.order:
        node = tree.by_path.get(inst_name)
        shares.append(max(node.area if node else 1.0, 1.0))
        macro_paths = set(truth.subsystem_macros.get(inst_name, ()))
        strip_members = [
            index_of_cell[c] for c in macro_cells
            if path_of_cell[c] in macro_paths and c not in claimed]
        claimed.update(macro_cells[m] for m in strip_members)
        members.append(strip_members)
    leftovers = [index_of_cell[c] for c in macro_cells if c not in claimed]
    if leftovers:
        members[0].extend(leftovers)

    min_widths = []
    for strip_members in members:
        widest = max((min(flat.cells[macro_cells[m]].ctype.width,
                          flat.cells[macro_cells[m]].ctype.height)
                      for m in strip_members), default=0.0)
        min_widths.append(widest * 1.12)
    strips = _strip_rects(die, shares, min_widths)
    dims = [(flat.cells[c].ctype.width, flat.cells[c].ctype.height)
            for c in macro_cells]

    placement = MacroPlacement(design_name=flat.design.name,
                               flow_name="handfp", die=die)
    placement.block_rects[""] = die
    for strip, strip_members, inst_name in zip(strips, members,
                                               truth.order):
        placement.block_rects[inst_name] = strip
        if not strip_members:
            continue
        order = list(strip_members)

        def repack(current: List[int], _strip=strip) -> List[Rect]:
            return pack_perimeter(_strip, [dims[m] for m in current])

        order, rects = refine_order(order, repack, matrix, port_pulls,
                                    passes=refinement_passes)
        for slot, m in enumerate(order):
            cell_index = macro_cells[m]
            cell = flat.cells[cell_index]
            rect = rects[slot]
            swapped = abs(rect.w - cell.ctype.width) > 1e-6
            placement.macros[cell_index] = PlacedMacro(
                cell_index=cell_index, path=cell.path, rect=rect,
                orientation=Orientation.E if swapped else Orientation.N)

    placement.runtime_seconds = perf_seconds() - start
    return placement
