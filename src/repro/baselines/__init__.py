"""Baseline macro-placement flows.

The paper compares HiDaP against a state-of-the-art commercial
floorplanner (``IndEDA``) and handcrafted floorplans by expert back-end
engineers (``handFP``).  Neither referee is available, so this package
implements behavioural stand-ins (see DESIGN.md §1.2):

* :func:`repro.baselines.indeda.place_indeda` — flat connectivity-driven
  perimeter packing with greedy refinement: hierarchy- and
  dataflow-blind, macros on the block walls, fast;
* :func:`repro.baselines.handfp.place_handfp` — an expert oracle that
  consumes the generator's ground-truth dataflow order, allocates
  die strips per subsystem, packs macros on the north/south walls
  leaving a cell corridor, and refines with a large iteration budget.
"""

from repro.baselines.indeda import place_indeda
from repro.baselines.handfp import place_handfp

__all__ = ["place_indeda", "place_handfp"]
