"""IndEDA: the commercial-floorplanner stand-in.

Behaviour reproduced from the paper's description of industrial tools:
macros go to the block walls (circuit periphery), placement is driven
by flat netlist connectivity with no hierarchy or dataflow-latency
analysis, and runtime is short.  Concretely:

1. macro-to-macro / macro-to-port affinity from *local* connectivity
   (strong latency decay, k = 2 — the tool sees nets, not pipelines);
2. a greedy connectivity chain orders the macros;
3. shelf packing around the die perimeter;
4. a few greedy order-refinement sweeps.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.common import (
    macro_affinity_matrix,
    pack_perimeter,
    refine_order,
    to_placement,
)
from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.flatten import FlatDesign, flatten
from repro.obs import perf_seconds

#: The tool's effective view of dataflow: block and macro flow blended
#: evenly but with a strong latency decay — far-apart pipeline stages
#: contribute almost nothing, as for a netlist-driven tool.
_LAM = 0.5
_LATENCY_K = 2.0


def _connectivity_chain(n: int, matrix, port_pulls) -> List[int]:
    """Greedy ordering: start at the most port-connected macro, then
    repeatedly append the macro most attracted to the current tail."""
    if n == 0:
        return []
    port_weight = [sum(a for _p, a in port_pulls[i]) for i in range(n)]
    start = max(range(n), key=lambda i: port_weight[i])
    order = [start]
    used = {start}
    while len(order) < n:
        tail = order[-1]
        best, best_w = None, -1.0
        for j in range(n):
            if j in used:
                continue
            w = matrix[tail][j] + matrix[j][tail] + 0.1 * port_weight[j]
            if w > best_w:
                best, best_w = j, w
        order.append(best)
        used.add(best)
    return order


def place_indeda(design, die_w: float, die_h: float,
                 refinement_passes: int = 5,
                 gnet=None, gseq=None) -> MacroPlacement:
    """Run the IndEDA-like flow; returns a legal wall placement.

    ``gnet``/``gseq`` accept pre-built graphs (e.g. from a
    :class:`repro.api.prepared.PreparedDesign`) to avoid rebuilding
    them; they must belong to the same flattened design.
    """
    from repro.baselines.common import order_cost

    start = perf_seconds()
    flat = design if isinstance(design, FlatDesign) else flatten(design)
    die = Rect(0.0, 0.0, float(die_w), float(die_h))
    if gnet is None:
        gnet = build_gnet(flat)
    if gseq is None:
        gseq = build_gseq(gnet, flat)
    port_positions = assign_port_positions(flat.design, die)

    macro_cells, matrix, port_names = macro_affinity_matrix(
        gseq, flat, lam=_LAM, latency_k=_LATENCY_K)
    n = len(macro_cells)
    port_pulls: List[List[Tuple[Point, float]]] = [[] for _ in range(n)]
    for i in range(n):
        for t, name in enumerate(port_names):
            a = matrix[i][n + t] + matrix[n + t][i]
            pos = port_positions.get(name)
            if a > 0 and pos is not None:
                port_pulls[i].append((pos, a))

    dims = [(flat.cells[c].ctype.width, flat.cells[c].ctype.height)
            for c in macro_cells]
    order = _connectivity_chain(n, matrix, port_pulls)

    def repack(current_order: List[int]) -> List[Rect]:
        return pack_perimeter(die, [dims[m] for m in current_order])

    # Commercial tools multi-start cheaply: rotate the chain around the
    # perimeter (and try it reversed) so the most port-bound macros can
    # land near their pads; keep the best starting point.
    candidates: List[List[int]] = []
    for k in range(0, max(1, n), max(1, n // 8)):
        candidates.append(order[k:] + order[:k])
    candidates.append(list(reversed(order)))
    order = min(candidates,
                key=lambda o: order_cost(o, repack(o), matrix,
                                         port_pulls))

    order, rects = refine_order(order, repack, matrix, port_pulls,
                                passes=refinement_passes)
    placement = to_placement(flat, die, order, rects, macro_cells,
                             "indeda", flat.design.name)
    placement.runtime_seconds = perf_seconds() - start
    return placement
