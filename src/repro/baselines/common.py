"""Shared machinery for the baseline flows.

Both baselines place macros with shelf packing against die walls and
refine the packing order greedily against a macro-affinity matrix; they
differ in what affinity they can see and in how the die is partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.result import MacroPlacement, PlacedMacro
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gdf import GdfNode, build_gdf
from repro.hiergraph.gseq import Gseq
from repro.netlist.flatten import FlatDesign


def macro_affinity_matrix(gseq: Gseq, flat: FlatDesign, lam: float,
                          latency_k: float, max_latency: int = 16
                          ) -> Tuple[List[int], List[List[float]],
                                     List[str]]:
    """Affinity between individual macros (and ports) via Gdf.

    Each macro is its own Gdf group, every port its own terminal group.
    Returns (macro cell indices, symmetric matrix over macros+ports,
    port names).  ``lam`` / ``latency_k`` control the blend exactly as
    in HiDaP, letting each baseline choose how much dataflow it sees.
    """
    macro_cells: List[int] = []
    groups: List[GdfNode] = []
    for node in gseq.nodes:
        if node.is_macro:
            groups.append(GdfNode(len(groups), node.name, "block",
                                  [node.index]))
            macro_cells.append(node.cells[0])
    port_names: List[str] = []
    for node in gseq.ports():
        groups.append(GdfNode(len(groups), node.name, "port",
                              [node.index]))
        port_names.append(node.name)

    gdf = build_gdf(gseq, groups, max_latency=max_latency)
    size = len(groups)
    matrix = [[0.0] * size for _ in range(size)]
    for (i, j), edge in gdf.edges.items():
        a = edge.affinity(lam, latency_k)
        matrix[i][j] += a
    return macro_cells, matrix, port_names


@dataclass
class Shelf:
    """One wall run of perimeter packing."""

    wall: str           # 'W' | 'N' | 'E' | 'S'
    inset: float        # distance from the die edge (ring offset)


def pack_perimeter(die: Rect, dims: Sequence[Tuple[float, float]],
                   gap: float = 0.0) -> List[Rect]:
    """Shelf-pack rectangles around the die walls, ring by ring.

    Items are placed in order along W (bottom-up), N (left-right),
    E (bottom-up) and S (left-right); each is rotated so its longer
    side runs along the wall (minimal protrusion — the industrial
    style).  Each wall run reserves the corner belonging to the next
    wall (by the deepest item's protrusion), so walls never collide.
    When a ring fills up, the next ring starts inset by the deepest
    protrusion of the previous one.
    """
    placements: List[Optional[Rect]] = [None] * len(dims)
    remaining = list(range(len(dims)))
    inset = 0.0
    guard = 0
    while remaining and guard < 12:
        guard += 1
        reserve = max(min(dims[i]) for i in remaining) + gap
        # Per-wall cursor ranges; corner ownership: NW->N, NE->E,
        # SE->S, SW->W (see the reserve offsets).
        wall_ranges = {
            "W": (die.y + inset, die.y2 - inset - reserve),
            "N": (die.x + inset, die.x2 - inset - reserve),
            "E": (die.y + inset + reserve, die.y2 - inset),
            "S": (die.x + inset + reserve, die.x2 - inset),
        }
        ring_depth = 0.0
        index_in_ring = 0
        for wall in ("W", "N", "E", "S"):
            cursor, limit = wall_ranges[wall]
            while index_in_ring < len(remaining):
                item = remaining[index_in_ring]
                w, h = dims[item]
                along, depth = max(w, h), min(w, h)
                if cursor + along > limit + 1e-9:
                    break
                if wall == "W":
                    rect = Rect(die.x + inset, cursor, depth, along)
                elif wall == "E":
                    rect = Rect(die.x2 - inset - depth, cursor,
                                depth, along)
                elif wall == "N":
                    rect = Rect(cursor, die.y2 - inset - depth,
                                along, depth)
                else:
                    rect = Rect(cursor, die.y + inset, along, depth)
                placements[item] = rect
                ring_depth = max(ring_depth, depth)
                cursor += along + gap
                index_in_ring += 1
        placed_now = remaining[:index_in_ring]
        remaining = remaining[index_in_ring:]
        if not placed_now:
            break
        inset += ring_depth + gap

    # Anything still unplaced (pathological die): grid-fill the center
    # region inside the rings.
    if remaining:
        cx, cy = die.x + inset, die.y + inset
        row_h = 0.0
        for item in remaining:
            w, h = dims[item]
            if cx + w > die.x2 - inset and cx > die.x + inset:
                cx = die.x + inset
                cy += row_h
                row_h = 0.0
            placements[item] = Rect(cx, cy, w, h)
            cx += w
            row_h = max(row_h, h)
    return [r for r in placements]


def order_cost(order: Sequence[int], rects: Sequence[Rect],
               matrix: Sequence[Sequence[float]],
               port_pulls: Sequence[List[Tuple[Point, float]]]) -> float:
    """Affinity-weighted distance of a packing (macro indices in
    ``order`` occupy ``rects`` positionally)."""
    centers = [r.center for r in rects]
    pos_of = {m: centers[slot] for slot, m in enumerate(order)}
    total = 0.0
    n = len(order)
    for si in range(n):
        i = order[si]
        pi = pos_of[i]
        for sj in range(si + 1, n):
            j = order[sj]
            a = matrix[i][j] + matrix[j][i]
            if a > 0:
                total += a * pi.manhattan(pos_of[j])
        for p, a in port_pulls[i]:
            total += a * pi.manhattan(p)
    return total


def refine_order(order: List[int],
                 repack,
                 matrix: Sequence[Sequence[float]],
                 port_pulls: Sequence[List[Tuple[Point, float]]],
                 passes: int = 4) -> Tuple[List[int], List[Rect]]:
    """Greedy order refinement: adjacent + stride-2 swap sweeps.

    ``repack(order)`` must return the rect list for an order.  Accepts
    any swap that lowers the cost; repeats up to ``passes`` sweeps.
    """
    rects = repack(order)
    best_cost = order_cost(order, rects, matrix, port_pulls)
    n = len(order)
    for _ in range(passes):
        improved = False
        for stride in (1, 2):
            for a in range(n - stride):
                b = a + stride
                order[a], order[b] = order[b], order[a]
                cand_rects = repack(order)
                cost = order_cost(order, cand_rects, matrix, port_pulls)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    rects = cand_rects
                    improved = True
                else:
                    order[a], order[b] = order[b], order[a]
        if not improved:
            break
    return order, rects


def to_placement(flat: FlatDesign, die: Rect, order: Sequence[int],
                 rects: Sequence[Rect], macro_cells: Sequence[int],
                 flow_name: str, design_name: str) -> MacroPlacement:
    """Wrap an ordered packing into a MacroPlacement."""
    placement = MacroPlacement(design_name=design_name,
                               flow_name=flow_name, die=die)
    placement.block_rects[""] = die
    for slot, macro_pos in enumerate(order):
        cell_index = macro_cells[macro_pos]
        rect = rects[slot]
        cell = flat.cells[cell_index]
        swapped = abs(rect.w - cell.ctype.width) > 1e-6
        placement.macros[cell_index] = PlacedMacro(
            cell_index=cell_index, path=cell.path, rect=rect,
            orientation=Orientation.E if swapped else Orientation.N)
    return placement
