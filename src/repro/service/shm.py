"""Zero-copy handoff of compiled designs through shared memory.

One :class:`ShmHandoff` describes one design's compiled state packed
into a single ``multiprocessing.shared_memory`` segment: every array
buffer of the three compiled records at 64-byte-aligned offsets, plus
the pickled prepared-graph blob.  The descriptor itself is tiny and
picklable — it travels to pool workers as a task argument; the array
bytes travel exactly once, through the kernel's shared mapping, never
through the pickle channel.

Worker side, :meth:`ShmHandoff.materialize` attaches the segment,
wraps the offsets as **read-only** numpy views (REP008 proves the
kernels never write compiled arrays, so sharing pages is safe),
unpickles the graph blob and seeds the compile caches — the design
evaluates placements without a single ``prepare.*`` compile span.

Python 3.11 note: ``SharedMemory`` attach registers the segment with
the resource tracker (no ``track=`` parameter until 3.13), which
would make worker exits unlink segments the parent still owns — and
under the fork start method every worker shares the *parent's*
tracker, so attach/unregister pairs from concurrent workers race on
one shared cache.  :func:`_attach` therefore suppresses the
registration entirely for the duration of the attach; only the owning
process ever talks to the tracker, and it remains responsible for
``unlink``.  Attachments are additionally pinned in a module-level
registry (:data:`_ATTACHED`): numpy views over ``shm.buf`` keep the
underlying ``mmap`` as their base *without* a buffer export, so an
unpinned ``SharedMemory`` would be garbage-collected and closed —
unmapping the pages under every view a cached prepared design still
holds.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.prepared import PreparedDesign
from repro.obs import current_tracer

#: Segment offsets are rounded up to this many bytes so every array
#: view starts cache-line- (and dtype-) aligned.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


#: Process-lifetime pin of every attached segment, keyed by name.
#: A numpy view built over ``shm.buf`` keeps the underlying ``mmap``
#: as its *base* without holding a buffer export, so nothing stops
#: ``SharedMemory.__del__`` from closing the mapping out from under
#: views that cached prepared designs still reference — a silent
#: use-after-unmap.  Pinning the attachment here makes the mapping
#: live as long as the process (matching the worker-local prepared
#: cache it feeds); :meth:`ShmHandoff.close` releases it explicitly.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting tracker ownership.

    Registering and then unregistering would race against sibling
    workers sharing the forked tracker; swallowing the registration
    up front keeps attaches invisible to the tracker altogether.
    """
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    _ATTACHED[name] = shm
    return shm


@dataclass
class ShmHandoff:
    """Picklable descriptor of one design's shared compiled state.

    ``toc`` rows are ``(group, field, dtype, shape, offset)``; the
    blob row uses group ``"pkl"``.  ``array_meta`` and
    ``fingerprints`` mirror the store entry's metadata so the worker
    can validate before installing.
    """

    design: str
    segment: str
    toc: Tuple[Tuple[str, str, str, Tuple[int, ...], int], ...]
    array_meta: Dict[str, Dict]
    fingerprints: Dict
    blob_offset: int
    blob_size: int
    #: Worker-local attachment handle (never pickled to another
    #: process: the descriptor re-attaches by name).
    _shm: Optional[shared_memory.SharedMemory] = field(
        default=None, repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        return state

    def arrays(self, shm: shared_memory.SharedMemory
               ) -> Dict[str, Tuple[Dict[str, np.ndarray], Dict]]:
        """Read-only array views over the attached segment."""
        groups: Dict[str, Dict[str, np.ndarray]] = {}
        for group, name, dtype, shape, offset in self.toc:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            groups.setdefault(group, {})[name] = view
        return {group: (buffers, self.array_meta[group])
                for group, buffers in groups.items()}

    def materialize(self) -> PreparedDesign:
        """Attach and rebuild a fully warm prepared design (worker side).

        The attachment handle is kept on the descriptor instance so the
        views stay valid for the life of the returned object; repeated
        calls reuse it.  Emits a ``store.attach`` span — never a
        ``prepare.*`` one.
        """
        from repro.service.store import install_arrays

        with current_tracer().span("store.attach", design=self.design,
                                   segment=self.segment):
            if self._shm is None:
                self._shm = _attach(self.segment)
            shm = self._shm
            blob = bytes(
                shm.buf[self.blob_offset:self.blob_offset
                        + self.blob_size])
            prepared = pickle.loads(blob)
            install_arrays(prepared, self.arrays(shm),
                           self.fingerprints)
        return prepared

    def close(self) -> None:
        """Drop this process's attachment (does not unlink).

        Only call once every view handed out by :meth:`materialize`
        is dead — closing unmaps the pages under them.
        """
        if self._shm is not None:
            _ATTACHED.pop(self.segment, None)
            self._shm.close()
            self._shm = None


class SegmentOwner:
    """The creating process's handle pair: handoff + unlink duty."""

    def __init__(self, handoff: ShmHandoff,
                 shm: shared_memory.SharedMemory):
        self.handoff = handoff
        self.shm = shm

    def unlink(self) -> None:
        """Release the segment (close + unlink; idempotent)."""
        if self.shm is not None:
            self.shm.close()
            # Re-register (idempotent: the tracker cache is a set) so
            # the unregister inside ``unlink`` always finds the name,
            # even if some other path dropped our registration.
            try:
                resource_tracker.register(self.shm._name,
                                          "shared_memory")
            except Exception:  # pragma: no cover - tracker API drift
                pass
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self.shm = None


def export_entry(entry) -> SegmentOwner:
    """Pack a store entry into one shared-memory segment.

    Copies each persisted array buffer (typically a read-only memmap of
    the store's ``.npy`` files) and the prepared-graph blob into a
    fresh segment, returning the owner handle whose ``handoff`` field
    is the picklable worker descriptor.
    """
    blob = entry.blob()
    toc = []
    offset = 0
    for group, (buffers, _meta) in sorted(entry.arrays.items()):
        for name, array in sorted(buffers.items()):
            offset = _aligned(offset)
            toc.append((group, name, array.dtype.str,
                        tuple(int(s) for s in array.shape), offset))
            offset += int(array.nbytes)
    blob_offset = _aligned(offset)
    total = max(1, blob_offset + len(blob))

    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        for (group, name, dtype, shape, off) in toc:
            source = entry.arrays[group][0][name]
            dest = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=shm.buf, offset=off)
            dest[...] = source
        shm.buf[blob_offset:blob_offset + len(blob)] = blob
    except BaseException:  # pragma: no cover - partial export
        shm.close()
        shm.unlink()
        raise

    array_meta = {group: dict(meta)
                  for group, (_buffers, meta) in entry.arrays.items()}
    handoff = ShmHandoff(
        design=entry.design_name,
        segment=shm.name,
        toc=tuple(toc),
        array_meta=array_meta,
        fingerprints=dict(entry.fingerprints),
        blob_offset=blob_offset,
        blob_size=len(blob))
    return SegmentOwner(handoff, shm)
