"""The shared placement-execution engine behind suite and service.

One (design, flow) cell executes identically whether it was submitted
by ``run_suite`` (serial or pooled) or by
:class:`~repro.service.jobs.PlacementService`: resolve a prepared
design (worker-local cache → shared-memory handoff → rebuild), run the
flow through the registry, collapse the paper's hidap labels.  Both
front ends are thin clients of :func:`run_cell`.

Worker bootstrap lives here too: :func:`init_worker` replays
third-party flow/backend registrations into spawn-mode workers, and
:func:`portable_flow_entries` / :func:`portable_backend_entries`
collect what to replay (warning — not silently dropping — entries that
cannot be pickled).
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.api.prepared import PreparedDesign, prepare_suite_design
from repro.api.registry import get_flow, parse_flow_spec
from repro.api.run import FlowMetrics, RunOptions
from repro.core.config import Effort
from repro.obs import Tracer, use_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.shm import ShmHandoff

#: Per-process prepared-design cache (populated inside pool workers so
#: every flow scheduled on the same worker reuses flat/gnet/gseq — and,
#: with a store handoff, the attached compiled arrays).
_PREPARED_CACHE: Dict[Tuple[str, str], PreparedDesign] = {}


def portable_flow_entries():
    """Registry entries beyond the builtins, for shipping to workers.

    Under spawn/forkserver start methods a worker re-imports
    ``repro.api`` and only sees the builtin flows; third-party
    registrations must be replayed.  Entries whose factories cannot be
    pickled (lambdas, closures) cannot be replayed — each one emits a
    :class:`RuntimeWarning` naming the entry (they still work under
    fork, where workers inherit the registry).
    """
    import pickle

    from repro.api.flows import BUILTIN_FLOW_NAMES
    from repro.api.registry import _REGISTRY

    entries = []
    for name, entry in _REGISTRY.items():
        # Skip entries the worker's own `import repro.api` recreates:
        # a builtin name still bound to a builtin factory.  A builtin
        # class registered under a custom name (or a builtin name
        # overwritten with a custom factory) must be replayed.
        is_builtin = (
            name in BUILTIN_FLOW_NAMES
            and getattr(entry.factory, "__module__", None)
            == "repro.api.flows")
        if is_builtin:
            continue
        item = (name, entry.factory, entry.description)
        try:
            pickle.dumps(item)
        except Exception:
            warnings.warn(
                f"flow {name!r} has an unpicklable factory "
                f"({entry.factory!r}) and cannot be replayed into "
                "spawn-mode suite workers; it will be missing there "
                "(register a module-level callable to ship it)",
                RuntimeWarning, stacklevel=3)
            continue
        entries.append(item)
    return entries


def portable_backend_entries():
    """Third-party referee backends + the default name, for workers.

    Like flows, backend registrations live in-process: under
    spawn/forkserver a worker's ``import repro.metrics`` only recreates
    the builtin python/numpy backends, so custom backends (and a
    ``set_default_backend`` override) must be replayed.  Unpicklable
    backend objects cannot be — each emits a :class:`RuntimeWarning`
    naming the backend (they still work under fork).
    """
    import pickle

    from repro.metrics import (
        available_backends,
        default_backend_name,
        get_backend,
    )

    entries = []
    for name in available_backends():
        if name in ("python", "numpy"):
            continue
        backend = get_backend(name)
        try:
            pickle.dumps(backend)
        except Exception:
            warnings.warn(
                f"referee backend {name!r} ({backend!r}) is not "
                "picklable and cannot be replayed into spawn-mode "
                "suite workers; it will be missing there",
                RuntimeWarning, stacklevel=3)
            continue
        entries.append(backend)
    # Only replay a default the worker will actually be able to
    # resolve; an unpicklable custom default degrades to the builtin
    # default instead of crashing every worker.
    default = default_backend_name()
    if default not in {"python", "numpy"} | {b.name for b in entries}:
        default = None
    return entries, default


def init_worker(entries, backend_entries=(),
                default_backend=None) -> None:
    """Pool initializer: replay third-party flow/backend registrations.

    Runs once per worker process, before any task; the registry writes
    it performs are therefore init-time replay of the parent's state,
    not cross-task mutation.
    """
    from repro.api.registry import register_flow
    from repro.metrics import register_backend, set_default_backend

    for name, factory, description in entries:
        register_flow(name, factory, description=description,
                      overwrite=True)
    for backend in backend_entries:
        register_backend(backend, overwrite=True)
    if default_backend is not None:
        set_default_backend(default_backend)


def prepared_for(scale: str, name: str,
                 handoff: Optional["ShmHandoff"] = None
                 ) -> PreparedDesign:
    """This process's prepared design for ``(scale, name)``.

    Resolution order: the process-local cache, then a shared-memory
    ``handoff`` (attach compiled arrays + unpickle graphs — zero
    compile work), then a full rebuild via
    :func:`~repro.api.prepared.prepare_suite_design`.
    """
    key = (scale, name)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        if handoff is not None:
            prepared = handoff.materialize()
        else:
            prepared = prepare_suite_design(name, scale)
        # Worker-local memo of the immutable PreparedDesign: filled
        # once per (scale, name) per process, never read across
        # processes, and the cached value is frozen — determinism does
        # not depend on which worker compiled (or attached) it.
        _PREPARED_CACHE[key] = prepared  # repro: noqa[REP009] frozen memo
    return prepared


def execute_cell(prepared: PreparedDesign, flow: str,
                 options: RunOptions) -> FlowMetrics:
    """Run one (prepared design, flow) cell through the registry."""
    metrics = get_flow(flow, seed=options.seed, effort=options.effort,
                       referee_backend=options.referee_backend
                       ).evaluate(prepared)
    # The paper reports every builtin hidap variant simply as "hidap".
    # Match the parsed registry name, not a spec prefix, so that
    # third-party flows named e.g. "hidap-mine" keep their own label.
    name, _params = parse_flow_spec(flow)
    if name in ("hidap", "hidap-best3"):
        metrics.flow = "hidap"
    return metrics


def run_cell(scale: str, design_name: str, flow: str, seed: int,
             effort_value: str,
             referee_backend: Optional[str] = None,
             trace: bool = False,
             handoff: Optional["ShmHandoff"] = None
             ) -> Tuple[str, str, FlowMetrics, str,
                        Optional[Dict[str, Any]]]:
    """One (design, flow) cell, executed inside a pool worker.

    With ``trace`` on, the cell runs under a worker-local tracer and
    ships its span-tree payload back through the pool's result path —
    a cold parallel suite trace shows each worker's own ``prepare.*``
    recompilation cost, a warm-store one shows only ``store.attach``.
    One tracer per cell (not per worker) keeps payload transport on the
    existing result channel with no worker-exit hooks.
    """
    options = RunOptions(seed=seed, effort=Effort(effort_value),
                         referee_backend=referee_backend)
    if not trace:
        prepared = prepared_for(scale, design_name, handoff)
        metrics = execute_cell(prepared, flow, options)
        return design_name, flow, metrics, prepared.info(), None
    tracer = Tracer(f"worker-{os.getpid()}")
    with use_tracer(tracer):
        with tracer.span("suite.task", design=design_name, flow=flow):
            prepared = prepared_for(scale, design_name, handoff)
            metrics = execute_cell(prepared, flow, options)
    return design_name, flow, metrics, prepared.info(), tracer.payload()
