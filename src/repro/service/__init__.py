"""Placement-as-a-service: compiled-design store, warm pool, job API.

The suite runner's scaling problem (ROADMAP: ``run_suite(workers=4)``
at 0.956x of serial) is recompilation: every worker process rebuilds
``flat``/``gnet``/``gseq`` and recompiles
:class:`~repro.metrics.netarrays.NetArrays` /
:class:`~repro.metrics.stdcell_kernel.StdcellArrays` /
:class:`~repro.metrics.timing_kernel.TimingArrays` per process.  This
package is the amortization layer:

* :class:`CompiledDesignStore` — a persistent on-disk cache of
  compiled designs, keyed by design content hash and salted with a
  digest of the compiler sources so stale entries self-invalidate.
  Arrays persist as ``.npy`` files and memory-map back; the prepared
  object graph rides along as a pickle blob.
* :mod:`repro.service.shm` — zero-copy handoff of a store entry to
  worker processes through one ``multiprocessing.shared_memory``
  segment per design; workers attach read-only views instead of
  recompiling.
* :class:`PlacementService` — a submit/poll/stream job front end
  (``submit(design, flow) -> JobHandle``) over a warm worker pool;
  ``run_flow``/``run_suite`` are thin clients of the same engine.

Determinism contract: rows are bit-identical cold vs warm store,
serial vs pooled, and via ``PlacementService.submit`` (asserted on
c1–c3 in ``tests/test_service_jobs.py``).
"""

from repro.service.jobs import (
    JobEvent,
    JobHandle,
    JobStatus,
    PlacementService,
)
from repro.service.store import CompiledDesignStore, store_version

__all__ = [
    "CompiledDesignStore",
    "JobEvent",
    "JobHandle",
    "JobStatus",
    "PlacementService",
    "store_version",
]
