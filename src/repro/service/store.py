"""Persistent compiled-design store: compile once, memory-map forever.

A :class:`CompiledDesignStore` caches everything that is expensive to
rebuild per process and placement-independent for a design:

* the three compiled referee array records
  (:class:`~repro.metrics.netarrays.NetArrays`,
  :class:`~repro.metrics.stdcell_kernel.StdcellArrays`,
  :class:`~repro.metrics.timing_kernel.TimingArrays`), persisted one
  ``.npy`` file per array field and loaded back with
  ``np.load(mmap_mode="r")`` — warm loads touch no compile code and
  share pages across processes;
* the prepared object graph (the
  :class:`~repro.api.prepared.PreparedDesign` with its cached
  ``flat``/``gnet``/``gseq``/``tree`` and clustered netlist), as one
  pickle blob, so a warm process skips design generation, flattening
  and graph construction entirely.

Keying and versioning
---------------------
Entries are keyed by content hash: for a generated suite design, the
SHA-256 of its canonical :class:`~repro.gen.spec.DesignSpec` JSON (the
spec fully determines the generated netlist); for an arbitrary design,
the SHA-256 of its canonical :func:`~repro.netlist.jsonio.design_to_json`
form — the :func:`repro.metrics.netarrays._fingerprint` seam then
re-validates the cheap (cells, nets, rows) shape at install time.
Every key is salted with :func:`store_version`, a digest of the
compiler/generator sources, so changing any compile-relevant module
silently invalidates old entries (they become unreachable keys, never
wrong answers).

Writes are atomic (temp directory + ``os.replace``), so concurrent
writers of the same key are safe: last-write-wins with both writes
being bit-identical by the determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.api.prepared import (
    DEFAULT_MIN_BITS,
    PreparedDesign,
    prepare_design,
)
from repro.gen.spec import DesignSpec
from repro.obs import current_tracer, wall_seconds

#: Array-group prefixes inside one store entry.
GROUPS = ("net", "std", "tim")

#: Source modules whose digest salts every store key.  Anything that
#: changes the generated netlist, the derived graphs or the compiled
#: arrays must be listed — a stale entry must become unreachable, not
#: wrong.
_VERSION_SOURCES = (
    "repro/gen/designs.py",
    "repro/gen/macros.py",
    "repro/gen/patterns.py",
    "repro/gen/spec.py",
    "repro/hiergraph/gnet.py",
    "repro/hiergraph/gseq.py",
    "repro/hiergraph/hierarchy.py",
    "repro/metrics/netarrays.py",
    "repro/metrics/stdcell_kernel.py",
    "repro/metrics/timing_kernel.py",
    "repro/netlist/builder.py",
    "repro/netlist/cells.py",
    "repro/netlist/core.py",
    "repro/netlist/flatten.py",
    "repro/placement/cluster.py",
    "repro/api/prepared.py",
    "repro/service/store.py",
)

_STORE_VERSION_CACHE: Optional[str] = None


def store_version() -> str:
    """Digest of the compiler/generator sources salting every key.

    Computed once per process from the installed source bytes of
    ``_VERSION_SOURCES`` — editing any of those modules changes the
    digest and therefore every key, which is how stale store entries
    self-invalidate.
    """
    global _STORE_VERSION_CACHE
    if _STORE_VERSION_CACHE is not None:
        return _STORE_VERSION_CACHE
    src_root = Path(__file__).resolve().parent.parent.parent
    digest = hashlib.sha256()
    for relpath in _VERSION_SOURCES:
        digest.update(relpath.encode())
        path = src_root / relpath
        if path.exists():
            digest.update(path.read_bytes())
    # One cached digest per process: the sources cannot change under a
    # running interpreter in a way this cache could observe anyway.
    _STORE_VERSION_CACHE = digest.hexdigest()
    return _STORE_VERSION_CACHE


def _strip_compile_caches(prepared: PreparedDesign) -> Dict[str, object]:
    """Detach the array-compile caches before pickling the graph blob.

    The compiled arrays persist separately as ``.npy`` files; pickling
    them again inside the blob would double the entry size and defeat
    the memory-mapped load.  Returns the detached values so
    :func:`_restore_compile_caches` can put them back on the live
    objects (saving must not perturb the caller's caches).
    """
    stripped: Dict[str, object] = {}
    flat = prepared._flat
    if flat is not None:
        stripped["net"] = flat.__dict__.pop("_net_arrays", None)
        clustered = getattr(flat, "_clustered", None)
        if clustered is not None:
            stripped["std"] = clustered[1].__dict__.pop(
                "_stdcell_arrays", None)
    gseq = prepared._gseq
    if gseq is not None:
        stripped["tim"] = gseq.__dict__.pop("_timing_arrays", None)
    return stripped


def _restore_compile_caches(prepared: PreparedDesign,
                            stripped: Dict[str, object]) -> None:
    """Reattach the caches detached by :func:`_strip_compile_caches`."""
    flat = prepared._flat
    if flat is not None:
        if stripped.get("net") is not None:
            flat._net_arrays = stripped["net"]
        clustered = getattr(flat, "_clustered", None)
        if clustered is not None and stripped.get("std") is not None:
            clustered[1]._stdcell_arrays = stripped["std"]
    gseq = prepared._gseq
    if gseq is not None and stripped.get("tim") is not None:
        gseq._timing_arrays = stripped["tim"]


def compile_prepared(prepared: PreparedDesign) -> None:
    """Force every derived structure and compiled array to exist.

    After this, ``prepared`` carries ``flat``/``gnet``/``gseq``/
    ``tree``, the clustered netlist, and all three compiled array
    records in their caches — the complete state a store entry
    persists.
    """
    prepared.tree
    prepared.net_arrays
    prepared.stdcell_arrays
    prepared.timing_arrays


def _array_parts(prepared: PreparedDesign):
    """``(buffers, meta)`` per group plus the validation fingerprints."""
    from repro.metrics import (
        net_arrays_to_buffers,
        stdcell_arrays_to_buffers,
        timing_arrays_to_buffers,
    )
    from repro.metrics.netarrays import _fingerprint as net_fingerprint
    from repro.placement.cluster import clustered_for

    flat = prepared.flat
    clustered = clustered_for(flat)
    gseq = prepared.gseq
    parts = {
        "net": net_arrays_to_buffers(prepared.net_arrays),
        "std": stdcell_arrays_to_buffers(prepared.stdcell_arrays),
        "tim": timing_arrays_to_buffers(prepared.timing_arrays),
    }
    fingerprints = {
        "net": list(net_fingerprint(flat)),
        "std": len(clustered.nets),
        "tim": [gseq.n_nodes, gseq.n_edges, len(flat.cells)],
    }
    return parts, fingerprints


def install_arrays(prepared: PreparedDesign,
                   arrays: Dict[str, Tuple[Dict[str, np.ndarray], Dict]],
                   fingerprints: Dict) -> bool:
    """Seed ``prepared``'s compile caches from store/shm buffers.

    Validates each group's fingerprint against the live graphs first;
    on any mismatch nothing is installed and ``False`` is returned (the
    caller falls back to compiling).  Buffer adoption is zero-copy.
    """
    from repro.metrics import (
        install_net_arrays,
        install_stdcell_arrays,
        install_timing_arrays,
        net_arrays_from_buffers,
        stdcell_arrays_from_buffers,
        timing_arrays_from_buffers,
    )
    from repro.metrics.netarrays import _fingerprint as net_fingerprint
    from repro.placement.cluster import clustered_for

    flat = prepared.flat
    clustered = clustered_for(flat)
    gseq = prepared.gseq
    if (list(net_fingerprint(flat)) != list(fingerprints["net"])
            or len(clustered.nets) != fingerprints["std"]
            or [gseq.n_nodes, gseq.n_edges, len(flat.cells)]
            != list(fingerprints["tim"])):
        return False
    install_net_arrays(flat, net_arrays_from_buffers(*arrays["net"]))
    install_stdcell_arrays(
        clustered, stdcell_arrays_from_buffers(*arrays["std"]))
    install_timing_arrays(
        gseq, flat, timing_arrays_from_buffers(*arrays["tim"]))
    return True


@dataclass
class StoreEntry:
    """One loaded (or freshly saved) compiled-design entry.

    ``arrays`` maps each group to its ``(buffers, meta)`` pair — on a
    warm load the buffers are read-only ``np.memmap`` views of the
    entry's ``.npy`` files.  ``meta`` is the entry's ``meta.json``
    contents (fingerprints, version, design name, creation wall time).
    """

    key: str
    path: Path
    meta: Dict
    arrays: Dict[str, Tuple[Dict[str, np.ndarray], Dict]]

    @property
    def design_name(self) -> str:
        return self.meta.get("design", "?")

    @property
    def fingerprints(self) -> Dict:
        return self.meta["fingerprints"]

    def blob(self) -> bytes:
        """The pickled prepared-graph blob (read fresh from disk)."""
        return (self.path / "prepared.pkl").read_bytes()

    def materialize(self) -> PreparedDesign:
        """Rebuild a fully warm :class:`PreparedDesign` from this entry.

        Unpickles the graph blob and installs the memory-mapped arrays
        into its compile caches; the result evaluates placements with
        zero ``prepare.*`` compile spans.
        """
        prepared = pickle.loads(self.blob())
        install_arrays(prepared, self.arrays, self.fingerprints)
        return prepared


class CompiledDesignStore:
    """On-disk compiled-design cache (see module docstring).

    ``root`` is created lazily on first save.  The same directory can
    back any number of processes and services; entries are immutable
    once written (rewrites are atomic and bit-identical).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"CompiledDesignStore({str(self.root)!r})"

    # -- keys ---------------------------------------------------------------

    def key_for_spec(self, spec: DesignSpec,
                     min_bits: int = DEFAULT_MIN_BITS) -> str:
        """Content key for a generated suite design (spec-determined)."""
        canon = json.dumps(asdict(spec), sort_keys=True,
                           separators=(",", ":"))
        return self._digest("spec", canon, min_bits)

    def key_for_design(self, design,
                       min_bits: int = DEFAULT_MIN_BITS) -> str:
        """Content key for an arbitrary in-memory design."""
        from repro.netlist.jsonio import design_to_json
        canon = json.dumps(design_to_json(design), sort_keys=True,
                           separators=(",", ":"))
        return self._digest("design", canon, min_bits)

    def _digest(self, kind: str, canon: str, min_bits: int) -> str:
        digest = hashlib.sha256()
        digest.update(store_version().encode())
        digest.update(f"|{kind}|min_bits={min_bits}|".encode())
        digest.update(canon.encode())
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / key

    # -- load / save --------------------------------------------------------

    def load(self, key: str) -> Optional[StoreEntry]:
        """Load entry ``key``, or ``None`` on a miss / stale entry."""
        path = self._entry_path(key)
        meta_path = path / "meta.json"
        if not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("version") != store_version():
                return None
            arrays = {}
            for group in GROUPS:
                manifest = meta["arrays"][group]
                buffers = {
                    name: np.load(path / filename, mmap_mode="r")
                    for name, filename in manifest.items()}
                arrays[group] = (buffers, meta["array_meta"][group])
        except (OSError, KeyError, ValueError):
            return None
        return StoreEntry(key=key, path=path, meta=meta, arrays=arrays)

    def save(self, key: str, prepared: PreparedDesign) -> StoreEntry:
        """Persist a fully compiled ``prepared`` under ``key``.

        The caller's live caches are untouched: the graph blob is
        pickled with the array caches temporarily detached, then they
        are reattached.  The write is atomic.
        """
        with current_tracer().span("store.save", key=key[:12],
                                   design=prepared.name):
            compile_prepared(prepared)
            parts, fingerprints = _array_parts(prepared)
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = Path(tempfile.mkdtemp(prefix=f".tmp-{key[:8]}-",
                                        dir=path.parent))
            try:
                manifest = {}
                array_meta = {}
                for group, (buffers, meta) in parts.items():
                    manifest[group] = {}
                    array_meta[group] = meta
                    for name, array in buffers.items():
                        filename = f"{group}__{name}.npy"
                        np.save(tmp / filename,
                                np.ascontiguousarray(array))
                        manifest[group][name] = filename
                stripped = _strip_compile_caches(prepared)
                try:
                    (tmp / "prepared.pkl").write_bytes(
                        pickle.dumps(prepared,
                                     protocol=pickle.HIGHEST_PROTOCOL))
                finally:
                    _restore_compile_caches(prepared, stripped)
                meta = {
                    "key": key,
                    "version": store_version(),
                    "design": prepared.name,
                    "min_bits": prepared.min_bits,
                    "fingerprints": fingerprints,
                    "arrays": manifest,
                    "array_meta": array_meta,
                    "created_wall": wall_seconds(),
                }
                (tmp / "meta.json").write_text(
                    json.dumps(meta, indent=1, sort_keys=True))
                if path.exists():
                    # Concurrent writer won the race with bit-identical
                    # content; keep theirs.
                    import shutil
                    shutil.rmtree(tmp, ignore_errors=True)
                else:
                    os.replace(tmp, path)
            except BaseException:
                import shutil
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        entry = self.load(key)
        if entry is None:  # pragma: no cover - racing deleter
            raise OSError(f"store entry {key} vanished after save")
        return entry

    # -- the one-call front door -------------------------------------------

    def ensure_spec(self, spec: DesignSpec,
                    min_bits: int = DEFAULT_MIN_BITS) -> StoreEntry:
        """Load the entry for ``spec``, compiling and saving on a miss.

        Emits ``store.hit`` / ``store.miss`` + ``store.compile`` spans;
        this is the primary seam the suite runner and the service use.
        """
        key = self.key_for_spec(spec, min_bits)
        tracer = current_tracer()
        entry = self.load(key)
        if entry is not None:
            with tracer.span("store.hit", key=key[:12],
                             design=spec.name):
                pass
            return entry
        with tracer.span("store.miss", key=key[:12], design=spec.name):
            pass
        with tracer.span("store.compile", key=key[:12],
                         design=spec.name):
            prepared = prepare_design(spec)
            compile_prepared(prepared)
        return self.save(key, prepared)

    def ensure_prepared(self, prepared: PreparedDesign) -> StoreEntry:
        """Store an arbitrary prepared design by content hash.

        Uses the design-JSON content key (slower to compute than a spec
        key but valid for designs that did not come from a generator
        spec).
        """
        min_bits = (prepared.min_bits if prepared.min_bits is not None
                    else DEFAULT_MIN_BITS)
        key = self.key_for_design(prepared.design, min_bits)
        entry = self.load(key)
        tracer = current_tracer()
        if entry is not None:
            with tracer.span("store.hit", key=key[:12],
                             design=prepared.name):
                pass
            return entry
        with tracer.span("store.miss", key=key[:12],
                         design=prepared.name):
            pass
        with tracer.span("store.compile", key=key[:12],
                         design=prepared.name):
            compile_prepared(prepared)
        return self.save(key, prepared)
