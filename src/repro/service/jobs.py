"""PlacementService: a submit/poll/stream job API over a warm pool.

``PlacementService`` owns the three amortization layers end to end:
a :class:`~repro.service.store.CompiledDesignStore` (compile each
design once, ever), shared-memory handoffs (ship compiled arrays to
workers zero-copy), and a worker pool (place many jobs concurrently).
``run_suite(workers=N)`` is a thin client of this class; interactive
clients use it directly::

    from repro.api import PlacementService, RunOptions

    with PlacementService(scale="tiny", designs=("c1", "c2"),
                          store="~/.cache/hidap-store",
                          workers=2) as service:
        handle = service.submit("c1", "hidap", seed=1)
        handle.poll()                    # JobStatus.QUEUED / RUNNING / ...
        for event in handle.stream_events():
            print(event.name)            # job.queued, job.running, job.done
        row = handle.result()            # FlowMetrics, bit-identical to
                                         # a serial run_flow

Determinism contract: rows obtained through ``submit`` are
bit-identical to serial ``run_suite`` rows for the same
(design, flow, options) — asserted on c1–c3 in
``tests/test_service_jobs.py``.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.prepared import prepare_design
from repro.api.run import FlowMetrics, RunOptions
from repro.gen.designs import suite_specs
from repro.obs import current_tracer, wall_seconds
from repro.service import engine
from repro.service.store import CompiledDesignStore, StoreEntry
from repro.service.shm import SegmentOwner, export_entry


class JobStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle event of a submitted job.

    ``name`` is the obs-style event name (``job.queued`` /
    ``job.running`` / ``job.done`` / ``job.failed``); ``wall`` is the
    :func:`repro.obs.wall_seconds` timestamp it was observed at
    (observability only — never part of any row comparison).
    """

    name: str
    job_id: int
    design: str
    flow: str
    wall: float


class JobHandle:
    """Client-side handle of one submitted (design, flow) job."""

    def __init__(self, job_id: int, design: str, flow: str,
                 options: RunOptions):
        self.job_id = job_id
        self.design = design
        self.flow = flow
        self.options = options
        #: Worker trace payload (when the job ran with tracing on).
        self.trace_payload = None
        self.design_info: Optional[str] = None
        self._events: List[JobEvent] = []
        self._lock = threading.Lock()
        self._future = None
        self._result: Optional[FlowMetrics] = None
        self._error: Optional[BaseException] = None
        self._done_span_emitted = False
        self._event("job.queued")

    # -- event bookkeeping --------------------------------------------------

    def _event(self, name: str) -> None:
        with self._lock:
            self._events.append(JobEvent(
                name=name, job_id=self.job_id, design=self.design,
                flow=self.flow, wall=wall_seconds()))

    def _has_event(self, name: str) -> bool:
        with self._lock:
            return any(e.name == name for e in self._events)

    def _note_running(self) -> None:
        if not self._has_event("job.running"):
            self._event("job.running")

    def _finish(self, metrics: Optional[FlowMetrics],
                error: Optional[BaseException]) -> None:
        self._note_running()
        self._result = metrics
        self._error = error
        self._event("job.failed" if error is not None else "job.done")

    def _absorb_future(self) -> None:
        """Fold a finished future's payload into the handle (idempotent)."""
        future = self._future
        if future is None or not future.done() or self._has_event(
                "job.done") or self._has_event("job.failed"):
            return
        try:
            design, _flow, metrics, info, payload = future.result()
            assert design == self.design
            self.design_info = info
            self.trace_payload = payload
            self._finish(metrics, None)
        except BaseException as exc:  # noqa: BLE001 - job error surface
            self._finish(None, exc)

    # -- client API ---------------------------------------------------------

    def poll(self) -> JobStatus:
        """Non-blocking status probe (records ``job.running`` on first
        observation of a running worker)."""
        if self._future is not None:
            if self._future.running():
                self._note_running()
            self._absorb_future()
        if self._error is not None:
            return JobStatus.FAILED
        if self._result is not None:
            return JobStatus.DONE
        if self._has_event("job.running"):
            return JobStatus.RUNNING
        return JobStatus.QUEUED

    def result(self, timeout: Optional[float] = None) -> FlowMetrics:
        """Block until the job finishes; return its row or re-raise.

        Also emits a ``job.done`` / ``job.failed`` obs span into the
        calling process's current tracer, closing the observability
        loop for traced service runs.
        """
        if self._future is not None:
            wait([self._future], timeout=timeout)
            if not self._future.done():
                raise TimeoutError(
                    f"job {self.job_id} ({self.design}/{self.flow}) "
                    f"still {self.poll().value} after {timeout}s")
            self._absorb_future()
        status = self.poll()
        if not self._done_span_emitted:
            self._done_span_emitted = True
            with current_tracer().span(
                    "job.failed" if status is JobStatus.FAILED
                    else "job.done",
                    job=self.job_id, design=self.design, flow=self.flow):
                pass
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def stream_events(self,
                      poll_interval: float = 0.05
                      ) -> Iterator[JobEvent]:
        """Yield lifecycle events as they occur, until the job ends.

        Always yields a consistent ``job.queued`` → ``job.running`` →
        ``job.done``/``job.failed`` sequence; blocks between events by
        waiting on the job's future (no busy spin).
        """
        emitted = 0
        while True:
            self.poll()
            with self._lock:
                pending = list(self._events[emitted:])
            for event in pending:
                emitted += 1
                yield event
            if pending and pending[-1].name in ("job.done",
                                                "job.failed"):
                return
            if self._future is None:
                # Inline jobs finish synchronously inside submit();
                # reaching here with no future means no more events.
                if emitted and self._events[-1].name in (
                        "job.done", "job.failed"):
                    return
            else:
                wait([self._future], timeout=poll_interval)

    def events(self) -> List[JobEvent]:
        """Snapshot of the events recorded so far."""
        self.poll()
        with self._lock:
            return list(self._events)


def iter_completed(handles: Iterable[JobHandle]
                   ) -> Iterator[JobHandle]:
    """Yield handles as their jobs finish (inline handles first)."""
    pending: Dict[object, JobHandle] = {}
    for handle in handles:
        if handle._future is None:
            yield handle
        else:
            pending[handle._future] = handle
    while pending:
        done, _not_done = wait(list(pending), return_when=FIRST_COMPLETED)
        for future in done:
            yield pending.pop(future)


class PlacementService:
    """Compiled-design store + warm pool + job queue, in one object.

    Parameters
    ----------
    scale:
        Suite scale the design names resolve in (``tiny``/``bench``/
        ``full``).
    designs:
        Suite design names to serve (``None`` → every design of the
        scale).  With a store, every named design is ensured (compiled
        at most once, ever) at construction; with ``workers`` > 1 the
        compiled entries are also exported to shared memory so workers
        attach instead of recompiling.
    store:
        ``None`` (no persistence — workers rebuild, the legacy suite
        behaviour), a directory path, or a
        :class:`~repro.service.store.CompiledDesignStore`.
    workers:
        ``None``/``0``/``1`` → inline mode (submit executes
        synchronously in-process); ``N > 1`` → a process pool of ``N``
        workers.
    options:
        Default :class:`~repro.api.run.RunOptions` for every job;
        ``submit`` can override per job.  ``options.trace`` truthiness
        controls worker span recording (the payloads land on each
        handle's ``trace_payload``).
    """

    def __init__(self, scale: str = "bench",
                 designs: Optional[Sequence[str]] = None,
                 store: Union[None, str, Path,
                              CompiledDesignStore] = None,
                 workers: Optional[int] = None,
                 options: Optional[RunOptions] = None):
        self.scale = scale
        self.options = options if options is not None else RunOptions()
        self.store = (store if isinstance(store, CompiledDesignStore)
                      or store is None
                      else CompiledDesignStore(store))
        self._specs = {spec.name: spec for spec in suite_specs(scale)
                       if designs is None or spec.name in designs}
        if designs is not None:
            unknown = [d for d in designs if d not in self._specs]
            if unknown:
                known = ", ".join(s.name for s in suite_specs(scale))
                raise ValueError(
                    f"unknown suite design(s) {unknown} for scale "
                    f"{scale!r} (known: {known})")
        self._entries: Dict[str, StoreEntry] = {}
        self._owners: Dict[str, SegmentOwner] = {}
        self._prepared: Dict[str, object] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._jobs: List[JobHandle] = []
        self._next_job = 0
        self._closed = False

        if self.store is not None:
            for name, spec in self._specs.items():
                self._entries[name] = self.store.ensure_spec(spec)
        if workers is not None and workers > 1:
            for name, entry in self._entries.items():
                self._owners[name] = export_entry(entry)
            backend_entries, default_backend = (
                engine.portable_backend_entries())
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=engine.init_worker,
                initargs=(engine.portable_flow_entries(),
                          backend_entries, default_backend))

    @property
    def designs(self) -> Tuple[str, ...]:
        """The suite design names this service accepts jobs for."""
        return tuple(sorted(self._specs))

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "PlacementService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for owner in self._owners.values():
            owner.unlink()
        self._owners.clear()

    # -- submit / jobs ------------------------------------------------------

    def submit(self, design: str, flow: str,
               seed: Optional[int] = None,
               options: Optional[RunOptions] = None) -> JobHandle:
        """Queue one (design, flow) placement job; return its handle.

        ``design`` is a suite design name served by this service;
        ``options`` (or the shorthand ``seed``) overrides the
        service-level defaults for this job only.  Inline services
        (``workers`` <= 1) execute the job synchronously before
        returning — the handle is already DONE/FAILED.
        """
        if self._closed:
            raise RuntimeError("PlacementService is closed")
        if design not in self._specs:
            known = ", ".join(sorted(self._specs))
            raise ValueError(f"unknown design {design!r} "
                             f"(served: {known})")
        opts = options if options is not None else self.options
        if seed is not None:
            from dataclasses import replace
            opts = replace(opts, seed=int(seed))
        job_id = self._next_job
        self._next_job += 1
        handle = JobHandle(job_id, design, flow, opts)
        self._jobs.append(handle)
        with current_tracer().span("job.queued", job=job_id,
                                   design=design, flow=flow):
            pass
        if self._pool is not None:
            owner = self._owners.get(design)
            handoff = owner.handoff if owner is not None else None
            handle._future = self._pool.submit(
                engine.run_cell, self.scale, design, flow, opts.seed,
                opts.effort.value, opts.referee_backend,
                bool(opts.trace), handoff)
        else:
            self._run_inline(handle, opts)
        return handle

    def _run_inline(self, handle: JobHandle, opts: RunOptions) -> None:
        """Execute a job synchronously in this process (workers <= 1)."""
        handle._note_running()
        try:
            prepared = self._prepared_inline(handle.design)
            if opts.trace:
                import os

                from repro.obs import Tracer, use_tracer

                tracer = Tracer(f"job-{os.getpid()}")
                with use_tracer(tracer):
                    with tracer.span("job.running", job=handle.job_id,
                                     design=handle.design,
                                     flow=handle.flow):
                        metrics = engine.execute_cell(
                            prepared, handle.flow, opts)
                handle.trace_payload = tracer.payload()
            else:
                metrics = engine.execute_cell(prepared, handle.flow,
                                              opts)
            handle.design_info = prepared.info()
            handle._finish(metrics, None)
        except BaseException as exc:  # noqa: BLE001 - job error surface
            handle._finish(None, exc)

    def _prepared_inline(self, design: str):
        """Inline-mode prepared design: store-warm, cached per service."""
        prepared = self._prepared.get(design)
        if prepared is None:
            entry = self._entries.get(design)
            if entry is not None:
                prepared = entry.materialize()
            else:
                prepared = prepare_design(self._specs[design])
            self._prepared[design] = prepared
        return prepared
