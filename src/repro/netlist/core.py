"""The hierarchical netlist data model.

A :class:`Design` owns a set of :class:`Module` definitions and names a
top module.  Modules contain bus :class:`Net` objects and
:class:`Instance` objects referring either to other modules or to leaf
:class:`CellType` cells.  Connectivity is recorded on nets as
:class:`Conn` endpoints ``(instance pin slice <- net slice)``.

Module ports use the usual structural-HDL convention: a port named ``p``
is implicitly attached to the internal net named ``p`` (created
automatically), so crossing a hierarchy boundary is a net-name lookup,
not a special connection type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro.netlist.cells import CellType, Direction, PortDef


@dataclass(frozen=True)
class Conn:
    """One endpoint of a net: ``inst.pin[pin_lsb +: width]``.

    ``net_lsb`` anchors the slice on the net side, so a single ``Conn``
    expresses ``net[net_lsb +: width] == inst.pin[pin_lsb +: width]``.
    """

    inst: str
    pin: str
    width: int = 1
    net_lsb: int = 0
    pin_lsb: int = 0

    def net_bits(self) -> range:
        return range(self.net_lsb, self.net_lsb + self.width)

    def pin_bits(self) -> range:
        return range(self.pin_lsb, self.pin_lsb + self.width)


class Net:
    """A named bus net inside one module."""

    __slots__ = ("name", "width", "conns")

    def __init__(self, name: str, width: int = 1):
        if width < 1:
            raise ValueError(f"net {name}: width must be >= 1")
        self.name = name
        self.width = width
        self.conns: List[Conn] = []

    def connect(self, inst: str, pin: str, width: int = 1,
                net_lsb: int = 0, pin_lsb: int = 0) -> None:
        if net_lsb + width > self.width:
            raise ValueError(
                f"net {self.name}[{self.width}]: slice "
                f"[{net_lsb}+:{width}] out of range")
        self.conns.append(Conn(inst, pin, width, net_lsb, pin_lsb))

    def __repr__(self) -> str:
        return f"Net({self.name}[{self.width}], {len(self.conns)} conns)"


class Instance:
    """An instantiation of a module or a leaf cell inside a module."""

    __slots__ = ("name", "ref")

    def __init__(self, name: str, ref: Union["Module", CellType]):
        self.name = name
        self.ref = ref

    @property
    def is_leaf(self) -> bool:
        return isinstance(self.ref, CellType)

    @property
    def is_macro(self) -> bool:
        return self.is_leaf and self.ref.is_macro

    @property
    def ref_name(self) -> str:
        return self.ref.name

    def port(self, name: str) -> PortDef:
        if self.is_leaf:
            return self.ref.port(name)
        return self.ref.port(name)

    def __repr__(self) -> str:
        return f"Instance({self.name}:{self.ref_name})"


class Module:
    """A module definition: ports, nets and instances."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, PortDef] = {}
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}

    # -- construction -------------------------------------------------------

    def add_port(self, name: str, direction: Direction,
                 width: int = 1) -> PortDef:
        """Declare a port; the matching internal net is created too."""
        if name in self.ports:
            raise ValueError(f"module {self.name}: duplicate port {name}")
        port = PortDef(name, direction, width)
        self.ports[name] = port
        if name not in self.nets:
            self.nets[name] = Net(name, width)
        return port

    def add_net(self, name: str, width: int = 1) -> Net:
        if name in self.nets:
            existing = self.nets[name]
            if existing.width != width:
                raise ValueError(
                    f"module {self.name}: net {name} redeclared with "
                    f"width {width} != {existing.width}")
            return existing
        net = Net(name, width)
        self.nets[name] = net
        return net

    def add_instance(self, name: str,
                     ref: Union["Module", CellType]) -> Instance:
        if name in self.instances:
            raise ValueError(f"module {self.name}: duplicate instance {name}")
        inst = Instance(name, ref)
        self.instances[name] = inst
        return inst

    def port(self, name: str) -> PortDef:
        try:
            return self.ports[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no port {name!r}")

    # -- queries ------------------------------------------------------------

    def leaf_instances(self) -> Iterator[Instance]:
        return (i for i in self.instances.values() if i.is_leaf)

    def module_instances(self) -> Iterator[Instance]:
        return (i for i in self.instances.values() if not i.is_leaf)

    def __repr__(self) -> str:
        return (f"Module({self.name}: {len(self.ports)} ports, "
                f"{len(self.instances)} insts, {len(self.nets)} nets)")


class Design:
    """A set of module definitions with a designated top module."""

    def __init__(self, name: str, top: Optional[Module] = None):
        self.name = name
        self.modules: Dict[str, Module] = {}
        self._top_name: Optional[str] = None
        if top is not None:
            self.add_module(top)
            self.set_top(top.name)

    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise ValueError(f"design {self.name}: duplicate module "
                             f"{module.name}")
        self.modules[module.name] = module
        return module

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise KeyError(f"design {self.name}: unknown module {name}")
        self._top_name = name

    @property
    def top(self) -> Module:
        if self._top_name is None:
            raise ValueError(f"design {self.name}: top module not set")
        return self.modules[self._top_name]

    def cell_types(self) -> Dict[str, CellType]:
        """Every leaf cell type referenced anywhere in the design."""
        found: Dict[str, CellType] = {}
        for module in self.modules.values():
            for inst in module.leaf_instances():
                found[inst.ref.name] = inst.ref
        return found

    def __repr__(self) -> str:
        return f"Design({self.name}, {len(self.modules)} modules)"
