"""Bit-accurate flattening of hierarchical designs.

Flattening resolves every hierarchy boundary with a union-find over
``(module-instance path, net name, bit)`` keys, producing flat bit nets
whose endpoints are leaf-cell pins and top-level port bits.  The result
feeds ``Gnet`` construction; each flat cell remembers the hierarchy path
of its enclosing module so cells can be mapped back onto the hierarchy
tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import CellType, Direction
from repro.netlist.core import Design, Module

PATH_SEP = "/"

NetKey = Tuple[str, str, int]       # (module instance path, net name, bit)
Endpoint = Tuple[int, str, int]     # (flat cell index, pin name, pin bit)
PortBit = Tuple[str, int]           # (top port name, bit)


@dataclass
class FlatCell:
    """A leaf cell instance in the flattened design."""

    index: int
    path: str           # full instance path, e.g. "core0/alu/res[3]"
    ctype: CellType
    module_path: str    # path of the enclosing module instance ("" = top)

    @property
    def is_macro(self) -> bool:
        return self.ctype.is_macro

    @property
    def is_flop(self) -> bool:
        return self.ctype.is_sequential

    @property
    def local_name(self) -> str:
        return self.path.rsplit(PATH_SEP, 1)[-1]


@dataclass
class FlatNet:
    """A single-bit flat net."""

    index: int
    name: str                      # a representative hierarchical name
    endpoints: List[Endpoint] = field(default_factory=list)
    top_ports: List[PortBit] = field(default_factory=list)

    def fanout(self) -> int:
        return len(self.endpoints) + len(self.top_ports)


class _UnionFind:
    """Union-find with path compression over arbitrary hashable keys."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Dict[NetKey, NetKey] = {}

    def find(self, key: NetKey) -> NetKey:
        parent = self.parent
        if key not in parent:
            parent[key] = key
            return key
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(self, a: NetKey, b: NetKey) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class FlatDesign:
    """The flattened view of a hierarchical design."""

    def __init__(self, design: Design):
        self.design = design
        self.cells: List[FlatCell] = []
        self.nets: List[FlatNet] = []
        self.cell_index_by_path: Dict[str, int] = {}

    # -- queries -----------------------------------------------------------

    def macros(self) -> List[FlatCell]:
        return [c for c in self.cells if c.is_macro]

    def flops(self) -> List[FlatCell]:
        return [c for c in self.cells if c.is_flop]

    def cell_by_path(self, path: str) -> FlatCell:
        return self.cells[self.cell_index_by_path[path]]

    def total_cell_area(self) -> float:
        return sum(c.ctype.area for c in self.cells)

    def stdcell_area(self) -> float:
        return sum(c.ctype.area for c in self.cells if not c.is_macro)

    def macro_area(self) -> float:
        return sum(c.ctype.area for c in self.cells if c.is_macro)

    def __repr__(self) -> str:
        return (f"FlatDesign({self.design.name}: {len(self.cells)} cells, "
                f"{len(self.nets)} bit-nets)")


def _join(path: str, name: str) -> str:
    return name if not path else path + PATH_SEP + name


def flatten(design: Design, max_fanout: Optional[int] = None) -> FlatDesign:
    """Flatten ``design`` into bit-level nets and leaf cells.

    ``max_fanout`` optionally drops nets with more endpoints than the
    bound (clock/reset-style global nets), which otherwise swamp the
    netlist graph with meaningless adjacency.
    """
    flat = FlatDesign(design)
    uf = _UnionFind()
    # Endpoints attached to each net-bit key (resolved to roots later).
    pin_hits: List[Tuple[NetKey, Endpoint]] = []
    port_hits: List[Tuple[NetKey, PortBit]] = []

    def visit(module: Module, path: str) -> None:
        for inst in module.instances.values():
            inst_path = _join(path, inst.name)
            if inst.is_leaf:
                cell = FlatCell(len(flat.cells), inst_path,
                                inst.ref, module_path=path)
                flat.cells.append(cell)
                flat.cell_index_by_path[inst_path] = cell.index
            else:
                visit(inst.ref, inst_path)
        for net in module.nets.values():
            for conn in net.conns:
                inst = module.instances[conn.inst]
                for i in range(conn.width):
                    net_key = (path, net.name, conn.net_lsb + i)
                    pin_bit = conn.pin_lsb + i
                    if inst.is_leaf:
                        cell_path = _join(path, inst.name)
                        cell_index = flat.cell_index_by_path[cell_path]
                        pin_hits.append(
                            (net_key, (cell_index, conn.pin, pin_bit)))
                    else:
                        child_key = (_join(path, inst.name),
                                     conn.pin, pin_bit)
                        uf.union(net_key, child_key)

    top = design.top
    visit(top, "")
    for port in top.ports.values():
        for bit in range(port.width):
            port_hits.append((("", port.name, bit), (port.name, bit)))

    # Group endpoints by union-find root.
    net_of_root: Dict[NetKey, FlatNet] = {}

    def net_for(root: NetKey) -> FlatNet:
        net = net_of_root.get(root)
        if net is None:
            path, name, bit = root
            label = f"{_join(path, name)}[{bit}]"
            net = FlatNet(len(flat.nets), label)
            flat.nets.append(net)
            net_of_root[root] = net
        return net

    for key, endpoint in pin_hits:
        net_for(uf.find(key)).endpoints.append(endpoint)
    for key, port_bit in port_hits:
        net_for(uf.find(key)).top_ports.append(port_bit)

    # Drop degenerate nets (single endpoint and no port) and, optionally,
    # global high-fanout nets.
    kept: List[FlatNet] = []
    for net in flat.nets:
        if net.fanout() < 2:
            continue
        if max_fanout is not None and net.fanout() > max_fanout:
            continue
        net.index = len(kept)
        kept.append(net)
    flat.nets = kept
    return flat


def net_driver(flat: FlatDesign, net: FlatNet) -> Optional[Endpoint]:
    """The driving endpoint of a flat net, if any.

    Leaf output pins drive; so do top-level *input* ports (they drive
    inward), but those are reported as ``None`` here since they are not
    cell endpoints — callers treat port-driven nets separately.
    """
    for cell_index, pin, _bit in net.endpoints:
        cell = flat.cells[cell_index]
        if cell.ctype.port(pin).direction is Direction.OUT:
            return (cell_index, pin, _bit)
    return None
