"""A fluent builder for hierarchical modules.

The synthetic design generator and the tests build netlists through this
API; it auto-creates nets, wires register arrays bit by bit and keeps the
bus/array structure that HiDaP's dataflow analysis relies on.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.netlist.cells import (
    CellType,
    DEFAULT_COMB,
    DEFAULT_FLOP,
    Direction,
)
from repro.netlist.core import Design, Instance, Module, Net


class ModuleBuilder:
    """Builds one :class:`Module`, creating nets on demand.

    Example
    -------
    >>> b = ModuleBuilder("stage")
    >>> b.input("din", 8)
    >>> b.output("dout", 8)
    >>> b.register_array("pipe", 8, d="din", q="dout")
    >>> module = b.build()
    """

    def __init__(self, name: str):
        self.module = Module(name)
        self._uid = 0

    # -- ports and nets -------------------------------------------------------

    def input(self, name: str, width: int = 1) -> "ModuleBuilder":
        self.module.add_port(name, Direction.IN, width)
        return self

    def output(self, name: str, width: int = 1) -> "ModuleBuilder":
        self.module.add_port(name, Direction.OUT, width)
        return self

    def wire(self, name: str, width: int = 1) -> Net:
        return self.module.add_net(name, width)

    def _fresh_name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}_u{self._uid}"

    # -- instances ------------------------------------------------------------

    def instance(self, ref: Union[Module, CellType],
                 name: Optional[str] = None) -> Instance:
        name = name or self._fresh_name(ref.name.lower())
        return self.module.add_instance(name, ref)

    def connect(self, net_name: str, inst: Union[Instance, str], pin: str,
                width: int = 1, net_lsb: int = 0,
                pin_lsb: int = 0) -> "ModuleBuilder":
        """Attach ``inst.pin[pin_lsb +: width]`` to ``net[net_lsb +: width]``."""
        inst_name = inst.name if isinstance(inst, Instance) else inst
        if net_name not in self.module.nets:
            raise KeyError(f"module {self.module.name}: unknown net "
                           f"{net_name}; declare it with wire()/input()")
        self.module.nets[net_name].connect(inst_name, pin, width,
                                           net_lsb, pin_lsb)
        return self

    def connect_bus(self, net_name: str, inst: Union[Instance, str],
                    pin: str) -> "ModuleBuilder":
        """Attach a full-width pin to a full-width net of equal width."""
        net = self.module.nets[net_name]
        return self.connect(net_name, inst, pin, width=net.width)

    # -- common structures ------------------------------------------------------

    def register_array(self, name: str, width: int, d: str, q: str,
                       clk: Optional[str] = None,
                       flop: CellType = DEFAULT_FLOP) -> List[Instance]:
        """A ``width``-bit register built from single-bit flops.

        Flops are named ``{name}[i]`` — exactly the array naming pattern
        the paper's Gseq construction recovers by name clustering.
        """
        d_net = self.module.nets[d]
        q_net = self.module.nets[q]
        if d_net.width < width or q_net.width < width:
            raise ValueError(f"register {name}: nets narrower than {width}")
        flops = []
        for bit in range(width):
            inst = self.module.add_instance(f"{name}[{bit}]", flop)
            d_net.connect(inst.name, "d", 1, net_lsb=bit)
            q_net.connect(inst.name, "q", 1, net_lsb=bit)
            if clk is not None:
                self.module.nets[clk].connect(inst.name, "clk", 1)
            flops.append(inst)
        return flops

    def comb_cloud(self, name: str, inputs: List[str], output: str,
                   n_cells: Optional[int] = None,
                   cell: CellType = DEFAULT_COMB) -> List[Instance]:
        """A small cloud of combinational cells between buses.

        Builds one mixing cell per output bit (driving ``output[bit]``)
        whose inputs sample the input buses round-robin, plus optional
        extra internal cells for area realism.  The exact logic function
        is irrelevant; connectivity and area are what placement sees.
        """
        out_net = self.module.nets[output]
        in_nets = [self.module.nets[i] for i in inputs]
        if not in_nets:
            raise ValueError(f"comb cloud {name}: needs at least one input")
        cells = []
        n_in_pins = sum(1 for p in cell.ports if p.direction is Direction.IN)
        for bit in range(out_net.width):
            inst = self.module.add_instance(f"{name}_c{bit}", cell)
            out_net.connect(inst.name, "z", 1, net_lsb=bit)
            for k in range(n_in_pins):
                src = in_nets[(bit + k) % len(in_nets)]
                src_bit = (bit + k) % src.width
                src.connect(inst.name, f"a{k}", 1, net_lsb=src_bit)
            cells.append(inst)
        extra = 0 if n_cells is None else max(0, n_cells - out_net.width)
        for j in range(extra):
            inst = self.module.add_instance(f"{name}_x{j}", cell)
            # Chain extras off the output bus so they stay connected.
            out_net.connect(inst.name, "a0", 1, net_lsb=j % out_net.width)
            for k in range(1, n_in_pins):
                src = in_nets[(j + k) % len(in_nets)]
                src.connect(inst.name, f"a{k}", 1,
                            net_lsb=(j + k) % src.width)
            sink = self.module.nets[inputs[0]]
            # The extra cell's output is left dangling on purpose: it
            # models area-only filler logic.  Validation flags dangling
            # *input* pins but tolerates unused outputs.
            del sink
            cells.append(inst)
        return cells

    def comb_slice(self, name: str, src: str, dst: str, dst_lsb: int,
                   width: int, cell: CellType = DEFAULT_COMB
                   ) -> List[Instance]:
        """One mixing cell per bit driving ``dst[dst_lsb +: width]``.

        Inputs sample ``src`` round-robin; used to gather lane buses
        into slices of a wider bus.
        """
        src_net = self.module.nets[src]
        dst_net = self.module.nets[dst]
        if dst_lsb + width > dst_net.width:
            raise ValueError(f"comb slice {name}: dst slice out of range")
        n_in_pins = sum(1 for p in cell.ports if p.direction is Direction.IN)
        cells = []
        for i in range(width):
            inst = self.module.add_instance(f"{name}_c{i}", cell)
            dst_net.connect(inst.name, "z", 1, net_lsb=dst_lsb + i)
            for k in range(n_in_pins):
                src_net.connect(inst.name, f"a{k}", 1,
                                net_lsb=(i + k) % src_net.width)
            cells.append(inst)
        return cells

    def build(self) -> Module:
        return self.module


def single_module_design(builder: ModuleBuilder,
                         name: Optional[str] = None) -> Design:
    """Wrap a built module as a one-module design (testing helper)."""
    module = builder.build()
    return Design(name or module.name, top=module)
