"""JSON serialization for designs, including leaf-cell libraries.

Unlike the Verilog subset, the JSON form is lossless: it round-trips pin
geometry and cell kinds, so generated design suites can be cached to
disk and reloaded without regeneration.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.netlist.cells import (
    CellKind,
    CellType,
    Direction,
    PinGeometry,
    PortDef,
    Side,
)
from repro.netlist.core import Design, Module


def _port_to_json(port: PortDef) -> Dict:
    return {"name": port.name, "dir": port.direction.value,
            "width": port.width}


def _port_from_json(data: Dict) -> PortDef:
    return PortDef(data["name"], Direction(data["dir"]), data["width"])


def cell_to_json(cell: CellType) -> Dict:
    data = {
        "name": cell.name,
        "kind": cell.kind.value,
        "area": cell.area,
        "ports": [_port_to_json(p) for p in cell.ports],
    }
    if cell.is_macro:
        data["width"] = cell.width
        data["height"] = cell.height
        if cell.pin_geometry:
            data["pins"] = {
                name: {"side": g.side.value, "offset": g.offset}
                for name, g in cell.pin_geometry.items()}
    return data


def cell_from_json(data: Dict) -> CellType:
    geometry = None
    if "pins" in data:
        geometry = {name: PinGeometry(Side(g["side"]), g["offset"])
                    for name, g in data["pins"].items()}
    return CellType(
        name=data["name"], kind=CellKind(data["kind"]), area=data["area"],
        ports=tuple(_port_from_json(p) for p in data["ports"]),
        width=data.get("width", 0.0), height=data.get("height", 0.0),
        pin_geometry=geometry)


def design_to_json(design: Design) -> Dict:
    """Serialize a design (modules + referenced cell library) to a dict."""
    cells = design.cell_types()
    modules = []
    for module in design.modules.values():
        nets = []
        for net in module.nets.values():
            nets.append({
                "name": net.name, "width": net.width,
                "conns": [[c.inst, c.pin, c.width, c.net_lsb, c.pin_lsb]
                          for c in net.conns]})
        modules.append({
            "name": module.name,
            "ports": [_port_to_json(p) for p in module.ports.values()],
            "instances": [[i.name, i.ref_name]
                          for i in module.instances.values()],
            "nets": nets,
        })
    return {
        "name": design.name,
        "top": design.top.name,
        "library": [cell_to_json(c) for c in cells.values()],
        "modules": modules,
    }


def design_from_json(data: Dict) -> Design:
    """Rebuild a design serialized with :func:`design_to_json`."""
    library = {c["name"]: cell_from_json(c) for c in data["library"]}
    design = Design(data["name"])
    modules: Dict[str, Module] = {}
    for mdata in data["modules"]:
        module = Module(mdata["name"])
        for pdata in mdata["ports"]:
            port = _port_from_json(pdata)
            module.add_port(port.name, port.direction, port.width)
        modules[module.name] = module
        design.add_module(module)

    for mdata in data["modules"]:
        module = modules[mdata["name"]]
        for ndata in mdata["nets"]:
            module.add_net(ndata["name"], ndata["width"])
        for name, ref_name in mdata["instances"]:
            ref = modules.get(ref_name) or library[ref_name]
            module.add_instance(name, ref)
        for ndata in mdata["nets"]:
            net = module.nets[ndata["name"]]
            for inst, pin, width, net_lsb, pin_lsb in ndata["conns"]:
                net.connect(inst, pin, width, net_lsb, pin_lsb)

    design.set_top(data["top"])
    return design


def save_design(design: Design, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(design_to_json(design), handle)


def load_design(path: str) -> Design:
    with open(path) as handle:
        return design_from_json(json.load(handle))
