"""Design statistics: the per-circuit numbers reported in Table III.

``design_stats`` walks the hierarchy once, computing cell/macro counts
and areas both globally and per hierarchy subtree; the latter is the
``area(n)`` / ``macro_count(n)`` oracle that hierarchical declustering
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.core import Design, Module


@dataclass
class ModuleStats:
    """Aggregates for one module definition (whole subtree, per instance)."""

    cells: int = 0
    macros: int = 0
    flops: int = 0
    comb: int = 0
    cell_area: float = 0.0
    macro_area: float = 0.0

    @property
    def total_area(self) -> float:
        return self.cell_area + self.macro_area


@dataclass
class DesignStats:
    """Whole-design statistics plus per-module-definition aggregates."""

    name: str
    cells: int
    macros: int
    flops: int
    comb: int
    stdcell_area: float
    macro_area: float
    per_module: Dict[str, ModuleStats] = field(default_factory=dict)

    @property
    def total_area(self) -> float:
        return self.stdcell_area + self.macro_area

    def summary(self) -> str:
        return (f"{self.name}: {self.cells} cells "
                f"({self.flops} flops, {self.comb} comb), "
                f"{self.macros} macros, "
                f"area std={self.stdcell_area:.0f} "
                f"macro={self.macro_area:.0f}")


def _module_stats(module: Module, cache: Dict[str, ModuleStats]
                  ) -> ModuleStats:
    if module.name in cache:
        return cache[module.name]
    stats = ModuleStats()
    for inst in module.instances.values():
        if inst.is_leaf:
            cell = inst.ref
            stats.cells += 1
            if cell.is_macro:
                stats.macros += 1
                stats.macro_area += cell.area
            else:
                if cell.is_sequential:
                    stats.flops += 1
                else:
                    stats.comb += 1
                stats.cell_area += cell.area
        else:
            child = _module_stats(inst.ref, cache)
            stats.cells += child.cells
            stats.macros += child.macros
            stats.flops += child.flops
            stats.comb += child.comb
            stats.cell_area += child.cell_area
            stats.macro_area += child.macro_area
    cache[module.name] = stats
    return stats


def design_stats(design: Design) -> DesignStats:
    """Compute statistics for a design in one hierarchy walk."""
    cache: Dict[str, ModuleStats] = {}
    top = _module_stats(design.top, cache)
    return DesignStats(
        name=design.name,
        cells=top.cells,
        macros=top.macros,
        flops=top.flops,
        comb=top.comb,
        stdcell_area=top.cell_area,
        macro_area=top.macro_area,
        per_module=cache,
    )
