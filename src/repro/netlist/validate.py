"""Design validation: structural checks run before placement.

The checks catch the classes of error the generator or a hand-written
netlist could introduce: width overflows, multiple drivers on a bit,
floating required inputs, and unresolvable references.  Issues are
returned, not raised, so callers can decide severity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.cells import Direction
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign, flatten


@dataclass(frozen=True)
class ValidationIssue:
    """One finding; ``severity`` is 'error' or 'warning'."""

    severity: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.where}: {self.message}"


def _check_hierarchy(design: Design, issues: List[ValidationIssue]) -> None:
    for module in design.modules.values():
        for net in module.nets.values():
            for conn in net.conns:
                if conn.inst not in module.instances:
                    issues.append(ValidationIssue(
                        "error", f"{module.name}.{net.name}",
                        f"connection to unknown instance {conn.inst!r}"))
                    continue
                inst = module.instances[conn.inst]
                try:
                    port = inst.port(conn.pin)
                except KeyError:
                    issues.append(ValidationIssue(
                        "error", f"{module.name}.{conn.inst}",
                        f"unknown pin {conn.pin!r}"))
                    continue
                if conn.pin_lsb + conn.width > port.width:
                    issues.append(ValidationIssue(
                        "error", f"{module.name}.{conn.inst}.{conn.pin}",
                        f"pin slice [{conn.pin_lsb}+:{conn.width}] exceeds "
                        f"width {port.width}"))


def _check_drivers(flat: FlatDesign, issues: List[ValidationIssue]) -> None:
    top_ports = flat.design.top.ports
    for net in flat.nets:
        drivers = 0
        for cell_index, pin, _bit in net.endpoints:
            cell = flat.cells[cell_index]
            if cell.ctype.port(pin).direction is Direction.OUT:
                drivers += 1
        for port_name, _bit in net.top_ports:
            if top_ports[port_name].direction is Direction.IN:
                drivers += 1
        if drivers > 1:
            issues.append(ValidationIssue(
                "error", net.name, f"{drivers} drivers on one bit"))
        elif drivers == 0:
            issues.append(ValidationIssue(
                "warning", net.name, "bit has loads but no driver"))


def validate_design(design: Design,
                    check_flat: bool = True) -> List[ValidationIssue]:
    """Run all checks; returns a (possibly empty) list of issues."""
    issues: List[ValidationIssue] = []
    _check_hierarchy(design, issues)
    if any(i.severity == "error" for i in issues):
        return issues          # flattening would only cascade the errors
    if check_flat:
        _check_drivers(flatten(design), issues)
    return issues


def assert_valid(design: Design) -> None:
    """Raise ``ValueError`` when the design has validation *errors*."""
    errors = [i for i in validate_design(design) if i.severity == "error"]
    if errors:
        summary = "; ".join(str(e) for e in errors[:5])
        raise ValueError(
            f"design {design.name} failed validation "
            f"({len(errors)} errors): {summary}")
