"""Hierarchical netlist model with RTL hierarchy and array information.

This package is the reproduction's stand-in for the paper's input: a
netlist ``N`` that still carries the RTL design hierarchy and bus/array
structure.  It provides:

* a hierarchical data model (modules, instances, bus nets, leaf cells);
* a builder API used by the synthetic design generator;
* a structural-Verilog-subset writer/parser and a JSON round-trip;
* bit-accurate flattening (feeding ``Gnet`` construction);
* validation and statistics helpers.
"""

from repro.netlist.cells import (
    CellKind,
    CellType,
    Direction,
    PortDef,
    comb_cell,
    flop_cell,
    macro_cell,
)
from repro.netlist.core import Conn, Design, Instance, Module, Net
from repro.netlist.builder import ModuleBuilder
from repro.netlist.flatten import FlatCell, FlatDesign, FlatNet, flatten
from repro.netlist.validate import ValidationIssue, validate_design
from repro.netlist.stats import DesignStats, design_stats

__all__ = [
    "CellKind",
    "CellType",
    "Conn",
    "Design",
    "DesignStats",
    "Direction",
    "FlatCell",
    "FlatDesign",
    "FlatNet",
    "Instance",
    "Module",
    "ModuleBuilder",
    "Net",
    "PortDef",
    "ValidationIssue",
    "comb_cell",
    "design_stats",
    "flatten",
    "flop_cell",
    "macro_cell",
    "validate_design",
]
