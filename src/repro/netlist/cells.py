"""Leaf cell types: macros, flops and combinational cells.

A :class:`CellType` is the immutable library view of a leaf cell.  Macros
carry physical dimensions and pin geometry (which side of the macro each
pin sits on and where along that side), because the flipping post-pass
needs real pin positions to reduce wirelength.  Standard cells only carry
an area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class Direction(Enum):
    """Pin / port direction."""

    IN = "input"
    OUT = "output"

    @property
    def is_input(self) -> bool:
        return self is Direction.IN


class CellKind(Enum):
    """The three leaf-cell families the paper's graphs distinguish."""

    MACRO = "macro"
    FLOP = "flop"
    COMB = "comb"


class Side(Enum):
    """Macro side a pin is placed on (as-drawn orientation)."""

    WEST = "W"
    EAST = "E"
    NORTH = "N"
    SOUTH = "S"


@dataclass(frozen=True)
class PortDef:
    """A (possibly multi-bit) port of a module or leaf cell."""

    name: str
    direction: Direction
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"port {self.name}: width must be >= 1")


@dataclass(frozen=True)
class PinGeometry:
    """Where a macro pin sits: side + fractional position along it."""

    side: Side
    offset: float  # in [0, 1] along the side, from the lower/left end

    def as_drawn(self, w: float, h: float) -> Tuple[float, float]:
        """Offset from the macro's lower-left corner in orientation N."""
        if self.side is Side.WEST:
            return (0.0, self.offset * h)
        if self.side is Side.EAST:
            return (w, self.offset * h)
        if self.side is Side.SOUTH:
            return (self.offset * w, 0.0)
        return (self.offset * w, h)


@dataclass(frozen=True)
class CellType:
    """An immutable leaf-cell library element."""

    name: str
    kind: CellKind
    area: float
    ports: Tuple[PortDef, ...]
    width: float = 0.0    # macros only
    height: float = 0.0   # macros only
    pin_geometry: Optional[Dict[str, PinGeometry]] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind is CellKind.MACRO and (self.width <= 0 or self.height <= 0):
            raise ValueError(f"macro {self.name} needs positive dimensions")
        names = [p.name for p in self.ports]
        if len(names) != len(set(names)):
            raise ValueError(f"cell {self.name}: duplicate port names")

    @property
    def is_macro(self) -> bool:
        return self.kind is CellKind.MACRO

    @property
    def is_sequential(self) -> bool:
        return self.kind is CellKind.FLOP

    def port(self, name: str) -> PortDef:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"cell {self.name} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return any(p.name == name for p in self.ports)

    def pin_as_drawn(self, pin: str, bit: int = 0) -> Tuple[float, float]:
        """Pin offset (orientation N) from the macro lower-left corner.

        Multi-bit macro ports spread their bits evenly along the pin's
        side around the port's geometric anchor.
        """
        if not self.is_macro:
            raise ValueError(f"{self.name} is not a macro")
        geometry = (self.pin_geometry or {}).get(pin)
        if geometry is None:
            # Default: everything at the middle of the west side.
            geometry = PinGeometry(Side.WEST, 0.5)
        width = self.port(pin).width
        if width > 1:
            # Spread bits across +-10% of the side around the anchor.
            frac = geometry.offset + 0.2 * (bit / (width - 1) - 0.5)
            frac = min(1.0, max(0.0, frac))
            geometry = PinGeometry(geometry.side, frac)
        return geometry.as_drawn(self.width, self.height)


def macro_cell(name: str, width: float, height: float,
               ports: List[PortDef],
               pin_geometry: Optional[Dict[str, PinGeometry]] = None
               ) -> CellType:
    """Convenience constructor for a macro cell type."""
    return CellType(name=name, kind=CellKind.MACRO, area=width * height,
                    ports=tuple(ports), width=width, height=height,
                    pin_geometry=pin_geometry)


def flop_cell(name: str = "DFF", area: float = 1.0) -> CellType:
    """A single-bit D flip-flop."""
    ports = (PortDef("d", Direction.IN), PortDef("q", Direction.OUT),
             PortDef("clk", Direction.IN))
    return CellType(name=name, kind=CellKind.FLOP, area=area, ports=ports)


def comb_cell(name: str = "COMB2", n_inputs: int = 2,
              area: float = 0.6) -> CellType:
    """A generic n-input combinational cell with one output."""
    ports = tuple(PortDef(f"a{i}", Direction.IN) for i in range(n_inputs))
    ports = ports + (PortDef("z", Direction.OUT),)
    return CellType(name=name, kind=CellKind.COMB, area=area, ports=ports)


#: A small default library shared by tests and the design generator.
DEFAULT_FLOP = flop_cell()
DEFAULT_COMB = comb_cell()
DEFAULT_COMB1 = comb_cell("COMB1", n_inputs=1, area=0.4)
DEFAULT_COMB3 = comb_cell("COMB3", n_inputs=3, area=0.9)
