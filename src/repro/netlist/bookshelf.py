"""Bookshelf format interchange (.nodes / .nets / .pl).

The paper contrasts its industrial inputs with the academic ICCAD'12
contest benchmarks [1], which ship in the Bookshelf format.  This
module lets a flattened design round-trip to that ecosystem: export a
design (and optionally a macro placement) for academic placers, or
import a Bookshelf triple as a flat single-module design.

Hierarchy and array information do not survive the trip — that is
precisely the paper's point about such benchmarks — so imported designs
suit the flat baseline flows, not HiDaP itself.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, TextIO, Tuple

from repro.core.result import MacroPlacement
from repro.netlist.builder import ModuleBuilder
from repro.netlist.cells import (
    CellKind,
    CellType,
    Direction,
    PortDef,
    macro_cell,
)
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign

#: Bookshelf identifiers cannot contain whitespace; hierarchical paths
#: are encoded by replacing '/' with this separator.
_PATH_ESCAPE = "__"


def _node_name(path: str) -> str:
    return path.replace("/", _PATH_ESCAPE)


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def _port_node_name(port: str, bit: int) -> str:
    return f"PORT{_PATH_ESCAPE}{port}{_PATH_ESCAPE}{bit}"


def _port_bits(flat: FlatDesign) -> List[Tuple[str, int]]:
    """Port bits that appear on at least one kept flat net."""
    seen = []
    seen_set = set()
    for net in flat.nets:
        for port, bit in net.top_ports:
            if (port, bit) not in seen_set:
                seen_set.add((port, bit))
                seen.append((port, bit))
    return seen


def write_nodes(flat: FlatDesign, handle: TextIO) -> None:
    """Emit the .nodes file: every cell with its dimensions.

    Standard cells are emitted as 1x`area` sites; macros keep their
    physical dimensions and are marked ``terminal`` (fixed-size
    obstacles, the usual convention for macro blocks).  Chip port bits
    become zero-ish-size terminal nodes, as in the contest benchmarks.
    """
    cells = flat.cells
    ports = _port_bits(flat)
    n_terminals = sum(1 for c in cells if c.is_macro) + len(ports)
    handle.write("UCLA nodes 1.0\n\n")
    handle.write(f"NumNodes : {len(cells) + len(ports)}\n")
    handle.write(f"NumTerminals : {n_terminals}\n")
    for cell in cells:
        name = _node_name(cell.path)
        if cell.is_macro:
            handle.write(f"  {name} {cell.ctype.width:g} "
                         f"{cell.ctype.height:g} terminal\n")
        else:
            handle.write(f"  {name} {cell.ctype.area:g} 1\n")
    for port, bit in ports:
        handle.write(f"  {_port_node_name(port, bit)} 0.01 0.01 "
                     f"terminal\n")


def write_nets(flat: FlatDesign, handle: TextIO) -> None:
    """Emit the .nets file: one entry per flat bit net.

    Chip port bits participate as pins of their terminal nodes; an
    input port drives inward, so it is an ``O`` pin.
    """
    top_ports = flat.design.top.ports
    total_pins = sum(len(n.endpoints) + len(n.top_ports)
                     for n in flat.nets)
    handle.write("UCLA nets 1.0\n\n")
    handle.write(f"NumNets : {len(flat.nets)}\n")
    handle.write(f"NumPins : {total_pins}\n")
    for i, net in enumerate(flat.nets):
        degree = len(net.endpoints) + len(net.top_ports)
        handle.write(f"NetDegree : {degree} n{i}\n")
        for cell_index, pin, _bit in net.endpoints:
            cell = flat.cells[cell_index]
            direction = cell.ctype.port(pin).direction
            io = "O" if direction is Direction.OUT else "I"
            handle.write(f"  {_node_name(cell.path)} {io}\n")
        for port, bit in net.top_ports:
            io = "O" if top_ports[port].direction is Direction.IN \
                else "I"
            handle.write(f"  {_port_node_name(port, bit)} {io}\n")


def write_pl(flat: FlatDesign, placement: Optional[MacroPlacement],
             handle: TextIO) -> None:
    """Emit the .pl file; macros take their placed locations."""
    handle.write("UCLA pl 1.0\n\n")
    for cell in flat.cells:
        x = y = 0.0
        fixed = ""
        if cell.is_macro and placement is not None:
            placed = placement.macros.get(cell.index)
            if placed is not None:
                x, y = placed.rect.x, placed.rect.y
                fixed = " /FIXED"
        handle.write(f"{_node_name(cell.path)} {x:g} {y:g} : N{fixed}\n")


def export_bookshelf(flat: FlatDesign, prefix: str,
                     placement: Optional[MacroPlacement] = None) -> None:
    """Write ``prefix``.nodes / .nets / .pl for a flattened design."""
    with open(prefix + ".nodes", "w") as handle:
        write_nodes(flat, handle)
    with open(prefix + ".nets", "w") as handle:
        write_nets(flat, handle)
    with open(prefix + ".pl", "w") as handle:
        write_pl(flat, placement, handle)


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

_NODE_RE = re.compile(
    r"^\s*(?P<name>\S+)\s+(?P<w>[\d.eE+-]+)\s+(?P<h>[\d.eE+-]+)"
    r"\s*(?P<terminal>terminal\w*)?\s*$")


class BookshelfError(ValueError):
    """Raised on malformed Bookshelf input."""


def _iter_payload(text: str):
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("UCLA"):
            continue
        yield line


def parse_nodes(text: str) -> List[Tuple[str, float, float, bool]]:
    """Parse .nodes content into (name, w, h, is_terminal) tuples."""
    nodes = []
    for line in _iter_payload(text):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        match = _NODE_RE.match(line)
        if match is None:
            raise BookshelfError(f"bad .nodes line: {line!r}")
        nodes.append((match.group("name"), float(match.group("w")),
                      float(match.group("h")),
                      match.group("terminal") is not None))
    return nodes


def parse_nets(text: str) -> List[List[Tuple[str, str]]]:
    """Parse .nets content into nets of (node name, 'I'|'O') pins."""
    nets: List[List[Tuple[str, str]]] = []
    current: Optional[List[Tuple[str, str]]] = None
    for line in _iter_payload(text):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            current = []
            nets.append(current)
            continue
        if current is None:
            raise BookshelfError(f"pin before NetDegree: {line!r}")
        parts = line.split()
        if len(parts) < 2 or parts[1] not in ("I", "O", "B"):
            raise BookshelfError(f"bad .nets pin line: {line!r}")
        current.append((parts[0], parts[1]))
    return nets


def import_bookshelf(nodes_text: str, nets_text: str,
                     design_name: str = "bookshelf") -> Design:
    """Build a flat single-module design from Bookshelf text.

    Terminal nodes become macros; movable nodes become generic
    combinational cells of the given area.  Each net becomes a 1-bit
    net; a net's first ``O`` pin drives it (Bookshelf nets are
    direction-annotated but unordered).
    """
    nodes = parse_nodes(nodes_text)
    nets = parse_nets(nets_text)

    builder = ModuleBuilder(design_name + "_top")
    # Pin-count bookkeeping so each instance gets enough pins.
    in_pins: Dict[str, int] = {}
    out_pins: Dict[str, int] = {}
    for net in nets:
        for name, io in net:
            if io == "O":
                out_pins[name] = out_pins.get(name, 0) + 1
            else:
                in_pins[name] = in_pins.get(name, 0) + 1

    for name, w, h, terminal in nodes:
        n_in = max(1, in_pins.get(name, 0))
        n_out = max(1, out_pins.get(name, 0))
        ports = [PortDef(f"i{k}", Direction.IN) for k in range(n_in)]
        ports += [PortDef(f"o{k}", Direction.OUT) for k in range(n_out)]
        if terminal:
            ctype = macro_cell(f"BS_MACRO_{name}", max(w, 1e-3),
                               max(h, 1e-3), ports)
        else:
            ctype = CellType(name=f"BS_CELL_{name}", kind=CellKind.COMB,
                             area=max(w * h, 1e-6), ports=tuple(ports))
        builder.instance(ctype, name)

    in_cursor: Dict[str, int] = {}
    out_cursor: Dict[str, int] = {}
    for i, net in enumerate(nets):
        if len(net) < 2:
            continue
        wire = builder.wire(f"n{i}", 1)
        del wire
        for name, io in net:
            if io == "O":
                k = out_cursor.get(name, 0)
                out_cursor[name] = k + 1
                builder.connect(f"n{i}", name, f"o{k}")
            else:
                k = in_cursor.get(name, 0)
                in_cursor[name] = k + 1
                builder.connect(f"n{i}", name, f"i{k}")

    design = Design(design_name)
    design.add_module(builder.build())
    design.set_top(design_name + "_top")
    return design
