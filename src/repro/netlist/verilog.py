"""Structural Verilog subset: writer and parser.

The subset covers what hierarchical macro-placement inputs need —
modules with ANSI port lists, ``wire`` declarations with ranges, and
named-pin instantiations whose pin expressions are identifiers, bit
selects or part selects.  Escaped identifiers (``\\name[3] ``) are
supported because register arrays use bracketed instance names.

The parser is two-pass: module bodies are parsed into a light AST, then
instance references are linked against parsed modules and a leaf-cell
library.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import CellType, Direction
from repro.netlist.core import Design, Module

# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def _vname(name: str) -> str:
    """Quote a name as a (possibly escaped) Verilog identifier."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return "\\" + name + " "


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _pin_expr(net_name: str, net_width: int, lsb: int, width: int) -> str:
    if lsb == 0 and width == net_width:
        return _vname(net_name)
    if width == 1:
        return f"{_vname(net_name)}[{lsb}]"
    return f"{_vname(net_name)}[{lsb + width - 1}:{lsb}]"


def module_to_verilog(module: Module) -> str:
    """Render one module as structural Verilog."""
    lines: List[str] = []
    port_decls = []
    for port in module.ports.values():
        kind = "input" if port.direction is Direction.IN else "output"
        port_decls.append(f"  {kind} {_range(port.width)}{_vname(port.name)}")
    lines.append(f"module {_vname(module.name)} (")
    lines.append(",\n".join(port_decls))
    lines.append(");")

    for net in module.nets.values():
        if net.name in module.ports:
            continue
        lines.append(f"  wire {_range(net.width)}{_vname(net.name)};")

    # Group connections per instance to emit one statement per instance.
    pins: Dict[str, List[Tuple[str, str]]] = {
        name: [] for name in module.instances}
    for net in module.nets.values():
        for conn in net.conns:
            expr = _pin_expr(net.name, net.width, conn.net_lsb, conn.width)
            pins[conn.inst].append((conn.pin, expr, conn.pin_lsb))

    for inst in module.instances.values():
        conns = sorted(pins[inst.name], key=lambda t: (t[0], t[2]))
        body = ", ".join(f".{_vname(pin)}({expr})"
                         for pin, expr, _lsb in conns)
        lines.append(f"  {_vname(inst.ref_name)} {_vname(inst.name)} "
                     f"({body});")
    lines.append("endmodule")
    return "\n".join(lines)


def design_to_verilog(design: Design) -> str:
    """Render a whole design; the top module comes last."""
    top = design.top.name
    order = [m for m in design.modules.values() if m.name != top]
    order.append(design.modules[top])
    header = f"// design: {design.name}\n// top: {_vname(top)}\n"
    return header + "\n\n".join(module_to_verilog(m) for m in order) + "\n"


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<escaped>\\[^\s]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<number>\d+)
  | (?P<punct>[().,;:\[\]])
""", re.VERBOSE | re.DOTALL)


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise VerilogSyntaxError(f"unexpected character {text[pos]!r} "
                                     f"at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "escaped":
            value = value[1:]           # strip the backslash
            kind = "ident"
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class VerilogSyntaxError(ValueError):
    """Raised when the input does not fit the supported subset."""


# ---------------------------------------------------------------------------
# Parser (to a light AST)
# ---------------------------------------------------------------------------


@dataclass
class _PinAst:
    pin: str
    net: Optional[str]          # None = unconnected ()
    lsb: int = 0
    width: Optional[int] = None  # None = full net width


@dataclass
class _InstAst:
    ref: str
    name: str
    pins: List[_PinAst] = field(default_factory=list)


@dataclass
class _ModuleAst:
    name: str
    ports: List[Tuple[str, str, int]] = field(default_factory=list)
    wires: List[Tuple[str, int]] = field(default_factory=list)
    insts: List[_InstAst] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.i = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise VerilogSyntaxError("unexpected end of input")
        self.i += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise VerilogSyntaxError(
                f"expected {text!r}, got {token.text!r} at {token.pos}")
        return token

    def expect_ident(self) -> str:
        token = self.next()
        if token.kind != "ident":
            raise VerilogSyntaxError(
                f"expected identifier, got {token.text!r} at {token.pos}")
        return token.text

    def expect_number(self) -> int:
        token = self.next()
        if token.kind != "number":
            raise VerilogSyntaxError(
                f"expected number, got {token.text!r} at {token.pos}")
        return int(token.text)

    # -- grammar ------------------------------------------------------------

    def parse_range(self) -> int:
        """``[msb:lsb]`` -> width; absent range -> 1."""
        if self.peek() and self.peek().text == "[":
            self.next()
            msb = self.expect_number()
            self.expect(":")
            lsb = self.expect_number()
            self.expect("]")
            if lsb != 0:
                raise VerilogSyntaxError("only [msb:0] declarations supported")
            return msb + 1
        return 1

    def parse_module(self) -> _ModuleAst:
        self.expect("module")
        ast = _ModuleAst(self.expect_ident())
        self.expect("(")
        while self.peek() and self.peek().text != ")":
            direction = self.expect_ident()
            if direction not in ("input", "output"):
                raise VerilogSyntaxError(
                    f"expected input/output, got {direction!r}")
            width = self.parse_range()
            ast.ports.append((self.expect_ident(), direction, width))
            if self.peek() and self.peek().text == ",":
                self.next()
        self.expect(")")
        self.expect(";")
        while self.peek() and self.peek().text != "endmodule":
            self.parse_item(ast)
        self.expect("endmodule")
        return ast

    def parse_item(self, ast: _ModuleAst) -> None:
        token = self.peek()
        if token.text == "wire":
            self.next()
            width = self.parse_range()
            while True:
                ast.wires.append((self.expect_ident(), width))
                if self.peek() and self.peek().text == ",":
                    self.next()
                    continue
                break
            self.expect(";")
            return
        self.parse_instance(ast)

    def parse_instance(self, ast: _ModuleAst) -> None:
        inst = _InstAst(ref=self.expect_ident(), name=self.expect_ident())
        self.expect("(")
        while self.peek() and self.peek().text != ")":
            self.expect(".")
            pin = self.expect_ident()
            self.expect("(")
            if self.peek().text == ")":
                inst.pins.append(_PinAst(pin, None))
            else:
                net = self.expect_ident()
                lsb, width = 0, None
                if self.peek().text == "[":
                    self.next()
                    first = self.expect_number()
                    if self.peek().text == ":":
                        self.next()
                        lsb = self.expect_number()
                        width = first - lsb + 1
                    else:
                        lsb, width = first, 1
                    self.expect("]")
                inst.pins.append(_PinAst(pin, net, lsb, width))
            self.expect(")")
            if self.peek() and self.peek().text == ",":
                self.next()
        self.expect(")")
        self.expect(";")
        ast.insts.append(inst)


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


def parse_verilog(text: str, library: Dict[str, CellType],
                  design_name: str = "design",
                  top: Optional[str] = None) -> Design:
    """Parse structural Verilog into a :class:`Design`.

    ``library`` resolves leaf cell references; anything not in the
    library must be a module defined in ``text``.  Unless given, the top
    module is the last one in the file (the writer's convention).
    """
    parser = _Parser(_tokenize(text))
    asts: List[_ModuleAst] = []
    while parser.peek() is not None:
        asts.append(parser.parse_module())
    if not asts:
        raise VerilogSyntaxError("no modules found")

    design = Design(design_name)
    modules: Dict[str, Module] = {}
    for ast in asts:
        module = Module(ast.name)
        for name, direction, width in ast.ports:
            module.add_port(
                name,
                Direction.IN if direction == "input" else Direction.OUT,
                width)
        for name, width in ast.wires:
            module.add_net(name, width)
        modules[ast.name] = module
        design.add_module(module)

    for ast in asts:
        module = modules[ast.name]
        for inst_ast in ast.insts:
            if inst_ast.ref in modules:
                ref = modules[inst_ast.ref]
            elif inst_ast.ref in library:
                ref = library[inst_ast.ref]
            else:
                raise VerilogSyntaxError(
                    f"module {ast.name}: unknown reference "
                    f"{inst_ast.ref!r} for instance {inst_ast.name!r}")
            module.add_instance(inst_ast.name, ref)
            for pin_ast in inst_ast.pins:
                if pin_ast.net is None:
                    continue
                if pin_ast.net not in module.nets:
                    raise VerilogSyntaxError(
                        f"module {ast.name}: undeclared net "
                        f"{pin_ast.net!r}")
                net = module.nets[pin_ast.net]
                port = (ref.port(pin_ast.pin) if isinstance(ref, CellType)
                        else ref.port(pin_ast.pin))
                width = pin_ast.width
                if width is None:
                    width = min(net.width, port.width)
                net.connect(inst_ast.name, pin_ast.pin, width,
                            net_lsb=pin_ast.lsb, pin_lsb=0)

    design.set_top(top or asts[-1].name)
    return design
