"""Shape curves: the sets of bounding boxes that can hold a macro layout.

A shape curve (the paper's Γ) is a Pareto front of ``(width, height)``
pairs; a box is feasible for a block when it dominates at least one curve
point.  Curves compose under horizontal / vertical slicing cuts, which is
what lets the top-down layout generator check macro legality at every
level of the slicing tree.
"""

from repro.shapecurve.curve import ComposeCache, ShapeCurve
from repro.shapecurve.generation import (
    curve_for_macros,
    generate_shape_curves,
)

__all__ = ["ComposeCache", "ShapeCurve", "curve_for_macros",
           "generate_shape_curves"]
