"""Shape-curve generation for hierarchy nodes (paper Sect. IV-A).

At the leaves of the hierarchy tree a node's curve is just its macro's
two orientations.  At intermediate nodes the children's shapes cannot be
composed directly (the hierarchy tree is not a slicing tree), so an
area-optimizing slicing floorplan search over the child curves generates
"a set of shape combinations with small area which are valid for the
node".  Several annealing runs with different target aspect ratios seed
a diverse Pareto front.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.shapecurve.curve import ShapeCurve, compose_many
from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import PolishExpression
from repro.slicing.tree import annotate_curves, build_tree


@dataclass
class ShapeGenConfig:
    """Knobs for the per-node shape search.

    The defaults favour speed: shape curves are computed once for every
    macro-bearing hierarchy node, so each search must stay in the
    milliseconds range.
    """

    seed: int = 0
    aspect_targets: Sequence[float] = (0.35, 0.6, 1.0, 1.7, 2.9)
    anneal: AnnealConfig = None
    compose_limit: int = 10
    max_leaves: int = 24
    aspect_penalty: float = 0.22

    def __post_init__(self) -> None:
        if self.anneal is None:
            self.anneal = AnnealConfig(seed=self.seed, moves_per_block=70,
                                       min_moves=160, max_moves=2600,
                                       moves_per_temperature=24)


def _area_cost(leaf_curves: List[ShapeCurve], ar_target: float,
               limit: int, penalty: float) -> Callable[[PolishExpression], float]:
    """Cost = smallest root-curve area, softly biased toward ``ar_target``."""
    log_target = math.log(ar_target)

    def cost(expr: PolishExpression) -> float:
        root = build_tree(expr)
        curve = annotate_curves(root, leaf_curves, limit)
        best = math.inf
        for w, h in curve.points:
            if w <= 0 or h <= 0:
                continue
            bias = 1.0 + penalty * abs(math.log(h / w) - log_target)
            best = min(best, w * h * bias)
        return best if best < math.inf else 1e30

    return cost


def _chunked(curves: List[ShapeCurve], size: int) -> List[List[ShapeCurve]]:
    return [curves[i:i + size] for i in range(0, len(curves), size)]


def curve_for_macros(curves: Sequence[ShapeCurve],
                     config: Optional[ShapeGenConfig] = None) -> ShapeCurve:
    """Shape curve of a group of blocks with the given child curves.

    Runs an area-minimizing slicing search for each target aspect ratio
    and merges every root curve seen into one Pareto front.  Groups
    larger than ``config.max_leaves`` are combined hierarchically in
    chunks, trading a little optimality for bounded runtime.
    """
    config = config or ShapeGenConfig()
    real = [c for c in curves if not c.is_trivial]
    if not real:
        return ShapeCurve.trivial()
    if len(real) == 1:
        return real[0].with_rotations()
    if len(real) > config.max_leaves:
        merged = [curve_for_macros(chunk, config)
                  for chunk in _chunked(real, config.max_leaves)]
        return curve_for_macros(merged, config)

    rng = random.Random(config.seed)
    points: List = []

    # Deterministic extreme seeds: a single row and a single column give
    # the widest and tallest feasible shapes cheaply.
    points.extend(compose_many(real, horizontal=True).points)
    points.extend(compose_many(real, horizontal=False).points)

    for ar_target in config.aspect_targets:
        cost_fn = _area_cost(list(real), ar_target,
                             config.compose_limit, config.aspect_penalty)
        annealer = Annealer(cost_fn, config.anneal)
        initial = PolishExpression.initial(len(real), rng)
        result = annealer.run(initial)
        root = build_tree(result.best)
        curve = annotate_curves(root, list(real), config.compose_limit)
        points.extend(curve.points)

    return ShapeCurve(points)


def generate_shape_curves(root: Hashable,
                          children_of: Callable[[Hashable], Sequence],
                          own_macro_curves_of: Callable[[Hashable],
                                                        Sequence[ShapeCurve]],
                          config: Optional[ShapeGenConfig] = None
                          ) -> Dict[Hashable, ShapeCurve]:
    """Bottom-up S_Γ computation over an arbitrary hierarchy tree.

    Parameters
    ----------
    root:
        Root node of the hierarchy (any hashable).
    children_of:
        Returns the child nodes of a node.
    own_macro_curves_of:
        Returns the curves of macros instantiated *directly* at a node
        (not through children).
    config:
        Search knobs shared by every node.

    Returns a dict mapping every node (in the subtree of ``root``) to its
    shape curve; macro-free subtrees map to the trivial curve.
    """
    config = config or ShapeGenConfig()
    curves: Dict[Hashable, ShapeCurve] = {}

    def visit(node: Hashable) -> ShapeCurve:
        child_curves = [visit(child) for child in children_of(node)]
        own = list(own_macro_curves_of(node))
        parts = own + [c for c in child_curves if not c.is_trivial]
        if not parts:
            curve = ShapeCurve.trivial()
        elif len(parts) == 1:
            curve = parts[0].with_rotations()
        else:
            curve = curve_for_macros(parts, config)
        curves[node] = curve
        return curve

    visit(root)
    return curves
