"""Shape-curve generation for hierarchy nodes (paper Sect. IV-A).

At the leaves of the hierarchy tree a node's curve is just its macro's
two orientations.  At intermediate nodes the children's shapes cannot be
composed directly (the hierarchy tree is not a slicing tree), so an
area-optimizing slicing floorplan search over the child curves generates
"a set of shape combinations with small area which are valid for the
node".  Several annealing runs with different target aspect ratios seed
a diverse Pareto front.

Like the layout engine, the search evaluates costs **incrementally** by
default (``ShapeGenConfig.incremental``): one
:class:`~repro.slicing.tree.SubtreeCache` per node search — shared by
every aspect-ratio pass, which anneal over the same child curves —
reuses composed subtree curves, and a per-pass transposition table
short-circuits re-proposed expressions.  Results are bit-identical to
full re-evaluation under a fixed seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.memo import BoundedStore
from repro.shapecurve.curve import ShapeCurve, compose_many
from repro.slicing.anneal import AnnealConfig, Annealer
from repro.slicing.polish import PolishExpression
from repro.slicing.tree import (
    EvalStats,
    SubtreeCache,
    annotate_cached,
    annotate_curves,
    build_tree,
    compute_signatures,
)


@dataclass
class ShapeGenConfig:
    """Knobs for the per-node shape search.

    The defaults favour speed: shape curves are computed once for every
    macro-bearing hierarchy node, so each search must stay in the
    milliseconds range.
    """

    seed: int = 0
    aspect_targets: Sequence[float] = (0.35, 0.6, 1.0, 1.7, 2.9)
    anneal: AnnealConfig = None
    compose_limit: int = 10
    max_leaves: int = 24
    aspect_penalty: float = 0.22
    #: Reuse cached subtree compositions between cost evaluations
    #: (bit-identical to full re-evaluation; see module docstring).
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.anneal is None:
            self.anneal = AnnealConfig(seed=self.seed, moves_per_block=70,
                                       min_moves=160, max_moves=2600,
                                       moves_per_temperature=24)


def _curve_area_score(curve: ShapeCurve, log_target: float,
                      penalty: float) -> float:
    """Smallest point area on ``curve``, biased toward the aspect target."""
    best = math.inf
    for w, h in curve.points:
        if w <= 0 or h <= 0:
            continue
        bias = 1.0 + penalty * abs(math.log(h / w) - log_target)
        best = min(best, w * h * bias)
    return best if best < math.inf else 1e30


def _area_cost(leaf_curves: List[ShapeCurve], ar_target: float,
               limit: int, penalty: float,
               cache: Optional[SubtreeCache] = None,
               stats: Optional[EvalStats] = None
               ) -> Callable[[PolishExpression], float]:
    """Cost = smallest root-curve area, softly biased toward ``ar_target``.

    With a :class:`SubtreeCache` the evaluation is incremental: a
    transposition table short-circuits repeated expressions and subtree
    compositions are reused across evaluations (and across the cost
    functions of other aspect targets sharing the same cache).
    """
    log_target = math.log(ar_target)
    n_nodes = max(1, 2 * len(leaf_curves) - 1)
    memo = BoundedStore() if cache is not None else None

    def cost(expr: PolishExpression) -> float:
        if stats is not None:
            stats.cost_evals += 1
            stats.layout_nodes_total += n_nodes
        if memo is not None:
            key = tuple(expr.tokens)
            cached = memo.get(key)
            if cached is not None:
                if stats is not None:
                    stats.cost_cache_hits += 1
                return cached
        root = build_tree(expr)
        if cache is not None:
            compute_signatures(root)
            curve = annotate_cached(root, leaf_curves, limit, cache)
        else:
            curve = annotate_curves(root, leaf_curves, limit)
            if stats is not None:
                stats.layout_nodes_expanded += n_nodes
        value = _curve_area_score(curve, log_target, penalty)
        if memo is not None:
            memo.put(key, value)
        return value

    return cost


def _chunked(curves: List[ShapeCurve], size: int) -> List[List[ShapeCurve]]:
    return [curves[i:i + size] for i in range(0, len(curves), size)]


def _flush_cache_counters(cache: Optional[SubtreeCache],
                          stats: Optional[EvalStats]) -> None:
    if cache is None or stats is None:
        return
    stats.subtree_hits += cache.hits
    stats.subtree_misses += cache.misses
    stats.curve_compose_hits += cache.compose.hits
    stats.curve_compose_misses += cache.compose.misses
    # The shape search has no budgeting step; count the composed
    # internal nodes actually recomputed as its expansion work.
    stats.layout_nodes_expanded += cache.misses
    cache.hits = cache.misses = 0
    cache.compose.hits = cache.compose.misses = 0


def curve_for_macros(curves: Sequence[ShapeCurve],
                     config: Optional[ShapeGenConfig] = None,
                     stats: Optional[EvalStats] = None) -> ShapeCurve:
    """Shape curve of a group of blocks with the given child curves.

    Runs an area-minimizing slicing search for each target aspect ratio
    and merges every root curve seen into one Pareto front.  Groups
    larger than ``config.max_leaves`` are combined hierarchically in
    chunks, trading a little optimality for bounded runtime.  ``stats``
    accumulates evaluation-work counters when provided.
    """
    config = config or ShapeGenConfig()
    real = [c for c in curves if not c.is_trivial]
    if not real:
        return ShapeCurve.trivial()
    if len(real) == 1:
        return real[0].with_rotations()
    if len(real) > config.max_leaves:
        merged = [curve_for_macros(chunk, config, stats)
                  for chunk in _chunked(real, config.max_leaves)]
        return curve_for_macros(merged, config, stats)

    rng = random.Random(config.seed)
    points: List = []

    # Deterministic extreme seeds: a single row and a single column give
    # the widest and tallest feasible shapes cheaply.
    points.extend(compose_many(real, horizontal=True).points)
    points.extend(compose_many(real, horizontal=False).points)

    # One cache for all aspect-target passes: they share child curves
    # and compose limit, so subtree compositions transfer across passes.
    cache = SubtreeCache() if config.incremental else None

    for ar_target in config.aspect_targets:
        cost_fn = _area_cost(list(real), ar_target,
                             config.compose_limit, config.aspect_penalty,
                             cache=cache, stats=stats)
        annealer = Annealer(cost_fn, config.anneal)
        initial = PolishExpression.initial(len(real), rng)
        result = annealer.run(initial)
        root = build_tree(result.best)
        if cache is not None:
            compute_signatures(root)
            curve = annotate_cached(root, list(real),
                                    config.compose_limit, cache)
        else:
            curve = annotate_curves(root, list(real), config.compose_limit)
        points.extend(curve.points)

    _flush_cache_counters(cache, stats)
    return ShapeCurve(points)


def generate_shape_curves(root: Hashable,
                          children_of: Callable[[Hashable], Sequence],
                          own_macro_curves_of: Callable[[Hashable],
                                                        Sequence[ShapeCurve]],
                          config: Optional[ShapeGenConfig] = None,
                          stats: Optional[EvalStats] = None
                          ) -> Dict[Hashable, ShapeCurve]:
    """Bottom-up S_Γ computation over an arbitrary hierarchy tree.

    Parameters
    ----------
    root:
        Root node of the hierarchy (any hashable).
    children_of:
        Returns the child nodes of a node.
    own_macro_curves_of:
        Returns the curves of macros instantiated *directly* at a node
        (not through children).
    config:
        Search knobs shared by every node.
    stats:
        Optional :class:`~repro.slicing.tree.EvalStats` accumulating
        evaluation-work counters over every node search.

    Returns a dict mapping every node (in the subtree of ``root``) to its
    shape curve; macro-free subtrees map to the trivial curve.
    """
    config = config or ShapeGenConfig()
    curves: Dict[Hashable, ShapeCurve] = {}

    def visit(node: Hashable) -> ShapeCurve:
        child_curves = [visit(child) for child in children_of(node)]
        own = list(own_macro_curves_of(node))
        parts = own + [c for c in child_curves if not c.is_trivial]
        if not parts:
            curve = ShapeCurve.trivial()
        elif len(parts) == 1:
            curve = parts[0].with_rotations()
        else:
            curve = curve_for_macros(parts, config, stats)
        curves[node] = curve
        return curve

    visit(root)
    return curves
