"""Pareto shape curves and their slicing composition.

A :class:`ShapeCurve` stores the minimal bounding boxes able to hold some
placement of a set of macros (Fig. 4b of the paper).  Points are kept
sorted by increasing width / decreasing height and pruned to the Pareto
front.  The *empty* curve represents a block with no macros: every box,
however small, is feasible for it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.memo import DEFAULT_MAX_ENTRIES, BoundedStore

Pointwh = Tuple[float, float]

#: Curves are downsampled to this many points after composition so that
#: repeated composition up a deep tree stays cheap.
MAX_POINTS = 48


def _pareto_prune(points: Iterable[Pointwh]) -> List[Pointwh]:
    """Keep only non-dominated (w, h) points, sorted by width.

    Point ``a`` dominates ``b`` when ``a.w <= b.w`` and ``a.h <= b.h``.
    """
    pts = sorted(set((float(w), float(h)) for w, h in points))
    front: List[Pointwh] = []
    best_h = float("inf")
    for w, h in pts:
        if h < best_h - 1e-12:
            front.append((w, h))
            best_h = h
    return front


def _downsample(points: List[Pointwh], limit: int) -> List[Pointwh]:
    """Thin a Pareto front to exactly ``limit`` distinct points.

    Both extremes (widest-flattest and narrowest-tallest) are always
    kept.  Index selection is de-duplicated and topped up so the result
    has ``min(limit, len(points))`` points — the naive ``round(i*step)``
    sampling can pick the same index twice on small fronts and silently
    drop knee points.
    """
    n = len(points)
    if n <= limit:
        return points
    if limit <= 1:
        return [points[0]]
    step = (n - 1) / (limit - 1)
    chosen = {round(i * step) for i in range(limit)}
    chosen.add(0)
    chosen.add(n - 1)
    # Rounding collisions leave fewer than ``limit`` indices; fill the
    # gaps with the smallest unused indices (deterministic, keeps the
    # result a width-sorted subset of an already-Pareto front).
    fill = 0
    while len(chosen) < limit:
        if fill not in chosen:
            chosen.add(fill)
        fill += 1
    return [points[i] for i in sorted(chosen)]


class ShapeCurve:
    """An immutable Pareto front of feasible bounding boxes.

    Parameters
    ----------
    points:
        Candidate ``(width, height)`` boxes; dominated points are pruned.
        An empty iterable yields the *trivial* curve (no macro constraint).
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[Pointwh] = ()):
        self._points: Tuple[Pointwh, ...] = tuple(_pareto_prune(points))

    # -- constructors ------------------------------------------------------

    @classmethod
    def trivial(cls) -> "ShapeCurve":
        """Curve of a macro-free block: any box is feasible."""
        return cls(())

    @classmethod
    def for_rect(cls, w: float, h: float,
                 rotatable: bool = True) -> "ShapeCurve":
        """Curve of a single rigid macro (optionally 90-degree rotatable)."""
        pts = [(w, h)]
        if rotatable and abs(w - h) > 1e-12:
            pts.append((h, w))
        return cls(pts)

    # -- queries -----------------------------------------------------------

    @property
    def points(self) -> Tuple[Pointwh, ...]:
        return self._points

    @property
    def is_trivial(self) -> bool:
        return not self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __eq__(self, other) -> bool:
        return isinstance(other, ShapeCurve) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        if self.is_trivial:
            return "ShapeCurve(trivial)"
        pts = ", ".join(f"({w:.3g},{h:.3g})" for w, h in self._points[:4])
        more = "..." if len(self._points) > 4 else ""
        return f"ShapeCurve([{pts}{more}])"

    def feasible(self, w: float, h: float, tol: float = 1e-9) -> bool:
        """Whether a ``w`` x ``h`` box can hold the macros of this block."""
        if self.is_trivial:
            return True
        for pw, ph in self._points:
            if pw <= w + tol and ph <= h + tol:
                return True
        return False

    def min_height_for_width(self, w: float,
                             tol: float = 1e-9) -> Optional[float]:
        """Smallest feasible height for a box of width ``w`` (None if none)."""
        if self.is_trivial:
            return 0.0
        best: Optional[float] = None
        for pw, ph in self._points:
            if pw <= w + tol and (best is None or ph < best):
                best = ph
        return best

    def min_width_for_height(self, h: float,
                             tol: float = 1e-9) -> Optional[float]:
        """Smallest feasible width for a box of height ``h`` (None if none)."""
        if self.is_trivial:
            return 0.0
        best: Optional[float] = None
        for pw, ph in self._points:
            if ph <= h + tol and (best is None or pw < best):
                best = pw
        return best

    @property
    def min_width(self) -> float:
        """Width below which no box is feasible (0 for the trivial curve)."""
        return self._points[0][0] if self._points else 0.0

    @property
    def min_height(self) -> float:
        """Height below which no box is feasible (0 for the trivial curve)."""
        return self._points[-1][1] if self._points else 0.0

    @property
    def min_area(self) -> float:
        """Area of the smallest-area point on the curve."""
        if self.is_trivial:
            return 0.0
        return min(w * h for w, h in self._points)

    def min_area_point(self) -> Optional[Pointwh]:
        """The curve point with the smallest area (None when trivial)."""
        if self.is_trivial:
            return None
        return min(self._points, key=lambda p: p[0] * p[1])

    def best_point_for(self, w: float, h: float) -> Optional[Pointwh]:
        """Feasible curve point closest in aspect ratio to a w-by-h box.

        Used when a leaf block is finally assigned a rectangle and its
        internal macro layout must pick a realizable shape.
        """
        feas = [(pw, ph) for pw, ph in self._points
                if pw <= w + 1e-9 and ph <= h + 1e-9]
        if not feas:
            return None
        target = h / w if w > 0 else float("inf")
        return min(feas, key=lambda p: abs((p[1] / p[0]) - target))

    # -- transforms --------------------------------------------------------

    def transposed(self) -> "ShapeCurve":
        """Curve with width and height swapped (90-degree rotation)."""
        if self.is_trivial:
            return self
        return ShapeCurve((h, w) for w, h in self._points)

    def with_rotations(self) -> "ShapeCurve":
        """Union of this curve and its transpose."""
        if self.is_trivial:
            return self
        pts = list(self._points) + [(h, w) for w, h in self._points]
        return ShapeCurve(pts)

    def inflated(self, factor: float) -> "ShapeCurve":
        """Scale both sides of every point by ``sqrt(factor)``.

        Useful for adding whitespace headroom around macro layouts.
        """
        if factor < 0:
            raise ValueError("inflation factor must be non-negative")
        s = factor ** 0.5
        return ShapeCurve((w * s, h * s) for w, h in self._points)

    # -- composition -------------------------------------------------------

    def compose_horizontal(self, other: "ShapeCurve",
                           limit: int = MAX_POINTS) -> "ShapeCurve":
        """Curve of two blocks placed side by side (a vertical cut).

        Widths add, heights take the max.  Trivial curves are identity
        elements: glue blocks do not constrain the macro layout.
        """
        if self.is_trivial:
            return other
        if other.is_trivial:
            return self
        pts = [(w1 + w2, max(h1, h2))
               for w1, h1 in self._points
               for w2, h2 in other._points]
        curve = ShapeCurve(pts)
        curve._points = tuple(_downsample(list(curve._points), limit))
        return curve

    def compose_vertical(self, other: "ShapeCurve",
                         limit: int = MAX_POINTS) -> "ShapeCurve":
        """Curve of two blocks stacked (a horizontal cut).

        Heights add, widths take the max.
        """
        if self.is_trivial:
            return other
        if other.is_trivial:
            return self
        pts = [(max(w1, w2), h1 + h2)
               for w1, h1 in self._points
               for w2, h2 in other._points]
        curve = ShapeCurve(pts)
        curve._points = tuple(_downsample(list(curve._points), limit))
        return curve


class ComposeCache:
    """Memo for pairwise curve composition.

    Curves are immutable and hashable, so a composition is fully
    determined by the operand point tuples, the cut direction and the
    downsampling limit; a hit returns the exact ``ShapeCurve`` object an
    uncached composition would have produced.  Annealing engines share
    one cache per search so that re-evaluating a perturbed slicing tree
    only recomposes the curves along the perturbed root path.  Bounded
    by a :class:`repro.memo.BoundedStore`.
    """

    __slots__ = ("hits", "misses", "_store")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self._store = BoundedStore(max_entries)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()

    def compose(self, left: ShapeCurve, right: ShapeCurve,
                horizontal: bool, limit: int = MAX_POINTS) -> ShapeCurve:
        """``left ⊕ right`` with the given cut direction, memoized.

        ``horizontal=True`` composes side by side (a vertical cut line,
        matching :meth:`ShapeCurve.compose_horizontal`).
        """
        key = (left._points, right._points, horizontal, limit)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if horizontal:
            curve = left.compose_horizontal(right, limit)
        else:
            curve = left.compose_vertical(right, limit)
        self._store.put(key, curve)
        return curve


def compose_many(curves: Sequence[ShapeCurve], horizontal: bool) -> ShapeCurve:
    """Fold a sequence of curves with a single cut direction."""
    result = ShapeCurve.trivial()
    for curve in curves:
        if horizontal:
            result = result.compose_horizontal(curve)
        else:
            result = result.compose_vertical(curve)
    return result
