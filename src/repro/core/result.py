"""Placement results: what HiDaP (and the baseline flows) return.

A :class:`MacroPlacement` carries the placed macro rectangles and
orientations, the per-hierarchy-level block rectangles (useful for
visualization and for approximating standard-cell positions before
detailed placement), and optional per-level traces for the multi-level
evolution figure (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect
from repro.netlist.flatten import FlatDesign, PATH_SEP


@dataclass
class PlacedMacro:
    """One macro's final placement."""

    cell_index: int
    path: str
    rect: Rect
    orientation: Orientation = Orientation.N

    def pin_position(self, flat: FlatDesign, pin: str, bit: int = 0) -> Point:
        """Absolute position of a pin bit under the placed orientation."""
        ctype = flat.cells[self.cell_index].ctype
        px, py = ctype.pin_as_drawn(pin, bit)
        ox, oy = self.orientation.pin_offset(px, py,
                                             ctype.width, ctype.height)
        return Point(self.rect.x + ox, self.rect.y + oy)


@dataclass
class LevelTrace:
    """Snapshot of one recursion level (drives the Fig. 1 evolution)."""

    depth: int
    level_path: str
    region: Rect
    block_names: List[str]
    block_rects: List[Rect]
    block_macro_counts: List[int]
    cost: float
    penalty: float


@dataclass
class MacroPlacement:
    """The output of a macro-placement flow."""

    design_name: str
    flow_name: str
    die: Rect
    macros: Dict[int, PlacedMacro] = field(default_factory=dict)
    block_rects: Dict[str, Rect] = field(default_factory=dict)
    traces: List[LevelTrace] = field(default_factory=list)
    runtime_seconds: float = 0.0

    # -- geometry helpers ---------------------------------------------------

    def macro_rects(self) -> List[Rect]:
        return [m.rect for m in self.macros.values()]

    def region_of_cell(self, flat: FlatDesign, cell_index: int) -> Rect:
        """Innermost placed block rectangle containing a cell.

        Standard cells are not placed by macro placement; before
        detailed placement their best position estimate is the deepest
        hierarchy block rectangle recorded for their module path.
        Falls back to the die.
        """
        path = flat.cells[cell_index].module_path
        while True:
            rect = self.block_rects.get(path)
            if rect is not None:
                return rect
            if not path:
                return self.die
            if PATH_SEP in path:
                path = path.rsplit(PATH_SEP, 1)[0]
            else:
                path = ""

    def macro_overlap_area(self) -> float:
        """Total pairwise macro overlap; 0 for a legal placement."""
        from repro.geometry.rect import total_overlap_area
        return total_overlap_area(self.macro_rects())

    def macros_inside_die(self, tol: float = 1e-6) -> bool:
        return all(self.die.contains_rect(m.rect, tol)
                   for m in self.macros.values())

    def summary(self) -> str:
        return (f"{self.flow_name}({self.design_name}): "
                f"{len(self.macros)} macros placed, "
                f"overlap={self.macro_overlap_area():.1f}, "
                f"{self.runtime_seconds:.1f}s")

    # -- serialization --------------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-ready dict (macro rects, orientations, block rects)."""
        return {
            "design": self.design_name,
            "flow": self.flow_name,
            "die": [self.die.x, self.die.y, self.die.w, self.die.h],
            "runtime_seconds": self.runtime_seconds,
            "macros": [
                {"cell": m.cell_index, "path": m.path,
                 "rect": [m.rect.x, m.rect.y, m.rect.w, m.rect.h],
                 "orientation": m.orientation.value}
                for m in self.macros.values()],
            "blocks": {path: [r.x, r.y, r.w, r.h]
                       for path, r in self.block_rects.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "MacroPlacement":
        """Rebuild a placement serialized with :meth:`to_json`."""
        placement = cls(
            design_name=data["design"], flow_name=data["flow"],
            die=Rect(*data["die"]),
            runtime_seconds=data.get("runtime_seconds", 0.0))
        for m in data["macros"]:
            placement.macros[m["cell"]] = PlacedMacro(
                cell_index=m["cell"], path=m["path"],
                rect=Rect(*m["rect"]),
                orientation=Orientation(m["orientation"]))
        for path, rect in data.get("blocks", {}).items():
            placement.block_rects[path] = Rect(*rect)
        return placement
