"""Hierarchical declustering (paper Algorithm 3 / Sect. IV-B).

Given the hierarchy node being floorplanned, find the hierarchy cut
whose members become the blocks of this level.  Nodes with macros or
with sufficient area form HCB (blocks); the rest are HCG (glue) whose
area is later absorbed by nearby blocks.  Over-large macro-free nodes
are opened to expose internal structure.

Two deviations from the literal pseudocode, both required for the
algorithm to make progress (see DESIGN.md §3): the root is always
opened, and macros instantiated *directly* at an opened node become
single-macro pseudo-blocks (the pseudocode only considers tree nodes,
which would silently drop level-local macros).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from repro.hiergraph.hierarchy import HierNode
from repro.netlist.flatten import FlatDesign


@dataclass
class BlockSeed:
    """A block candidate: a hierarchy subtree or a single direct macro."""

    name: str
    node: Optional[HierNode] = None       # subtree-backed block
    macro_cell: Optional[int] = None      # macro-backed pseudo-block

    @property
    def is_macro_seed(self) -> bool:
        return self.macro_cell is not None

    def area(self, flat: FlatDesign) -> float:
        if self.is_macro_seed:
            return flat.cells[self.macro_cell].ctype.area
        return self.node.area

    def macro_count(self) -> int:
        if self.is_macro_seed:
            return 1
        return self.node.macro_count

    def macros(self) -> List[int]:
        if self.is_macro_seed:
            return [self.macro_cell]
        return list(self.node.macros)

    def hier_path(self) -> str:
        if self.is_macro_seed:
            return ""            # pseudo-blocks have no subtree path
        return self.node.path

    def __repr__(self) -> str:
        kind = "macro" if self.is_macro_seed else "node"
        return f"BlockSeed({self.name}:{kind})"


@dataclass
class DeclusterResult:
    """The hierarchy cut: blocks (HCB) and glue (HCG)."""

    blocks: List[BlockSeed] = field(default_factory=list)
    glue: List[HierNode] = field(default_factory=list)
    #: Direct non-macro cells of opened nodes (they are glue too, but
    #: are not covered by any HCG subtree).
    loose_glue_cells: List[int] = field(default_factory=list)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def decluster(level: HierNode, flat: FlatDesign,
              min_area_frac: float = 0.01,
              open_area_frac: float = 0.40) -> DeclusterResult:
    """Find HCB / HCG for the subtree rooted at ``level``.

    ``min_area_frac`` and ``open_area_frac`` are fractions of
    ``area(level)``: macro-free nodes smaller than the former are glue;
    macro-free nodes larger than the latter are opened.
    """
    result = DeclusterResult()
    total = max(level.area, 1e-12)
    min_area = min_area_frac * total
    open_area = open_area_frac * total

    def open_node(node: HierNode) -> None:
        """Expose a node's children; its direct cells become level glue,
        its direct macros become pseudo-blocks."""
        for cell_index in node.own_cells:
            cell = flat.cells[cell_index]
            if cell.is_macro:
                result.blocks.append(
                    BlockSeed(name=cell.path, macro_cell=cell_index))
            else:
                result.loose_glue_cells.append(cell_index)

    open_node(level)
    queue = deque(level.children)
    while queue:
        node = queue.popleft()
        if (node.children and node.macro_count == 0
                and node.area > open_area):
            open_node(node)
            queue.extend(node.children)
        elif node.macro_count > 0 or node.area > min_area:
            result.blocks.append(BlockSeed(name=node.path, node=node))
        else:
            result.glue.append(node)
    return result


def open_single_block(level: HierNode, flat: FlatDesign,
                      min_area_frac: float,
                      open_area_frac: float) -> DeclusterResult:
    """Decluster, descending through degenerate single-block cuts.

    When a level's cut is a single subtree-backed block that owns all
    the macros, laying it out is a no-op (it would get the whole
    region); descending into it directly avoids wasting a recursion
    level.  Glue found along the way is accumulated.
    """
    result = decluster(level, flat, min_area_frac, open_area_frac)
    guard = 0
    while (len(result.blocks) == 1
           and not result.blocks[0].is_macro_seed
           and result.blocks[0].node.children is not None
           and guard < 64):
        inner = result.blocks[0].node
        if inner.macro_count == 0:
            break
        deeper = decluster(inner, flat, min_area_frac, open_area_frac)
        deeper.glue.extend(result.glue)
        deeper.loose_glue_cells.extend(result.loose_glue_cells)
        result = deeper
        guard += 1
        if len(result.blocks) != 1 or result.blocks[0].is_macro_seed:
            break
    return result
