"""Recursive block floorplanning (paper Algorithm 2).

Each level: decluster the hierarchy node into blocks, assign target
areas, infer dataflow affinity, generate a budgeted slicing layout, and
then either recurse into multi-macro blocks or corner-fix single
macros.  Fixed context (chip ports and already-placed sibling blocks at
every ancestor level) is threaded down as terminal groups so macros
outside the subtree keep pulling on the layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import HiDaPConfig
from repro.core.corners import place_single_macro
from repro.core.dataflow import TerminalSpec, infer_affinity
from repro.core.decluster import BlockSeed, open_single_block
from repro.core.result import LevelTrace, MacroPlacement, PlacedMacro
from repro.core.target_area import assign_target_areas, scale_targets
from repro.floorplan.blocks import Block, Terminal
from repro.floorplan.engine import LayoutProblem, LayoutResult, generate_layout
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gnet import Gnet
from repro.hiergraph.gseq import Gseq
from repro.hiergraph.hierarchy import HierNode, HierTree
from repro.netlist.flatten import FlatDesign
from repro.shapecurve.curve import ShapeCurve
from repro.slicing.tree import EvalStats

#: Fixed-context groups passed into one level are capped (nearest by
#: position are kept) so the per-level dataflow searches stay cheap even
#: deep in the recursion.
MAX_EXT_TERMINALS = 18


class RecursiveFloorplanner:
    """Carries the shared state of one HiDaP placement run."""

    def __init__(self, flat: FlatDesign, gnet: Gnet, gseq: Gseq,
                 tree: HierTree, curves: Dict[str, ShapeCurve],
                 config: HiDaPConfig,
                 port_positions: Dict[str, Point]):
        self.flat = flat
        self.gnet = gnet
        self.gseq = gseq
        self.tree = tree
        self.curves = curves
        self.config = config
        self.port_positions = port_positions
        self.placement: Optional[MacroPlacement] = None
        #: Evaluation-work counters accumulated over every level's
        #: layout search (see :class:`repro.slicing.tree.EvalStats`).
        self.stats = EvalStats()
        self._level_seed = 0

    # -- public -------------------------------------------------------------

    def run(self, die: Rect, flow_name: str = "hidap") -> MacroPlacement:
        """Place all macros of the design inside ``die``."""
        self.placement = MacroPlacement(
            design_name=self.flat.design.name, flow_name=flow_name, die=die)
        self.placement.block_rects[""] = die
        port_terms = self._port_terminals()
        self._place_level(self.tree.root, die, port_terms, depth=0)
        return self.placement

    # -- helpers ------------------------------------------------------------

    def _port_terminals(self) -> List[TerminalSpec]:
        terms: List[TerminalSpec] = []
        for node in self.gseq.ports():
            pos = self.port_positions.get(node.name)
            if pos is None:
                continue
            terms.append(TerminalSpec(name=node.name, pos=pos,
                                      seq_nodes=[node.index], kind="port"))
        return terms

    def _curve_for_seed(self, seed: BlockSeed) -> ShapeCurve:
        if seed.is_macro_seed:
            ctype = self.flat.cells[seed.macro_cell].ctype
            return ShapeCurve.for_rect(ctype.width, ctype.height)
        curve = self.curves.get(seed.node.path, ShapeCurve.trivial())
        if curve.is_trivial:
            return curve
        return curve.inflated(self.config.curve_inflation)

    def _cap_terminals(self, terms: List[TerminalSpec],
                       region: Rect) -> List[TerminalSpec]:
        if len(terms) <= MAX_EXT_TERMINALS:
            return terms
        center = region.center
        ranked = sorted(terms, key=lambda t: t.pos.manhattan(center))
        return ranked[:MAX_EXT_TERMINALS]

    def _attractions(self, index: int, matrix: Sequence[Sequence[float]],
                     layout: LayoutResult, seeds: Sequence[BlockSeed],
                     terms: Sequence[TerminalSpec]
                     ) -> List[Tuple[Point, float]]:
        """Affinity-weighted neighbour positions for one block."""
        n = len(seeds)
        out: List[Tuple[Point, float]] = []
        for j in range(n):
            if j == index:
                continue
            a = matrix[index][j] + matrix[j][index]
            if a > 0 and j in layout.rects:
                out.append((layout.rects[j].center, a))
        for t, term in enumerate(terms):
            a = matrix[index][n + t] + matrix[n + t][index]
            if a > 0:
                out.append((term.pos, a))
        return out

    # -- the recursion ---------------------------------------------------------

    def _place_level(self, level: HierNode, region: Rect,
                     ext_terms: List[TerminalSpec], depth: int) -> None:
        config = self.config
        result = open_single_block(level, self.flat,
                                   config.min_area_frac,
                                   config.open_area_frac)
        seeds = result.blocks
        if not seeds:
            return

        blocks: List[Block] = []
        for i, seed in enumerate(seeds):
            area_min = seed.area(self.flat)
            blocks.append(Block(
                index=i, name=seed.name, curve=self._curve_for_seed(seed),
                area_min=area_min, area_target=area_min,
                macro_count=seed.macro_count(),
                hier_path=seed.hier_path() or None))

        absorbed = assign_target_areas(self.flat, self.gnet, result)
        targets = scale_targets([b.area_min for b in blocks], absorbed,
                                region.area)
        for block, target in zip(blocks, targets):
            block.area_target = target

        terms = self._cap_terminals(list(ext_terms), region)
        if config.affinity_mode == "pseudonet":
            from repro.core.dataflow import seq_nodes_for_seeds
            from repro.core.pseudonets import pseudonet_affinity
            matrix = pseudonet_affinity(seeds, terms)
            gdf = None
            block_members = seq_nodes_for_seeds(self.gseq, seeds)
        else:
            gdf, matrix = infer_affinity(
                gseq=self.gseq, seeds=seeds, terminals=terms,
                lam=config.lam, latency_k=config.latency_k,
                max_latency=config.max_latency)
            block_members = [gdf.nodes[i].seq_nodes
                             for i in range(len(seeds))]

        terminals = [Terminal(len(blocks) + t, term.name, term.pos,
                              term.kind)
                     for t, term in enumerate(terms)]
        problem = LayoutProblem(region=region, blocks=blocks,
                                affinity=matrix, terminals=terminals)
        self._level_seed += 1
        layout = generate_layout(problem,
                                 config.layout_config(self._level_seed))
        if layout.stats is not None:
            self.stats.merge(layout.stats)

        for i, seed in enumerate(seeds):
            if not seed.is_macro_seed:
                self.placement.block_rects[seed.node.path] = layout.rects[i]

        if config.keep_trace:
            self.placement.traces.append(LevelTrace(
                depth=depth, level_path=level.path, region=region,
                block_names=[s.name for s in seeds],
                block_rects=[layout.rects[i] for i in range(len(seeds))],
                block_macro_counts=[s.macro_count() for s in seeds],
                cost=layout.cost, penalty=layout.penalty))

        # Recurse / corner-fix.
        for i, seed in enumerate(seeds):
            rect = layout.rects[i]
            count = seed.macro_count()
            if count == 0:
                continue
            if count == 1:
                macro_index = seed.macros()[0]
                ctype = self.flat.cells[macro_index].ctype
                attractions = self._attractions(i, matrix, layout,
                                                seeds, terms)
                placed_rect, orient = place_single_macro(
                    rect, ctype.width, ctype.height, attractions)
                self.placement.macros[macro_index] = PlacedMacro(
                    cell_index=macro_index,
                    path=self.flat.cells[macro_index].path,
                    rect=placed_rect, orientation=orient)
                continue
            # Multi-macro blocks recurse with the sibling context fixed.
            child_terms = list(ext_terms)
            for j, other in enumerate(seeds):
                if j == i or not block_members[j]:
                    continue
                child_terms.append(TerminalSpec(
                    name=other.name, pos=layout.rects[j].center,
                    seq_nodes=block_members[j], kind="ext"))
            self._place_level(seed.node, rect, child_terms, depth + 1)
