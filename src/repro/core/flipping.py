"""Macro flipping: the orientation post-pass (Algorithm 1, line 6).

Once macro locations are fixed, each macro can still be mirrored inside
its footprint.  Pin positions move with the orientation, so choosing
flips well shortens the nets attached to macro pins ("macro side
dataflow").  The pass greedily sweeps the macros, picking for each the
footprint-preserving orientation minimizing the HPWL of its incident
nets, until a sweep changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.result import MacroPlacement
from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point
from repro.netlist.flatten import FlatDesign


@dataclass
class _FlipNet:
    """One flat net touching at least one macro pin."""

    static_points: List[Point] = field(default_factory=list)
    macro_pins: List[Tuple[int, str, int]] = field(default_factory=list)

    def interesting(self) -> bool:
        return bool(self.macro_pins) and (
            len(self.macro_pins) + len(self.static_points) >= 2)


def _collect_nets(flat: FlatDesign, placement: MacroPlacement,
                  port_positions: Dict[str, Point]) -> List[_FlipNet]:
    nets: List[_FlipNet] = []
    for net in flat.nets:
        fn = _FlipNet()
        for cell_index, pin, bit in net.endpoints:
            cell = flat.cells[cell_index]
            if cell.is_macro and cell_index in placement.macros:
                fn.macro_pins.append((cell_index, pin, bit))
            else:
                region = placement.region_of_cell(flat, cell_index)
                fn.static_points.append(region.center)
        for port_name, _bit in net.top_ports:
            pos = port_positions.get(port_name)
            if pos is not None:
                fn.static_points.append(pos)
        if fn.interesting():
            nets.append(fn)
    return nets


def _net_hpwl(fn: _FlipNet, flat: FlatDesign,
              placement: MacroPlacement) -> float:
    xs: List[float] = []
    ys: List[float] = []
    for p in fn.static_points:
        xs.append(p.x)
        ys.append(p.y)
    for cell_index, pin, bit in fn.macro_pins:
        pos = placement.macros[cell_index].pin_position(flat, pin, bit)
        xs.append(pos.x)
        ys.append(pos.y)
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def flip_macros(flat: FlatDesign, placement: MacroPlacement,
                port_positions: Optional[Dict[str, Point]] = None,
                max_passes: int = 4) -> int:
    """Greedily flip macros to reduce incident-net HPWL.

    Mutates orientations in ``placement``; returns the number of
    orientation changes applied.  Footprints never change, so the
    placement stays geometrically identical apart from pin positions.
    """
    port_positions = port_positions or {}
    nets = _collect_nets(flat, placement, port_positions)
    nets_of_macro: Dict[int, List[_FlipNet]] = {}
    for fn in nets:
        for cell_index, _pin, _bit in fn.macro_pins:
            nets_of_macro.setdefault(cell_index, []).append(fn)

    total_flips = 0
    for _sweep in range(max_passes):
        changed = False
        for cell_index in sorted(placement.macros):
            incident = nets_of_macro.get(cell_index)
            if not incident:
                continue
            placed = placement.macros[cell_index]
            start_orient = placed.orientation
            best_orient = start_orient
            best_cost = sum(_net_hpwl(fn, flat, placement)
                            for fn in incident)
            for orient in Orientation.flips_of(start_orient):
                if orient is start_orient:
                    continue
                placed.orientation = orient
                cost = sum(_net_hpwl(fn, flat, placement)
                           for fn in incident)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_orient = orient
            placed.orientation = best_orient
            if best_orient is not start_orient:
                changed = True
                total_flips += 1
        if not changed:
            break
    return total_flips
