"""Chip port positions.

Macro placement treats top-level ports as fixed points.  Physical port
locations are not part of the paper's input model, so this reproduction
assigns them deterministically: ports are spread evenly around the die
perimeter in declaration order (inputs starting from the west edge,
outputs from the east edge), which is the common default of floorplan
initializers.  All flows share the same assignment, keeping comparisons
fair.
"""

from __future__ import annotations

from typing import Dict, List

from repro.geometry.rect import Point, Rect
from repro.netlist.cells import Direction
from repro.netlist.core import Design


def _perimeter_point(die: Rect, t: float) -> Point:
    """Point at parameter ``t`` in [0,1) walking the perimeter ccw from
    the lower-left corner."""
    perimeter = 2.0 * (die.w + die.h)
    s = (t % 1.0) * perimeter
    if s < die.w:
        return Point(die.x + s, die.y)
    s -= die.w
    if s < die.h:
        return Point(die.x2, die.y + s)
    s -= die.h
    if s < die.w:
        return Point(die.x2 - s, die.y2)
    s -= die.w
    return Point(die.x, die.y2 - s)


def assign_port_positions(design: Design, die: Rect) -> Dict[str, Point]:
    """Deterministic port placement on the die boundary.

    Inputs are spread over the left half of the perimeter walk
    (west/south edges first), outputs over the right half, mirroring the
    data-enters-left / data-leaves-right convention of the synthetic
    designs.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    for port in design.top.ports.values():
        if port.direction is Direction.IN:
            inputs.append(port.name)
        else:
            outputs.append(port.name)

    positions: Dict[str, Point] = {}
    for names, (start, span) in ((inputs, (0.60, 0.40)),
                                 (outputs, (0.10, 0.40))):
        # Inputs walk the west edge upward (t in [0.6, 1.0)); outputs
        # walk the east edge upward (t in [0.1, 0.5)).
        n = len(names)
        for i, name in enumerate(names):
            t = start + span * ((i + 0.5) / n)
            positions[name] = _perimeter_point(die, t)
    return positions


def port_side(die: Rect, pos: Point, tol: float = 1e-6) -> str:
    """Which die edge a port position sits on ('W','E','N','S')."""
    if abs(pos.x - die.x) < tol:
        return "W"
    if abs(pos.x - die.x2) < tol:
        return "E"
    if abs(pos.y - die.y) < tol:
        return "S"
    return "N"
