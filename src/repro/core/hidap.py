"""The HiDaP top flow (paper Algorithm 1).

``HiDaP.place`` runs the staged pipeline from :mod:`repro.api.pipeline`
(``flatten -> graphs -> shape-curves -> floorplan -> flip ->
legalize``) and returns a :class:`MacroPlacement`.  Intermediate
products live in a typed :class:`repro.api.artifacts.RunArtifacts`
record kept as ``self.artifacts``; the historical instance attributes
(``flat``, ``tree``, ``gnet``, ``gseq``, ``curves``,
``port_positions``) are preserved as read-only views over it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, TYPE_CHECKING, Union

from repro.core.config import HiDaPConfig
from repro.core.result import MacroPlacement
from repro.geometry.rect import Point, Rect
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign
from repro.obs import current_tracer, perf_seconds
from repro.shapecurve.curve import ShapeCurve

if TYPE_CHECKING:  # pragma: no cover - lazy to avoid core<->api cycle
    from repro.api.artifacts import RunArtifacts
    from repro.api.pipeline import PipelineObserver


class HiDaP:
    """Hierarchical Dataflow Placement.

    Example
    -------
    >>> placer = HiDaP(HiDaPConfig(lam=0.5, seed=1))
    >>> placement = placer.place(design, die_width, die_height)

    Observers (see :class:`repro.api.pipeline.PipelineObserver`) may be
    passed to receive per-stage start/end callbacks.
    """

    def __init__(self, config: Optional[HiDaPConfig] = None,
                 observers: Sequence["PipelineObserver"] = ()):
        self.config = config or HiDaPConfig()
        self.observers = tuple(observers)
        #: Artifacts of the last run (for tools/figures/tests).
        self.artifacts: Optional["RunArtifacts"] = None

    # -- last-run artifact views (legacy attribute surface) -----------------

    @property
    def flat(self) -> Optional[FlatDesign]:
        return self.artifacts.flat if self.artifacts else None

    @property
    def tree(self):
        return self.artifacts.tree if self.artifacts else None

    @property
    def gnet(self):
        return self.artifacts.gnet if self.artifacts else None

    @property
    def gseq(self):
        return self.artifacts.gseq if self.artifacts else None

    @property
    def curves(self) -> Optional[Dict[str, ShapeCurve]]:
        return self.artifacts.curves if self.artifacts else None

    @property
    def port_positions(self) -> Optional[Dict[str, Point]]:
        return self.artifacts.port_positions if self.artifacts else None

    # -- public API ----------------------------------------------------------

    def place(self, design: Union[Design, FlatDesign], die_width: float,
              die_height: float, flow_name: str = "hidap",
              gnet=None, gseq=None, tree=None) -> MacroPlacement:
        """Place all macros of ``design`` on a die of the given size.

        ``gnet``/``gseq``/``tree`` may be passed to reuse pre-built
        structures (e.g. from a
        :class:`repro.api.prepared.PreparedDesign` cache); the graphs
        stage then skips reconstruction.  Callers are responsible for
        passing a ``gseq`` built with the configured ``min_bits``.
        """
        from repro.api.artifacts import RunArtifacts
        from repro.api.pipeline import build_hidap_pipeline

        start = perf_seconds()
        die = Rect(0.0, 0.0, float(die_width), float(die_height))
        flat = design if isinstance(design, FlatDesign) else None
        artifacts = RunArtifacts(
            die=die, config=self.config, flow_name=flow_name,
            design=design.design if flat is not None else design,
            flat=flat, gnet=gnet, gseq=gseq, tree=tree)

        pipeline = build_hidap_pipeline(observers=self.observers)
        # Expose the record before running so partially filled
        # artifacts stay inspectable if a stage raises.
        self.artifacts = artifacts
        design_name = artifacts.design.name if artifacts.design else "?"
        with current_tracer().span("place", design=design_name,
                                   flow=flow_name,
                                   lam=self.config.lam):
            pipeline.run(artifacts)

        placement = artifacts.require_placement()
        placement.runtime_seconds = perf_seconds() - start
        return placement
