"""The HiDaP top flow (paper Algorithm 1).

``HiDaP.place`` runs the full pipeline: hierarchy tree, shape curves,
recursive block floorplanning and macro flipping, returning a
:class:`MacroPlacement`.  Intermediate artifacts (graphs, curves) are
kept on the instance after a run for inspection, visualization and the
didactic figure reproductions.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from repro.core.config import HiDaPConfig
from repro.core.flipping import flip_macros
from repro.core.ports import assign_port_positions
from repro.core.recursive import RecursiveFloorplanner
from repro.core.result import MacroPlacement
from repro.geometry.rect import Point, Rect
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign, flatten
from repro.shapecurve.curve import ShapeCurve
from repro.shapecurve.generation import generate_shape_curves


class HiDaP:
    """Hierarchical Dataflow Placement.

    Example
    -------
    >>> placer = HiDaP(HiDaPConfig(lam=0.5, seed=1))
    >>> placement = placer.place(design, die_width, die_height)
    """

    def __init__(self, config: Optional[HiDaPConfig] = None):
        self.config = config or HiDaPConfig()
        # Artifacts of the last run (for tools/figures/tests):
        self.flat: Optional[FlatDesign] = None
        self.tree = None
        self.gnet = None
        self.gseq = None
        self.curves: Optional[Dict[str, ShapeCurve]] = None
        self.port_positions: Optional[Dict[str, Point]] = None

    # -- pipeline pieces -----------------------------------------------------

    def _build_graphs(self, flat: FlatDesign) -> None:
        self.flat = flat
        self.tree = build_hierarchy(flat)
        self.gnet = build_gnet(flat)
        self.gseq = build_gseq(self.gnet, flat,
                               min_bits=self.config.min_bits)

    def _shape_curves(self) -> Dict[str, ShapeCurve]:
        """S_Γ: one curve per hierarchy node, bottom-up (Sect. IV-A)."""
        flat = self.flat
        shape_config = self.config.shapegen_config()

        def own_macro_curves(node):
            return [ShapeCurve.for_rect(flat.cells[m].ctype.width,
                                        flat.cells[m].ctype.height)
                    for m in node.own_macros]

        by_node = generate_shape_curves(
            self.tree.root,
            children_of=lambda n: n.children,
            own_macro_curves_of=own_macro_curves,
            config=shape_config)
        return {node.path: curve for node, curve in by_node.items()}

    # -- public API ------------------------------------------------------------

    def place(self, design: Union[Design, FlatDesign], die_width: float,
              die_height: float, flow_name: str = "hidap"
              ) -> MacroPlacement:
        """Place all macros of ``design`` on a die of the given size."""
        start = time.perf_counter()
        flat = design if isinstance(design, FlatDesign) else flatten(design)
        die = Rect(0.0, 0.0, float(die_width), float(die_height))

        self._build_graphs(flat)
        self.curves = self._shape_curves()
        self.port_positions = assign_port_positions(flat.design, die)

        floorplanner = RecursiveFloorplanner(
            flat=flat, gnet=self.gnet, gseq=self.gseq, tree=self.tree,
            curves=self.curves, config=self.config,
            port_positions=self.port_positions)
        placement = floorplanner.run(die, flow_name=flow_name)

        if self.config.flipping:
            flip_macros(flat, placement, self.port_positions)

        placement.runtime_seconds = time.perf_counter() - start
        return placement
