"""Corner placement of single-macro blocks.

When recursion reaches a block holding exactly one macro, the macro "is
fixed in the corner of the available area that minimizes wirelength"
(Algorithm 2, line 11).  The candidate set is the four corners of the
block rectangle, in both footprint rotations when they fit; the cost is
the affinity-weighted Manhattan distance to the block's dataflow
neighbours.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect

Attraction = Tuple[Point, float]        # (neighbour position, affinity)


def corner_candidates(region: Rect, w: float, h: float) -> List[Rect]:
    """Rectangles of a w-by-h macro pushed into each region corner.

    When the macro exceeds the region (illegal but possible while the
    penalty system explores), it is centered instead so downstream
    geometry remains meaningful.
    """
    if w > region.w + 1e-9 or h > region.h + 1e-9:
        cx = region.x + (region.w - w) / 2.0
        cy = region.y + (region.h - h) / 2.0
        return [Rect(cx, cy, w, h)]
    return [
        Rect(region.x, region.y, w, h),
        Rect(region.x2 - w, region.y, w, h),
        Rect(region.x2 - w, region.y2 - h, w, h),
        Rect(region.x, region.y2 - h, w, h),
    ]


def place_single_macro(region: Rect, macro_w: float, macro_h: float,
                       attractions: Sequence[Attraction],
                       allow_rotation: bool = True
                       ) -> Tuple[Rect, Orientation]:
    """Choose corner and rotation minimizing attraction-weighted distance.

    Returns the placed rectangle and the base orientation (N, or E when
    the footprint is rotated); the flipping post-pass refines within the
    footprint-preserving group afterwards.
    """
    options: List[Tuple[Rect, Orientation]] = [
        (rect, Orientation.N)
        for rect in corner_candidates(region, macro_w, macro_h)]
    if allow_rotation and abs(macro_w - macro_h) > 1e-12:
        options.extend(
            (rect, Orientation.E)
            for rect in corner_candidates(region, macro_h, macro_w))
    # Never pick an out-of-region option when a contained one exists.
    contained = [(rect, orient) for rect, orient in options
                 if region.contains_rect(rect, tol=1e-6)]
    if contained:
        options = contained

    def cost(rect: Rect) -> float:
        center = rect.center
        if not attractions:
            # No dataflow: prefer staying near the region center.
            return center.manhattan(region.center)
        return sum(a * center.manhattan(p) for p, a in attractions)

    best: Optional[Tuple[Rect, Orientation]] = None
    best_cost = float("inf")
    for rect, orient in options:
        c = cost(rect)
        if c < best_cost - 1e-12:
            best, best_cost = (rect, orient), c
    return best
