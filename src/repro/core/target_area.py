"""Target area assignment (paper Sect. IV-C).

Glue logic (HCG nodes and loose cells of opened nodes) is not
floorplanned directly; its area must travel with the blocks it talks
to.  A multi-source BFS over Gnet starts simultaneously from every cell
of every HCB block; each glue cell is absorbed by the first block that
reaches it.  Glue unreachable from any block (rare: disconnected
scan/debug logic) is spread proportionally to block minimum areas so no
area is lost.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set

from repro.core.decluster import BlockSeed, DeclusterResult
from repro.hiergraph.gnet import Gnet
from repro.netlist.flatten import FlatDesign


def glue_cells_of(result: DeclusterResult) -> List[int]:
    """All flat cell indices whose area must be absorbed by blocks."""
    cells: List[int] = list(result.loose_glue_cells)
    for node in result.glue:
        cells.extend(node.subtree_cells())
    return cells


def block_cells_of(seed: BlockSeed) -> Iterable[int]:
    """Flat cell indices inside a block seed."""
    if seed.is_macro_seed:
        return (seed.macro_cell,)
    return seed.node.subtree_cells()


def assign_target_areas(flat: FlatDesign, gnet: Gnet,
                        result: DeclusterResult) -> List[float]:
    """Glue area absorbed per block, via multi-source BFS on Gnet.

    Returns one absorbed-area figure per block in ``result.blocks``
    order; the caller adds it to the block minimum areas and rescales to
    the floorplan region.
    """
    blocks = result.blocks
    absorbed = [0.0 for _ in blocks]
    glue_cells = glue_cells_of(result)
    if not glue_cells:
        return absorbed
    glue_set: Set[int] = set(glue_cells)

    owner: Dict[int, int] = {}          # gnet node -> block index
    queue = deque()
    for b, seed in enumerate(blocks):
        for cell_index in block_cells_of(seed):
            node = gnet.node_of_cell.get(cell_index)
            if node is not None and node not in owner:
                owner[node] = b
                queue.append(node)

    # BFS over undirected adjacency; first-come-first-served gives each
    # glue cell to its graph-nearest block.
    claimed: Dict[int, int] = {}        # glue cell -> block index
    while queue:
        node = queue.popleft()
        b = owner[node]
        for neighbor in gnet.neighbors_undirected(node):
            if neighbor in owner:
                continue
            owner[neighbor] = b
            cell_index = gnet.cell_of[neighbor]
            if cell_index >= 0 and cell_index in glue_set:
                claimed[cell_index] = b
            queue.append(neighbor)

    unreached_area = 0.0
    for cell_index in glue_cells:
        area = flat.cells[cell_index].ctype.area
        block = claimed.get(cell_index)
        if block is None:
            unreached_area += area
        else:
            absorbed[block] += area

    if unreached_area > 0:
        mins = [max(seed.area(flat), 1e-12) for seed in blocks]
        total = sum(mins)
        for b, m in enumerate(mins):
            absorbed[b] += unreached_area * m / total
    return absorbed


def scale_targets(area_min: Sequence[float], absorbed: Sequence[float],
                  region_area: float) -> List[float]:
    """Scale raw targets (a_m + absorbed glue) to fill the region.

    The layout generator treats the region as a budget that is always
    fully consumed, so targets are normalized to sum to the region area.
    Scaling never drops a target below the block's minimum area; any
    leftover caused by that clamping is redistributed over the
    unclamped blocks.
    """
    raw = [m + a for m, a in zip(area_min, absorbed)]
    total_raw = sum(raw)
    if total_raw <= 0:
        n = max(len(raw), 1)
        return [region_area / n for _ in raw]

    factor = region_area / total_raw
    targets = [r * factor for r in raw]
    if factor >= 1.0:
        return targets

    # Shrinking: clamp at a_m and push the deficit onto blocks with
    # slack, iterating a few times (each pass strictly reduces slack).
    for _ in range(8):
        deficit = 0.0
        slack_indices = []
        for i, target in enumerate(targets):
            if target < area_min[i]:
                deficit += area_min[i] - target
                targets[i] = area_min[i]
            elif target > area_min[i]:
                slack_indices.append(i)
        if deficit <= 1e-9 or not slack_indices:
            break
        slack_total = sum(targets[i] - area_min[i] for i in slack_indices)
        if slack_total <= 1e-12:
            break
        for i in slack_indices:
            share = (targets[i] - area_min[i]) / slack_total
            targets[i] -= deficit * share
    return targets
