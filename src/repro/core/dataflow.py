"""Dataflow inference for one floorplanning level (paper Sect. IV-D).

Maps the level's blocks and fixed context onto Gdf groups, runs the
block-flow / macro-flow searches, and condenses the per-edge histograms
into the affinity matrix ``M_aff`` with the parametric blend

    M_aff[i][j] = λ · score(E^b_ij, k) + (1-λ) · score(E^m_ij, k).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.decluster import BlockSeed
from repro.geometry.rect import Point
from repro.hiergraph.gdf import Gdf, GdfNode, build_gdf
from repro.hiergraph.gseq import Gseq
from repro.netlist.flatten import PATH_SEP


@dataclass
class TerminalSpec:
    """A fixed group outside the level: a chip port or external block."""

    name: str
    pos: Point
    seq_nodes: List[int] = field(default_factory=list)
    kind: str = "port"                    # "port" | "ext"


def _is_under(path: str, prefix: str) -> bool:
    if not prefix:
        return True
    return path == prefix or path.startswith(prefix + PATH_SEP)


def seq_nodes_for_seeds(gseq: Gseq, seeds: Sequence[BlockSeed]
                        ) -> List[List[int]]:
    """Gseq components claimed by each block seed.

    Macro-backed pseudo-blocks claim exactly their macro's component;
    subtree-backed blocks claim every component whose owning module path
    lies in their subtree.  Claims are disjoint because pseudo-blocks
    only arise from macros *above* the subtree blocks.
    """
    macro_seed_cells: Set[int] = {
        seed.macro_cell for seed in seeds if seed.is_macro_seed}
    seq_of_cell: Dict[int, int] = {}
    for node in gseq.nodes:
        for cell in node.cells:
            seq_of_cell[cell] = node.index

    claimed: Set[int] = set()
    result: List[List[int]] = []
    for seed in seeds:
        if seed.is_macro_seed:
            members = []
            seq = seq_of_cell.get(seed.macro_cell)
            if seq is not None:
                members.append(seq)
        else:
            prefix = seed.node.path
            members = [
                node.index for node in gseq.nodes
                if not node.is_port
                and _is_under(node.module_path, prefix)
                and not (node.is_macro
                         and node.cells[0] in macro_seed_cells)]
        members = [m for m in members if m not in claimed]
        claimed.update(members)
        result.append(members)
    return result


def infer_affinity(gseq: Gseq, seeds: Sequence[BlockSeed],
                   terminals: Sequence[TerminalSpec], lam: float,
                   latency_k: float, max_latency: int = 16
                   ) -> Tuple[Gdf, List[List[float]]]:
    """Run dataflow inference for one level.

    Returns the level's Gdf (blocks first, then terminals, in order)
    and the dense symmetric affinity matrix indexed the same way.
    """
    block_members = seq_nodes_for_seeds(gseq, seeds)
    claimed: Set[int] = set()
    for members in block_members:
        claimed.update(members)

    groups: List[GdfNode] = []
    for i, (seed, members) in enumerate(zip(seeds, block_members)):
        groups.append(GdfNode(i, seed.name, "block", members))
    for t, terminal in enumerate(terminals):
        members = [s for s in terminal.seq_nodes if s not in claimed]
        claimed.update(members)
        groups.append(GdfNode(len(seeds) + t, terminal.name,
                              terminal.kind, members))

    gdf = build_gdf(gseq, groups, max_latency=max_latency)

    size = len(groups)
    matrix = [[0.0] * size for _ in range(size)]
    for (i, j), edge in gdf.edges.items():
        matrix[i][j] += edge.affinity(lam, latency_k)
    return gdf, matrix
