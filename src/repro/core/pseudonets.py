"""Hierarchy-closeness pseudo-net affinity (the pre-dataflow approach).

Earlier hierarchy-exploiting floorplanners (the paper cites MP-Trees
[5]) attract macros that are *hierarchically close* by adding
pseudo-nets between them, without analyzing dataflow at all.  This
module implements that affinity model as a drop-in alternative to
dataflow inference, so the paper's central claim — that latency/width
dataflow affinity beats pure hierarchy closeness — can be tested
directly (see ``benchmarks/test_ablation_affinity_source.py``).

Affinity between two blocks is ``1 / 2^d`` where ``d`` is the
hierarchy distance between their nodes (hops to the lowest common
ancestor), scaled by the blocks' macro counts: big sibling blocks
attract strongly, unrelated subtrees barely at all.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.dataflow import TerminalSpec
from repro.core.decluster import BlockSeed
from repro.netlist.flatten import PATH_SEP


def _depth(path: str) -> int:
    if not path:
        return 0
    return path.count(PATH_SEP) + 1


def _common_prefix_depth(a: str, b: str) -> int:
    if not a or not b:
        return 0
    parts_a = a.split(PATH_SEP)
    parts_b = b.split(PATH_SEP)
    depth = 0
    for x, y in zip(parts_a, parts_b):
        if x != y:
            break
        depth += 1
    return depth


def hierarchy_distance(path_a: str, path_b: str) -> int:
    """Tree hops between two hierarchy paths via their LCA."""
    lca = _common_prefix_depth(path_a, path_b)
    return (_depth(path_a) - lca) + (_depth(path_b) - lca)


def _seed_path(seed: BlockSeed) -> str:
    if seed.is_macro_seed:
        # A macro pseudo-block sits at its instance path's parent.
        path = seed.name
        return path.rsplit(PATH_SEP, 1)[0] if PATH_SEP in path else ""
    return seed.node.path


def pseudonet_affinity(seeds: Sequence[BlockSeed],
                       terminals: Sequence[TerminalSpec],
                       base_weight: float = 64.0
                       ) -> List[List[float]]:
    """Affinity matrix from hierarchy closeness only.

    Matches the shape ``infer_affinity`` returns (blocks first, then
    terminals).  Terminals get a small uniform pull so port-adjacent
    placements are not completely arbitrary — pseudo-net approaches
    typically anchor to pads the same way.
    """
    n = len(seeds)
    size = n + len(terminals)
    matrix = [[0.0] * size for _ in range(size)]
    paths = [_seed_path(seed) for seed in seeds]
    weights = [max(1, seed.macro_count()) for seed in seeds]
    for i in range(n):
        for j in range(i + 1, n):
            distance = hierarchy_distance(paths[i], paths[j])
            affinity = base_weight * (weights[i] * weights[j]) ** 0.5 \
                / (2.0 ** distance)
            matrix[i][j] = affinity
            matrix[j][i] = affinity
    for t in range(len(terminals)):
        for i in range(n):
            matrix[i][n + t] = base_weight / 16.0
            matrix[n + t][i] = base_weight / 16.0
    return matrix
