"""Macro legalization: a greedy nearest-fit overlap resolver.

HiDaP's budgeting keeps block rectangles disjoint, so its macro
placements are legal by construction; this utility exists as a safety
net for externally produced or hand-edited placements (e.g. loaded from
JSON) before they enter the metric referee.

Macros are processed in lower-left order; each keeps its position when
legal, otherwise it moves to the nearest legal position drawn from the
candidate grid induced by the die walls and the already-fixed macros
(the classic Tetris-style legalization scheme).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import MacroPlacement
from repro.geometry.rect import Rect


def _clamp_into(rect: Rect, die: Rect) -> Rect:
    x = min(max(rect.x, die.x), max(die.x, die.x2 - rect.w))
    y = min(max(rect.y, die.y), max(die.y, die.y2 - rect.h))
    return Rect(x, y, rect.w, rect.h)


def _legal_here(rect: Rect, die: Rect, placed: List[Rect]) -> bool:
    if not die.contains_rect(rect, tol=1e-9):
        return False
    return not any(rect.overlaps(other) for other in placed)


def _nearest_legal(rect: Rect, die: Rect,
                   placed: List[Rect]) -> Optional[Rect]:
    """Nearest legal position from the candidate coordinate grid."""
    xs = {die.x, die.x2 - rect.w}
    ys = {die.y, die.y2 - rect.h}
    xs.add(rect.x)
    ys.add(rect.y)
    for other in placed:
        xs.update((other.x2, other.x - rect.w))
        ys.update((other.y2, other.y - rect.h))
    xs = sorted(x for x in xs if die.x - 1e-9 <= x <= die.x2 - rect.w + 1e-9)
    ys = sorted(y for y in ys if die.y - 1e-9 <= y <= die.y2 - rect.h + 1e-9)

    best: Optional[Rect] = None
    best_dist = float("inf")
    for x in xs:
        dx = abs(x - rect.x)
        if dx >= best_dist:
            continue
        for y in ys:
            dist = dx + abs(y - rect.y)
            if dist >= best_dist:
                continue
            candidate = Rect(x, y, rect.w, rect.h)
            if _legal_here(candidate, die, placed):
                best = candidate
                best_dist = dist
    return best


def legalize_macros(placement: MacroPlacement) -> int:
    """Clamp macros into the die and resolve overlaps, in place.

    Returns the number of macros that moved.  Macros keep their
    footprints; positions change by the minimum candidate-grid
    displacement.  If the die is overfull a macro may remain
    overlapping (best effort) — callers can check
    ``placement.macro_overlap_area()`` afterwards.
    """
    die = placement.die
    order = sorted(placement.macros,
                   key=lambda k: (placement.macros[k].rect.y,
                                  placement.macros[k].rect.x))
    placed: List[Rect] = []
    moved = 0
    for key in order:
        macro = placement.macros[key]
        rect = _clamp_into(macro.rect, die)
        if not _legal_here(rect, die, placed):
            candidate = _nearest_legal(rect, die, placed)
            if candidate is not None:
                rect = candidate
        if rect != macro.rect:
            macro.rect = rect
            moved += 1
        placed.append(rect)
    return moved
