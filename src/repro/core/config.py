"""Configuration for the HiDaP flow.

Default parameter values follow the paper where it states them:
declustering thresholds are fractions of ``area(nh)`` (Sect. IV-B; see
DESIGN.md §3 on which fraction is which), λ balances block and macro
flow (the evaluation runs 0.2 / 0.5 / 0.8 and keeps the best), and the
latency-decay exponent ``k`` controls ``score(h, k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.floorplan.cost import CostWeights
from repro.floorplan.engine import LayoutConfig
from repro.shapecurve.generation import ShapeGenConfig
from repro.slicing.anneal import AnnealConfig


class Effort(Enum):
    """Annealing effort presets: move budget multipliers."""

    FAST = "fast"
    NORMAL = "normal"
    HIGH = "high"

    @property
    def multiplier(self) -> float:
        return {"fast": 0.4, "normal": 1.0, "high": 3.0}[self.value]


@dataclass
class HiDaPConfig:
    """All knobs of the HiDaP flow."""

    seed: int = 0
    #: λ — weight of block flow vs macro flow in the affinity blend.
    lam: float = 0.5
    #: k — latency decay exponent in score(h, k).
    latency_k: float = 1.0
    #: Declustering: nodes below this fraction of area(nh) with no
    #: macros are glue (HCG).
    min_area_frac: float = 0.01
    #: Declustering: macro-free nodes above this fraction of area(nh)
    #: are opened to expose structure.
    open_area_frac: float = 0.40
    #: Gseq array-width threshold (components narrower are discarded).
    min_bits: int = 2
    #: BFS depth bound for dataflow inference.
    max_latency: int = 16
    #: Annealing effort preset.
    effort: Effort = Effort.NORMAL
    #: Penalty severities of the layout cost model.
    weights: CostWeights = field(default_factory=CostWeights)
    #: Extra whitespace factor applied to macro shape curves, leaving
    #: routing/keepout room around macro layouts.
    curve_inflation: float = 1.08
    #: Incremental cost evaluation in both annealing problems (cached
    #: subtree shape curves, memoized compositions, reused budgeted
    #: sub-layouts).  Bit-identical to full re-evaluation under a fixed
    #: seed; disable only to cross-check that claim.
    incremental: bool = True
    #: Run the macro-flipping orientation post-pass.
    flipping: bool = True
    #: Run the legalization safety net after flipping.  Budgeting keeps
    #: block rectangles disjoint, but rare layouts (e.g. c3 at tiny
    #: scale) still produce overlapping or protruding macros; the
    #: legalizer repairs them.  Disable to reproduce pre-1.1 raw
    #: placements.
    legalize: bool = True
    #: Record per-level traces (needed by the Fig. 1 reproduction).
    keep_trace: bool = False
    #: Affinity source: "dataflow" (the paper's contribution) or
    #: "pseudonet" (hierarchy-closeness pseudo-nets, the prior art the
    #: paper improves on; see repro.core.pseudonets).
    affinity_mode: str = "dataflow"
    #: Referee backend ("python" reference loops / "numpy" batched
    #: kernels, plus anything registered with
    #: ``repro.metrics.register_backend``); drives the shared referee
    #: and the layout cost model's distance kernel.  ``None`` uses the
    #: registry default (numpy).  All builtin backends produce
    #: bit-identical metrics, so this is a speed/cross-check knob.
    referee_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lambda must be in [0,1], got {self.lam}")
        if self.latency_k < 0:
            raise ValueError(f"k must be non-negative, got {self.latency_k}")
        if not 0 < self.min_area_frac < 1:
            raise ValueError("min_area_frac must be in (0,1)")
        if not 0 < self.open_area_frac <= 1:
            raise ValueError("open_area_frac must be in (0,1]")
        if self.affinity_mode not in ("dataflow", "pseudonet"):
            raise ValueError(
                f"unknown affinity mode {self.affinity_mode!r}")
        if self.referee_backend is not None:
            # Same resolver (and error) as BaseFlow / the kernels, so
            # every entry point rejects unknown names identically.
            from repro.metrics import get_backend
            get_backend(self.referee_backend)

    # -- derived configurations ---------------------------------------------

    def layout_config(self, level_seed: int = 0) -> LayoutConfig:
        """Layout-engine configuration for one recursion level."""
        mult = self.effort.multiplier
        anneal = AnnealConfig(
            seed=self.seed * 7919 + level_seed,
            moves_per_block=int(140 * mult),
            min_moves=int(240 * mult),
            max_moves=int(6000 * mult),
            moves_per_temperature=28,
            restarts=2 if self.effort is not Effort.FAST else 1)
        return LayoutConfig(seed=anneal.seed, weights=self.weights,
                            anneal=anneal, incremental=self.incremental,
                            metrics_backend=self.referee_backend)

    def shapegen_config(self) -> ShapeGenConfig:
        """Shape-curve generation configuration (S_Γ, Sect. IV-A)."""
        mult = self.effort.multiplier
        anneal = AnnealConfig(
            seed=self.seed * 104729 + 13,
            moves_per_block=int(70 * mult),
            min_moves=int(160 * mult),
            max_moves=int(2600 * mult),
            moves_per_temperature=24)
        return ShapeGenConfig(seed=anneal.seed, anneal=anneal,
                              incremental=self.incremental)
