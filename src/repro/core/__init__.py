"""HiDaP: the paper's hierarchical dataflow-driven macro placer.

The public entry point is :class:`repro.core.hidap.HiDaP` (re-exported
here), implementing Algorithm 1: hierarchy-tree construction, bottom-up
shape curves, recursive block floorplanning (Algorithm 2: declustering,
target-area assignment, dataflow inference, layout generation) and the
macro-flipping post-pass.
"""

from repro.core.config import Effort, HiDaPConfig
from repro.core.decluster import BlockSeed, DeclusterResult, decluster
from repro.core.hidap import HiDaP
from repro.core.result import LevelTrace, MacroPlacement, PlacedMacro

__all__ = [
    "BlockSeed",
    "DeclusterResult",
    "Effort",
    "HiDaP",
    "HiDaPConfig",
    "LevelTrace",
    "MacroPlacement",
    "PlacedMacro",
    "decluster",
]
