"""The unified placement API: registry, pipeline, artifacts, suite.

This package is the single front door for every placement run:

* **flow registry** — :func:`register_flow` / :func:`get_flow` /
  :func:`available_flows` map flow names (and parameterized specs like
  ``hidap:lam=0.8``) to :class:`Placer` objects.  The CLI, ``run_flow``
  and the suite runner all dispatch through it, so adding a flow is one
  ``register_flow`` call — no repro internals to edit.
* **staged pipeline** — :class:`Pipeline` / :class:`Stage` run the
  placer as observable stages (``flatten -> graphs -> shape-curves ->
  floorplan -> flip -> legalize``) over a typed :class:`RunArtifacts`
  record.
* **prepared designs** — :class:`PreparedDesign` caches
  ``flat``/``gnet``/``gseq`` so they are built once per design instead
  of once per consumer.
* **parallel suite** — :func:`run_suite` fans (design, flow) pairs over
  worker processes with ``workers=N``, row-for-row identical to serial.

Extending with your own flow::

    from repro.api import register_flow, run_suite

    class MyFlow:
        name = "myflow"
        def place(self, prepared): ...
        def evaluate(self, prepared, clock_period=None): ...

    register_flow("myflow", MyFlow, description="my experimental flow")
    run_suite(scale="tiny", flows=("myflow", "handfp"))
"""

from repro.api.artifacts import RunArtifacts
from repro.api.prepared import (
    PreparedDesign,
    prepare_design,
    prepare_suite_design,
)
from repro.api.registry import (
    FlowError,
    Placer,
    UnknownFlowError,
    available_flows,
    flow_descriptions,
    get_flow,
    parse_flow_spec,
    register_flow,
    split_flow_specs,
    unregister_flow,
)
from repro.api.pipeline import (
    HIDAP_STAGES,
    Pipeline,
    PipelineObserver,
    Stage,
    build_hidap_pipeline,
)
from repro.api.suite import DEFAULT_FLOWS, SuiteResult, run_suite
from repro.api.flows import (  # noqa: E402  (must follow suite: registers builtins)
    BaseFlow,
    HandFPFlow,
    HandFPStripFlow,
    HiDaPBest3Flow,
    HiDaPFlow,
    IndEDAFlow,
    register_builtin_flows,
)

__all__ = [
    "BaseFlow",
    "DEFAULT_FLOWS",
    "FlowError",
    "HIDAP_STAGES",
    "HandFPFlow",
    "HandFPStripFlow",
    "HiDaPBest3Flow",
    "HiDaPFlow",
    "IndEDAFlow",
    "Pipeline",
    "PipelineObserver",
    "Placer",
    "PreparedDesign",
    "RunArtifacts",
    "Stage",
    "SuiteResult",
    "UnknownFlowError",
    "available_flows",
    "build_hidap_pipeline",
    "flow_descriptions",
    "get_flow",
    "parse_flow_spec",
    "prepare_design",
    "prepare_suite_design",
    "register_builtin_flows",
    "register_flow",
    "run_suite",
    "split_flow_specs",
    "unregister_flow",
]
