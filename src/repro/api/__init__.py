"""The unified placement API: registry, pipeline, runs, suite, service.

This package is the single front door for every placement run:

* **flow registry** — :func:`register_flow` / :func:`get_flow` /
  :func:`available_flows` map flow names (and parameterized specs like
  ``hidap:lam=0.8``) to :class:`Placer` objects.  The CLI, ``run_flow``
  and the suite runner all dispatch through it, so adding a flow is one
  ``register_flow`` call — no repro internals to edit.
* **staged pipeline** — :class:`Pipeline` / :class:`Stage` run the
  placer as observable stages (``flatten -> graphs -> shape-curves ->
  floorplan -> flip -> legalize``) over a typed :class:`RunArtifacts`
  record.
* **prepared designs** — :class:`PreparedDesign` caches
  ``flat``/``gnet``/``gseq`` so they are built once per design instead
  of once per consumer.
* **single runs** — :func:`run_flow` / :func:`evaluate_placement`, with
  every knob carried by one :class:`RunOptions` record shared by all
  entry points.
* **parallel suite** — :func:`run_suite` fans (design, flow) pairs over
  worker processes with ``workers=N``, row-for-row identical to serial;
  ``store=DIR`` persists compiled designs so repeated runs skip every
  compile.
* **placement service** — :class:`PlacementService` (from
  :mod:`repro.service`, re-exported here) is the submit/poll/stream job
  front end over the same engine, with a
  :class:`CompiledDesignStore` and shared-memory array handoff.
* **tables** — :func:`format_table2` / :func:`format_table3` /
  :func:`normalize_to_handfp` / :func:`geomean` turn rows into the
  paper's tables.

Extending with your own flow::

    from repro.api import register_flow, run_suite

    class MyFlow:
        name = "myflow"
        def place(self, prepared): ...
        def evaluate(self, prepared, clock_period=None): ...

    register_flow("myflow", MyFlow, description="my experimental flow")
    run_suite(scale="tiny", flows=("myflow", "handfp"))
"""

from repro.api.artifacts import RunArtifacts
from repro.api.prepared import (
    PreparedDesign,
    prepare_design,
    prepare_suite_design,
)
from repro.api.registry import (
    FlowError,
    Placer,
    UnknownFlowError,
    available_flows,
    flow_descriptions,
    get_flow,
    parse_flow_spec,
    register_flow,
    split_flow_specs,
    unregister_flow,
)
from repro.api.pipeline import (
    HIDAP_STAGES,
    Pipeline,
    PipelineObserver,
    Stage,
    build_hidap_pipeline,
)
from repro.api.run import (
    HIDAP_LAMBDAS,
    FlowMetrics,
    RunOptions,
    evaluate_placement,
    run_flow,
)
from repro.core.config import Effort
from repro.api.suite import DEFAULT_FLOWS, SuiteResult, run_suite
from repro.api.flows import (  # noqa: E402  (must follow suite: registers builtins)
    BaseFlow,
    HandFPFlow,
    HandFPStripFlow,
    HiDaPBest3Flow,
    HiDaPFlow,
    IndEDAFlow,
    register_builtin_flows,
)
from repro.eval.tables import (
    format_table2,
    format_table3,
    geomean,
    normalize_to_handfp,
)

#: Service-layer names resolved lazily (PEP 562) so ``import repro.api``
#: does not pull in multiprocessing/shared-memory machinery until a
#: client actually reaches for the service.
_SERVICE_EXPORTS = (
    "CompiledDesignStore",
    "JobEvent",
    "JobHandle",
    "JobStatus",
    "PlacementService",
    "store_version",
)

__all__ = [
    "BaseFlow",
    "DEFAULT_FLOWS",
    "Effort",
    "FlowError",
    "FlowMetrics",
    "HIDAP_LAMBDAS",
    "HIDAP_STAGES",
    "HandFPFlow",
    "HandFPStripFlow",
    "HiDaPBest3Flow",
    "HiDaPFlow",
    "IndEDAFlow",
    "Pipeline",
    "PipelineObserver",
    "Placer",
    "PreparedDesign",
    "RunArtifacts",
    "RunOptions",
    "Stage",
    "SuiteResult",
    "UnknownFlowError",
    "available_flows",
    "build_hidap_pipeline",
    "evaluate_placement",
    "flow_descriptions",
    "format_table2",
    "format_table3",
    "geomean",
    "get_flow",
    "normalize_to_handfp",
    "parse_flow_spec",
    "prepare_design",
    "prepare_suite_design",
    "register_builtin_flows",
    "register_flow",
    "run_flow",
    "run_suite",
    "split_flow_specs",
    "unregister_flow",
    *_SERVICE_EXPORTS,
]


def __getattr__(name):
    if name in _SERVICE_EXPORTS:
        import repro.service as _service

        return getattr(_service, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
