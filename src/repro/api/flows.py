"""Built-in flows behind the registry.

Each class wraps one of the repo's placement flows in the
:class:`~repro.api.registry.Placer` protocol: ``place`` produces a
:class:`~repro.core.result.MacroPlacement`, ``evaluate`` additionally
runs the shared referee.  All of them pull ``flat``/``gnet``/``gseq``
from the :class:`~repro.api.prepared.PreparedDesign` cache instead of
rebuilding them.

Registered names: ``hidap``, ``hidap-best3``, ``indeda``, ``handfp``,
``handfp-strip``.  Parameterized variants are spelled as flow specs,
e.g. ``hidap:lam=0.8`` or ``hidap:lam=0.2,latency_k=2``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.api.prepared import PreparedDesign
from repro.api.registry import FlowError, register_flow
from repro.core.config import Effort, HiDaPConfig
from repro.core.hidap import HiDaP
from repro.core.result import MacroPlacement
from repro.api.run import HIDAP_LAMBDAS, FlowMetrics, evaluate_placement
from repro.timing.sta import default_clock_period


def _coerce_effort(effort) -> Effort:
    return effort if isinstance(effort, Effort) else Effort(effort)


def _baseline_gseq(prepared: PreparedDesign):
    """The cached gseq, if built with the baselines' default threshold.

    Baselines always used ``build_gseq``'s default ``min_bits``; a
    cache of different or unknown provenance makes them rebuild their
    own, preserving pre-registry behaviour.
    """
    from repro.api.prepared import DEFAULT_MIN_BITS
    return (prepared.gseq if prepared.min_bits == DEFAULT_MIN_BITS
            else None)


class BaseFlow:
    """Shared plumbing: referee invocation over cached artifacts.

    ``referee_backend`` names the referee kernel implementation
    (``None`` → the :mod:`repro.metrics` registry default); it reaches
    every stage of :func:`~repro.api.run.evaluate_placement` — the
    quadratic stdcell system, HPWL, congestion and the timing analysis
    — and, for HiDaP flows, the layout cost model.  The referee records
    its backend and per-metric timings (``referee_{stdcell,locate,hpwl,
    congestion,timing}_us``) on the returned row's ``eval_counters``
    and, when the flow kept run artifacts, merges them into
    ``RunArtifacts.eval_counters`` for observers.
    """

    name = "base"

    def __init__(self, seed: int = 1, effort=Effort.NORMAL,
                 referee_backend: Optional[str] = None):
        self.seed = int(seed)
        self.effort = _coerce_effort(effort)
        if referee_backend is not None:
            from repro.metrics import get_backend
            get_backend(referee_backend)    # fail fast on unknown names
        self.referee_backend = referee_backend
        #: RunArtifacts of the flow's last placement run, when the
        #: underlying placer exposes them (HiDaP flows do).
        self.artifacts = None

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        raise NotImplementedError

    def _referee(self, prepared: PreparedDesign,
                 placement: MacroPlacement,
                 clock_period: float) -> FlowMetrics:
        """Run the shared referee and surface its counters."""
        metrics = evaluate_placement(prepared.flat, placement,
                                     prepared.gseq, clock_period,
                                     backend=self.referee_backend)
        if self.artifacts is not None:
            self.artifacts.eval_counters.update(metrics.eval_counters)
        return metrics

    def evaluate(self, prepared: PreparedDesign,
                 clock_period: Optional[float] = None) -> FlowMetrics:
        if clock_period is None:
            clock_period = default_clock_period(prepared.die_w,
                                                prepared.die_h)
        placement = self.place(prepared)
        return self._referee(prepared, placement, clock_period)


class HiDaPFlow(BaseFlow):
    """The paper's placer at a single λ (``hidap``, ``hidap:lam=...``)."""

    name = "hidap"
    #: Label stamped on placements/metrics (the paper reports the
    #: best-of-three protocol simply as "hidap").
    flow_label = "hidap"

    def __init__(self, seed: int = 1, effort=Effort.NORMAL,
                 lam: float = 0.5,
                 referee_backend: Optional[str] = None, **config_kwargs):
        super().__init__(seed, effort, referee_backend)
        self.config = HiDaPConfig(seed=self.seed, lam=lam,
                                  effort=self.effort,
                                  referee_backend=referee_backend,
                                  **config_kwargs)

    def _run_hidap(self, prepared: PreparedDesign,
                   config: HiDaPConfig) -> MacroPlacement:
        placer = HiDaP(config)
        # The cached gseq is only reusable when it was built with this
        # config's min_bits; gnet is threshold-independent and always
        # shareable.
        gseq = (prepared.gseq if config.min_bits == prepared.min_bits
                else None)
        placement = placer.place(prepared.flat, prepared.die_w,
                                 prepared.die_h,
                                 flow_name=self.flow_label,
                                 gnet=prepared.gnet, gseq=gseq,
                                 tree=prepared.tree)
        # Keep the run record so referee counters can join the
        # pipeline's own eval counters (observer surface).
        self.artifacts = placer.artifacts
        return placement

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        return self._run_hidap(prepared, self.config)

    def evaluate(self, prepared: PreparedDesign,
                 clock_period: Optional[float] = None) -> FlowMetrics:
        metrics = super().evaluate(prepared, clock_period)
        metrics.lam = self.config.lam
        return metrics


class HiDaPBest3Flow(HiDaPFlow):
    """The paper's protocol: best referee WL over λ ∈ {0.2, 0.5, 0.8}."""

    name = "hidap-best3"

    def __init__(self, seed: int = 1, effort=Effort.NORMAL,
                 lambdas: Tuple[float, ...] = HIDAP_LAMBDAS,
                 lam: Optional[float] = None, **config_kwargs):
        # ``lam=<λ>`` (the spec syntax shared with plain hidap)
        # restricts the sweep to a single λ.
        if lam is not None:
            lambdas = (float(lam),)
        if isinstance(lambdas, (int, float)):
            lambdas = (float(lambdas),)
        self.lambdas = tuple(lambdas)
        super().__init__(seed, effort, lam=self.lambdas[0],
                         **config_kwargs)

    def _sweep(self, prepared: PreparedDesign, clock_period: float
               ) -> Tuple[FlowMetrics, MacroPlacement]:
        best: Optional[Tuple[FlowMetrics, MacroPlacement]] = None
        for lam in self.lambdas:
            # Carry every configured knob (min_bits, flipping, ...)
            # into the sweep; only λ varies.
            config = dataclasses.replace(self.config, lam=lam)
            placement = self._run_hidap(prepared, config)
            metrics = self._referee(prepared, placement, clock_period)
            metrics.lam = lam
            if best is None or metrics.wl_meters < best[0].wl_meters:
                best = (metrics, placement)
        return best

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        clock = default_clock_period(prepared.die_w, prepared.die_h)
        return self._sweep(prepared, clock)[1]

    def evaluate(self, prepared: PreparedDesign,
                 clock_period: Optional[float] = None) -> FlowMetrics:
        if clock_period is None:
            clock_period = default_clock_period(prepared.die_w,
                                                prepared.die_h)
        return self._sweep(prepared, clock_period)[0]


class IndEDAFlow(BaseFlow):
    """The commercial-floorplanner stand-in."""

    name = "indeda"

    def __init__(self, seed: int = 1, effort=Effort.NORMAL,
                 refinement_passes: int = 5,
                 referee_backend: Optional[str] = None):
        super().__init__(seed, effort, referee_backend)
        self.refinement_passes = int(refinement_passes)

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        from repro.baselines.indeda import place_indeda
        return place_indeda(prepared.flat, prepared.die_w,
                            prepared.die_h,
                            refinement_passes=self.refinement_passes,
                            gnet=prepared.gnet,
                            gseq=_baseline_gseq(prepared))


class HandFPStripFlow(BaseFlow):
    """The expert strip floorplan alone (``handfp-strip``)."""

    name = "handfp-strip"

    def __init__(self, seed: int = 1, effort=Effort.NORMAL,
                 refinement_passes: int = 8,
                 referee_backend: Optional[str] = None):
        super().__init__(seed, effort, referee_backend)
        self.refinement_passes = int(refinement_passes)

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        from repro.baselines.handfp import place_handfp
        if prepared.truth is None:
            raise FlowError(
                "handfp requires ground truth (a generated design)")
        return place_handfp(prepared.flat, prepared.truth,
                            prepared.die_w, prepared.die_h,
                            refinement_passes=self.refinement_passes,
                            gnet=prepared.gnet,
                            gseq=_baseline_gseq(prepared),
                            tree=prepared.tree)


class HandFPFlow(HandFPStripFlow):
    """The full expert oracle (``handfp``).

    The experts iterated for weeks with every tool available: besides
    the strip floorplan, the oracle keeps independent high-effort tool
    runs if the referee scores them better.  Seeds differ from the
    hidap flow's, so handFP is a genuinely independent contender.
    """

    name = "handfp"

    def evaluate(self, prepared: PreparedDesign,
                 clock_period: Optional[float] = None) -> FlowMetrics:
        if clock_period is None:
            clock_period = default_clock_period(prepared.die_w,
                                                prepared.die_h)
        best = super().evaluate(prepared, clock_period)
        expert_effort = (Effort.HIGH if self.effort is Effort.NORMAL
                         else Effort.NORMAL)
        total_time = best.placer_seconds
        for expert_seed, lam in ((self.seed + 101, 0.5),
                                 (self.seed + 202, 0.2)):
            config = HiDaPConfig(seed=expert_seed, lam=lam,
                                 effort=expert_effort,
                                 referee_backend=self.referee_backend)
            gseq = (prepared.gseq
                    if config.min_bits == prepared.min_bits else None)
            candidate = HiDaP(config).place(
                prepared.flat, prepared.die_w, prepared.die_h,
                flow_name="handfp", gnet=prepared.gnet, gseq=gseq,
                tree=prepared.tree)
            metrics = self._referee(prepared, candidate, clock_period)
            total_time += metrics.placer_seconds
            if metrics.wl_meters < best.wl_meters:
                best = metrics
        best.flow = "handfp"
        best.placer_seconds = total_time
        return best


#: Names claimed by :func:`register_builtin_flows`; registry entries
#: beyond these are third-party and must be replayed into suite
#: worker processes (see :mod:`repro.api.suite`).
BUILTIN_FLOW_NAMES = ("hidap", "hidap-best3", "indeda", "handfp",
                      "handfp-strip")


def register_builtin_flows() -> None:
    """Idempotently (re)register the repo's own flows."""
    for cls, description in (
            (HiDaPFlow,
             "the paper's placer at one λ (params: lam, seed, effort, "
             "any HiDaPConfig field)"),
            (HiDaPBest3Flow,
             "best referee WL over λ ∈ {0.2, 0.5, 0.8} (the paper's "
             "reporting protocol)"),
            (IndEDAFlow,
             "commercial-floorplanner stand-in: flat connectivity, "
             "perimeter packing"),
            (HandFPFlow,
             "expert-oracle stand-in: ground-truth strips plus "
             "high-effort tool contenders"),
            (HandFPStripFlow,
             "the expert strip floorplan alone, no tool contenders")):
        register_flow(cls.name, cls, description=description,
                      overwrite=True)


register_builtin_flows()
