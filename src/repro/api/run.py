"""Single-run entry point: ``run_flow``, the shared referee, RunOptions.

This module holds the implementation that historically lived in
``repro.eval.flow`` (that module is now a deprecation shim re-exporting
these names).  It also defines :class:`RunOptions`, the one knob record
shared by every placement entry point — ``run_flow``, ``run_suite`` and
:class:`repro.service.PlacementService` all accept the same options
object, so a configuration travels unchanged from a one-off run to a
suite to a service job.

Trace semantics (shared by all three entry points)
--------------------------------------------------
``trace: bool | str | Path | None`` has exactly one meaning everywhere:

* ``None`` / ``False`` — no span recording (the default);
* ``True`` — record :mod:`repro.obs` spans and attach the payload list
  to the result (``FlowMetrics.trace`` / ``SuiteResult.trace``);
* a ``str`` or :class:`~pathlib.Path` — record spans *and* write a
  Chrome trace-event file at that path (viewable in Perfetto /
  ``chrome://tracing``), in addition to attaching the payloads.

Tracing never changes placements, rows or RNG streams (asserted in
``tests/test_obs_determinism.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, MutableMapping, Optional, Union

from repro.core.config import Effort
from repro.core.ports import assign_port_positions
from repro.core.result import MacroPlacement
from repro.gen.spec import GroundTruth
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.netlist.flatten import FlatDesign
from repro.obs import current_tracer, perf_seconds
from repro.placement.stdcell import PlacerConfig, place_cells
from repro.timing.sta import analyze_timing

#: The λ values the paper sweeps for HiDaP ("best WL of three").
HIDAP_LAMBDAS = (0.2, 0.5, 0.8)

#: The one documented type of the ``trace`` knob (see module docstring).
TraceSpec = Union[bool, str, Path, None]


@dataclass(frozen=True)
class RunOptions:
    """Per-run knobs shared by every placement entry point.

    One frozen record replaces the ``seed``/``effort``/
    ``referee_backend``/``trace`` keyword tails that ``run_flow`` and
    ``run_suite`` used to grow independently;
    :class:`repro.service.PlacementService` accepts the same object, so
    client code configures a run once regardless of how it is executed.
    The legacy keywords still work on every entry point but emit a
    :class:`DeprecationWarning`.
    """

    seed: int = 1
    effort: Effort = Effort.NORMAL
    referee_backend: Optional[str] = None
    trace: TraceSpec = None

    def __post_init__(self):
        object.__setattr__(self, "seed", int(self.seed))
        if not isinstance(self.effort, Effort):
            object.__setattr__(self, "effort", Effort(self.effort))

    @property
    def tracing(self) -> bool:
        """Whether span recording is on (any non-falsy ``trace``)."""
        return bool(self.trace)

    @property
    def trace_path(self) -> Optional[Path]:
        """The Chrome-trace output path, if ``trace`` named one."""
        if isinstance(self.trace, (str, Path)):
            return Path(self.trace)
        return None


def resolve_options(options: Optional[RunOptions] = None, *,
                    seed: Optional[int] = None,
                    effort=None,
                    referee_backend: Optional[str] = None,
                    trace: TraceSpec = None,
                    _stacklevel: int = 3) -> RunOptions:
    """Merge legacy keyword arguments into a :class:`RunOptions`.

    Every entry point funnels through this shim: passing any of the
    legacy ``seed``/``effort``/``referee_backend``/``trace`` keywords
    emits one :class:`DeprecationWarning` naming them, and the values
    override the corresponding ``options`` fields (so existing call
    sites keep their exact behaviour while they migrate).
    """
    legacy = {k: v for k, v in (("seed", seed), ("effort", effort),
                                ("referee_backend", referee_backend),
                                ("trace", trace))
              if v is not None}
    if legacy:
        warnings.warn(
            "pass RunOptions(...) instead of the legacy keyword(s) "
            + ", ".join(sorted(legacy)),
            DeprecationWarning, stacklevel=_stacklevel)
    resolved = options if options is not None else RunOptions()
    if legacy:
        resolved = replace(resolved, **legacy)
    return resolved


@dataclass
class FlowMetrics:
    """One row of Table III."""

    design: str
    flow: str
    wl_meters: float
    grc_percent: float
    wns_percent: float
    tns: float
    placer_seconds: float
    wl_norm: float = 0.0          # vs handFP; filled by the suite runner
    macro_overlap: float = 0.0
    lam: Optional[float] = None   # λ actually used (HiDaP flows)
    #: Referee observability: ``referee_backend`` plus per-metric
    #: ``referee_*_us`` wall-clock counters (see
    #: :func:`evaluate_placement`); empty on rows built by hand.
    eval_counters: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        return (f"{self.design:4s} {self.flow:8s} "
                f"WL={self.wl_meters:8.3f}m norm={self.wl_norm:5.3f} "
                f"GRC={self.grc_percent:6.2f}% WNS={self.wns_percent:+6.1f}% "
                f"TNS={self.tns:9.1f}  t={self.placer_seconds:6.1f}s")


def evaluate_placement(flat: FlatDesign, placement: MacroPlacement,
                       gseq=None, clock_period: Optional[float] = None,
                       placer_config: Optional[PlacerConfig] = None,
                       backend: Optional[str] = None,
                       counters: Optional[MutableMapping[str, Any]] = None
                       ) -> FlowMetrics:
    """The shared referee: cell placement + WL + congestion + timing.

    ``backend`` selects the referee backend by name (``None`` → the
    :mod:`repro.metrics` registry default, normally ``numpy``); every
    referee stage — the quadratic stdcell system, HPWL, congestion and
    the timing analysis — runs on the selected backend's kernels, and
    array backends pull the compiled per-design caches
    (:class:`~repro.metrics.netarrays.NetArrays`, the clustered
    netlist's :class:`~repro.metrics.stdcell_kernel.StdcellArrays`, the
    sequential graph's
    :class:`~repro.metrics.timing_kernel.TimingArrays`), so repeated
    evaluations share one compile.  When ``counters`` is given, the
    backend name and per-metric wall-clock (``referee_stdcell_us``,
    ``referee_hpwl_us``, ``referee_congestion_us``,
    ``referee_timing_us``, integer microseconds) are recorded into it;
    the same record lands on the returned row's ``eval_counters``.
    """
    from repro.metrics import (
        get_backend,
        locate_endpoints,
        net_arrays_for,
        traced_backend,
    )

    die = placement.die
    port_positions = assign_port_positions(flat.design, die)
    if gseq is None:
        gseq = build_gseq(build_gnet(flat), flat)

    tracer = current_tracer()
    resolved = traced_backend(get_backend(backend), tracer)
    arrays = net_arrays_for(flat) if resolved.uses_net_arrays else None
    counters = counters if counters is not None else {}
    counters["referee_backend"] = resolved.name

    def timed(key, fn):
        # The obs clock feeds the referee_*_us observability counters
        # only — it never reaches a metric value or an RNG stream.
        start = perf_seconds()
        result = fn()
        counters[key] = counters.get(key, 0) + int(
            1e6 * (perf_seconds() - start))
        return result

    with tracer.span("referee", design=flat.design.name,
                     flow=placement.flow_name, backend=resolved.name):
        cells = timed("referee_stdcell_us",
                      lambda: place_cells(flat, placement, port_positions,
                                          config=placer_config,
                                          backend=resolved))
        # Locate every endpoint once; both array kernels share the
        # result.
        coords = None
        if arrays is not None:
            with tracer.span("referee.locate"):
                coords = timed(
                    "referee_locate_us",
                    lambda: locate_endpoints(arrays, placement, cells,
                                             port_positions))
        wl = timed("referee_hpwl_us",
                   lambda: resolved.hpwl(flat, placement, cells,
                                         port_positions, arrays=arrays,
                                         coords=coords))
        congestion = timed("referee_congestion_us",
                           lambda: resolved.congestion(
                               flat, placement, cells, port_positions,
                               arrays=arrays, coords=coords))
        timing = timed("referee_timing_us",
                       lambda: analyze_timing(flat, gseq, placement,
                                              cells, port_positions,
                                              clock_period=clock_period,
                                              backend=resolved))
    tracer.metrics.absorb(counters)
    return FlowMetrics(
        design=flat.design.name,
        flow=placement.flow_name,
        wl_meters=wl.meters,
        grc_percent=congestion.grc_percent,
        wns_percent=timing.wns_percent,
        tns=timing.tns,
        placer_seconds=placement.runtime_seconds,
        macro_overlap=placement.macro_overlap_area(),
        eval_counters=dict(counters))


def run_flow(flat: FlatDesign, truth: Optional[GroundTruth],
             flow: str, die_w: float, die_h: float,
             options: Optional[RunOptions] = None,
             clock_period: Optional[float] = None,
             gseq=None,
             seed: Optional[int] = None,
             effort=None,
             referee_backend: Optional[str] = None,
             trace: TraceSpec = None) -> FlowMetrics:
    """Place with ``flow`` and evaluate with the shared referee.

    A thin shim over the flow registry (:mod:`repro.api.registry`):
    ``flow`` is any registered name or parameterized spec —
    ``indeda``, ``handfp``, ``hidap`` (λ=0.5), ``hidap:lam=<λ>``,
    ``hidap-best3`` (the paper's best-WL-of-three protocol), a flow
    you registered yourself... — with the legacy ``hidap-l<λ>``
    spelling still accepted.

    ``options`` carries the run knobs (:class:`RunOptions`: seed,
    effort, referee backend, trace — see the module docstring for the
    one trace semantics).  The legacy ``seed``/``effort``/
    ``referee_backend``/``trace`` keywords still work but emit a
    :class:`DeprecationWarning`.
    """
    from repro.api import get_flow
    from repro.api.prepared import PreparedDesign

    opts = resolve_options(options, seed=seed, effort=effort,
                           referee_backend=referee_backend, trace=trace)
    prepared = PreparedDesign.from_flat(flat, die_w=die_w, die_h=die_h,
                                        truth=truth, gseq=gseq)
    placer = get_flow(flow, seed=opts.seed, effort=opts.effort,
                      referee_backend=opts.referee_backend)
    if not opts.tracing:
        return placer.evaluate(prepared, clock_period=clock_period)

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer("run_flow")
    with use_tracer(tracer):
        with tracer.span("flow.place", design=flat.design.name,
                         flow=flow):
            metrics = placer.evaluate(prepared,
                                      clock_period=clock_period)
    payloads = [tracer.payload()]
    if opts.trace_path is not None:
        write_chrome_trace(opts.trace_path, payloads)
    metrics.trace = payloads
    return metrics
